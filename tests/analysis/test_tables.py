"""Unit tests for table formatting."""

from repro.analysis.tables import format_table, format_value


class TestFormatValue:
    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_float_precision(self):
        assert format_value(3.14159, precision=3) == "3.14"

    def test_special_floats(self):
        assert format_value(float("inf")) == "inf"
        assert format_value(float("-inf")) == "-inf"
        assert format_value(float("nan")) == "nan"

    def test_strings_and_ints(self):
        assert format_value("abc") == "abc"
        assert format_value(42) == "42"


class TestFormatTable:
    def test_basic_shape(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert len(lines) == 4  # header, divider, 2 rows

    def test_title(self):
        text = format_table([{"a": 1}], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_column_selection_and_order(self):
        text = format_table(
            [{"a": 1, "b": 2, "c": 3}], columns=["c", "a"]
        )
        header = text.splitlines()[0].split()
        assert header == ["c", "a"]

    def test_missing_cells_blank(self):
        text = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert "2" in text

    def test_empty_rows(self):
        assert "(no rows)" in format_table([])
        assert "(no rows)" in format_table([], title="T")

    def test_alignment_consistent(self):
        text = format_table(
            [{"name": "x", "v": 1}, {"name": "longer-name", "v": 22}]
        )
        lines = text.splitlines()
        assert len(set(len(line.rstrip()) for line in lines[2:])) <= 2
