"""Unit tests for parameter estimation (future-work item 3)."""

import pytest

from repro.analysis.estimation import (
    estimate_average_fee,
    estimate_sender_rates,
    estimate_total_rate,
    estimate_zipf_s,
)
from repro.errors import InvalidParameter
from repro.snapshots.synthetic import barabasi_albert_snapshot
from repro.transactions.workload import PoissonWorkload, Transaction
from repro.transactions.zipf import ModifiedZipf


class TestRateEstimation:
    def test_rates_recovered_within_ci(self):
        graph = barabasi_albert_snapshot(10, seed=1)
        true_rates = {v: 0.5 + 0.1 * i for i, v in enumerate(graph.nodes)}
        workload = PoissonWorkload(
            ModifiedZipf(graph, s=1.0), true_rates, seed=2
        )
        horizon = 400.0
        trace = list(workload.generate(horizon))
        estimates = estimate_sender_rates(trace, horizon)
        hits = sum(
            estimates[v].contains(true_rates[v])
            for v in estimates
        )
        assert hits >= 0.85 * len(estimates)

    def test_total_rate(self):
        trace = [
            Transaction(time=t, sender="a", receiver="b", amount=1.0)
            for t in range(50)
        ]
        estimate = estimate_total_rate(trace, horizon=50.0)
        assert estimate.rate == pytest.approx(1.0)
        assert estimate.ci_low < 1.0 < estimate.ci_high

    def test_ci_narrow_with_more_data(self):
        small = estimate_total_rate(
            [Transaction(t, "a", "b", 1.0) for t in range(10)], 10.0
        )
        large = estimate_total_rate(
            [Transaction(t, "a", "b", 1.0) for t in range(1000)], 1000.0
        )
        assert (large.ci_high - large.ci_low) < (small.ci_high - small.ci_low)

    def test_validation(self):
        with pytest.raises(InvalidParameter):
            estimate_sender_rates([], horizon=0.0)
        with pytest.raises(InvalidParameter):
            estimate_sender_rates([], horizon=1.0, confidence=1.5)


class TestZipfEstimation:
    @pytest.mark.parametrize("true_s", [0.5, 1.5, 3.0])
    def test_recovers_s(self, true_s):
        graph = barabasi_albert_snapshot(12, seed=3)
        workload = PoissonWorkload(
            ModifiedZipf(graph, s=true_s),
            {v: 1.0 for v in graph.nodes},
            seed=4,
        )
        trace = workload.generate_count(1500)
        estimate = estimate_zipf_s(graph, trace)
        assert estimate.s == pytest.approx(true_s, abs=0.45)
        assert estimate.samples == 1500

    def test_s_zero_uniform_traffic(self):
        graph = barabasi_albert_snapshot(10, seed=5)
        workload = PoissonWorkload(
            ModifiedZipf(graph, s=0.0), {v: 1.0 for v in graph.nodes}, seed=6
        )
        trace = workload.generate_count(1200)
        estimate = estimate_zipf_s(graph, trace)
        assert estimate.s < 0.5

    def test_empty_trace_rejected(self):
        graph = barabasi_albert_snapshot(10, seed=7)
        with pytest.raises(InvalidParameter):
            estimate_zipf_s(graph, [])


class TestFeeEstimation:
    def test_mean_and_ci(self):
        samples = [0.1, 0.2, 0.3, 0.2, 0.2]
        mean, low, high = estimate_average_fee(samples)
        assert mean == pytest.approx(0.2)
        assert low < mean < high

    def test_single_sample(self):
        mean, low, high = estimate_average_fee([0.5])
        assert mean == low == high == 0.5

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameter):
            estimate_average_fee([])
