"""Unit tests for the sweep driver."""

import pytest

from repro.analysis.sweeps import grid_points, run_sweep
from repro.errors import ScenarioError


def _square(x):
    # top-level so it pickles for the process executor
    return {"square": x * x}


class TestGridPoints:
    def test_cartesian_product(self):
        points = list(grid_points({"a": [1, 2], "b": ["x", "y"]}))
        assert len(points) == 4
        assert {"a": 1, "b": "x"} in points
        assert {"a": 2, "b": "y"} in points

    def test_deterministic_order(self):
        grid = {"a": [1, 2], "b": [3, 4]}
        assert list(grid_points(grid)) == list(grid_points(grid))

    def test_single_axis(self):
        assert list(grid_points({"k": [5]})) == [{"k": 5}]

    def test_empty_axis_yields_nothing(self):
        assert list(grid_points({"k": []})) == []


class TestRunSweep:
    def test_merges_params_and_results(self):
        rows = run_sweep(
            {"x": [1, 2, 3]}, lambda x: {"square": x * x}
        )
        assert rows == [
            {"x": 1, "square": 1},
            {"x": 2, "square": 4},
            {"x": 3, "square": 9},
        ]

    def test_results_override_params_on_clash(self):
        rows = run_sweep({"x": [1]}, lambda x: {"x": 99})
        assert rows == [{"x": 99}]

    def test_progress_callback(self):
        seen = []
        run_sweep(
            {"x": [1, 2]},
            lambda x: {},
            progress=lambda i, point: seen.append((i, point["x"])),
        )
        assert seen == [(0, 1), (1, 2)]

    def test_process_executor_matches_serial(self):
        grid = {"x": [1, 2, 3, 4]}
        serial = run_sweep(grid, _square)
        parallel = run_sweep(grid, _square, executor="process", max_workers=2)
        assert serial == parallel

    def test_unknown_executor_rejected(self):
        with pytest.raises(ScenarioError):
            run_sweep({"x": [1]}, _square, executor="threads")
