"""Tests for the NE-topology attack-resilience table."""

import pytest

from repro.analysis.resilience import (
    TABLE_COLUMNS,
    equilibrium_topology_docs,
    resilience_table,
)


class TestTopologyDocs:
    def test_size_matched_node_counts(self):
        docs = equilibrium_topology_docs(9, balance=2.0)
        assert [d["kind"] for d in docs] == ["star", "path", "circle"]
        assert docs[0]["params"] == {"leaves": 8, "balance": 2.0}
        assert docs[1]["params"] == {"n": 9, "balance": 2.0}
        assert docs[2]["params"] == {"n": 9, "balance": 2.0}

    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            equilibrium_topology_docs(3)


class TestResilienceTable:
    @pytest.fixture(scope="class")
    def rows(self):
        return resilience_table(
            [600.0], strategy="slow-jamming", size=7, horizon=15.0, seed=7
        )

    def test_one_row_per_topology_budget_pair(self, rows):
        assert [r["topology"] for r in rows] == ["star", "path", "circle"]
        assert all(r["attack_budget"] == 600.0 for r in rows)
        assert all(tuple(r) == TABLE_COLUMNS for r in rows)

    def test_jamming_destroys_revenue_on_every_equilibrium(self, rows):
        assert all(r["victim_revenue_delta"] > 0 for r in rows)
        assert all(r["baseline_victim_revenue"] > 0 for r in rows)

    def test_star_victim_is_the_hub(self, rows):
        assert rows[0]["victim"] == "center"

    def test_process_executor_matches_serial(self):
        kwargs = dict(strategy="slow-jamming", size=7, horizon=10.0, seed=3)
        serial = resilience_table([400.0], executor="serial", **kwargs)
        process = resilience_table([400.0], executor="process", **kwargs)
        assert serial == process
