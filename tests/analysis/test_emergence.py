"""Emergence tables: do the Section IV topologies emerge and survive?"""

import pytest

from repro.analysis.emergence import (
    EMERGENCE_COLUMNS,
    default_evolution_scenario,
    emergence_table,
)
from repro.scenarios import TopologySpec


@pytest.fixture(scope="module")
def quiet_table():
    """No arrivals, no churn: pure best-response dynamics from each NE."""
    return emergence_table(epochs=8, size=6, seed=7, traffic_horizon=4.0)


class TestQuietDynamics:
    def test_row_per_topology_with_columns(self, quiet_table):
        assert [row["topology"] for row in quiet_table] == [
            "star", "path", "circle",
        ]
        for row in quiet_table:
            assert set(row) == set(EMERGENCE_COLUMNS)

    def test_star_is_stable_fixpoint(self, quiet_table):
        star_row = quiet_table[0]
        assert star_row["survived"]
        assert star_row["converged"]
        assert star_row["nash_stable"] is True
        assert star_row["final_max_gain"] == 0.0
        assert star_row["total_moves"] == 0

    def test_star_emerges_from_path_and_circle(self, quiet_table):
        # at a=b=0.1, s=2, l=1 the star is the attractor: path and
        # circle both rewire into a check_nash-stable star
        for row in quiet_table[1:]:
            assert row["final_topology"] == "star"
            assert row["nash_stable"] is True
            assert row["total_moves"] > 0

    def test_star_survives_churn(self):
        rows = emergence_table(
            epochs=8, size=6, seed=7, churn_rate=0.05, traffic_horizon=4.0,
        )
        star_row = rows[0]
        assert star_row["total_departures"] > 0
        assert star_row["final_topology"] == "star"
        assert star_row["nash_stable"] is True


class TestExecutors:
    def test_process_rows_match_serial(self):
        kwargs = dict(epochs=4, size=5, seed=3, traffic_horizon=3.0)
        serial = emergence_table(executor="serial", **kwargs)
        process = emergence_table(
            executor="process", max_workers=2, **kwargs
        )
        assert serial == process


class TestScenarioFactory:
    def test_default_scenario_round_trips(self):
        scenario = default_evolution_scenario(
            TopologySpec("star", {"leaves": 5}),
            arrival_rate=1.0,
            churn_rate=0.1,
        )
        from repro.scenarios import Scenario

        assert Scenario.from_dict(scenario.to_dict()) == scenario
        assert scenario.evolution.growth is not None
        assert scenario.evolution.churn is not None

    def test_zero_rates_mean_no_processes(self):
        scenario = default_evolution_scenario(
            TopologySpec("star", {"leaves": 5})
        )
        assert scenario.evolution.growth is None
        assert scenario.evolution.churn is None
