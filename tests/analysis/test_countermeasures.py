"""countermeasure_table: upfront fees price jamming without changing it.

The table's two claims, checked end to end on small sweeps:

* *damage invariance* — the upfront charge is ledger-only, so the
  victim's revenue loss is identical under every policy;
* *ROI monotonicity* — attacker cost grows with the upfront rate, so
  attacker ROI falls strictly along the rate axis.
"""

import pytest

from repro.analysis.countermeasures import (
    TABLE_COLUMNS,
    countermeasure_table,
    fee_policy_docs,
)
from repro.errors import ScenarioError

RATES = [0.02, 0.05]
SWEEP_KWARGS = dict(budget=200.0, size=5, horizon=10.0, seed=7)


@pytest.fixture(scope="module")
def table():
    return countermeasure_table(RATES, **SWEEP_KWARGS)


class TestFeePolicyDocs:
    def test_success_only_baseline_prepended(self):
        docs = fee_policy_docs([0.05])
        assert len(docs) == 2
        assert docs[0]["upfront_rate"] == 0.0
        assert docs[1]["upfront_rate"] == 0.05

    def test_success_side_shared_across_docs(self):
        docs = fee_policy_docs([0.02, 0.05], fee_base=0.1, fee_rate=0.01)
        assert all(
            doc["params"] == {"base": 0.1, "rate": 0.01} for doc in docs
        )

    def test_non_positive_rate_rejected(self):
        with pytest.raises(ScenarioError, match="> 0"):
            fee_policy_docs([0.0, 0.05])

    def test_non_increasing_rates_rejected(self):
        with pytest.raises(ScenarioError, match="strictly increasing"):
            fee_policy_docs([0.05, 0.02])


class TestCountermeasureTable:
    def test_grid_shape_and_columns(self, table):
        # 3 topologies x (1 success-only + 2 upfront rates)
        assert len(table) == 9
        assert all(tuple(row) == TABLE_COLUMNS for row in table)
        assert {row["topology"] for row in table} == {
            "star", "path", "circle"
        }

    def test_policy_labels(self, table):
        for row in table:
            expected = "upfront" if row["upfront_rate"] > 0 else "success-only"
            assert row["fee_policy"] == expected

    def test_damage_invariant_across_policies(self, table):
        for topology in ("star", "path", "circle"):
            rows = [r for r in table if r["topology"] == topology]
            deltas = {r["victim_revenue_delta"] for r in rows}
            assert len(deltas) == 1, (
                f"{topology}: upfront fees changed the attack's damage"
            )
            assert len({r["attacked_success_rate"] for r in rows}) == 1

    def test_attacker_roi_strictly_decreasing_in_rate(self, table):
        for topology in ("star", "path", "circle"):
            rows = sorted(
                (r for r in table if r["topology"] == topology),
                key=lambda r: r["upfront_rate"],
            )
            rois = [r["attacker_roi"] for r in rows]
            assert all(a > b for a, b in zip(rois, rois[1:])), (
                f"{topology}: ROI not strictly decreasing: {rois}"
            )

    def test_upfront_rows_record_the_attacker_bill(self, table):
        for row in table:
            if row["fee_policy"] == "upfront":
                assert row["attacker_upfront_paid"] > 0
            else:
                assert row["attacker_upfront_paid"] == 0.0

    def test_cache_round_trip_is_identical(self, tmp_path):
        store = tmp_path / "store"
        first = countermeasure_table(RATES, cache=store, **SWEEP_KWARGS)
        second = countermeasure_table(RATES, cache=store, **SWEEP_KWARGS)
        assert first == second

    def test_batched_backend_matches_event(self, table):
        batched = countermeasure_table(
            RATES, backend="batched", **SWEEP_KWARGS
        )
        assert batched == table
