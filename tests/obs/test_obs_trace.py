"""TraceWriter: JSONL schema, sinks, deterministic timestamps via FakeClock."""

import io
import json

from repro.obs.clock import FakeClock, set_clock
from repro.obs.trace import TRACE_SCHEMA_VERSION, TraceWriter


def records_of(buffer):
    return [json.loads(line) for line in buffer.getvalue().splitlines()]


class TestMetaHeader:
    def test_first_record_is_versioned_meta(self):
        buffer = io.StringIO()
        writer = TraceWriter(buffer)
        writer.close()
        records = records_of(buffer)
        assert records[0] == {
            "type": "meta", "schema_version": TRACE_SCHEMA_VERSION,
        }
        assert writer.records_written == 1


class TestEvents:
    def test_event_record_carries_ts_and_fields(self):
        fake = FakeClock()
        previous = set_clock(fake)
        try:
            buffer = io.StringIO()
            writer = TraceWriter(buffer)
            fake.advance(1.5)
            writer.event("payment", payment_id=7, amount=2.0)
            writer.close()
        finally:
            set_clock(previous)
        record = records_of(buffer)[1]
        assert record == {
            "type": "event", "name": "payment", "ts": 1.5,
            "payment_id": 7, "amount": 2.0,
        }

    def test_timestamps_are_relative_to_writer_open(self):
        fake = FakeClock(start=100.0)
        previous = set_clock(fake)
        try:
            buffer = io.StringIO()
            writer = TraceWriter(buffer)
            fake.advance(0.25)
            writer.event("tick")
            writer.close()
        finally:
            set_clock(previous)
        assert records_of(buffer)[1]["ts"] == 0.25


class TestSpans:
    def test_span_records_start_and_duration(self):
        fake = FakeClock()
        previous = set_clock(fake)
        try:
            buffer = io.StringIO()
            writer = TraceWriter(buffer)
            fake.advance(1.0)
            with writer.span("simulate", phase="main"):
                fake.advance(2.5)
            writer.close()
        finally:
            set_clock(previous)
        record = records_of(buffer)[1]
        assert record["type"] == "span"
        assert record["name"] == "simulate"
        assert record["ts"] == 1.0
        assert record["dur"] == 2.5
        assert record["phase"] == "main"

    def test_span_written_even_when_body_raises(self):
        buffer = io.StringIO()
        writer = TraceWriter(buffer)
        try:
            with writer.span("boom"):
                raise RuntimeError("inside the span")
        except RuntimeError:
            pass
        writer.close()
        assert records_of(buffer)[1]["name"] == "boom"


class TestSinks:
    def test_file_path_sink_owns_and_closes_handle(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceWriter(str(path)) as writer:
            writer.event("one")
            writer.event("two")
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        assert json.loads(lines[0])["type"] == "meta"
        assert [json.loads(line)["type"] for line in lines[1:]] == (
            ["event", "event"]
        )

    def test_io_sink_not_closed_by_writer(self):
        buffer = io.StringIO()
        writer = TraceWriter(buffer)
        writer.close()
        assert not buffer.closed  # caller-owned handle stays usable

    def test_records_written_counts_every_line(self):
        buffer = io.StringIO()
        writer = TraceWriter(buffer)
        writer.event("a")
        with writer.span("b"):
            pass
        writer.close()
        assert writer.records_written == 3
        assert len(records_of(buffer)) == 3
