"""ObsSession: enablement resolution, phases, telemetry assembly."""

import io
import json

import pytest

import repro.obs as obs_module
from repro.obs import (
    NULL_REGISTRY,
    NULL_SESSION,
    ObsSession,
    TraceWriter,
    default_session,
)
from repro.obs.clock import FakeClock, set_clock


class TestEnablement:
    def test_disabled_by_default_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        session = ObsSession()
        assert not session.enabled
        assert session.registry is NULL_REGISTRY

    def test_env_flag_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        session = ObsSession()
        assert session.enabled
        assert session.registry is not NULL_REGISTRY

    def test_tracer_implies_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        session = ObsSession(tracer=TraceWriter(io.StringIO()))
        assert session.enabled
        assert session.tracer is not None

    def test_profile_implies_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        assert ObsSession(profile=True).enabled

    def test_explicit_disable_wins_over_profile_and_tracer(self):
        session = ObsSession(
            enabled=False, tracer=TraceWriter(io.StringIO()), profile=True
        )
        assert not session.enabled
        assert session.tracer is None
        assert not session.profile

    def test_null_session_is_disabled_and_shared(self):
        assert not NULL_SESSION.enabled
        assert NULL_SESSION.registry is NULL_REGISTRY


class TestDefaultSession:
    def test_cached_across_calls(self, monkeypatch):
        monkeypatch.setattr(obs_module, "_default", None)
        monkeypatch.delenv("REPRO_OBS", raising=False)
        first = default_session()
        assert default_session() is first
        assert not first.enabled

    def test_env_opt_in_yields_enabled_default(self, monkeypatch):
        monkeypatch.setattr(obs_module, "_default", None)
        monkeypatch.setenv("REPRO_OBS", "1")
        assert default_session().enabled


class TestPhases:
    def test_phase_accumulates_fake_clock_seconds(self):
        fake = FakeClock()
        previous = set_clock(fake)
        try:
            session = ObsSession(enabled=True)
            with session.phase("simulate"):
                fake.advance(1.5)
            with session.phase("simulate"):
                fake.advance(0.5)
            with session.phase("topology"):
                fake.advance(0.25)
        finally:
            set_clock(previous)
        assert session.phase_seconds == {
            "simulate": pytest.approx(2.0), "topology": pytest.approx(0.25),
        }

    def test_disabled_phase_never_reads_the_clock(self):
        class ExplodingClock(FakeClock):
            def monotonic(self):
                raise AssertionError("disabled phase read the clock")

        previous = set_clock(ExplodingClock())
        try:
            with NULL_SESSION.phase("anything"):
                pass
        finally:
            set_clock(previous)
        assert NULL_SESSION.phase_seconds == {}

    def test_phase_emits_trace_event_when_traced(self):
        buffer = io.StringIO()
        session = ObsSession(tracer=TraceWriter(buffer))
        with session.phase("workload"):
            pass
        records = [json.loads(line) for line in buffer.getvalue().splitlines()]
        phases = [r for r in records if r.get("name") == "phase"]
        assert phases and phases[0]["phase"] == "workload"

    def test_event_forwards_only_with_tracer(self):
        buffer = io.StringIO()
        traced = ObsSession(tracer=TraceWriter(buffer))
        traced.event("attack.lock", amount=1.0)
        assert "attack.lock" in buffer.getvalue()
        ObsSession(enabled=True).event("dropped")  # no tracer: no-op


class TestTelemetryAssembly:
    def test_edge_conflicts_fold_and_rank(self):
        session = ObsSession(enabled=True, profile=True)
        session.add_edge_conflicts([(("a", "b"), 2), (("b", "c"), 5)])
        session.add_edge_conflicts([(("a", "b"), 3)])
        telemetry = session.build_telemetry(top_edges=1)
        assert session.edge_conflicts == {("a", "b"): 5, ("b", "c"): 5}
        # ties break on the stringified edge: ('a', 'b') sorts first
        assert telemetry.top_conflicting_edges == (("a", "b", 5),)

    def test_cache_rates_derived_from_fastpath_counters(self):
        session = ObsSession(enabled=True)
        registry = session.registry
        registry.counter("fastpath.payments").inc(100)
        registry.counter("fastpath.conflicts").inc(25)
        registry.counter("fastpath.tree_hits").inc(60)
        registry.counter("fastpath.tree_builds").inc(40)
        registry.counter("fastpath.mask_builds").inc(7)
        telemetry = session.build_telemetry()
        assert telemetry.cache["conflict_rate"] == pytest.approx(0.25)
        assert telemetry.cache["tree_hit_rate"] == pytest.approx(0.6)
        assert telemetry.cache["mask_builds"] == 7.0

    def test_empty_session_builds_empty_telemetry(self):
        telemetry = ObsSession(enabled=True).build_telemetry()
        assert telemetry.counters == {}
        assert telemetry.cache == {}
        assert telemetry.top_conflicting_edges == ()
