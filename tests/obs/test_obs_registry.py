"""Instruments, registry snapshots, Prometheus rendering, null overhead."""

import pytest

from repro.obs.clock import FakeClock, set_clock
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    obs_enabled_from_env,
    registry_for,
)


class TestInstruments:
    def test_counter_accumulates(self):
        counter = MetricsRegistry().counter("payments")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_gauge_is_last_write_wins(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_histogram_buckets_and_totals(self):
        histogram = Histogram("latency", bounds=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.counts == [1, 2, 1, 1]  # last = +Inf overflow
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(56.05)

    def test_histogram_bounds_sorted_and_nonempty(self):
        assert Histogram("h", bounds=(5.0, 1.0)).bounds == (1.0, 5.0)
        with pytest.raises(ValueError, match="at least one bound"):
            Histogram("h", bounds=())

    def test_timer_observes_fake_clock_elapsed(self):
        fake = FakeClock()
        previous = set_clock(fake)
        try:
            registry = MetricsRegistry()
            with registry.timer("step"):
                fake.advance(0.25)
            histogram = registry.histogram("step")
            assert histogram.count == 1
            assert histogram.sum == pytest.approx(0.25)
        finally:
            set_clock(previous)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_snapshot_is_plain_json_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b.two").inc(2)
        registry.counter("a.one").inc()
        registry.gauge("depth").set(4)
        registry.histogram("lat", bounds=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a.one", "b.two"]
        assert snapshot["counters"]["b.two"] == 2.0
        assert snapshot["gauges"] == {"depth": 4.0}
        assert snapshot["histograms"]["lat"] == {
            "bounds": [1.0], "counts": [1, 0], "count": 1, "sum": 0.5,
        }


class TestPrometheusRendering:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("fastpath.payments").inc(41)
        registry.gauge("service.store-bytes").set(2.5)
        text = registry.render_prometheus()
        assert "# TYPE repro_fastpath_payments counter" in text
        assert "repro_fastpath_payments 41" in text  # int: no trailing .0
        assert "repro_service_store_bytes 2.5" in text

    def test_histogram_renders_cumulative_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", bounds=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        text = registry.render_prometheus()
        assert '# TYPE repro_lat histogram' in text
        assert 'repro_lat_bucket{le="0.1"} 1' in text
        assert 'repro_lat_bucket{le="1"} 2' in text
        assert 'repro_lat_bucket{le="+Inf"} 3' in text
        assert "repro_lat_sum 5.55" in text
        assert "repro_lat_count 3" in text

    def test_custom_prefix(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        assert "svc_x 1" in registry.render_prometheus(prefix="svc")


class TestNullRegistry:
    def test_shared_singleton_instruments_swallow_updates(self):
        counter = NULL_REGISTRY.counter("anything")
        assert counter is NULL_REGISTRY.counter("something.else")
        counter.inc(1000)
        assert counter.value == 0.0
        gauge = NULL_REGISTRY.gauge("g")
        gauge.set(5)
        assert gauge.value == 0.0
        histogram = NULL_REGISTRY.histogram("h")
        histogram.observe(1.0)
        assert histogram.count == 0

    def test_null_timer_never_reads_the_clock(self):
        class ExplodingClock(FakeClock):
            def monotonic(self):
                raise AssertionError("disabled timer read the clock")

        previous = set_clock(ExplodingClock())
        try:
            with NULL_REGISTRY.timer("hot.loop"):
                pass
        finally:
            set_clock(previous)

    def test_enabled_flags(self):
        assert MetricsRegistry.enabled is True
        assert NullRegistry.enabled is False


class TestEnvResolution:
    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("true", True), ("YES", True), (" on ", True),
        ("", False), ("0", False), ("off", False), ("nope", False),
    ])
    def test_obs_enabled_from_env(self, monkeypatch, value, expected):
        monkeypatch.setenv("REPRO_OBS", value)
        assert obs_enabled_from_env() is expected

    def test_registry_for_resolves_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        assert registry_for() is NULL_REGISTRY
        monkeypatch.setenv("REPRO_OBS", "1")
        registry = registry_for()
        assert isinstance(registry, MetricsRegistry)
        assert registry is not NULL_REGISTRY

    def test_registry_for_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        assert registry_for(enabled=False) is NULL_REGISTRY
        monkeypatch.delenv("REPRO_OBS", raising=False)
        assert registry_for(enabled=True) is not NULL_REGISTRY

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
