"""The obs determinism contract: instrumented runs are bit-identical.

Every runner path — plain simulation on both backends, attacks, and
evolution — is executed twice, once with the disabled null session and
once with a fully enabled session (profile mode + trace writer), and
the *complete* result documents are compared. Instrumentation must
never touch simulation RNG or results.
"""

import io

import pytest

from repro.obs import NULL_SESSION, ObsSession, TraceWriter, telemetry_of
from repro.scenarios import (
    AttackSpec,
    EvolutionSpec,
    FeeSpec,
    Scenario,
    ScenarioRunner,
    SimulationSpec,
    TopologySpec,
    WorkloadSpec,
)


def instrumented_session():
    return ObsSession(profile=True, tracer=TraceWriter(io.StringIO()))


def simulation_scenario(seed, backend, payment_mode="instant"):
    extra = {"htlc_hold_mean": 0.2} if payment_mode == "htlc" else {}
    return Scenario(
        topology=TopologySpec("ba", {"n": 30, "capacity_mu": 2.0}),
        workload=WorkloadSpec("poisson", {"zipf_s": 1.0}),
        fee=FeeSpec("linear", {"base": 0.01, "rate": 0.001}),
        simulation=SimulationSpec(
            horizon=8.0, backend=backend, payment_mode=payment_mode, **extra
        ),
        name="obs-parity-sim",
        seed=seed,
    )


def attack_scenario(seed):
    return Scenario(
        topology=TopologySpec("star", {"leaves": 6, "balance": 10.0}),
        workload=WorkloadSpec("poisson", {"rate": 1.0, "zipf_s": 1.0}),
        fee=FeeSpec("linear", {"base": 0.01, "rate": 0.001}),
        simulation=SimulationSpec(
            horizon=12.0, payment_mode="htlc", htlc_hold_mean=0.2
        ),
        attack=AttackSpec("slow-jamming", {"budget": 200.0}),
        name="obs-parity-attack",
        seed=seed,
    )


def evolution_scenario(seed):
    return Scenario(
        topology=TopologySpec("ba", {"n": 16, "capacity_mu": 2.0}),
        evolution=EvolutionSpec(
            epochs=2, traffic_horizon=3.0, final_nash_check=False
        ),
        name="obs-parity-evolution",
        seed=seed,
    )


def comparable(document):
    """Mask process-local ``chan-N`` ids (a process-global counter makes
    them differ between *any* two runs in one process); everything else
    must match exactly."""
    if isinstance(document, dict):
        return {
            key: ("chan" if key == "channel_id" else comparable(value))
            for key, value in document.items()
        }
    if isinstance(document, list):
        return [comparable(item) for item in document]
    return document


def run_both(scenario):
    """(obs-off document, obs-on document, obs-on result) for one scenario."""
    off = ScenarioRunner(obs=NULL_SESSION).run(scenario)
    on = ScenarioRunner(obs=instrumented_session()).run(scenario)
    return comparable(off.to_dict()), comparable(on.to_dict()), on


class TestSimulationParity:
    @pytest.mark.parametrize("backend", ["event", "batched"])
    @pytest.mark.parametrize("seed", [7, 11, 23])
    def test_instant_mode_bit_identical(self, backend, seed):
        off_doc, on_doc, _ = run_both(simulation_scenario(seed, backend))
        assert on_doc == off_doc

    @pytest.mark.parametrize("backend", ["event", "batched"])
    def test_htlc_mode_bit_identical(self, backend):
        off_doc, on_doc, _ = run_both(
            simulation_scenario(7, backend, payment_mode="htlc")
        )
        assert on_doc == off_doc

    def test_telemetry_rides_outside_the_document(self):
        scenario = simulation_scenario(7, "batched")
        off_doc, on_doc, on = run_both(scenario)
        assert on_doc == off_doc
        telemetry = telemetry_of(on.metrics)
        assert telemetry is not None
        assert telemetry.counters["fastpath.payments"] > 0
        assert "simulate" in telemetry.phase_seconds
        assert telemetry_of(on) is telemetry

    def test_obs_off_attaches_nothing(self):
        result = ScenarioRunner(obs=NULL_SESSION).run(
            simulation_scenario(7, "batched")
        )
        assert telemetry_of(result) is None
        assert telemetry_of(result.metrics) is None


class TestAttackParity:
    @pytest.mark.parametrize("seed", [7, 13])
    def test_attack_run_bit_identical(self, seed):
        off_doc, on_doc, on = run_both(attack_scenario(seed))
        assert on_doc == off_doc
        telemetry = telemetry_of(on.attack)
        assert telemetry is not None
        assert telemetry.counters.get("attack.channels_opened", 0) > 0
        assert "attack.baseline" in telemetry.phase_seconds
        assert "attack.attacked" in telemetry.phase_seconds


class TestEvolutionParity:
    def test_trajectory_bit_identical(self):
        off_doc, on_doc, on = run_both(evolution_scenario(7))
        assert on_doc == off_doc
        telemetry = telemetry_of(on.evolution)
        assert telemetry is not None
        assert telemetry.counters["evolution.epochs"] >= 1.0
        assert "evolution.traffic" in telemetry.phase_seconds
