"""RunTelemetry round-trip, side-channel attachment, hot-spot report."""

import dataclasses
import json

import pytest

from repro.obs.report import (
    TELEMETRY_SCHEMA_VERSION,
    RunTelemetry,
    attach_telemetry,
    hotspot_table,
    telemetry_of,
)


def sample_telemetry():
    return RunTelemetry(
        counters={"fastpath.payments": 100.0, "fastpath.conflicts": 25.0},
        gauges={"network.nodes": 40.0},
        phase_seconds={"simulate": 2.0, "topology": 0.5},
        histograms={
            "lat": {"bounds": [1.0], "counts": [3, 1], "count": 4, "sum": 2.5},
        },
        top_conflicting_edges=(("a", "b", 9), ("b", "c", 4)),
        cache={"conflict_rate": 0.25, "tree_hit_rate": 0.8},
    )


class TestRoundTrip:
    def test_to_dict_from_dict_round_trip(self):
        telemetry = sample_telemetry()
        assert RunTelemetry.from_dict(telemetry.to_dict()) == telemetry

    def test_to_json_from_json_round_trip(self):
        telemetry = sample_telemetry()
        assert RunTelemetry.from_json(telemetry.to_json()) == telemetry

    def test_document_is_schema_versioned_and_sorted(self):
        document = sample_telemetry().to_dict()
        assert document["schema_version"] == TELEMETRY_SCHEMA_VERSION
        assert list(document["counters"]) == sorted(document["counters"])
        json.dumps(document)  # plain JSON types only

    def test_edges_serialise_as_lists(self):
        document = sample_telemetry().to_dict()
        assert document["top_conflicting_edges"] == [["a", "b", 9], ["b", "c", 4]]


class TestStrictness:
    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            sample_telemetry().counters = {}

    def test_unsupported_version_rejected(self):
        document = sample_telemetry().to_dict()
        document["schema_version"] = 999
        with pytest.raises(ValueError, match="schema_version"):
            RunTelemetry.from_dict(document)

    def test_unknown_fields_rejected(self):
        document = sample_telemetry().to_dict()
        document["surprise"] = 1
        with pytest.raises(ValueError, match="unknown RunTelemetry fields"):
            RunTelemetry.from_dict(document)

    def test_non_mapping_rejected(self):
        with pytest.raises(ValueError, match="must be a mapping"):
            RunTelemetry.from_dict([1, 2, 3])

    def test_missing_sections_default_empty(self):
        telemetry = RunTelemetry.from_dict(
            {"schema_version": TELEMETRY_SCHEMA_VERSION}
        )
        assert telemetry == RunTelemetry()


class TestAttachment:
    def test_attach_and_read_back_on_frozen_dataclass(self):
        @dataclasses.dataclass(frozen=True)
        class Artifact:
            value: int

        artifact = Artifact(3)
        telemetry = sample_telemetry()
        assert attach_telemetry(artifact, telemetry) is artifact
        assert telemetry_of(artifact) is telemetry

    def test_unattached_artifact_reads_none(self):
        assert telemetry_of(object()) is None

    def test_attachment_stays_out_of_dataclass_serialisation(self):
        @dataclasses.dataclass(frozen=True)
        class Artifact:
            value: int

            def to_dict(self):
                return dataclasses.asdict(self)

        artifact = Artifact(3)
        before = artifact.to_dict()
        attach_telemetry(artifact, sample_telemetry())
        assert artifact.to_dict() == before


class TestHotspotTable:
    def test_renders_edges_phases_and_rates(self):
        table = hotspot_table(sample_telemetry())
        assert "top 2 conflicting edges" in table
        assert "per-phase wall time" in table
        assert "cache / conflict rates" in table
        assert "conflict_rate" in table

    def test_top_limits_edges(self):
        table = hotspot_table(sample_telemetry(), top=1)
        assert "top 1 conflicting edges" in table
        assert "b" in table

    def test_empty_telemetry_explains_itself(self):
        assert "no telemetry recorded" in hotspot_table(RunTelemetry())
