"""The sanctioned clock: real/fake swap, restore discipline."""

import pytest

from repro.obs.clock import Clock, FakeClock, get_clock, monotonic, set_clock


class TestRealClock:
    def test_monotonic_never_goes_backwards(self):
        clock = Clock()
        readings = [clock.monotonic() for _ in range(5)]
        assert readings == sorted(readings)

    def test_module_monotonic_uses_installed_clock(self):
        before = monotonic()
        after = monotonic()
        assert after >= before


class TestFakeClock:
    def test_starts_at_zero_and_only_moves_on_advance(self):
        clock = FakeClock()
        assert clock.monotonic() == 0.0
        assert clock.monotonic() == 0.0
        assert clock.advance(1.5) == 1.5
        assert clock.monotonic() == 1.5

    def test_custom_start(self):
        assert FakeClock(start=100.0).monotonic() == 100.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError, match="cannot advance"):
            FakeClock().advance(-0.1)


class TestSetClock:
    def test_install_and_restore_round_trip(self):
        fake = FakeClock(start=10.0)
        previous = set_clock(fake)
        try:
            assert get_clock() is fake
            assert monotonic() == 10.0
            fake.advance(2.0)
            assert monotonic() == 12.0
        finally:
            set_clock(previous)
        assert get_clock() is previous

    def test_none_restores_a_real_clock(self):
        previous = set_clock(FakeClock())
        try:
            set_clock(None)
            assert isinstance(get_clock(), Clock)
            assert not isinstance(get_clock(), FakeClock)
        finally:
            set_clock(previous)
