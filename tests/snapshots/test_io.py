"""Unit tests for describegraph-style snapshot IO."""

import json

import pytest

from repro.errors import SnapshotFormatError
from repro.network.graph import ChannelGraph
from repro.snapshots.io import (
    from_describegraph,
    load_snapshot,
    save_snapshot,
    to_describegraph,
)
from repro.snapshots.synthetic import barabasi_albert_snapshot


class TestRoundTrip:
    def test_round_trip_preserves_structure(self, tmp_path):
        original = barabasi_albert_snapshot(25, seed=4)
        path = tmp_path / "snap.json"
        save_snapshot(original, path)
        loaded = load_snapshot(path)
        assert set(loaded.nodes) == set(original.nodes)
        assert loaded.num_channels() == original.num_channels()

    def test_round_trip_preserves_balances(self, tmp_path):
        graph = ChannelGraph()
        graph.add_channel("a", "b", 3.25, 1.75, channel_id="c0")
        path = tmp_path / "snap.json"
        save_snapshot(graph, path)
        loaded = load_snapshot(path)
        channel = loaded.channel("c0")
        assert channel.balance("a") == pytest.approx(3.25)
        assert channel.balance("b") == pytest.approx(1.75)

    def test_isolated_nodes_survive(self, tmp_path):
        graph = ChannelGraph()
        graph.add_node("hermit")
        path = tmp_path / "snap.json"
        save_snapshot(graph, path)
        assert "hermit" in load_snapshot(path)


class TestParsing:
    def test_balances_default_to_even_split(self):
        doc = {
            "nodes": [{"pub_key": "a"}, {"pub_key": "b"}],
            "edges": [
                {
                    "channel_id": "c1",
                    "node1_pub": "a",
                    "node2_pub": "b",
                    "capacity": "10",
                }
            ],
        }
        graph = from_describegraph(doc)
        channel = graph.channel("c1")
        assert channel.balance("a") == pytest.approx(5.0)
        assert channel.balance("b") == pytest.approx(5.0)

    def test_string_capacities_accepted(self):
        doc = {
            "nodes": [],
            "edges": [
                {"node1_pub": "a", "node2_pub": "b", "capacity": "7.5"}
            ],
        }
        graph = from_describegraph(doc)
        assert graph.total_capacity() == pytest.approx(7.5)

    def test_rejects_non_dict(self):
        with pytest.raises(SnapshotFormatError):
            from_describegraph([1, 2, 3])

    def test_rejects_missing_edge_fields(self):
        with pytest.raises(SnapshotFormatError):
            from_describegraph({"edges": [{"node1_pub": "a"}]})

    def test_rejects_bad_capacity(self):
        doc = {"edges": [{"node1_pub": "a", "node2_pub": "b", "capacity": "x"}]}
        with pytest.raises(SnapshotFormatError):
            from_describegraph(doc)

    def test_rejects_negative_capacity(self):
        doc = {
            "edges": [{"node1_pub": "a", "node2_pub": "b", "capacity": "-1"}]
        }
        with pytest.raises(SnapshotFormatError):
            from_describegraph(doc)

    def test_rejects_inconsistent_balances(self):
        doc = {
            "edges": [
                {
                    "node1_pub": "a",
                    "node2_pub": "b",
                    "capacity": "10",
                    "node1_balance": "9",
                    "node2_balance": "9",
                }
            ]
        }
        with pytest.raises(SnapshotFormatError):
            from_describegraph(doc)

    def test_rejects_one_sided_balance(self):
        doc = {
            "edges": [
                {
                    "node1_pub": "a",
                    "node2_pub": "b",
                    "capacity": "10",
                    "node1_balance": "5",
                }
            ]
        }
        with pytest.raises(SnapshotFormatError):
            from_describegraph(doc)

    def test_rejects_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SnapshotFormatError):
            load_snapshot(path)

    def test_serialised_document_shape(self):
        graph = ChannelGraph()
        graph.add_channel("a", "b", 1.0, 2.0, channel_id="c9")
        doc = to_describegraph(graph)
        assert {"pub_key": "a"} in doc["nodes"]
        edge = doc["edges"][0]
        assert edge["channel_id"] == "c9"
        assert float(edge["capacity"]) == pytest.approx(3.0)
        # document is JSON-serialisable
        json.dumps(doc)
