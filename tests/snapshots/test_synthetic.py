"""Unit tests for synthetic Lightning snapshot generators."""

import networkx as nx
import pytest

from repro.errors import InvalidParameter
from repro.snapshots.synthetic import (
    barabasi_albert_snapshot,
    core_periphery_snapshot,
    erdos_renyi_snapshot,
)


class TestBarabasiAlbert:
    def test_node_and_channel_counts(self):
        graph = barabasi_albert_snapshot(40, attachments=2, seed=0)
        assert len(graph) == 40
        # BA with m=2: (n - m) * m edges
        assert graph.num_channels() == (40 - 2) * 2

    def test_connected(self):
        graph = barabasi_albert_snapshot(60, seed=1)
        assert nx.is_connected(graph.view(directed=False).to_networkx())

    def test_heavy_tail(self):
        graph = barabasi_albert_snapshot(150, attachments=2, seed=2)
        degrees = sorted((graph.degree(v) for v in graph.nodes), reverse=True)
        # hubs well above the median degree
        assert degrees[0] >= 4 * degrees[len(degrees) // 2]

    def test_seed_reproducible(self):
        g1 = barabasi_albert_snapshot(30, seed=5)
        g2 = barabasi_albert_snapshot(30, seed=5)
        caps1 = sorted(c.capacity for c in g1.channels)
        caps2 = sorted(c.capacity for c in g2.channels)
        assert caps1 == pytest.approx(caps2)

    def test_positive_capacities_and_balances(self):
        graph = barabasi_albert_snapshot(30, seed=3)
        for channel in graph.channels:
            assert channel.capacity > 0
            assert channel.balance(channel.u) >= 0
            assert channel.balance(channel.v) >= 0

    def test_rejects_tiny_n(self):
        with pytest.raises(InvalidParameter):
            barabasi_albert_snapshot(2, attachments=2)


class TestCorePeriphery:
    def test_structure(self):
        graph = core_periphery_snapshot(
            core_size=5, periphery_size=20, periphery_links=2, seed=0
        )
        assert len(graph) == 25
        # clique edges + periphery edges
        assert graph.num_channels() == 10 + 40

    def test_core_nodes_are_hubs(self):
        graph = core_periphery_snapshot(
            core_size=5, periphery_size=40, periphery_links=1, seed=1
        )
        core_degrees = [graph.degree(f"n{i}") for i in range(5)]
        periphery_degrees = [graph.degree(f"n{i}") for i in range(5, 45)]
        assert min(core_degrees) > max(periphery_degrees)

    def test_periphery_connects_only_to_core(self):
        graph = core_periphery_snapshot(
            core_size=4, periphery_size=10, periphery_links=2, seed=2
        )
        core = {f"n{i}" for i in range(4)}
        for i in range(4, 14):
            assert set(graph.neighbors(f"n{i}")) <= core

    def test_rejects_bad_links(self):
        with pytest.raises(InvalidParameter):
            core_periphery_snapshot(core_size=3, periphery_links=5)


class TestErdosRenyi:
    def test_connected_by_construction(self):
        graph = erdos_renyi_snapshot(30, p=0.15, seed=0)
        assert nx.is_connected(graph.view(directed=False).to_networkx())

    def test_rejects_bad_p(self):
        with pytest.raises(InvalidParameter):
            erdos_renyi_snapshot(10, p=0.0)

    def test_rejects_tiny_n(self):
        with pytest.raises(InvalidParameter):
            erdos_renyi_snapshot(1)
