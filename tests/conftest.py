"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.network.graph import ChannelGraph
from repro.params import ModelParameters


@pytest.fixture(autouse=True)
def isolated_result_store(tmp_path, monkeypatch):
    """Point the default result store at a per-test tmp directory.

    Anything resolving the store location through ``$REPRO_STORE``
    (``ResultStore.open(None)``, ``JobManager()``, the CLI defaults)
    lands here instead of the user's ``~/.cache/repro``, so tests never
    read or pollute a real cache.
    """
    store_dir = tmp_path / "repro-store"
    monkeypatch.setenv("REPRO_STORE", str(store_dir))
    return store_dir


@pytest.fixture
def diamond() -> ChannelGraph:
    """4-node diamond: a-b, b-c, c-d, b-d (all balances 5/5)."""
    return ChannelGraph.from_edges(
        [("a", "b"), ("b", "c"), ("c", "d"), ("b", "d")], balance=5.0
    )


@pytest.fixture
def line3() -> ChannelGraph:
    """3-node line a-b-c with asymmetric balances."""
    graph = ChannelGraph()
    graph.add_channel("a", "b", 10.0, 2.0)
    graph.add_channel("b", "c", 8.0, 1.0)
    return graph


@pytest.fixture
def params() -> ModelParameters:
    return ModelParameters()


@pytest.fixture
def cheap_params() -> ModelParameters:
    """Parameters where channels are cheap relative to traffic (profitable)."""
    return ModelParameters(
        onchain_cost=0.05,
        opportunity_rate=0.001,
        fee_avg=0.5,
        fee_out_avg=0.1,
        total_tx_rate=200.0,
        user_tx_rate=5.0,
        zipf_s=1.0,
    )
