"""Unit tests for the adversarial strategies and their context plumbing."""

import pytest

from repro.equilibrium.topologies import CENTER, star
from repro.errors import ScenarioError
from repro.network.htlc import HtlcState
from repro.scenarios.registry import ATTACKS
from repro.simulation.engine import SimulationEngine
from repro.attacks import (
    AttackContext,
    AttackStrategy,
    CircuitAttack,
    FeeGriefing,
    LiquidityDepletion,
    SlowJamming,
)
from repro.attacks.strategies import ATTACKER_DST, ATTACKER_SRC


def make_ctx(budget=500.0, leaves=4, balance=10.0, horizon=50.0):
    graph = star(leaves, balance=balance)
    engine = SimulationEngine(graph, seed=0, payment_mode="htlc")
    return AttackContext(
        graph=graph, engine=engine, victim=CENTER,
        horizon=horizon, budget=budget, seed=7,
    )


class TestRegistry:
    def test_builtins_registered_with_aliases(self):
        for key in (
            "slow-jamming", "jamming",
            "liquidity-depletion", "depletion",
            "fee-griefing", "griefing",
        ):
            assert key in ATTACKS

    def test_builders_satisfy_protocol(self):
        for cls in (SlowJamming, LiquidityDepletion, FeeGriefing):
            assert isinstance(cls(budget=10.0), AttackStrategy)


class TestParamValidation:
    @pytest.mark.parametrize(
        "params",
        [
            {"budget": -1.0},
            {"amount": 0.0},
            {"rate": 0.0},
            {"hold_time": -0.5},
            {"max_exits": 0},
            {"max_concurrent": 0},
            {"headroom": 0.5},
            {"start_time": -1.0},
        ],
    )
    def test_bad_params_rejected(self, params):
        with pytest.raises(ScenarioError):
            CircuitAttack(**params)


class TestContext:
    def test_open_channel_draws_funding_and_push_from_budget(self):
        ctx = make_ctx(budget=20.0)
        channel = ctx.open_channel(ATTACKER_SRC, CENTER, funding=12.0, push=5.0)
        assert channel is not None
        assert channel.balance(ATTACKER_SRC) == 12.0
        assert channel.balance(CENTER) == 5.0
        assert ctx.budget_spent == 17.0
        assert ctx.budget_remaining == pytest.approx(3.0)

    def test_open_channel_refused_over_budget(self):
        ctx = make_ctx(budget=5.0)
        assert ctx.open_channel(ATTACKER_SRC, CENTER, funding=10.0) is None
        assert ctx.budget_spent == 0.0
        assert ATTACKER_SRC not in ctx.graph

    def test_lock_resolve_accounting(self):
        ctx = make_ctx(budget=100.0)
        ctx.open_channel(ATTACKER_SRC, CENTER, funding=50.0)
        ctx.open_channel(ATTACKER_DST, "v000", funding=0.0, push=10.0)
        payment = ctx.lock((ATTACKER_SRC, CENTER, "v000", ATTACKER_DST), 2.0)
        assert payment is not None and payment.state is HtlcState.PENDING
        assert ctx.attacks_held == 1
        assert ctx.active_locks == 1
        # zero fee engine: resolve immediately (now == lock time) books a
        # zero-duration integral and restores everything on fail.
        resolved = ctx.resolve(payment.payment_id, settle=False)
        assert resolved is payment
        assert ctx.active_locks == 0
        assert ctx.locked_liquidity_integral == 0.0
        assert ctx.graph.channels_between(CENTER, "v000")[0].balance(CENTER) == 10.0

    def test_resolve_unknown_id_is_noop(self):
        ctx = make_ctx()
        assert ctx.resolve(123456, settle=True) is None

    def test_finalize_books_pending_locks_to_horizon(self):
        ctx = make_ctx(budget=100.0, horizon=50.0)
        ctx.open_channel(ATTACKER_SRC, CENTER, funding=50.0)
        ctx.open_channel(ATTACKER_DST, "v000", funding=0.0, push=10.0)
        payment = ctx.lock((ATTACKER_SRC, CENTER, "v000", ATTACKER_DST), 2.0)
        ctx.finalize()
        # 3 hops x 2.0 each held from t=0 to horizon 50
        assert ctx.locked_liquidity_integral == pytest.approx(
            payment.total_locked * 50.0
        )
        assert ctx.active_locks == 0

    def test_schedule_refuses_past_horizon(self):
        from repro.attacks import AttackTickEvent

        ctx = make_ctx(horizon=10.0)
        assert ctx.schedule(AttackTickEvent(time=5.0))
        assert not ctx.schedule(AttackTickEvent(time=10.5))


class TestPreparation:
    def test_jamming_opens_entry_and_exit_channels(self):
        ctx = make_ctx(budget=1000.0, leaves=4)
        strategy = SlowJamming(budget=1000.0)
        strategy.start(ctx)
        assert ATTACKER_SRC in ctx.graph
        assert ATTACKER_DST in ctx.graph
        assert ctx.graph.has_channel(ATTACKER_SRC, CENTER)
        # all four leaves get an exit channel with pushed inbound
        for i in range(4):
            leaf = f"v{i:03d}"
            exits = ctx.graph.channels_between(ATTACKER_DST, leaf)
            assert exits and exits[0].balance(leaf) > 0
        assert strategy._concurrent > 0
        assert ctx.budget_spent > 0

    def test_zero_budget_means_no_attack(self):
        ctx = make_ctx(budget=0.0)
        strategy = SlowJamming(budget=0.0)
        strategy.start(ctx)
        assert ATTACKER_SRC not in ctx.graph
        assert strategy._concurrent == 0

    def test_small_budget_scales_concurrency_down(self):
        rich = make_ctx(budget=1000.0)
        poor = make_ctx(budget=20.0)
        s_rich = SlowJamming(budget=1000.0)
        s_poor = SlowJamming(budget=20.0)
        s_rich.start(rich)
        s_poor.start(poor)
        assert 0 < s_poor._concurrent < s_rich._concurrent
        assert poor.budget_spent <= 20.0

    def test_max_exits_limits_exit_channels(self):
        ctx = make_ctx(budget=1000.0, leaves=4)
        strategy = SlowJamming(budget=1000.0, max_exits=2)
        strategy.start(ctx)
        exit_channels = ctx.graph.channels_of(ATTACKER_DST)
        assert len(exit_channels) == 2

    def test_depletion_tracks_remaining_per_exit(self):
        ctx = make_ctx(budget=1000.0, leaves=3)
        strategy = LiquidityDepletion(budget=1000.0)
        strategy.start(ctx)
        assert strategy._remaining
        assert all(v > 0 for v in strategy._remaining.values())
