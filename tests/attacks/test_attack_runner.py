"""End-to-end tests of the attack runner and its scenario integration."""

import pytest

from repro.attacks import AttackReport, AttackRunner, select_victim
from repro.equilibrium.topologies import CENTER, circle, path, star
from repro.errors import ScenarioError
from repro.scenarios import (
    AlgorithmSpec,
    AttackSpec,
    FeeSpec,
    Scenario,
    ScenarioRunner,
    SimulationSpec,
    TopologySpec,
    WorkloadSpec,
)


def attack_scenario(kind="slow-jamming", params=None, topology=None, seed=7):
    return Scenario(
        topology=topology or TopologySpec("star", {"leaves": 6, "balance": 10.0}),
        workload=WorkloadSpec("poisson", {"rate": 1.0, "zipf_s": 1.0}),
        fee=FeeSpec("linear", {"base": 0.01, "rate": 0.001}),
        simulation=SimulationSpec(
            horizon=20.0, payment_mode="htlc", htlc_hold_mean=0.2
        ),
        attack=AttackSpec(kind, {"budget": 500.0, **(params or {})}),
        name="attack-test",
        seed=seed,
    )


class TestVictimSelection:
    def test_star_auto_victim_is_center(self):
        assert select_victim(star(5, balance=1.0)) == CENTER

    def test_path_auto_victim_is_middle(self):
        assert select_victim(path(5, balance=1.0)) == "v002"

    def test_circle_tie_breaks_deterministically(self):
        assert select_victim(circle(6, balance=1.0)) == "v000"

    def test_explicit_victim_validated(self):
        with pytest.raises(ScenarioError, match="not a node"):
            select_victim(star(5), victim="nope")
        assert select_victim(star(5), victim="v001") == "v001"


class TestAttackRunner:
    def test_jamming_destroys_victim_revenue(self):
        outcome = AttackRunner().run(attack_scenario("slow-jamming"))
        report = outcome.report
        assert report.victim == CENTER
        assert report.victim_revenue_delta > 0
        assert report.success_rate_degradation > 0
        assert report.locked_liquidity_integral > 0
        assert 0 < report.budget_spent <= report.budget
        # jams never settle, so jamming pays no routing fees
        assert report.attacker_fees_paid == 0.0
        assert report.attacks_held > 0

    def test_depletion_destroys_victim_revenue_and_pays_fees(self):
        outcome = AttackRunner().run(attack_scenario("liquidity-depletion"))
        report = outcome.report
        assert report.victim_revenue_delta > 0
        assert report.attacker_fees_paid > 0
        assert report.budget_spent <= report.budget + 1e-9

    def test_griefing_locks_liquidity_cheaply(self):
        outcome = AttackRunner().run(attack_scenario("fee-griefing"))
        report = outcome.report
        assert report.locked_liquidity_integral > 0
        assert report.attacker_fees_paid == 0.0
        assert report.attacks_launched > report.attacks_held >= 0

    def test_deterministic_across_runs(self):
        scenario = attack_scenario("slow-jamming")
        first = AttackRunner().run(scenario).report
        second = AttackRunner().run(scenario).report
        assert first == second

    def test_baseline_untouched_by_attacker(self):
        scenario = attack_scenario("slow-jamming")
        outcome = AttackRunner().run(scenario)
        # the honest baseline saw the identical trace: attempted counts
        # match, and the baseline graph never contained attacker nodes
        assert outcome.baseline_metrics.attempted == outcome.attacked_metrics.attempted
        assert "attacker:src" in outcome.graph
        plain = Scenario(
            topology=scenario.topology,
            workload=scenario.workload,
            fee=scenario.fee,
            simulation=scenario.simulation,
            name="honest",
            seed=scenario.seed,
        )
        honest = ScenarioRunner().run(plain)
        assert honest.metrics.attempted == outcome.baseline_metrics.attempted
        # the plain run drains HTLC resolves scheduled past the horizon,
        # the attack baseline cuts at until=horizon — so the plain run may
        # settle a few more, never fewer
        assert honest.metrics.succeeded >= outcome.baseline_metrics.succeeded
        assert honest.metrics.failed == outcome.baseline_metrics.failed

    def test_explicit_victim_and_slot_cap(self):
        outcome = AttackRunner().run(
            attack_scenario("slow-jamming", {"victim": "v001", "slot_cap": 5})
        )
        assert outcome.report.victim == "v001"
        # pre-attack channels carry the cap; attacker channels keep 483
        caps = {
            c.max_accepted_htlcs
            for c in outcome.graph.channels_of("v001")
        }
        assert 5 in caps

    def test_unknown_strategy_raises(self):
        with pytest.raises(ScenarioError, match="unknown attack"):
            AttackRunner().run(attack_scenario("meteor-strike"))

    def test_bad_params_raise_scenario_error(self):
        with pytest.raises(ScenarioError, match="rejected params"):
            AttackRunner().run(
                attack_scenario("slow-jamming", {"warp_factor": 9})
            )


class TestScenarioIntegration:
    def test_attack_requires_simulation(self):
        with pytest.raises(ScenarioError, match="requires a simulation"):
            Scenario(
                topology=TopologySpec("star", {"leaves": 4}),
                attack=AttackSpec("slow-jamming"),
            )

    def test_attack_excludes_algorithm(self):
        with pytest.raises(ScenarioError, match="cannot be combined"):
            Scenario(
                topology=TopologySpec("star", {"leaves": 4}),
                simulation=SimulationSpec(horizon=5.0),
                algorithm=AlgorithmSpec("greedy", {"budget": 1.0}),
                attack=AttackSpec("slow-jamming"),
            )

    def test_spec_round_trips_through_json(self):
        scenario = attack_scenario("liquidity-depletion", {"slot_cap": 30})
        assert Scenario.from_json(scenario.to_json()) == scenario

    def test_runner_populates_result_and_row(self):
        scenario = attack_scenario("slow-jamming")
        result = ScenarioRunner().run(scenario)
        assert isinstance(result.attack, AttackReport)
        assert result.baseline_metrics is not None
        assert result.metrics is not None
        row = result.row
        assert row["attack_strategy"] == "slow-jamming"
        assert row["victim"] == CENTER
        assert row["victim_revenue_delta"] == result.attack.victim_revenue_delta
        # the simulation columns describe the attacked run
        assert row["succeeded"] == result.metrics.succeeded
        # attacker nodes are part of the result graph column counts
        assert row["nodes"] == len(result.graph)

    def test_report_row_is_json_plain(self):
        import json

        report = ScenarioRunner().run(attack_scenario()).attack
        assert json.loads(json.dumps(report.to_row())) == report.to_row()

    def test_sweep_over_budgets_serial_equals_process(self):
        scenario = attack_scenario("slow-jamming")
        grid = {"attack.params.budget": [0.0, 300.0]}
        serial = ScenarioRunner().run_sweep(scenario, grid, executor="serial")
        process = ScenarioRunner().run_sweep(scenario, grid, executor="process")
        assert serial == process
        assert serial[0]["victim_revenue_delta"] == 0.0  # no budget, no damage
        assert serial[1]["victim_revenue_delta"] > 0
