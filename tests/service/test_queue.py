"""JobManager: dedupe, cached fast path, retries, progress events.

No pytest-asyncio in the toolchain, so every test drives its own loop
via ``asyncio.run``. Workers are ``inline`` (run on the loop) unless a
test is specifically about pool behaviour — the execution callable is
injected, so scenarios never actually run here.
"""

import asyncio
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.errors import ServiceError
from repro.scenarios.specs import Scenario, TopologySpec
from repro.service.hashing import scenario_content_hash
from repro.service.queue import JOB_STATES, JobManager
from repro.service.store import ResultStore


def doc(seed=7):
    return Scenario(
        name="queue-test",
        topology=TopologySpec("star", {"leaves": 3}),
        seed=seed,
    ).to_dict()


def fake_execute(document):
    return {"row": {"seed": document["seed"]}, "echo": document["name"]}


def manager(tmp_path, **kwargs):
    kwargs.setdefault("worker", "inline")
    kwargs.setdefault("execute", fake_execute)
    return JobManager(store=ResultStore(tmp_path / "store"), **kwargs)


class TestSubmission:
    def test_submit_executes_and_stores(self, tmp_path):
        async def main():
            mgr = manager(tmp_path)
            job = mgr.submit(doc())
            result = await job.result()
            assert job.state == "done"
            assert result["row"] == {"seed": 7}
            assert mgr.store.get(job.spec_hash) == result
            await mgr.close()

        asyncio.run(main())

    def test_spec_hash_matches_content_hash(self, tmp_path):
        async def main():
            mgr = manager(tmp_path)
            job = mgr.submit(doc())
            assert job.spec_hash == scenario_content_hash(doc())
            await job.result()
            await mgr.close()

        asyncio.run(main())

    def test_cached_fast_path(self, tmp_path):
        async def main():
            mgr = manager(tmp_path)
            first = await mgr.submit(doc()).result()
            again = mgr.submit(doc())
            assert again.state == "cached"
            assert await again.result() == first
            assert mgr.stats()["cached"] == 1
            await mgr.close()

        asyncio.run(main())

    def test_inflight_dedupe_shares_one_job(self, tmp_path):
        async def main():
            calls = []
            release = asyncio.Event()

            async def run_all():
                def slow(document):
                    calls.append(document["seed"])
                    return fake_execute(document)

                mgr = manager(tmp_path, execute=slow, max_workers=1)
                a = mgr.submit(doc())
                b = mgr.submit(doc())
                assert a is b
                assert b.waiters == 2
                release.set()
                ra, rb = await asyncio.gather(a.result(), b.result())
                assert ra == rb
                await mgr.close()

            await run_all()
            assert calls == [7]  # executed once for both waiters

        asyncio.run(main())

    def test_distinct_documents_get_distinct_jobs(self, tmp_path):
        async def main():
            mgr = manager(tmp_path)
            a = mgr.submit(doc(seed=1))
            b = mgr.submit(doc(seed=2))
            assert a is not b
            results = await asyncio.gather(a.result(), b.result())
            assert [r["row"]["seed"] for r in results] == [1, 2]
            await mgr.close()

        asyncio.run(main())


class TestFailureAndRetry:
    def test_failing_job_reports_error(self, tmp_path):
        async def main():
            def boom(document):
                raise ValueError("simulated blow-up")

            mgr = manager(tmp_path, execute=boom)
            job = mgr.submit(doc())
            with pytest.raises(ServiceError, match="simulated blow-up"):
                await job.result()
            assert job.state == "failed"
            assert "simulated blow-up" in job.error
            assert mgr.store.get(job.spec_hash) is None
            await mgr.close()

        asyncio.run(main())

    def test_worker_crash_retries_then_succeeds(self, tmp_path):
        async def main():
            attempts = []

            def flaky(document):
                attempts.append(1)
                if len(attempts) == 1:
                    raise BrokenProcessPool("worker died")
                return fake_execute(document)

            mgr = manager(tmp_path, execute=flaky, retries=1)
            job = mgr.submit(doc())
            result = await job.result()
            assert result["row"] == {"seed": 7}
            assert job.attempts == 2
            assert len(attempts) == 2
            await mgr.close()

        asyncio.run(main())

    def test_worker_crash_exhausts_retries(self, tmp_path):
        async def main():
            def always_dead(document):
                raise BrokenProcessPool("worker died")

            mgr = manager(tmp_path, execute=always_dead, retries=2)
            job = mgr.submit(doc())
            with pytest.raises(ServiceError, match="crashed 3 times"):
                await job.result()
            assert job.state == "failed"
            assert job.attempts == 3
            await mgr.close()

        asyncio.run(main())

    def test_failed_jobs_can_be_resubmitted(self, tmp_path):
        async def main():
            mode = {"fail": True}

            def sometimes(document):
                if mode["fail"]:
                    raise ValueError("first try fails")
                return fake_execute(document)

            mgr = manager(tmp_path, execute=sometimes)
            with pytest.raises(ServiceError):
                await mgr.submit(doc()).result()
            mode["fail"] = False
            job = mgr.submit(doc())  # not deduped onto the failed job
            assert await job.result() is not None
            assert job.state == "done"
            await mgr.close()

        asyncio.run(main())


class TestProgressAndStats:
    def test_events_trace_the_lifecycle(self, tmp_path):
        async def main():
            mgr = manager(tmp_path)
            job = mgr.submit(doc())
            await job.result()
            states = [event["state"] for event in job.events]
            assert states == ["queued", "running", "done"]
            assert [event["seq"] for event in job.events] == [0, 1, 2]
            await mgr.close()

        asyncio.run(main())

    def test_snapshot_is_json_shaped(self, tmp_path):
        async def main():
            import json

            mgr = manager(tmp_path)
            job = mgr.submit(doc())
            await job.result()
            snapshot = job.snapshot()
            assert json.loads(json.dumps(snapshot)) == snapshot
            assert snapshot["state"] in JOB_STATES
            await mgr.close()

        asyncio.run(main())

    def test_stats_counts_terminal_states(self, tmp_path):
        async def main():
            mgr = manager(tmp_path)
            await mgr.submit(doc(seed=1)).result()
            mgr.submit(doc(seed=1))  # cached
            stats = mgr.stats()
            assert stats["done"] == 1
            assert stats["cached"] == 1
            # one tracked hash — the cached resubmission replaced the
            # done job in the listing rather than duplicating it
            assert stats["jobs"] == 1
            await mgr.close()

        asyncio.run(main())

    def test_jobs_listing_preserves_order(self, tmp_path):
        async def main():
            mgr = manager(tmp_path)
            a = mgr.submit(doc(seed=1))
            b = mgr.submit(doc(seed=2))
            assert mgr.jobs() == [a, b]
            assert mgr.get(a.spec_hash) is a
            await asyncio.gather(a.result(), b.result())
            await mgr.close()

        asyncio.run(main())


class TestValidation:
    def test_rejects_unknown_worker(self, tmp_path):
        with pytest.raises(ServiceError):
            JobManager(store=str(tmp_path), worker="quantum")

    def test_rejects_nonpositive_workers(self, tmp_path):
        with pytest.raises(ServiceError):
            JobManager(store=str(tmp_path), max_workers=0)

    def test_thread_worker_executes(self, tmp_path):
        async def main():
            mgr = manager(tmp_path, worker="thread")
            result = await mgr.submit(doc()).result()
            assert result["row"] == {"seed": 7}
            await mgr.close()

        asyncio.run(main())
