"""Service observability: stats sequencing, restart detection, metrics verb."""

import asyncio

from repro.obs.clock import FakeClock, set_clock
from repro.scenarios.specs import Scenario, TopologySpec
from repro.service.queue import JobManager
from repro.service.store import ResultStore


def doc(seed=7):
    return Scenario(
        name="obs-test",
        topology=TopologySpec("star", {"leaves": 3}),
        seed=seed,
    ).to_dict()


def fake_execute(document):
    return {"row": {"seed": document["seed"]}}


def manager(tmp_path, **kwargs):
    kwargs.setdefault("worker", "inline")
    kwargs.setdefault("execute", fake_execute)
    return JobManager(store=ResultStore(tmp_path / "store"), **kwargs)


class TestStats:
    def test_stats_carry_uptime_and_event_sequence(self, tmp_path):
        async def main():
            mgr = manager(tmp_path)
            stats = mgr.stats()
            assert stats["events_seq"] == 0
            assert stats["uptime_seconds"] >= 0.0
            assert stats["started_at_monotonic"] <= (
                stats["started_at_monotonic"] + stats["uptime_seconds"]
            )
            await mgr.close()

        asyncio.run(main())

    def test_events_seq_grows_globally_while_job_seq_stays_local(
        self, tmp_path
    ):
        async def main():
            mgr = manager(tmp_path)
            first = mgr.submit(doc(seed=1))
            await first.result()
            second = mgr.submit(doc(seed=2))
            await second.result()
            # each job emits queued/running/done: per-job seq restarts...
            assert [e["seq"] for e in first.events] == [0, 1, 2]
            assert [e["seq"] for e in second.events] == [0, 1, 2]
            # ...while the manager-wide sequence keeps counting
            assert mgr.stats()["events_seq"] == 6
            await mgr.close()

        asyncio.run(main())

    def test_cached_hits_also_advance_events_seq(self, tmp_path):
        async def main():
            mgr = manager(tmp_path)
            await mgr.submit(doc()).result()
            before = mgr.stats()["events_seq"]
            job = mgr.submit(doc())  # store hit: queued + cached events
            await job.result()
            assert job.state == "cached"
            assert mgr.stats()["events_seq"] == before + 2
            await mgr.close()

        asyncio.run(main())

    def test_restart_resets_sequence_and_start_instant(self, tmp_path):
        fake = FakeClock(start=100.0)
        previous = set_clock(fake)
        try:

            async def main():
                mgr = manager(tmp_path)
                await mgr.submit(doc()).result()
                assert mgr.stats()["events_seq"] > 0
                await mgr.close()

                fake.advance(50.0)
                reborn = manager(tmp_path)
                stats = reborn.stats()
                # the polling-client restart signal: events_seq went
                # backwards and the start instant changed
                assert stats["events_seq"] == 0
                assert (
                    stats["started_at_monotonic"]
                    > mgr.stats()["started_at_monotonic"]
                )
                await reborn.close()

            asyncio.run(main())
        finally:
            set_clock(previous)


class TestQueueLatencyHistogram:
    def test_queued_to_running_latency_observed_once(self, tmp_path):
        fake = FakeClock()
        previous = set_clock(fake)
        try:

            async def main():
                mgr = manager(tmp_path)
                job = mgr.submit(doc())
                # the job is queued but its task has not run yet; fake
                # time passing before the loop picks it up is pure
                # queue latency
                fake.advance(0.5)
                await job.result()
                histogram = mgr.registry.histogram(
                    "service.queue_latency_seconds"
                )
                assert histogram.count == 1
                assert histogram.sum == 0.5
                await mgr.close()

            asyncio.run(main())
        finally:
            set_clock(previous)

    def test_cached_jobs_never_reach_the_latency_histogram(self, tmp_path):
        async def main():
            mgr = manager(tmp_path)
            await mgr.submit(doc()).result()
            count_after_run = mgr.registry.histogram(
                "service.queue_latency_seconds"
            ).count
            await mgr.submit(doc()).result()  # cached: never "running"
            assert mgr.registry.histogram(
                "service.queue_latency_seconds"
            ).count == count_after_run
            await mgr.close()

        asyncio.run(main())


class TestPrometheusExposition:
    def test_render_covers_jobs_store_and_latency(self, tmp_path):
        async def main():
            mgr = manager(tmp_path)
            await mgr.submit(doc(seed=1)).result()
            await mgr.submit(doc(seed=1)).result()  # store hit
            text = mgr.render_prometheus()
            assert "# TYPE repro_service_jobs gauge" in text
            assert "repro_service_jobs_done 1" in text
            assert "repro_service_jobs_cached 1" in text
            assert "repro_service_store_hit_rate 0.5" in text
            assert "repro_service_store_entries 1" in text
            assert "repro_service_events_seq" in text
            assert "repro_service_queue_latency_seconds_count 1" in text
            await mgr.close()

        asyncio.run(main())
