"""repro serve end to end: protocol, parity, cached resubmission.

The server runs on an ephemeral port inside a loop hosted by a
background thread; the synchronous :class:`ServiceClient` talks to it
from the test thread exactly as the CLI would.
"""

import asyncio
import json
import socket
import threading

import pytest

from repro.errors import ServiceError
from repro.scenarios.runner import ScenarioRunner
from repro.scenarios.specs import Scenario, SimulationSpec, TopologySpec
from repro.service.daemon import ServiceClient, ServiceServer


def scenario():
    return Scenario(
        name="daemon-test",
        topology=TopologySpec("star", {"leaves": 3}),
        simulation=SimulationSpec(horizon=3.0),
        seed=11,
    )


@pytest.fixture
def server(tmp_path):
    """A live daemon on an ephemeral port; yields (client, server)."""
    started = threading.Event()
    box = {}

    def host():
        async def main():
            srv = ServiceServer(
                store=str(tmp_path / "store"), port=0, worker="thread",
                workers=2,
            )
            await srv.start()
            box["server"] = srv
            started.set()
            await srv.serve_forever()

        asyncio.run(main())

    thread = threading.Thread(target=host, daemon=True)
    thread.start()
    assert started.wait(timeout=30)
    client = ServiceClient(port=box["server"].port, timeout=120.0)
    yield client
    try:
        client.shutdown()
    except ServiceError:
        pass
    thread.join(timeout=30)


class TestProtocol:
    def test_ping(self, server):
        assert server.ping() is True

    def test_unknown_command_is_an_error(self, server):
        with pytest.raises(ServiceError, match="unknown command"):
            server.request({"cmd": "frobnicate"})

    def test_malformed_json_is_an_error(self, server):
        with socket.create_connection(
            (server.host, server.port), timeout=30
        ) as conn:
            conn.sendall(b"{not json\n")
            response = json.loads(conn.makefile().readline())
        assert response["ok"] is False
        assert "bad request" in response["error"]

    def test_submit_requires_scenario(self, server):
        with pytest.raises(ServiceError, match="scenario"):
            server.request({"cmd": "submit"})

    def test_status_of_unknown_hash(self, server):
        with pytest.raises(ServiceError, match="unknown job"):
            server.status("f" * 64)


def _comparable(document):
    """The result document with process-local channel ids masked out.

    ``chan-N`` ids come from a process-global counter, so two runs in
    one process differ only there; everything else must match exactly.
    """
    document = json.loads(json.dumps(document))
    for edge in (document.get("graph") or {}).get("edges", []):
        edge["channel_id"] = "chan"
    return document


class TestSubmitAndCache:
    def test_submitted_result_matches_direct_run(self, server):
        s = scenario()
        response = server.submit(s.to_dict(), wait=True)
        direct = ScenarioRunner().run(s).to_dict()
        from repro.service.hashing import canonical_json

        assert canonical_json(_comparable(response["result"])) == (
            canonical_json(_comparable(direct))
        )
        assert response["hash"] == s.content_hash()

    def test_resubmission_is_served_from_store(self, server):
        s = scenario()
        first = server.submit(s.to_dict(), wait=True)
        assert first["state"] in ("queued", "running", "done")
        second = server.submit(s.to_dict(), wait=True)
        assert second["state"] == "cached"
        # byte-identical payloads: computed once, replayed from the store
        assert json.dumps(second["result"], sort_keys=True) == json.dumps(
            first["result"], sort_keys=True
        )

    def test_async_submit_then_poll_and_fetch(self, server):
        s = scenario()
        ticket = server.submit(s.to_dict(), wait=False)
        spec_hash = ticket["hash"]
        for _ in range(600):
            job = server.status(spec_hash)["job"]
            if job["state"] in ("done", "cached", "failed"):
                break
        assert job["state"] in ("done", "cached")
        result = server.result(spec_hash)["result"]
        assert result["row"]["seed"] == 11
        states = [event["state"] for event in job["events"]]
        assert states[0] == "queued"

    def test_stats_reports_queue_and_store(self, server):
        server.submit(scenario().to_dict(), wait=True)
        stats = server.stats()
        assert stats["queue"]["jobs"] >= 1
        assert stats["store"]["entries"] >= 1

    def test_stats_expose_restart_detection_fields(self, server):
        before = server.stats()["queue"]
        server.submit(scenario().to_dict(), wait=True)
        after = server.stats()["queue"]
        assert after["started_at_monotonic"] == before["started_at_monotonic"]
        assert after["events_seq"] > before["events_seq"]
        assert after["uptime_seconds"] >= before["uptime_seconds"]

    def test_metrics_verb_serves_prometheus_text(self, server):
        server.submit(scenario().to_dict(), wait=True)
        text = server.metrics()
        assert "# TYPE repro_service_jobs gauge" in text
        assert "repro_service_jobs " in text
        assert "repro_service_store_entries" in text
        assert "repro_service_queue_latency_seconds_count" in text


class TestSweep:
    def test_sweep_rows_match_local_run_sweep(self, server):
        s = scenario()
        grid = {"topology.params.leaves": [3, 4]}
        remote = server.sweep(s.to_dict(), grid)
        local = ScenarioRunner().run_sweep(s, grid)
        normalised = json.loads(json.dumps(local))
        assert remote["rows"] == normalised
        assert len(remote["hashes"]) == 2

    def test_second_sweep_is_fully_cached(self, server):
        s = scenario()
        grid = {"topology.params.leaves": [3, 4, 5]}
        first = server.sweep(s.to_dict(), grid)
        second = server.sweep(s.to_dict(), grid)
        assert second["rows"] == first["rows"]
        assert second["states"] == ["cached"] * 3
        assert second["hashes"] == first["hashes"]


class TestShutdown:
    def test_shutdown_command_stops_the_server(self, tmp_path):
        started = threading.Event()
        box = {}

        def host():
            async def main():
                srv = ServiceServer(
                    store=str(tmp_path / "s2"), port=0, worker="inline"
                )
                await srv.start()
                box["server"] = srv
                started.set()
                await srv.serve_forever()

            asyncio.run(main())

        thread = threading.Thread(target=host, daemon=True)
        thread.start()
        assert started.wait(timeout=30)
        client = ServiceClient(port=box["server"].port, timeout=30.0)
        assert client.shutdown()["stopping"] is True
        thread.join(timeout=30)
        assert not thread.is_alive()
        with pytest.raises(ServiceError):
            client.ping()
