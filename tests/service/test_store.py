"""ResultStore: atomic writes, verified reads, quarantine, LRU gc.

Includes the concurrency contract (two processes writing the same key,
a reader racing a writer, corrupted-entry quarantine): readers either
see a complete verified payload or ``None`` (recompute) — never an
exception, never a partial entry.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.errors import ServiceError
from repro.service.hashing import content_hash
from repro.service.store import ResultStore, default_store_path

KEY = "0" * 64
OTHER = "1" * 64


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


class TestRoundTrip:
    def test_put_get(self, store):
        payload = {"row": {"a": 1, "b": 0.5}}
        store.put(KEY, payload)
        assert store.get(KEY) == payload

    def test_put_normalises_payload(self, store):
        # 2.0 collapses to 2 in canonical JSON: what put() returns is
        # exactly what get() serves, so cached and fresh responses are
        # byte-identical.
        returned = store.put(KEY, {"row": {"a": 2.0}})
        assert returned == {"row": {"a": 2}}
        assert store.get(KEY) == returned

    def test_non_finite_payload_round_trips(self, store):
        # Optimisation results carry -inf objectives for infeasible
        # prefixes; the payload domain must round-trip them verified.
        payload = {"row": {"best": float("-inf"), "worst": float("inf")}}
        returned = store.put(KEY, payload)
        assert returned == payload
        assert store.get(KEY) == payload
        assert store.stats().quarantined == 0

    def test_missing_key_is_none(self, store):
        assert store.get(KEY) is None

    def test_contains_len_keys(self, store):
        assert KEY not in store
        store.put(KEY, {"x": 1})
        store.put(OTHER, {"x": 2})
        assert KEY in store
        assert len(store) == 2
        assert list(store.keys()) == sorted([KEY, OTHER])

    def test_delete(self, store):
        store.put(KEY, {"x": 1})
        assert store.delete(KEY) is True
        assert store.delete(KEY) is False
        assert store.get(KEY) is None

    def test_overwrite_same_key_wins_last(self, store):
        store.put(KEY, {"x": 1})
        store.put(KEY, {"x": 2})
        assert store.get(KEY) == {"x": 2}

    def test_bad_key_rejected(self, store):
        with pytest.raises(ServiceError):
            store.put("not-a-hash", {})
        with pytest.raises(ServiceError):
            store.get("ABCD")

    def test_envelope_is_versioned_and_checksummed(self, store):
        store.put(KEY, {"x": 1}, kind="unit-test")
        envelope = json.loads(store.path_for(KEY).read_text())
        assert envelope["schema_version"] == 1
        assert envelope["spec_hash"] == KEY
        assert envelope["kind"] == "unit-test"
        assert len(envelope["checksum"]) == 64

    def test_open_coerces(self, store, tmp_path):
        assert ResultStore.open(store) is store
        assert ResultStore.open(str(tmp_path / "store")).root == store.root

    def test_default_path_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "elsewhere"))
        assert default_store_path() == tmp_path / "elsewhere"
        assert ResultStore().root == tmp_path / "elsewhere"


class TestQuarantine:
    def test_truncated_entry_quarantined(self, store):
        store.put(KEY, {"x": 1})
        path = store.path_for(KEY)
        path.write_text(path.read_text()[:20])
        assert store.get(KEY) is None
        assert not path.exists()
        assert store.stats().quarantined == 1
        # the slot is reusable afterwards
        store.put(KEY, {"x": 2})
        assert store.get(KEY) == {"x": 2}

    def test_tampered_payload_quarantined(self, store):
        store.put(KEY, {"x": 1})
        path = store.path_for(KEY)
        envelope = json.loads(path.read_text())
        envelope["payload"] = {"x": 999}
        path.write_text(json.dumps(envelope))
        assert store.get(KEY) is None
        assert store.stats().quarantined == 1

    def test_wrong_slot_quarantined(self, store):
        store.put(KEY, {"x": 1})
        target = store.path_for(OTHER)
        target.parent.mkdir(parents=True, exist_ok=True)
        os.replace(store.path_for(KEY), target)
        assert store.get(OTHER) is None

    def test_wrong_schema_version_quarantined(self, store):
        store.put(KEY, {"x": 1})
        path = store.path_for(KEY)
        envelope = json.loads(path.read_text())
        envelope["schema_version"] = 999
        path.write_text(json.dumps(envelope))
        assert store.get(KEY) is None


class TestGc:
    def _fill(self, store, count):
        keys = [f"{i:064x}" for i in range(count)]
        for index, key in enumerate(keys):
            store.put(key, {"i": index})
            # Strictly increasing mtimes make LRU order deterministic.
            os.utime(store.path_for(key), (index, index))
        return keys

    def test_gc_noop_within_bounds(self, store):
        self._fill(store, 3)
        assert store.gc(max_entries=10) == []
        assert len(store) == 3

    def test_gc_evicts_lru_by_entries(self, store):
        keys = self._fill(store, 5)
        evicted = store.gc(max_entries=2)
        assert evicted == keys[:3]
        assert list(store.keys()) == sorted(keys[3:])

    def test_gc_evicts_by_bytes(self, store):
        keys = self._fill(store, 4)
        size = store.path_for(keys[0]).stat().st_size
        evicted = store.gc(max_bytes=2 * size)
        assert keys[0] in evicted
        assert store.stats().total_bytes <= 2 * size

    def test_read_freshens_lru_rank(self, store):
        keys = self._fill(store, 3)
        future = 10**9
        store.get(keys[0])
        os.utime(store.path_for(keys[0]), (future, future))
        evicted = store.gc(max_entries=1)
        assert keys[0] not in evicted
        assert list(store.keys()) == [keys[0]]

    def test_gc_rejects_negative_bounds(self, store):
        with pytest.raises(ServiceError):
            store.gc(max_entries=-1)
        with pytest.raises(ServiceError):
            store.gc(max_bytes=-1)

    def test_stats_counts(self, store):
        self._fill(store, 2)
        stats = store.stats()
        assert stats.entries == 2
        assert stats.total_bytes > 0
        assert stats.to_dict()["entries"] == 2


WRITER_SCRIPT = """
import sys
from repro.service.store import ResultStore
root, key, value, repeats = sys.argv[1:5]
store = ResultStore(root)
payload = {"worker": value, "blob": value * 2000}
for _ in range(int(repeats)):
    store.put(key, payload)
print("done")
"""


def _spawn_writer(root, key, value, repeats=1):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    return subprocess.Popen(
        [sys.executable, "-c", WRITER_SCRIPT, str(root), key, value,
         str(repeats)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )


class TestConcurrency:
    def test_two_processes_writing_same_key(self, tmp_path):
        root = tmp_path / "store"
        writers = [
            _spawn_writer(root, KEY, value, repeats=20)
            for value in ("aa", "bb")
        ]
        for writer in writers:
            out, err = writer.communicate(timeout=120)
            assert writer.returncode == 0, err
            assert "done" in out
        # Whichever writer won, the surviving entry verifies cleanly.
        payload = ResultStore(root).get(KEY)
        assert payload is not None
        assert payload["worker"] in ("aa", "bb")
        assert payload["blob"] == payload["worker"] * 2000
        assert ResultStore(root).stats().quarantined == 0

    def test_reader_during_write_never_sees_partial(self, tmp_path):
        root = tmp_path / "store"
        writer = _spawn_writer(root, KEY, "cc", repeats=200)
        reader = ResultStore(root)
        observed = 0
        try:
            while writer.poll() is None:
                payload = reader.get(KEY)
                if payload is not None:
                    # complete and checksum-verified, or nothing
                    assert payload["blob"] == "cc" * 2000
                    observed += 1
        finally:
            out, err = writer.communicate(timeout=120)
        assert writer.returncode == 0, err
        assert reader.get(KEY) is not None
        # atomic replace means no read ever quarantined a live write
        assert reader.stats().quarantined == 0
        assert observed > 0

    def test_corrupted_entry_falls_back_to_recompute(self, tmp_path):
        # the end-to-end shape of the quarantine contract: corrupt entry
        # -> miss -> recompute via put -> hit again
        store = ResultStore(tmp_path / "store")
        key = content_hash({"scenario": "x"})
        store.put(key, {"row": {"v": 1}})
        store.path_for(key).write_text("{nope")
        assert store.get(key) is None  # recompute signal, no crash
        store.put(key, {"row": {"v": 1}})
        assert store.get(key) == {"row": {"v": 1}}
