"""Lossless JSON round-trips of the result artifacts (satellite of the
service layer: everything the store holds must rebuild bit-for-bit)."""

import json

import pytest

from repro.attacks.report import AttackReport
from repro.core.algorithms.common import OptimisationResult
from repro.core.strategy import Action, Strategy
from repro.evolution.trajectory import EpochRecord, Trajectory
from repro.scenarios.runner import ScenarioResult, ScenarioRunner
from repro.scenarios.specs import (
    AlgorithmSpec,
    AttackSpec,
    EvolutionSpec,
    FeeSpec,
    Scenario,
    SimulationSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.simulation.metrics import SimulationMetrics


class TestAttackReportRoundTrip:
    def make(self):
        return AttackReport(
            strategy="slow-jamming", victim="center", horizon=40.0,
            budget=100.0, budget_spent=60.0, attacker_fees_paid=1.5,
            attacker_upfront_paid=0.75,
            attacks_launched=10, attacks_held=8, attacks_rejected=2,
            locked_liquidity_integral=123.4,
            baseline_attempted=50, baseline_succeeded=40,
            baseline_success_rate=0.8, attacked_succeeded=30,
            attacked_success_rate=0.6, success_rate_degradation=0.2,
            baseline_victim_revenue=5.0, attacked_victim_revenue=2.0,
            victim_revenue_delta=3.0, baseline_total_revenue=9.0,
            attacked_total_revenue=6.0,
            baseline_victim_upfront_revenue=0.4,
            attacked_victim_upfront_revenue=0.3,
        )

    def test_json_round_trip_is_lossless(self):
        report = self.make()
        assert AttackReport.from_json(report.to_json()) == report

    def test_document_is_schema_versioned(self):
        assert self.make().to_dict()["schema_version"] == 2

    def test_attacker_roi(self):
        report = self.make()
        assert report.attacker_cost == pytest.approx(60.0 + 1.5 + 0.75)
        assert report.attacker_roi == pytest.approx(3.0 / 62.25)

    def test_version_mismatch_rejected(self):
        doc = self.make().to_dict()
        doc["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            AttackReport.from_dict(doc)

    def test_unknown_field_rejected(self):
        doc = self.make().to_dict()
        doc["surprise"] = 1
        with pytest.raises(ValueError, match="unknown"):
            AttackReport.from_dict(doc)

    def test_missing_field_rejected(self):
        doc = self.make().to_dict()
        del doc["victim"]
        with pytest.raises(ValueError, match="missing"):
            AttackReport.from_dict(doc)


class TestTrajectoryRoundTrip:
    def make(self):
        record = EpochRecord(
            epoch=0, nodes=4, channels=3, arrivals=1, departures=0,
            closure_costs=0.0, attempted=5, succeeded=4, success_rate=0.8,
            total_revenue=1.5, revenue_gini=0.2, moves=1, max_gain=0.1,
            welfare=2.0, topology="star",
            move_log=({"node": "a", "gain": 0.1, "add": ["b"], "remove": []},),
        )
        return Trajectory(
            records=(record,), converged=True, epochs_run=1, seed=7,
            final_topology="star", nash_stable=True, final_max_gain=0.0,
            totals={"total_moves": 1.0},
        )

    def test_json_round_trip_is_lossless(self):
        trajectory = self.make()
        assert Trajectory.from_json(trajectory.to_json()) == trajectory

    def test_document_is_schema_versioned(self):
        assert self.make().to_dict()["schema_version"] == 1

    def test_version_mismatch_rejected(self):
        doc = self.make().to_dict()
        doc["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            Trajectory.from_dict(doc)

    def test_unknown_epoch_field_rejected(self):
        doc = self.make().to_dict()
        doc["epochs"][0]["mystery"] = True
        with pytest.raises(ValueError, match="unknown EpochRecord"):
            Trajectory.from_dict(doc)


class TestSimulationMetricsRoundTrip:
    def make(self):
        metrics = SimulationMetrics(seed=3)
        metrics.attempted = 10
        metrics.succeeded = 8
        metrics.failed = 2
        metrics.volume_delivered = 12.5
        metrics.revenue["hub"] = 1.25
        metrics.fees_paid["a"] = 0.5
        metrics.sent["a"] = 4
        metrics.received["b"] = 4
        metrics.edge_traffic[("a", "hub")] = 4
        metrics.failure_reasons["no liquidity"] = 2
        metrics.horizon = 50.0
        metrics.htlc_locked_peak = 3.5
        return metrics

    def test_round_trip_preserves_all_tallies(self):
        metrics = self.make()
        back = SimulationMetrics.from_dict(
            json.loads(json.dumps(metrics.to_dict()))
        )
        assert back.to_dict() == metrics.to_dict()
        assert back.revenue["hub"] == 1.25
        assert back.edge_traffic[("a", "hub")] == 4
        assert back.seed == 3

    def test_rebuilt_tables_stay_defaultdicts(self):
        back = SimulationMetrics.from_dict(self.make().to_dict())
        assert back.revenue["never-seen"] == 0.0
        assert back.edge_traffic[("x", "y")] == 0

    def test_version_mismatch_rejected(self):
        doc = self.make().to_dict()
        doc["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            SimulationMetrics.from_dict(doc)


class TestOptimisationResultRoundTrip:
    def make(self):
        return OptimisationResult(
            algorithm="greedy",
            strategy=Strategy([Action("hub", 2.0), Action("b", 1.0)]),
            objective_value=1.5,
            utility=1.2,
            evaluations=17,
            details={"prefix": [0.5, 1.0]},
        )

    def test_round_trip_is_lossless(self):
        result = self.make()
        back = OptimisationResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert back.algorithm == result.algorithm
        assert list(back.strategy) == list(result.strategy)
        assert back.objective_value == result.objective_value
        assert back.utility == result.utility
        assert back.evaluations == result.evaluations
        assert back.details == {"prefix": [0.5, 1.0]}

    def test_version_mismatch_rejected(self):
        doc = self.make().to_dict()
        doc["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            OptimisationResult.from_dict(doc)


def _result_doc_round_trip(result):
    document = result.to_dict()
    # the store normalises through canonical JSON; survive that too
    back = ScenarioResult.from_json(json.dumps(document))
    assert back.to_dict() == json.loads(json.dumps(document))
    return back


class TestScenarioResultRoundTrip:
    def test_simulation_result(self):
        scenario = Scenario(
            name="rt-sim",
            topology=TopologySpec("star", {"leaves": 3}),
            workload=WorkloadSpec("poisson", {"zipf_s": 1.0}),
            fee=FeeSpec("linear", {"base": 0.01, "rate": 0.001}),
            simulation=SimulationSpec(horizon=3.0),
            seed=5,
        )
        result = ScenarioRunner().run(scenario)
        back = _result_doc_round_trip(result)
        assert back.scenario == scenario
        assert back.metrics.to_dict() == result.metrics.to_dict()
        assert back.graph is not None
        assert len(back.graph) == len(result.graph)

    def test_optimisation_result(self):
        scenario = Scenario(
            name="rt-join",
            topology=TopologySpec("star", {"leaves": 4}),
            algorithm=AlgorithmSpec(
                "greedy", {"budget": 4.0, "lock": 1.0}, user="newcomer"
            ),
            seed=5,
        )
        result = ScenarioRunner().run(scenario)
        back = _result_doc_round_trip(result)
        assert back.optimisation.algorithm == "greedy"
        assert list(back.optimisation.strategy) == list(
            result.optimisation.strategy
        )

    def test_attack_result(self):
        scenario = Scenario(
            name="rt-attack",
            topology=TopologySpec("star", {"leaves": 3, "balance": 5.0}),
            workload=WorkloadSpec("poisson", {"zipf_s": 1.0}),
            fee=FeeSpec("linear", {"base": 0.01, "rate": 0.001}),
            simulation=SimulationSpec(
                horizon=5.0, payment_mode="htlc", htlc_hold_mean=0.2
            ),
            attack=AttackSpec("slow-jamming", {"budget": 10.0}),
            seed=5,
        )
        result = ScenarioRunner().run(scenario)
        back = _result_doc_round_trip(result)
        assert back.attack == result.attack
        assert back.baseline_metrics.to_dict() == (
            result.baseline_metrics.to_dict()
        )

    def test_evolution_result(self):
        scenario = Scenario(
            name="rt-evolve",
            topology=TopologySpec("star", {"leaves": 3}),
            workload=WorkloadSpec("poisson", {"zipf_s": 2.0}),
            fee=FeeSpec("linear", {"base": 0.01, "rate": 0.001}),
            evolution=EvolutionSpec(epochs=1, traffic_horizon=0.0),
            seed=5,
        )
        result = ScenarioRunner().run(scenario)
        back = _result_doc_round_trip(result)
        assert back.evolution == result.evolution

    def test_version_mismatch_rejected(self):
        scenario = Scenario(
            name="rt-min", topology=TopologySpec("star", {"leaves": 3})
        )
        doc = ScenarioRunner().run(scenario).to_dict()
        doc["schema_version"] = 99
        from repro.errors import ScenarioError

        with pytest.raises(ScenarioError, match="schema_version"):
            ScenarioResult.from_dict(doc)
