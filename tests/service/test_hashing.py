"""Content-address stability: the hash IS the cache key."""

import json
import math

import pytest

from repro.errors import ScenarioError
from repro.scenarios.specs import Scenario, SimulationSpec, TopologySpec
from repro.service.hashing import (
    canonical_json,
    content_hash,
    point_hash,
    scenario_content_hash,
)


def scenario(**overrides):
    base = dict(
        name="hash-test",
        topology=TopologySpec("star", {"leaves": 4}),
        simulation=SimulationSpec(horizon=10.0),
        seed=7,
    )
    base.update(overrides)
    return Scenario(**base)


class TestCanonicalJson:
    def test_key_order_is_irrelevant(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1}
        )

    def test_integral_floats_collapse_to_ints(self):
        assert canonical_json({"x": 10.0}) == canonical_json({"x": 10})

    def test_negative_zero_collapses(self):
        assert canonical_json(-0.0) == canonical_json(0)

    def test_fractional_floats_survive(self):
        assert json.loads(canonical_json(0.5)) == 0.5

    def test_tuples_and_lists_agree(self):
        assert canonical_json((1, 2)) == canonical_json([1, 2])

    def test_nan_rejected(self):
        with pytest.raises(ScenarioError):
            canonical_json(float("nan"))

    def test_infinity_rejected(self):
        with pytest.raises(ScenarioError):
            canonical_json({"x": float("inf")})

    def test_payload_domain_admits_non_finite(self):
        # Result documents may carry -inf (infeasible greedy prefixes);
        # the store serialises them with stable Infinity/NaN tokens.
        text = canonical_json(
            {"v": [float("-inf"), float("inf")]}, allow_non_finite=True
        )
        assert json.loads(text) == {"v": [float("-inf"), float("inf")]}
        nan_text = canonical_json(float("nan"), allow_non_finite=True)
        assert nan_text == canonical_json(float("nan"), allow_non_finite=True)
        assert math.isnan(json.loads(nan_text))

    def test_non_json_value_rejected(self):
        with pytest.raises(ScenarioError):
            canonical_json({"x": object()})

    def test_non_string_keys_rejected(self):
        with pytest.raises(ScenarioError):
            canonical_json({1: "x"})


class TestScenarioContentHash:
    def test_hash_is_sha256_hex(self):
        digest = scenario().content_hash()
        assert len(digest) == 64
        assert set(digest) <= set("0123456789abcdef")

    def test_round_trip_preserves_hash(self):
        s = scenario()
        assert Scenario.from_dict(s.to_dict()).content_hash() == s.content_hash()
        assert Scenario.from_json(s.to_json()).content_hash() == s.content_hash()

    def test_equal_scenarios_hash_equal_across_numeric_types(self):
        a = scenario(simulation=SimulationSpec(horizon=10))
        b = scenario(simulation=SimulationSpec(horizon=10.0))
        assert a == b
        assert a.content_hash() == b.content_hash()

    def test_different_seed_changes_hash(self):
        assert scenario(seed=1).content_hash() != scenario(seed=2).content_hash()

    def test_different_params_change_hash(self):
        other = scenario(topology=TopologySpec("star", {"leaves": 5}))
        assert other.content_hash() != scenario().content_hash()

    def test_module_function_matches_method(self):
        s = scenario()
        assert scenario_content_hash(s.to_dict()) == s.content_hash()


class TestVersionSalting:
    def test_artifact_version_salts_the_hash(self, monkeypatch):
        import repro.service.hashing as hashing

        before = scenario_content_hash(scenario().to_dict())
        monkeypatch.setattr(
            hashing, "_HASH_SALT", hashing._HASH_SALT + "bump\n"
        )
        assert scenario_content_hash(scenario().to_dict()) != before

    def test_content_hash_differs_from_raw_sha256(self):
        # The salt means plain sha256 of the canonical JSON is NOT the key
        # — artifact-schema bumps must invalidate old entries.
        import hashlib

        doc = {"a": 1}
        raw = hashlib.sha256(canonical_json(doc).encode()).hexdigest()
        assert content_hash(doc) != raw


class TestPointHash:
    def test_namespace_separates_evaluators(self):
        point = {"n": 10}
        assert point_hash("eval-a", point) != point_hash("eval-b", point)

    def test_point_identity(self):
        assert point_hash("e", {"n": 10, "m": 2.0}) == point_hash(
            "e", {"m": 2, "n": 10.0}
        )
