"""Cache-aware sweeps: repeated grids re-execute zero points.

Covers both sweep front doors: :meth:`ScenarioRunner.run_sweep`
(scenario grids, keyed by scenario content hash) and
:func:`repro.analysis.sweeps.run_sweep` (callable-per-point grids,
keyed by (namespace, point)).
"""

import pytest

from repro.analysis import sweeps
from repro.scenarios.runner import ScenarioRunner, resolve_sweep_point
from repro.scenarios.specs import Scenario, SimulationSpec, TopologySpec
from repro.service.store import ResultStore


def scenario():
    return Scenario(
        name="cache-sweep",
        topology=TopologySpec("star", {"leaves": 3}),
        simulation=SimulationSpec(horizon=3.0),
        seed=13,
    )


GRID = {"topology.params.leaves": [3, 4, 5]}


@pytest.fixture
def run_probe(monkeypatch):
    """Count actual ScenarioRunner.run executions."""
    calls = []
    original = ScenarioRunner.run

    def counting(self, s):
        calls.append(s.content_hash())
        return original(self, s)

    monkeypatch.setattr(ScenarioRunner, "run", counting)
    return calls


class TestScenarioSweepCache:
    def test_second_pass_executes_zero_points(self, tmp_path, run_probe):
        store = ResultStore(tmp_path / "store")
        runner = ScenarioRunner()
        first = runner.run_sweep(scenario(), GRID, cache=store)
        executed_first = len(run_probe)
        assert executed_first == len(first) == 3
        second = runner.run_sweep(scenario(), GRID, cache=store)
        assert len(run_probe) == executed_first  # zero re-executions
        assert second == first

    def test_cached_rows_match_uncached_rows(self, tmp_path):
        import json

        runner = ScenarioRunner()
        plain = runner.run_sweep(scenario(), GRID)
        cached = runner.run_sweep(scenario(), GRID, cache=str(tmp_path / "s"))
        replayed = runner.run_sweep(scenario(), GRID, cache=str(tmp_path / "s"))
        normalised = json.loads(json.dumps(plain))
        assert cached == normalised
        assert replayed == normalised

    def test_partial_overlap_executes_only_new_points(self, tmp_path, run_probe):
        store = ResultStore(tmp_path / "store")
        runner = ScenarioRunner()
        runner.run_sweep(scenario(), {"topology.params.leaves": [3, 4]}, cache=store)
        assert len(run_probe) == 2
        runner.run_sweep(scenario(), GRID, cache=store)
        # leaves=3,4 at the same grid indices hit; only leaves=5 runs
        assert len(run_probe) == 3

    def test_store_keys_are_resolved_point_hashes(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        ScenarioRunner().run_sweep(scenario(), GRID, cache=store)
        doc = scenario().to_dict()
        expected = {
            resolve_sweep_point(doc, i, {"topology.params.leaves": leaves})
            .content_hash()
            for i, leaves in enumerate(GRID["topology.params.leaves"])
        }
        assert set(store.keys()) == expected

    def test_process_executor_shares_the_cache(self, tmp_path):
        store_path = str(tmp_path / "store")
        runner = ScenarioRunner()
        serial = runner.run_sweep(scenario(), GRID, cache=store_path)
        parallel = runner.run_sweep(
            scenario(), GRID, cache=store_path, executor="process", max_workers=2
        )
        assert parallel == serial

    def test_optimisation_results_with_inf_details_cache(self, tmp_path, run_probe):
        # Greedy details carry -inf prefix objectives; the store's
        # payload domain must accept them (regression: the cache layer
        # used to reject the whole result document).
        from repro.scenarios.specs import AlgorithmSpec

        base = Scenario(
            name="cache-opt",
            topology=TopologySpec("star", {"leaves": 4}),
            algorithm=AlgorithmSpec(
                "greedy", {"budget": 4.0, "lock": 1.0}, user="newcomer"
            ),
            seed=13,
        )
        grid = {"algorithm.params.budget": [3.0, 4.0]}
        store = ResultStore(tmp_path / "store")
        runner = ScenarioRunner()
        first = runner.run_sweep(base, grid, cache=store)
        assert len(run_probe) == 2
        second = runner.run_sweep(base, grid, cache=store)
        assert len(run_probe) == 2  # both points served from the store
        assert second == first

    def test_seed_override_in_grid_changes_keys(self, tmp_path, run_probe):
        store = ResultStore(tmp_path / "store")
        runner = ScenarioRunner()
        runner.run_sweep(scenario(), GRID, cache=store)
        count = len(run_probe)
        pinned = dict(GRID)
        pinned["seed"] = [99]
        runner.run_sweep(scenario(), pinned, cache=store)
        assert len(run_probe) == count + 3  # different seeds, all misses


def _area(width, height):
    return {"area": width * height}


class TestCallableSweepCache:
    GRID = {"width": [2, 3], "height": [4.0]}

    def test_rows_identical_and_memoised(self, tmp_path):
        calls = []

        def evaluate(width, height):
            calls.append((width, height))
            return _area(width, height)

        store = tmp_path / "store"
        first = sweeps.run_sweep(
            self.GRID, evaluate, cache=store, cache_key="area"
        )
        assert len(calls) == 2
        second = sweeps.run_sweep(
            self.GRID, evaluate, cache=store, cache_key="area"
        )
        assert len(calls) == 2  # all served from the store
        assert second == first
        assert first == [
            {"width": 2, "height": 4.0, "area": 8},
            {"width": 3, "height": 4.0, "area": 12},
        ]

    def test_namespace_separates_evaluators(self, tmp_path):
        store = tmp_path / "store"
        a = sweeps.run_sweep(
            self.GRID, lambda width, height: {"v": width},
            cache=store, cache_key="first",
        )
        b = sweeps.run_sweep(
            self.GRID, lambda width, height: {"v": height},
            cache=store, cache_key="second",
        )
        assert [row["v"] for row in a] == [2, 3]
        assert [row["v"] for row in b] == [4.0, 4.0]

    def test_uncached_path_unchanged(self):
        rows = sweeps.run_sweep(self.GRID, _area)
        assert rows[0]["area"] == 8

    def test_process_executor_with_cache(self, tmp_path):
        store = str(tmp_path / "store")
        rows = sweeps.run_sweep(
            self.GRID, _area, executor="process", max_workers=2,
            cache=store, cache_key="area",
        )
        again = sweeps.run_sweep(
            self.GRID, _area, cache=store, cache_key="area"
        )
        assert again == rows


class TestAnalysisTablesForwardCache:
    def test_resilience_table_accepts_cache(self, tmp_path, monkeypatch):
        from repro.analysis import resilience

        captured = {}
        original = ScenarioRunner.run_sweep

        def spy(self, base, grid, **kwargs):
            captured.update(kwargs)
            return original(self, base, grid, **kwargs)

        monkeypatch.setattr(ScenarioRunner, "run_sweep", spy)
        store = ResultStore(tmp_path / "store")
        rows = resilience.resilience_table(
            [5.0], size=4, horizon=2.0, cache=store
        )
        assert captured["cache"] is store
        assert len(rows) == 3
        assert len(store) == 3

    def test_emergence_table_accepts_cache(self, tmp_path, monkeypatch):
        from repro.analysis import emergence

        captured = {}
        original = ScenarioRunner.run_sweep

        def spy(self, base, grid, **kwargs):
            captured.update(kwargs)
            return original(self, base, grid, **kwargs)

        monkeypatch.setattr(ScenarioRunner, "run_sweep", spy)
        store = ResultStore(tmp_path / "store")
        rows = emergence.emergence_table(
            epochs=1, size=4, traffic_horizon=0.0, cache=store
        )
        assert captured["cache"] is store
        assert len(rows) == 3
        assert len(store) == 3
