"""Integration tests replaying the paper's two worked figures.

Figure 1 — channel balance semantics (also unit-tested in
``tests/network/test_channel.py``); here we replay the whole sequence
through the router.

Figure 2 — the joining example: E joins {A, B, C, D}; E sends 1 tx/month
to B, A sends 9 tx/month to D. With budget for two channels plus 19 spare
coins, the paper says E should open channels to A and D with sizes 10 and
9, maximising intermediary revenue and minimising E's own fees.
"""

from itertools import combinations

import pytest

from repro.core.strategy import Action, Strategy
from repro.core.utility import JoiningUserModel
from repro.network.channel import Channel
from repro.network.fees import ConstantFee
from repro.network.graph import ChannelGraph
from repro.params import ModelParameters
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import PaymentEvent
from repro.transactions.distributions import EmpiricalDistribution


class TestFigure1:
    """Channel between u (b_u = 10) and v (b_v = 7)."""

    def test_full_sequence(self):
        channel = Channel("u", "v", 10.0, 7.0)
        # v pays u 10: wait — the figure shows (10,7) -> (5,12) -> (0,17)
        # via two u->v payments of 5, then a failed u->v payment of 6.
        channel.send("u", 5.0)
        assert (channel.balance("u"), channel.balance("v")) == (5.0, 12.0)
        channel.send("u", 5.0)
        assert (channel.balance("u"), channel.balance("v")) == (0.0, 17.0)
        assert not channel.can_send("u", 6.0)

    def test_documented_failure_point(self):
        """At b_u = 5, a payment of size 6 from u is unsuccessful."""
        channel = Channel("u", "v", 5.0, 12.0)
        assert not channel.can_send("u", 6.0)
        assert channel.can_send("v", 6.0)  # the other direction is fine


@pytest.fixture
def figure2_world():
    """A-B-C-D path; E joins with monthly traffic E->B:1, A->D:9."""
    graph = ChannelGraph()
    for u, v in [("A", "B"), ("B", "C"), ("C", "D")]:
        graph.add_channel(u, v, 20.0, 20.0)
    params = ModelParameters(
        onchain_cost=1.0,
        opportunity_rate=0.001,
        fee_avg=1.0,       # revenue per forwarded tx
        fee_out_avg=1.0,   # fee per hop of E's own tx
        total_tx_rate=9.0,  # A -> D traffic
        user_tx_rate=1.0,   # E -> B traffic
        zipf_s=1.0,
    )
    distribution = EmpiricalDistribution(
        {"A": {"D": 1.0}, "B": {"A": 1.0}, "C": {"A": 1.0}, "D": {"A": 1.0}}
    )
    model = JoiningUserModel(
        graph,
        "E",
        params,
        distribution=distribution,
        own_probs={"B": 1.0},
        sender_rates={"A": 9.0, "B": 0.0, "C": 0.0, "D": 0.0},
    )
    return graph, params, model


class TestFigure2:
    def test_optimal_two_channel_peers_are_a_and_d(self, figure2_world):
        """Among all two-channel strategies, {A, D} maximises utility."""
        _graph, _params, model = figure2_world
        scores = {}
        for pair in combinations(["A", "B", "C", "D"], 2):
            strategy = Strategy([Action(p, 9.5) for p in pair])
            scores[pair] = model.utility(strategy)
        best = max(scores, key=scores.get)
        assert set(best) == {"A", "D"}

    def test_a_d_strategy_beats_single_channels(self, figure2_world):
        _graph, _params, model = figure2_world
        ad = model.utility(Strategy([Action("A", 10.0), Action("D", 9.0)]))
        for peer in ["A", "B", "C", "D"]:
            single = model.utility(Strategy([Action(peer, 19.0)]))
            assert ad > single

    def test_revenue_comes_from_a_d_transit(self, figure2_world):
        _graph, _params, model = figure2_world
        strategy = Strategy([Action("A", 10.0), Action("D", 9.0)])
        # A-E-D (2 hops) beats A-B-C-D (3 hops): E carries all 9 tx/month
        assert model.expected_revenue(strategy) == pytest.approx(9.0)

    def test_funding_10_9_supports_the_monthly_flow(self, figure2_world):
        """Simulate the month: with 10 on E-A and 9 on E-D every payment
        succeeds; E's D-side funds deplete exactly to zero."""
        graph, _params, model = figure2_world
        sim_graph = model.with_strategy(
            Strategy([Action("A", 10.0), Action("D", 9.0)])
        )
        engine = SimulationEngine(sim_graph, fee=ConstantFee(0.0))
        # E's own payment to B, then A's 9 unit payments to D
        engine.schedule(PaymentEvent(time=0.5, sender="E", receiver="B", amount=1.0))
        for i in range(9):
            engine.schedule(
                PaymentEvent(time=1.0 + i, sender="A", receiver="D", amount=1.0)
            )
        metrics = engine.run()
        assert metrics.succeeded == 10
        assert metrics.failed == 0
        ed = sim_graph.channels_between("E", "D")[0]
        assert ed.balance("E") == pytest.approx(0.0)

    def test_underfunding_the_d_channel_fails_late_payments(self, figure2_world):
        graph, _params, model = figure2_world
        sim_graph = model.with_strategy(
            Strategy([Action("A", 10.0), Action("D", 5.0)])
        )
        # D side matches E's lock (dual funding) but E's outbound capacity
        # toward D is only 5, and the alternative route B-C-D is capped too.
        engine = SimulationEngine(sim_graph, fee=ConstantFee(0.0))
        for i in range(9):
            engine.schedule(
                PaymentEvent(time=1.0 + i, sender="A", receiver="D", amount=3.0)
            )
        metrics = engine.run()
        assert metrics.failed > 0
