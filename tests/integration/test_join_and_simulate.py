"""Cross-module integration: join a snapshot, then validate by simulation.

The analytic model predicts expected revenue and fee rates; the simulator
measures them. These tests close the loop end-to-end (the test-sized
version of bench E11).
"""


import pytest

from repro.core.algorithms.greedy import greedy_fixed_funds
from repro.core.strategy import Action, Strategy
from repro.core.utility import JoiningUserModel
from repro.network.fees import ConstantFee
from repro.params import ModelParameters
from repro.simulation.engine import SimulationEngine
from repro.snapshots.synthetic import (
    barabasi_albert_snapshot,
    core_periphery_snapshot,
)
from repro.transactions.rates import edge_rates, intermediary_traffic
from repro.transactions.workload import PoissonWorkload
from repro.transactions.zipf import ModifiedZipf


class TestJoinPipeline:
    def test_greedy_prefers_central_peers_on_core_periphery(self):
        """Joining a hub-and-spoke network, greedy should pick hubs."""
        graph = core_periphery_snapshot(
            core_size=4, periphery_size=26, periphery_links=1, seed=3
        )
        params = ModelParameters(
            onchain_cost=0.5, fee_avg=0.5, fee_out_avg=0.1,
            total_tx_rate=50.0, user_tx_rate=2.0, zipf_s=1.0,
        )
        core = {f"n{i}" for i in range(4)}
        # exact (betweenness) revenue: the first, highest-gain pick is a hub
        model = JoiningUserModel(graph, "me", params)
        result = greedy_fixed_funds(model, budget=3.0, lock=1.0)
        assert result.strategy.peers
        assert result.strategy.peers[0] in core or result.strategy.peers[-1] in core
        # fixed-rate mode concentrates entirely on the core
        fixed = JoiningUserModel(graph, "me2", params, revenue_mode="fixed-rate")
        fixed_result = greedy_fixed_funds(fixed, budget=3.0, lock=1.0)
        assert all(peer in core for peer in fixed_result.strategy.peers)

    def test_greedy_strategy_utility_reported_consistently(self):
        graph = barabasi_albert_snapshot(20, seed=8)
        params = ModelParameters(fee_avg=0.5, total_tx_rate=50.0)
        model = JoiningUserModel(graph, "me", params)
        result = greedy_fixed_funds(model, budget=4.0, lock=1.0)
        assert result.utility == pytest.approx(model.utility(result.strategy))


class TestAnalyticVsSimulated:
    def test_edge_rates_match_simulation(self):
        """Eq. 2's λ_e ≈ observed edge traffic rates on a snapshot."""
        graph = barabasi_albert_snapshot(
            15, seed=5, capacity_mu=6.0, capacity_sigma=0.2
        )
        s = 1.0
        total_rate = float(len(graph))
        distribution = ModifiedZipf(graph, s=s)
        predicted = edge_rates(graph, distribution, total_tx_rate=total_rate)

        workload = PoissonWorkload(
            distribution, {v: 1.0 for v in graph.nodes}, seed=17
        )
        engine = SimulationEngine(graph.copy(), fee=ConstantFee(0.0))
        horizon = 300.0
        engine.schedule_workload(workload, horizon)
        metrics = engine.run(until=horizon)
        assert metrics.success_rate > 0.95  # capacities are huge

        # compare the busiest predicted edges
        busiest = sorted(predicted, key=predicted.get, reverse=True)[:5]
        for edge in busiest:
            observed = metrics.edge_rate(*edge)
            assert observed == pytest.approx(predicted[edge], rel=0.35), edge

    def test_intermediary_revenue_matches_simulation(self):
        """Eq. 3's E_rev ≈ fee income measured by the simulator."""
        graph = barabasi_albert_snapshot(
            12, seed=6, capacity_mu=6.0, capacity_sigma=0.2
        )
        fee = 0.25
        distribution = ModifiedZipf(graph, s=1.0)
        per_sender = {v: 1.0 for v in graph.nodes}
        predicted_traffic = intermediary_traffic(
            graph, distribution, per_sender_rates=per_sender
        )
        top_node = max(predicted_traffic, key=predicted_traffic.get)
        predicted_revenue = fee * predicted_traffic[top_node]
        assert predicted_revenue > 0

        workload = PoissonWorkload(distribution, per_sender, seed=23)
        engine = SimulationEngine(
            graph.copy(), fee=ConstantFee(fee), fee_forwarding=False
        )
        horizon = 400.0
        engine.schedule_workload(workload, horizon)
        metrics = engine.run(until=horizon)
        observed = metrics.revenue_rate(top_node)
        assert observed == pytest.approx(predicted_revenue, rel=0.3)

    def test_joining_user_revenue_realised_in_simulation(self):
        """A bridge position predicted to earn does earn when simulated."""
        from repro.network.graph import ChannelGraph

        graph = ChannelGraph()
        # two clusters joined by a long path; u will bridge them
        for u, v in [("a1", "a2"), ("a2", "a3"), ("a3", "b1"),
                     ("b1", "b2"), ("b2", "b3")]:
            graph.add_channel(u, v, 50.0, 50.0)
        params = ModelParameters(
            fee_avg=0.5, fee_out_avg=0.0, total_tx_rate=6.0,
            user_tx_rate=0.001, zipf_s=0.0,
        )
        from repro.transactions.distributions import UniformDistribution

        model = JoiningUserModel(
            graph, "u", params,
            distribution=UniformDistribution.from_graph(graph),
        )
        strategy = Strategy([Action("a1", 50.0), Action("b3", 50.0)])
        predicted = model.expected_revenue(strategy)
        assert predicted > 0

        sim_graph = model.with_strategy(strategy)
        workload = PoissonWorkload(
            UniformDistribution.from_graph(graph),
            {v: 1.0 for v in graph.nodes},
            seed=9,
        )
        engine = SimulationEngine(
            sim_graph, fee=ConstantFee(params.fee_avg), fee_forwarding=False
        )
        horizon = 500.0
        engine.schedule_workload(workload, horizon)
        metrics = engine.run(until=horizon)
        assert metrics.revenue_rate("u") == pytest.approx(predicted, rel=0.35)
