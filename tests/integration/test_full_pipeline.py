"""End-to-end pipeline: generate -> estimate -> join -> simulate -> rebalance.

The complete downstream-user story: start from a snapshot, estimate the
model parameters from observed traffic, use them to choose a joining
strategy, run the network under HTLC semantics, and keep the new node's
channels balanced — every subsystem of the library in one flow.
"""

import pytest

from repro.analysis.estimation import estimate_total_rate, estimate_zipf_s
from repro.core.algorithms.greedy import greedy_fixed_funds
from repro.core.utility import JoiningUserModel
from repro.network.fees import ConstantFee
from repro.network.rebalancing import auto_rebalance, channel_imbalances
from repro.params import ModelParameters
from repro.simulation.engine import SimulationEngine
from repro.snapshots.io import from_describegraph, to_describegraph
from repro.snapshots.synthetic import barabasi_albert_snapshot
from repro.transactions.workload import PoissonWorkload
from repro.transactions.zipf import ModifiedZipf


@pytest.fixture(scope="module")
def pipeline_result():
    # 1. snapshot (round-tripped through the JSON format, as a user would)
    raw = barabasi_albert_snapshot(
        18, seed=12, capacity_mu=5.0, capacity_sigma=0.3
    )
    graph = from_describegraph(to_describegraph(raw))

    # 2. observe traffic, estimate parameters
    true_s = 1.2
    observed = PoissonWorkload(
        ModifiedZipf(graph, s=true_s), {v: 1.0 for v in graph.nodes}, seed=13
    )
    trace = observed.generate_count(1200)
    s_hat = estimate_zipf_s(graph, trace).s
    rate_hat = estimate_total_rate(trace, trace[-1].time).rate

    # 3. choose a joining strategy with the *estimated* parameters
    params = ModelParameters(
        onchain_cost=0.5,
        opportunity_rate=0.005,
        fee_avg=0.2,
        fee_out_avg=0.05,
        total_tx_rate=rate_hat,
        user_tx_rate=1.0,
        zipf_s=s_hat,
    )
    model = JoiningUserModel(graph, "newcomer", params)
    result = greedy_fixed_funds(model, budget=8.0, lock=3.0)

    # 4. run the joined network under HTLC semantics
    joined = model.with_strategy(result.strategy)
    workload = PoissonWorkload(
        ModifiedZipf(joined, s=s_hat),
        {v: 1.0 for v in joined.nodes},
        seed=14,
    )
    engine = SimulationEngine(
        joined, fee=ConstantFee(params.fee_avg), payment_mode="htlc",
        seed=14, htlc_hold_mean=0.02,
    )
    engine.schedule_workload(workload, horizon=120.0)
    metrics = engine.run()

    # 5. keep the newcomer balanced
    cycles = auto_rebalance(joined, "newcomer", target_ratio=0.2, max_cycles=5)
    return {
        "true_s": true_s,
        "s_hat": s_hat,
        "rate_hat": rate_hat,
        "strategy": result.strategy,
        "metrics": metrics,
        "joined": joined,
        "cycles": cycles,
    }


class TestFullPipeline:
    def test_estimation_close_to_truth(self, pipeline_result):
        assert pipeline_result["s_hat"] == pytest.approx(
            pipeline_result["true_s"], abs=0.5
        )
        assert pipeline_result["rate_hat"] == pytest.approx(18.0, rel=0.15)

    def test_strategy_connects_newcomer(self, pipeline_result):
        strategy = pipeline_result["strategy"]
        assert len(strategy) >= 1
        joined = pipeline_result["joined"]
        assert joined.degree("newcomer") == len(strategy)

    def test_simulation_processes_traffic(self, pipeline_result):
        metrics = pipeline_result["metrics"]
        assert metrics.attempted > 100
        resolved = metrics.succeeded + metrics.failed
        assert metrics.succeeded / resolved > 0.5

    def test_newcomer_earns_or_at_least_participates(self, pipeline_result):
        metrics = pipeline_result["metrics"]
        newcomer_touched = (
            metrics.revenue.get("newcomer", 0.0) > 0
            or metrics.sent.get("newcomer", 0) > 0
            or metrics.received.get("newcomer", 0) > 0
        )
        assert newcomer_touched

    def test_rebalancing_leaves_channels_usable(self, pipeline_result):
        joined = pipeline_result["joined"]
        imbalances = channel_imbalances(joined, "newcomer")
        assert imbalances
        # every channel still holds its full capacity
        for imbalance in imbalances:
            assert imbalance.capacity > 0
            assert 0.0 <= imbalance.local_ratio <= 1.0
