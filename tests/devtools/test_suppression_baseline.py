"""Suppression comments and the grandfathered-finding baseline."""

from pathlib import Path

import pytest

from repro.devtools import Baseline, Finding, lint_file, lint_paths
from repro.devtools.rules import RULES
from repro.errors import ReproError

FIXTURES = Path(__file__).parent / "fixtures"


def _write(tmp_path: Path, source: str) -> Path:
    path = tmp_path / "module.py"
    path.write_text(source, encoding="utf-8")
    return path


def _all_rules():
    return [RULES.get(rule_id) for rule_id in RULES]


class TestSuppression:
    def test_same_line_comment_suppresses_the_named_rule(self, tmp_path):
        path = _write(
            tmp_path,
            "import time\n"
            "t = time.time()  # reprolint: disable=RPR005\n",
        )
        findings, suppressed = lint_file(path, _all_rules())
        assert findings == []
        assert len(suppressed) == 1
        assert suppressed[0].rule == "RPR005"

    def test_unrelated_rule_id_does_not_suppress(self, tmp_path):
        path = _write(
            tmp_path,
            "import time\n"
            "t = time.time()  # reprolint: disable=RPR001\n",
        )
        findings, suppressed = lint_file(path, _all_rules())
        assert [finding.rule for finding in findings] == ["RPR005"]
        assert suppressed == []

    def test_comma_separated_ids(self, tmp_path):
        path = _write(
            tmp_path,
            "import time\n"
            "import random\n"
            "t = time.time() + random.random()"
            "  # reprolint: disable=RPR001, RPR005\n",
        )
        findings, suppressed = lint_file(path, _all_rules())
        assert findings == []
        assert {finding.rule for finding in suppressed} == {"RPR001", "RPR005"}


class TestBaseline:
    def test_round_trip_absorbs_all_findings(self, tmp_path):
        result = lint_paths([str(FIXTURES)])
        assert result.findings
        baseline = Baseline.from_findings(result.findings)
        target = tmp_path / "baseline.json"
        baseline.save(target)
        reloaded = Baseline.load(target)
        assert len(reloaded) == len(result.findings)

        again = lint_paths([str(FIXTURES)], baseline=reloaded)
        assert again.findings == []
        assert len(again.baselined) == len(result.findings)

    def test_new_occurrence_beyond_count_still_fails(self, tmp_path):
        source = "import time\nt = time.time()\n"
        path = _write(tmp_path, source)
        findings, _ = lint_file(path, _all_rules())
        baseline = Baseline.from_findings(findings)

        # The same grandfathered line appearing one extra time is *new*
        # debt: only `count` occurrences are absorbed.
        path.write_text(source + "u = time.time()\n", encoding="utf-8")
        findings, _ = lint_file(path, _all_rules())
        new, baselined = baseline.split(findings)
        assert len(baselined) == 1
        assert len(new) == 1

    def test_baseline_is_line_number_independent(self, tmp_path):
        path = _write(tmp_path, "import time\nt = time.time()\n")
        findings, _ = lint_file(path, _all_rules())
        baseline = Baseline.from_findings(findings)

        # Unrelated code added above moves the finding; the baseline
        # still recognises it by (path, rule, content).
        path.write_text(
            "import time\n\n\nGREETING = 'hi'\n\nt = time.time()\n",
            encoding="utf-8",
        )
        findings, _ = lint_file(path, _all_rules())
        new, baselined = baseline.split(findings)
        assert new == []
        assert len(baselined) == 1

    def test_malformed_baseline_raises_repro_error(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text('{"version": 99, "entries": []}', encoding="utf-8")
        with pytest.raises(ReproError):
            Baseline.load(target)
        target.write_text("not json", encoding="utf-8")
        with pytest.raises(ReproError):
            Baseline.load(target)

    def test_finding_round_trips_through_dict(self):
        finding = Finding(
            rule="RPR001", path="a/b.py", line=3, col=4,
            message="m", content="x = 1",
        )
        assert Finding.from_dict(finding.to_dict()) == finding
