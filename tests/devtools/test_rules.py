"""Per-rule fixture tests: each fixture trips exactly its rule.

The second test of each pair is the "fails without it" demonstration the
rule catalogue promises: running the full rule set *minus* the rule under
test on its fixture yields zero findings — so every violation the fixture
encodes is caught by that rule and nothing else.
"""

from pathlib import Path

import pytest

from repro.devtools import RULES, lint_file, lint_paths

FIXTURES = Path(__file__).parent / "fixtures"

RULE_FIXTURES = [
    ("RPR001", "rpr001_unseeded.py", 4),
    ("RPR002", "rpr002_view_write.py", 4),
    ("RPR003", "rpr003_artifact.py", 2),
    ("RPR004", "rpr004_deprecated.py", 2),
    ("RPR005", "rpr005_wall_clock.py", 3),
    ("RPR006", "rpr006_registration.py", 2),
    ("RPR007", "rpr007_mutable.py", 3),
    ("RPR008", "rpr008_store_write.py", 3),
    ("RPR009", "rpr009_clock.py", 3),
]


def _all_rules():
    return [RULES.get(rule_id) for rule_id in RULES]


@pytest.mark.parametrize("rule_id,fixture,expected", RULE_FIXTURES)
def test_fixture_trips_exactly_its_rule(rule_id, fixture, expected):
    findings, suppressed = lint_file(FIXTURES / fixture, _all_rules())
    assert suppressed == []
    assert len(findings) == expected
    assert {finding.rule for finding in findings} == {rule_id}


@pytest.mark.parametrize("rule_id,fixture,expected", RULE_FIXTURES)
def test_fixture_passes_without_its_rule(rule_id, fixture, expected):
    remaining = [
        RULES.get(other) for other in RULES if other != rule_id
    ]
    findings, _ = lint_file(FIXTURES / fixture, remaining)
    assert findings == []


def test_clean_fixture_has_no_findings():
    findings, suppressed = lint_file(FIXTURES / "clean.py", _all_rules())
    assert findings == []
    assert suppressed == []


def test_finding_locations_are_plausible():
    findings, _ = lint_file(
        FIXTURES / "rpr005_wall_clock.py", [RULES.get("RPR005")]
    )
    assert all(finding.line > 1 for finding in findings)
    assert all("time" in finding.content or "datetime" in finding.content
               for finding in findings)


def test_syntax_error_reported_as_rpr000(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n", encoding="utf-8")
    findings, _ = lint_file(bad, _all_rules())
    assert len(findings) == 1
    assert findings[0].rule == "RPR000"
    assert "syntax error" in findings[0].message


def test_lint_paths_walks_directories():
    result = lint_paths([str(FIXTURES)])
    assert result.files == len(list(FIXTURES.glob("*.py")))
    tripped = {finding.rule for finding in result.findings}
    assert tripped == {rule_id for rule_id, _, _ in RULE_FIXTURES}


def test_rule_registry_is_extensible():
    # The registry idiom of the scenario plugins, reused: registering the
    # same class twice is idempotent, and the catalogue iterates sorted.
    rule_ids = list(RULES)
    assert rule_ids == sorted(rule_ids)
    assert rule_ids[:1] == ["RPR001"]
    cls = RULES.get("RPR001")
    assert RULES.register("RPR001")(cls) is cls
