"""Devtools test fixtures: a registered deprecation for RPR004.

The builtin deprecation list is empty between deprecation cycles (the
``to_undirected`` / ``to_directed`` cycle completed and the wrappers are
gone), so the RPR004 fixtures exercise the extension path instead: the
names below are registered exactly as a library module would register
its own deprecations at import time.
"""

from repro.devtools.rules import register_deprecation

register_deprecation(
    "legacy_undirected",
    "use `graph.view(directed=False).to_networkx()`",
)
register_deprecation(
    "legacy_directed",
    "use `graph.view(directed=True).to_networkx()`",
)
