"""Fixture: the defaults and singleton below trip RPR007 (mutable state) only."""

CACHE = {}


def extend(items=[], labels=None, registry=dict()):
    items.append(labels)
    registry[labels] = items
    return items
