"""RPR008 fixture: non-atomic store writes + unversioned artifacts."""

import json


def overwrite_entry(store_path, payload):
    with open(store_path, "w") as handle:  # finding: non-atomic store write
        json.dump(payload, handle)


def dump_entry(store_dir, text):
    store_dir.write_text(text)  # finding: bypasses tmp+rename


class DamageReport:
    def __init__(self, loss):
        self.loss = loss

    def to_dict(self):  # finding: unversioned artifact document
        return {"loss": self.loss}


class PlainTable:
    def to_dict(self):  # ok: not an artifact class name
        return {"rows": 0}


def read_entry(store_path):
    with open(store_path) as handle:  # ok: read-only open
        return json.load(handle)


class VersionedReport:
    def to_dict(self):  # ok: stamps schema_version
        return {"schema_version": 1}
