"""Fixture: every statement below trips RPR001 (unseeded randomness) only."""

import random

import numpy as np

pick = random.choice([1, 2, 3])
noise = np.random.rand(3)
rng = np.random.default_rng()
entropy = np.random.SeedSequence().entropy
