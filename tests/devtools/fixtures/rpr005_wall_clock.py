"""Fixture: every call below trips RPR005 (calendar clock) only.

Calendar clocks exclusively — the timer family (monotonic,
perf_counter) belongs to RPR009's fixture.
"""

import time
from datetime import datetime


def stamp():
    started = time.time()
    nanos = time.time_ns()
    now = datetime.now()
    return started, nanos, now
