"""Fixture: every call below trips RPR005 (wall clock) only."""

import time
from datetime import datetime


def stamp():
    started = time.time()
    tick = time.perf_counter()
    now = datetime.now()
    return started, tick, now
