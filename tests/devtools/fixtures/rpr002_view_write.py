"""Fixture: every statement below trips RPR002 (GraphView write) only."""


def drain(view):
    view.balances[0] = 0.0
    view.capacities -= 1.0
    view.fee_base.fill(0.0)
    view.indices = None
