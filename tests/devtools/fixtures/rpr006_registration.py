"""Fixture: the registrations below trip RPR006 (registration discipline) only."""

KEY = "late-topology"


def install(register_topology):
    @register_topology(KEY)
    def build():
        return None

    return build
