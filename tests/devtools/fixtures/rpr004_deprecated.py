"""Fixture: both calls below trip RPR004 (deprecated API) only.

``legacy_undirected`` / ``legacy_directed`` are registered on the
deprecation list by the devtools conftest (the builtin list is empty
between deprecation cycles).
"""


def materialise(graph):
    undirected = graph.legacy_undirected()
    directed = legacy_directed(graph)
    return undirected, directed
