"""Fixture: both calls below trip RPR004 (deprecated API) only."""


def materialise(graph):
    undirected = graph.to_undirected()
    directed = graph.to_directed()
    return undirected, directed
