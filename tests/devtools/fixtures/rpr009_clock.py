"""Fixture: trips RPR009 (timer reads outside repro.obs.clock) 3 times.

Only timer-family calls — no calendar clocks — so RPR005 stays quiet
and the fixture trips exactly one rule.
"""

import time


def measure():
    started = time.monotonic()  # finding 1
    tick = time.perf_counter()  # finding 2
    nanos = time.perf_counter_ns()  # finding 3
    return started, tick, nanos
