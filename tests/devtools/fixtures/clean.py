"""Fixture: deliberately invariant-respecting code — zero findings."""

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

FROZEN_TABLE = {"star": 1, "path": 2}


@dataclass(frozen=True)
class TinyReport:
    name: str
    values: Tuple[float, ...] = ()


def sample(seed: Optional[int] = None, count: int = 3) -> np.ndarray:
    rng = np.random.default_rng(0 if seed is None else seed)
    return rng.standard_normal(count)


def scale(view, factor: float) -> np.ndarray:
    balances = view.balances.copy()
    balances *= factor
    return balances
