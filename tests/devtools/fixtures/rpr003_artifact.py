"""Fixture: both dataclasses below trip RPR003 (artifact contract) only."""

from dataclasses import dataclass

import numpy as np


@dataclass
class LeakyReport:
    total: float


@dataclass(frozen=True)
class ArrayRecord:
    data: np.ndarray
