"""The ``repro lint`` command: output formats, exit codes, clean tree."""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def test_clean_tree_exits_zero():
    """`python -m repro lint src/` on the committed tree: exit 0.

    Run from the repo root in a fresh process, so the committed baseline
    and the real package layout are exercised exactly as CI runs them.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "src/"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_findings_exit_two_human(capsys):
    code = main([
        "lint", str(FIXTURES / "rpr005_wall_clock.py"), "--no-baseline",
    ])
    out = capsys.readouterr().out
    assert code == 2
    assert "RPR005" in out
    assert "finding(s)" in out


def test_clean_path_exits_zero(capsys):
    code = main([
        "lint", str(FIXTURES / "clean.py"), "--no-baseline",
    ])
    assert code == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_json_output_schema(capsys):
    code = main([
        "lint", str(FIXTURES), "--no-baseline", "--format", "json",
    ])
    assert code == 2
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == 1
    assert document["files"] == len(list(FIXTURES.glob("*.py")))
    assert document["counts"]["findings"] == len(document["findings"])
    assert document["counts"]["baselined"] == 0
    for finding in document["findings"]:
        assert set(finding) == {
            "rule", "path", "line", "col", "message", "content",
        }
        assert finding["rule"].startswith("RPR")
        assert finding["line"] >= 1
    # Deterministic output: findings sorted by location.
    keys = [
        (f["path"], f["line"], f["col"], f["rule"])
        for f in document["findings"]
    ]
    assert keys == sorted(keys)


def test_select_restricts_rules(capsys):
    code = main([
        "lint", str(FIXTURES), "--no-baseline",
        "--select", "RPR004", "--format", "json",
    ])
    assert code == 2
    document = json.loads(capsys.readouterr().out)
    assert {f["rule"] for f in document["findings"]} == {"RPR004"}


def test_write_baseline_then_clean(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    code = main([
        "lint", str(FIXTURES), "--baseline", str(baseline),
        "--write-baseline",
    ])
    assert code == 0
    assert baseline.exists()
    capsys.readouterr()

    code = main(["lint", str(FIXTURES), "--baseline", str(baseline)])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 finding(s)" in out


def test_list_rules(capsys):
    code = main(["lint", "--list-rules"])
    out = capsys.readouterr().out
    assert code == 0
    for rule_id in ("RPR001", "RPR007"):
        assert rule_id in out


def test_unknown_rule_is_cli_error(capsys):
    code = main(["lint", str(FIXTURES), "--select", "RPR999"])
    assert code == 2
    assert "error:" in capsys.readouterr().err
