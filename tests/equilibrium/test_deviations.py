"""Unit tests for deviation generation and application."""

import pytest

from repro.equilibrium.deviations import (
    Deviation,
    apply_deviation,
    exhaustive_deviations,
    structured_deviations,
)
from repro.equilibrium.topologies import CENTER, star
from repro.errors import InvalidParameter, NodeNotFound
from repro.network.graph import ChannelGraph


@pytest.fixture
def star4() -> ChannelGraph:
    return star(4)


class TestApplyDeviation:
    def test_add_channel(self, star4):
        deviation = Deviation(remove=frozenset(), add=frozenset({"v001"}))
        out = apply_deviation(star4, "v000", deviation)
        assert out.has_channel("v000", "v001")
        assert not star4.has_channel("v000", "v001")  # original untouched

    def test_remove_channel(self, star4):
        deviation = Deviation(remove=frozenset({CENTER}), add=frozenset())
        out = apply_deviation(star4, "v000", deviation)
        assert not out.has_channel("v000", CENTER)
        assert out.degree("v000") == 0

    def test_rewire(self, star4):
        deviation = Deviation(
            remove=frozenset({CENTER}), add=frozenset({"v001", "v002"})
        )
        out = apply_deviation(star4, "v000", deviation)
        assert out.degree("v000") == 2

    def test_add_balance_parameter(self, star4):
        deviation = Deviation(remove=frozenset(), add=frozenset({"v001"}))
        out = apply_deviation(star4, "v000", deviation, balance=3.0)
        channel = out.channels_between("v000", "v001")[0]
        assert channel.capacity == pytest.approx(6.0)

    def test_rejects_removing_missing_edge(self, star4):
        deviation = Deviation(remove=frozenset({"v001"}), add=frozenset())
        with pytest.raises(InvalidParameter):
            apply_deviation(star4, "v000", deviation)

    def test_rejects_duplicate_add(self, star4):
        deviation = Deviation(remove=frozenset(), add=frozenset({CENTER}))
        with pytest.raises(InvalidParameter):
            apply_deviation(star4, "v000", deviation)

    def test_rejects_self_add(self, star4):
        deviation = Deviation(remove=frozenset(), add=frozenset({"v000"}))
        with pytest.raises(InvalidParameter):
            apply_deviation(star4, "v000", deviation)

    def test_unknown_node(self, star4):
        with pytest.raises(NodeNotFound):
            apply_deviation(
                star4, "ghost", Deviation(frozenset(), frozenset({"v000"}))
            )


class TestStructuredFamily:
    def test_no_null_deviation(self, star4):
        for deviation in structured_deviations(star4, "v000", seed=0):
            assert not deviation.is_null

    def test_no_duplicates(self, star4):
        deviations = structured_deviations(star4, "v000", seed=0)
        keys = [(d.remove, d.add) for d in deviations]
        assert len(keys) == len(set(keys))

    def test_includes_paper_classes(self, star4):
        """The Thm 8 proof's strategy classes must all be present."""
        deviations = set(
            (d.remove, d.add) for d in structured_deviations(star4, "v000", seed=0)
        )
        others = frozenset({"v001", "v002", "v003"})
        # class 2: connect to all other leaves
        assert (frozenset(), others) in deviations
        # class 3: connect to all leaves, drop the center
        assert (frozenset({CENTER}), others) in deviations
        # class 4: connect to one other leaf
        assert (frozenset(), frozenset({"v001"})) in deviations
        # removal of the only channel
        assert (frozenset({CENTER}), frozenset()) in deviations

    def test_all_deviations_applicable(self, star4):
        for deviation in structured_deviations(star4, "v000", seed=1):
            out = apply_deviation(star4, "v000", deviation)
            assert out is not None

    def test_unknown_node(self, star4):
        with pytest.raises(NodeNotFound):
            structured_deviations(star4, "ghost")


class TestExhaustiveFamily:
    def test_count_for_leaf(self, star4):
        # leaf: 1 neighbor, 3 non-neighbors -> 2 * 8 - 1 (null excluded)
        deviations = exhaustive_deviations(star4, "v000")
        assert len(deviations) == 2 * 8 - 1

    def test_structured_subset_of_exhaustive_for_small(self, star4):
        struct = set(
            (d.remove, d.add)
            for d in structured_deviations(star4, "v000", seed=0)
        )
        exhaust = set(
            (d.remove, d.add) for d in exhaustive_deviations(star4, "v000")
        )
        assert struct <= exhaust
