"""Unit tests for social welfare and price of anarchy."""

import math

import pytest

from repro.equilibrium.conditions import harmonic
from repro.equilibrium.node_utility import NetworkGameModel
from repro.equilibrium.topologies import circle, path, star
from repro.equilibrium.welfare import (
    evaluate_topologies,
    price_of_anarchy,
    social_welfare,
)
from repro.errors import InvalidParameter
from repro.network.graph import ChannelGraph


def thm9_model(n: int) -> NetworkGameModel:
    h = harmonic(n, 2.0)
    return NetworkGameModel(a=0.9 * h, b=0.9 * h, edge_cost=1.0, zipf_s=2.0)


class TestSocialWelfare:
    def test_sums_node_utilities(self):
        model = NetworkGameModel(a=0.3, b=0.3, edge_cost=0.2, zipf_s=1.0)
        graph = star(4)
        expected = sum(
            model.node_utility(graph, node) for node in graph.nodes
        )
        assert social_welfare(graph, model) == pytest.approx(expected)

    def test_disconnected_graph_minus_inf(self):
        model = NetworkGameModel()
        graph = ChannelGraph.from_edges([("a", "b")])
        graph.add_node("hermit")
        assert social_welfare(graph, model) == -math.inf

    def test_star_beats_path_on_fees(self):
        """Same edge count, but the star's short distances win welfare."""
        model = NetworkGameModel(a=1.0, b=0.0, edge_cost=0.0, zipf_s=1.0)
        n = 5
        assert social_welfare(star(n - 1), model) > social_welfare(
            path(n), model
        )


class TestEvaluateTopologies:
    def test_reports_all_candidates(self):
        model = thm9_model(4)
        results = evaluate_topologies(
            [("star", star(4)), ("path", path(5)), ("circle", circle(5))],
            model,
            seed=0,
        )
        assert [r.name for r in results] == ["star", "path", "circle"]
        star_result = results[0]
        assert star_result.is_nash


class TestPriceOfAnarchy:
    def test_poa_at_least_one_when_star_optimal_and_stable(self):
        model = thm9_model(4)
        candidates = [
            ("star", star(4)),
            ("path", path(5)),
            ("circle", circle(5)),
        ]
        poa, results = price_of_anarchy(candidates, model, seed=0)
        stable = [r for r in results if r.is_nash]
        assert stable
        # with the star both stable and welfare-maximal, PoA is modest
        best = max(r.welfare for r in results)
        assert poa >= 1.0 or best <= 0

    def test_undefined_without_stable_candidate(self):
        # path is never a NE for n >= 4 at these parameters
        model = NetworkGameModel(a=1.0, b=1.0, edge_cost=1.0, zipf_s=0.0)
        with pytest.raises(InvalidParameter):
            price_of_anarchy([("path", path(5))], model, seed=0)
