"""Unit tests for the closed-form Thm 7/8/9 conditions."""


import pytest

from repro.equilibrium.conditions import (
    harmonic,
    hub_diameter_bound,
    star_ne_closed_form,
    star_ne_conditions,
    star_ne_large_s_thm7,
    star_ne_sufficient_thm9,
)
from repro.errors import InvalidParameter


class TestHarmonic:
    def test_s_one(self):
        assert harmonic(4, 1.0) == pytest.approx(1 + 0.5 + 1 / 3 + 0.25)

    def test_s_zero_is_n(self):
        assert harmonic(7, 0.0) == pytest.approx(7.0)

    def test_s_two_bounded_by_two(self):
        """Used in Thm 9's proof: H^s_n <= 2 for s >= 2."""
        for n in [2, 10, 100, 1000]:
            assert harmonic(n, 2.0) <= 2.0

    def test_empty(self):
        assert harmonic(0, 1.0) == 0.0

    def test_rejects_negative_n(self):
        with pytest.raises(InvalidParameter):
            harmonic(-1, 1.0)


class TestTheorem8Conditions:
    def test_holds_with_generous_edge_cost(self):
        assert star_ne_closed_form(n=6, s=2.0, a=0.1, b=0.1, l=1.0)

    def test_fails_with_tiny_edge_cost_high_traffic(self):
        assert not star_ne_closed_form(n=6, s=0.5, a=5.0, b=5.0, l=0.01)

    def test_condition1_binding_for_large_a(self):
        # huge a with s=0: condition 1 is a/H <= l
        conditions = star_ne_conditions(n=5, s=0.0, a=100.0, b=0.0, l=1.0)
        assert conditions.condition1_margin < 0

    def test_margins_structure(self):
        conditions = star_ne_conditions(n=6, s=1.0, a=0.5, b=0.5, l=1.0)
        assert len(conditions.condition2_margins) == 4  # i = 2..5
        assert len(conditions.condition3_margins) == 4
        assert conditions.binding_condition  # non-empty label

    def test_rejects_tiny_star(self):
        with pytest.raises(InvalidParameter):
            star_ne_conditions(n=1, s=1.0, a=1.0, b=1.0, l=1.0)

    def test_monotone_in_l(self):
        """Larger edge cost can only help the star stay a NE."""
        point = dict(n=8, s=1.5, a=1.0, b=1.0)
        held = [
            star_ne_closed_form(l=l, **point) for l in [0.01, 0.1, 1.0, 10.0]
        ]
        # once it holds it keeps holding as l grows
        first_true = held.index(True) if True in held else len(held)
        assert all(held[first_true:])


class TestTheorem9Sufficiency:
    def test_thm9_implies_thm8(self):
        """Whenever Thm 9's premise holds, Thm 8's conditions must hold."""
        for n in [2, 3, 5, 8, 12]:
            for s in [2.0, 2.5, 3.0]:
                h = harmonic(n, s)
                a = b = 0.99 * h  # a/H = b/H = 0.99 <= l = 1
                if star_ne_sufficient_thm9(n, s, a, b, 1.0):
                    assert star_ne_closed_form(n, s, a, b, 1.0), (n, s)

    def test_requires_s_at_least_two(self):
        assert not star_ne_sufficient_thm9(5, 1.9, 0.1, 0.1, 1.0)

    def test_requires_bounded_traffic(self):
        h = harmonic(5, 2.0)
        assert not star_ne_sufficient_thm9(5, 2.0, 2.0 * h, 0.1, 1.0)


class TestTheorem7LargeS:
    def test_needs_four_leaves(self):
        assert not star_ne_large_s_thm7(3, 100.0)
        assert star_ne_large_s_thm7(4, 100.0)

    def test_needs_negligible_two_pow_minus_s(self):
        assert not star_ne_large_s_thm7(5, 2.0)
        assert star_ne_large_s_thm7(5, 40.0)


class TestTheorem6Bound:
    def test_formula(self):
        bound = hub_diameter_bound(
            onchain_cost=2.0, epsilon=0.0, lambda_e=0.0, fee=1.0,
            p_min=0.1, total_tx_rate=10.0,
        )
        # 2 * (1 - 0) / (0.1 * 10 * 1) + 1 = 3
        assert bound == pytest.approx(3.0)

    def test_higher_traffic_tightens(self):
        loose = hub_diameter_bound(2.0, 0.0, 0.0, 1.0, 0.1, 5.0)
        tight = hub_diameter_bound(2.0, 0.0, 0.0, 1.0, 0.1, 50.0)
        assert tight < loose

    def test_revenue_tightens(self):
        without = hub_diameter_bound(2.0, 0.0, 0.0, 1.0, 0.1, 10.0)
        with_rev = hub_diameter_bound(2.0, 0.0, 0.5, 1.0, 0.1, 10.0)
        assert with_rev < without

    def test_rejects_zero_denominator(self):
        with pytest.raises(InvalidParameter):
            hub_diameter_bound(2.0, 0.0, 0.0, 1.0, 0.0, 10.0)
