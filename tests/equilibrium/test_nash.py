"""Tests for NE checking — reproduces Theorems 7, 9, 10, 11 in miniature."""

import pytest

from repro.equilibrium.conditions import harmonic
from repro.equilibrium.nash import (
    best_response,
    best_response_dynamics,
    check_nash,
)
from repro.equilibrium.node_utility import NetworkGameModel
from repro.equilibrium.topologies import CENTER, circle, path, star
from repro.errors import InvalidParameter


def thm9_model(n: int, s: float = 2.0) -> NetworkGameModel:
    """Parameters satisfying Thm 9: s >= 2, a/H, b/H <= l."""
    l = 1.0
    h = harmonic(n, s)
    return NetworkGameModel(a=0.9 * l * h, b=0.9 * l * h, edge_cost=l, zipf_s=s)


class TestStarStability:
    @pytest.mark.parametrize("n", [4, 5, 6])
    def test_star_ne_under_thm9_params(self, n):
        model = thm9_model(n)
        report = check_nash(star(n), model, mode="structured", seed=0)
        assert report.is_nash

    def test_star_ne_exhaustive_small(self):
        model = thm9_model(4)
        report = check_nash(star(4), model, mode="exhaustive")
        assert report.is_nash

    def test_star_unstable_when_edges_cheap_and_traffic_high(self):
        """With huge b, leaves want to become hubs themselves."""
        model = NetworkGameModel(a=0.1, b=50.0, edge_cost=0.01, zipf_s=0.5)
        report = check_nash(star(5), model, mode="structured", seed=0)
        assert not report.is_nash

    def test_center_never_improves(self):
        model = thm9_model(5)
        response = best_response(star(5), CENTER, model, mode="structured", seed=0)
        assert not response.can_improve


class TestPathNeverNE:
    """Thm 10: the path graph is never a Nash equilibrium.

    The theorem's argument — endpoints strictly prefer rewiring to a
    non-endpoint — needs a non-endpoint alternative to exist, i.e. n >= 4.
    For n = 3 the only alternative peer is the other endpoint and the
    rewire is utility-neutral by symmetry (documented edge case below).
    """

    @pytest.mark.parametrize("n", [4, 5, 6])
    @pytest.mark.parametrize("s", [0.0, 1.0, 2.5])
    def test_path_not_ne(self, n, s):
        model = NetworkGameModel(a=1.0, b=1.0, edge_cost=1.0, zipf_s=s)
        report = check_nash(path(n), model, mode="structured", seed=0)
        assert not report.is_nash

    def test_three_node_path_edge_case(self):
        """n = 3: endpoints are indifferent, so the structured family finds
        no *strict* improvement at these parameters (Thm 10 needs n >= 4)."""
        model = NetworkGameModel(a=1.0, b=1.0, edge_cost=1.0, zipf_s=1.0)
        report = check_nash(path(3), model, mode="exhaustive")
        assert report.is_nash

    def test_three_node_path_unstable_with_cheap_edges(self):
        """With cheap edges even n = 3 breaks: an endpoint adds the chord."""
        model = NetworkGameModel(a=1.0, b=1.0, edge_cost=0.01, zipf_s=1.0)
        report = check_nash(path(3), model, mode="exhaustive")
        assert not report.is_nash

    def test_endpoint_improves_by_rewiring(self):
        """The Thm 10 argument: an endpoint prefers a non-endpoint peer."""
        model = NetworkGameModel(a=1.0, b=1.0, edge_cost=1.0, zipf_s=0.0)
        response = best_response(
            path(5), "v000", model, mode="structured", seed=0
        )
        assert response.can_improve


class TestCircleNotNE:
    """Thm 11: the circle is not a NE for sufficiently large n."""

    @pytest.mark.parametrize("n", [8, 10, 12])
    def test_large_circle_not_ne(self, n):
        model = NetworkGameModel(a=1.0, b=1.0, edge_cost=0.05, zipf_s=0.0)
        report = check_nash(circle(n), model, mode="structured", seed=0)
        assert not report.is_nash

    def test_chord_improves_on_large_circle(self):
        model = NetworkGameModel(a=1.0, b=1.0, edge_cost=0.05, zipf_s=0.0)
        response = best_response(
            circle(10), "v000", model, mode="structured", seed=0
        )
        assert response.can_improve
        assert response.best_deviation.add  # adds at least one chord


class TestReportsAndDynamics:
    def test_report_lists_deviators(self):
        model = NetworkGameModel(a=1.0, b=1.0, edge_cost=1.0, zipf_s=0.0)
        report = check_nash(path(4), model, mode="structured", seed=0)
        assert report.deviating_nodes
        assert report.max_gain() > 0

    def test_nodes_restriction(self):
        model = thm9_model(5)
        report = check_nash(
            star(5), model, mode="structured", seed=0, nodes=["v000", CENTER]
        )
        assert set(report.responses) == {"v000", CENTER}

    def test_invalid_mode(self):
        model = NetworkGameModel()
        with pytest.raises(InvalidParameter):
            check_nash(star(3), model, mode="bogus")

    def test_dynamics_fixpoint_on_stable_star(self):
        model = thm9_model(5)
        final, rounds, converged = best_response_dynamics(
            star(5), model, max_rounds=3, seed=0
        )
        assert converged
        assert rounds == 1
        assert final.num_channels() == star(5).num_channels()

    def test_dynamics_changes_unstable_path(self):
        model = NetworkGameModel(a=1.0, b=1.0, edge_cost=1.0, zipf_s=0.0)
        final, _rounds, _converged = best_response_dynamics(
            path(4), model, max_rounds=2, seed=0
        )
        # some rewiring must have happened
        original_edges = {
            frozenset(c.endpoints) for c in path(4).channels
        }
        final_edges = {frozenset(c.endpoints) for c in final.channels}
        assert final_edges != original_edges
