"""Unit tests for the Thm 6 hub-path analysis."""

import math


from repro.equilibrium.diameter import (
    analyse_hub_path,
    longest_shortest_path_through,
)
from repro.equilibrium.topologies import CENTER, circle, path, star
from repro.params import ModelParameters


class TestLongestShortestPath:
    def test_star_center(self):
        result = longest_shortest_path_through(star(5), CENTER)
        assert len(result) - 1 == 2  # leaf - center - leaf

    def test_path_middle(self):
        result = longest_shortest_path_through(path(7), "v003")
        assert len(result) - 1 == 6  # the whole path

    def test_path_endpoint(self):
        result = longest_shortest_path_through(path(7), "v000")
        assert len(result) - 1 == 6

    def test_circle(self):
        result = longest_shortest_path_through(circle(8), "v000")
        assert len(result) - 1 == 4  # half the circle

    def test_isolated_hub(self):
        from repro.network.graph import ChannelGraph

        graph = ChannelGraph()
        graph.add_node("solo")
        assert longest_shortest_path_through(graph, "solo") == ["solo"]


class TestAnalyseHubPath:
    def test_star_within_bound_trivially(self):
        params = ModelParameters(total_tx_rate=10.0, fee_avg=0.5)
        analysis = analyse_hub_path(star(6), CENTER, params)
        assert analysis.measured_d == 2
        assert math.isinf(analysis.bound)
        assert analysis.within_bound

    def test_long_path_analysis_produces_finite_bound(self):
        params = ModelParameters(
            onchain_cost=0.2, total_tx_rate=100.0, fee_avg=0.5, zipf_s=0.5
        )
        analysis = analyse_hub_path(path(9), "v004", params)
        assert analysis.measured_d == 8
        assert analysis.lambda_e >= 0.0
        assert 0 < analysis.p_min < 1
        assert not math.isinf(analysis.bound)

    def test_unstable_long_path_violates_cheap_bound(self):
        """A long path with huge traffic is NOT stable: the bound is far
        below the measured diameter, which is Thm 6's contrapositive."""
        params = ModelParameters(
            onchain_cost=0.01, total_tx_rate=1000.0, fee_avg=1.0, zipf_s=0.0
        )
        analysis = analyse_hub_path(path(11), "v005", params)
        assert not analysis.within_bound

    def test_expensive_chain_within_bound(self):
        """With enormous on-chain cost, even long paths satisfy the bound
        (no one would pay for the chord), consistent with stability."""
        params = ModelParameters(
            onchain_cost=1e6, total_tx_rate=10.0, fee_avg=0.1, zipf_s=0.5
        )
        analysis = analyse_hub_path(path(9), "v004", params)
        assert analysis.within_bound
