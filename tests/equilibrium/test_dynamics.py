"""best_response_dynamics: DynamicsReport semantics and convergence."""

import pytest

from repro.equilibrium import (
    DynamicsReport,
    NetworkGameModel,
    best_response_dynamics,
    check_nash,
    circle,
    path,
    star,
)


def thm9_star_model() -> NetworkGameModel:
    """Parameters inside the star's Thm 9 stability region."""
    return NetworkGameModel(a=0.1, b=0.1, edge_cost=1.0, zipf_s=2.0)


def edge_sets(graph):
    return {frozenset(c.endpoints) for c in graph.channels}


class TestReportShape:
    def test_returns_report_with_tuple_compat(self):
        report = best_response_dynamics(star(5), thm9_star_model(), seed=0)
        assert isinstance(report, DynamicsReport)
        final, rounds, converged = report  # historical unpacking
        assert final is report.graph
        assert rounds == report.rounds
        assert converged is report.converged

    def test_records_one_move_tuple_per_round(self):
        report = best_response_dynamics(
            path(4),
            NetworkGameModel(a=1.0, b=1.0, edge_cost=1.0, zipf_s=0.0),
            max_rounds=6,
            seed=0,
        )
        assert len(report.moves) == report.rounds
        assert report.total_moves == sum(len(r) for r in report.moves)
        # a converged run's final round is the quiet one
        assert report.converged
        assert report.moves[-1] == ()
        first = report.moves[0][0]
        assert first.gain > 0
        assert not first.deviation.is_null


class TestConvergence:
    def test_fixpoint_on_stable_star(self):
        model = thm9_star_model()
        report = best_response_dynamics(star(5), model, max_rounds=5, seed=0)
        assert report.converged
        assert report.rounds == 1
        assert report.total_moves == 0
        assert edge_sets(report.graph) == edge_sets(star(5))

    def test_circle_converges_to_nash_fixpoint(self):
        model = thm9_star_model()
        report = best_response_dynamics(circle(5), model, max_rounds=8, seed=0)
        assert report.converged
        assert report.total_moves > 0  # the circle is not stable here
        # the reached fixpoint really is a rest point of the dynamics
        assert check_nash(
            report.graph, model, mode="structured", seed=0
        ).is_nash

    def test_star_emerges_from_circle(self):
        report = best_response_dynamics(
            circle(5), thm9_star_model(), max_rounds=8, seed=0
        )
        degrees = sorted(
            len(report.graph.neighbors(n)) for n in report.graph.nodes
        )
        assert degrees == [1, 1, 1, 1, 4]

    def test_max_rounds_reports_non_convergence(self):
        model = NetworkGameModel(a=1.0, b=1.0, edge_cost=1.0, zipf_s=0.0)
        report = best_response_dynamics(path(4), model, max_rounds=1, seed=0)
        assert not report.converged
        assert report.rounds == 1
        assert len(report.moves) == 1
        assert report.total_moves > 0


class TestDeterminismAndModes:
    def test_seed_determinism(self):
        model = thm9_star_model()
        a = best_response_dynamics(circle(6), model, max_rounds=6, seed=3)
        b = best_response_dynamics(circle(6), model, max_rounds=6, seed=3)
        assert edge_sets(a.graph) == edge_sets(b.graph)
        assert a.rounds == b.rounds
        assert a.converged == b.converged
        assert [
            [(m.node, m.deviation) for m in round_moves]
            for round_moves in a.moves
        ] == [
            [(m.node, m.deviation) for m in round_moves]
            for round_moves in b.moves
        ]

    @pytest.mark.parametrize("fixture", [path(4), circle(4)])
    def test_structured_agrees_with_exhaustive_on_tiny_graphs(self, fixture):
        model = NetworkGameModel(a=1.0, b=1.0, edge_cost=1.0, zipf_s=0.0)
        structured = best_response_dynamics(
            fixture, model, max_rounds=6, mode="structured", seed=0
        )
        exhaustive = best_response_dynamics(
            fixture, model, max_rounds=6, mode="exhaustive", seed=0
        )
        assert structured.converged and exhaustive.converged
        assert edge_sets(structured.graph) == edge_sets(exhaustive.graph)
        assert structured.rounds == exhaustive.rounds
