"""Unit tests for the Section IV topology builders."""

import networkx as nx
import pytest

from repro.equilibrium.topologies import (
    CENTER,
    circle,
    complete,
    node_labels,
    path,
    star,
)
from repro.errors import InvalidParameter


class TestStar:
    def test_counts(self):
        graph = star(6)
        assert len(graph) == 7
        assert graph.num_channels() == 6

    def test_center_degree(self):
        graph = star(5)
        assert graph.degree(CENTER) == 5
        for node in graph.nodes:
            if node != CENTER:
                assert graph.degree(node) == 1

    def test_rejects_zero_leaves(self):
        with pytest.raises(InvalidParameter):
            star(0)

    def test_balance_applied(self):
        graph = star(3, balance=2.5)
        assert all(c.capacity == 5.0 for c in graph.channels)


class TestPath:
    def test_structure(self):
        graph = path(5)
        assert len(graph) == 5
        assert graph.num_channels() == 4
        degrees = sorted(graph.degree(v) for v in graph.nodes)
        assert degrees == [1, 1, 2, 2, 2]

    def test_rejects_single_node(self):
        with pytest.raises(InvalidParameter):
            path(1)


class TestCircle:
    def test_structure(self):
        graph = circle(6)
        assert len(graph) == 6
        assert graph.num_channels() == 6
        assert all(graph.degree(v) == 2 for v in graph.nodes)

    def test_is_cycle(self):
        undirected = circle(8).view(directed=False).to_networkx()
        assert nx.is_connected(undirected)
        assert all(d == 2 for _, d in undirected.degree())

    def test_rejects_too_small(self):
        with pytest.raises(InvalidParameter):
            circle(2)


class TestComplete:
    def test_structure(self):
        graph = complete(5)
        assert graph.num_channels() == 10
        assert all(graph.degree(v) == 4 for v in graph.nodes)

    def test_rejects_single(self):
        with pytest.raises(InvalidParameter):
            complete(1)


class TestLabels:
    def test_node_labels_match_builders(self):
        labels = node_labels(4)
        graph = path(4)
        assert set(labels) == set(graph.nodes)
