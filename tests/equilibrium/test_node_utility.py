"""Unit tests for the Section IV node utility (NetworkGameModel)."""

import math

import pytest

from repro.equilibrium.conditions import harmonic
from repro.equilibrium.node_utility import NetworkGameModel
from repro.equilibrium.topologies import CENTER, circle, path, star
from repro.errors import InvalidParameter, NodeNotFound
from repro.network.graph import ChannelGraph
from repro.params import ModelParameters


class TestComponents:
    def test_leaf_has_zero_revenue(self):
        model = NetworkGameModel(a=1.0, b=1.0, edge_cost=0.5, zipf_s=1.0)
        graph = star(5)
        assert model.revenue(graph, "v000") == 0.0

    def test_center_revenue_positive(self):
        model = NetworkGameModel(a=1.0, b=1.0, edge_cost=0.5, zipf_s=1.0)
        graph = star(5)
        assert model.revenue(graph, CENTER) > 0.0

    def test_star_leaf_fees_closed_form(self):
        """Thm 8 proof, default strategy: E_fees = a * (H^s_n - 1) / H^s_n."""
        n, s, a = 6, 1.3, 2.0
        model = NetworkGameModel(a=a, b=1.0, edge_cost=0.5, zipf_s=s)
        graph = star(n)
        expected = a * (harmonic(n, s) - 1.0) / harmonic(n, s)
        assert model.fees(graph, "v000") == pytest.approx(expected)

    def test_center_fees_zero_intermediaries(self):
        """The center reaches every node directly: zero intermediary fees."""
        model = NetworkGameModel(a=1.0, b=1.0, edge_cost=0.5, zipf_s=1.0)
        assert model.fees(star(5), CENTER) == pytest.approx(0.0)

    def test_cost_scales_with_degree(self):
        model = NetworkGameModel(a=1.0, b=1.0, edge_cost=0.7, zipf_s=1.0)
        graph = star(5)
        assert model.cost(graph, CENTER) == pytest.approx(3.5)
        assert model.cost(graph, "v000") == pytest.approx(0.7)

    def test_disconnected_node_utility_minus_inf(self):
        model = NetworkGameModel()
        graph = ChannelGraph.from_edges([("a", "b")])
        graph.add_node("hermit")
        assert model.node_utility(graph, "hermit") == -math.inf

    def test_unknown_node(self):
        model = NetworkGameModel()
        with pytest.raises(NodeNotFound):
            model.node_utility(star(3), "ghost")

    def test_breakdown_consistent(self):
        model = NetworkGameModel(a=0.5, b=0.8, edge_cost=0.3, zipf_s=1.1)
        graph = circle(6)
        node = "v002"
        breakdown = model.breakdown(graph, node)
        assert breakdown.utility == pytest.approx(
            model.node_utility(graph, node)
        )
        assert breakdown.utility == pytest.approx(
            breakdown.revenue - breakdown.fees - breakdown.cost
        )


class TestSymmetry:
    def test_circle_nodes_symmetric(self):
        model = NetworkGameModel(a=1.0, b=1.0, edge_cost=0.4, zipf_s=1.5)
        graph = circle(7)
        utilities = set(
            round(model.node_utility(graph, v), 9) for v in graph.nodes
        )
        assert len(utilities) == 1

    def test_star_leaves_symmetric(self):
        model = NetworkGameModel(a=1.0, b=1.0, edge_cost=0.4, zipf_s=1.5)
        graph = star(5)
        utilities = set(
            round(model.node_utility(graph, v), 9)
            for v in graph.nodes
            if v != CENTER
        )
        assert len(utilities) == 1

    def test_path_interior_beats_endpoint_on_fees(self):
        model = NetworkGameModel(a=1.0, b=0.0, edge_cost=0.0, zipf_s=0.0)
        graph = path(5)
        endpoint_fees = model.fees(graph, "v000")
        middle_fees = model.fees(graph, "v002")
        assert middle_fees < endpoint_fees


class TestValidationAndFactories:
    def test_rejects_negative_params(self):
        with pytest.raises(InvalidParameter):
            NetworkGameModel(a=-1.0)
        with pytest.raises(InvalidParameter):
            NetworkGameModel(zipf_s=-0.1)

    def test_from_parameters(self):
        params = ModelParameters(
            user_tx_rate=4.0, fee_out_avg=0.5, total_tx_rate=10.0, fee_avg=0.2
        )
        model = NetworkGameModel.from_parameters(params, edge_cost=0.9)
        assert model.a == pytest.approx(2.0)
        assert model.b == pytest.approx(2.0)
        assert model.edge_cost == 0.9

    def test_all_utilities(self):
        model = NetworkGameModel(a=0.2, b=0.2, edge_cost=0.1, zipf_s=1.0)
        graph = star(4)
        utilities = model.all_utilities(graph)
        assert set(utilities) == set(graph.nodes)
