"""The shared perf-regression gate (benchmarks/perf/gate.py)."""

import importlib.util
import json
import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parents[1]
GATE = REPO / "benchmarks" / "perf" / "gate.py"

spec = importlib.util.spec_from_file_location("perf_gate", GATE)
gate = importlib.util.module_from_spec(spec)
spec.loader.exec_module(gate)


def doc(benchmark, rows):
    return {"benchmark": benchmark, "results": rows}


class TestCheckFloors:
    def test_passes_within_floor(self):
        baseline = doc("simulation", [
            {"n": 200, "speedup": 6.0, "batched_payments_per_sec": 2000.0},
        ])
        results = doc("simulation", [
            {"n": 200, "speedup": 4.5, "batched_payments_per_sec": 500.0},
        ])
        assert gate.check_floors(results, baseline, 0.7, 0.1) == []

    def test_fails_below_relative_floor(self):
        baseline = doc("simulation", [
            {"n": 200, "speedup": 6.0, "batched_payments_per_sec": 2000.0},
        ])
        results = doc("simulation", [
            {"n": 200, "speedup": 3.0, "batched_payments_per_sec": 2000.0},
        ])
        failures = gate.check_floors(results, baseline, 0.7, 0.1)
        assert len(failures) == 1
        assert "speedup" in failures[0]

    def test_missing_metric_fails_loudly(self):
        """A renamed/dropped metric must not silently disable its floor."""
        baseline = doc("simulation", [
            {"n": 200, "speedup": 6.0, "batched_payments_per_sec": 2000.0},
        ])
        results = doc("simulation", [
            {"n": 200, "batched_payments_per_sec": 2000.0},
        ])
        failures = gate.check_floors(results, baseline, 0.7, 0.1)
        assert len(failures) == 1
        assert "missing" in failures[0]

    def test_fails_below_absolute_floor(self):
        baseline = doc("attacks", [
            {"strategy": "slow-jamming", "leaves": 16,
             "attacker_events_per_sec": 30000.0},
        ])
        results = doc("attacks", [
            {"strategy": "slow-jamming", "leaves": 16,
             "attacker_events_per_sec": 1000.0},
        ])
        failures = gate.check_floors(results, baseline, 0.7, 0.1)
        assert len(failures) == 1
        assert "attacker_events_per_sec" in failures[0]

    def test_unmatched_rows_are_skipped_but_one_must_match(self):
        baseline = doc("graphcore", [
            {"workload": "pair_weighted_betweenness", "n": 100,
             "speedup": 2.0},
        ])
        results = doc("graphcore", [
            {"workload": "pair_weighted_betweenness", "n": 100,
             "speedup": 1.9},
            {"workload": "pair_weighted_betweenness", "n": 200,
             "speedup": 0.1},  # no baseline row -> not gated
        ])
        assert gate.check_floors(results, baseline, 0.7, 0.1) == []

    def test_no_matches_is_a_failure(self):
        baseline = doc("graphcore", [
            {"workload": "greedy_join", "n": 500, "speedup": 1.7},
        ])
        results = doc("graphcore", [
            {"workload": "greedy_join", "n": 100, "speedup": 1.7},
        ])
        failures = gate.check_floors(results, baseline, 0.7, 0.1)
        assert len(failures) == 1
        assert "no result row matches" in failures[0]

    def test_benchmark_mismatch(self):
        failures = gate.check_floors(
            doc("simulation", []), doc("attacks", []), 0.7, 0.1
        )
        assert "mismatch" in failures[0]


class TestCli:
    def run_gate(self, tmp_path, results, baseline, *extra):
        results_path = tmp_path / "results.json"
        baseline_path = tmp_path / "baseline.json"
        results_path.write_text(json.dumps(results))
        baseline_path.write_text(json.dumps(baseline))
        return subprocess.run(
            [sys.executable, str(GATE), "--results", str(results_path),
             "--baseline", str(baseline_path), *extra],
            capture_output=True, text=True,
        )

    def test_cli_pass(self, tmp_path):
        baseline = doc("simulation", [
            {"n": 200, "speedup": 6.0, "batched_payments_per_sec": 2000.0},
        ])
        results = doc("simulation", [
            {"n": 200, "speedup": 5.9, "batched_payments_per_sec": 1900.0},
        ])
        proc = self.run_gate(tmp_path, results, baseline)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "gate passed" in proc.stdout

    def test_cli_fail(self, tmp_path):
        baseline = doc("simulation", [
            {"n": 200, "speedup": 6.0, "batched_payments_per_sec": 2000.0},
        ])
        results = doc("simulation", [
            {"n": 200, "speedup": 1.0, "batched_payments_per_sec": 1900.0},
        ])
        proc = self.run_gate(tmp_path, results, baseline)
        assert proc.returncode == 1
        assert "FAIL" in proc.stdout

    def test_cli_custom_floor(self, tmp_path):
        baseline = doc("simulation", [
            {"n": 200, "speedup": 6.0, "batched_payments_per_sec": 2000.0},
        ])
        results = doc("simulation", [
            {"n": 200, "speedup": 1.0, "batched_payments_per_sec": 1900.0},
        ])
        proc = self.run_gate(
            tmp_path, results, baseline, "--floor-relative", "0.1"
        )
        assert proc.returncode == 0

    def test_gate_accepts_committed_baselines(self):
        """The committed BENCH files gate cleanly against themselves."""
        for name in ("graphcore", "attacks", "simulation", "obs"):
            path = REPO / f"BENCH_{name}.json"
            if not path.exists():
                pytest.skip(f"{path.name} not committed yet")
            document = json.loads(path.read_text())
            assert gate.check_floors(document, document, 0.7, 0.1) == []


class TestEvolutionBenchmark:
    def test_registered_with_absolute_throughput_floor(self):
        key_fields, relative, absolute = gate.BENCHMARKS["evolution"]
        assert key_fields == ("n",)
        assert absolute == ("epochs_per_sec",)

    def test_gates_epochs_per_sec(self):
        baseline = doc("evolution", [
            {"n": 500, "epochs_per_sec": 0.3},
        ])
        ok = doc("evolution", [{"n": 500, "epochs_per_sec": 0.05}])
        assert gate.check_floors(ok, baseline, 0.7, 0.1) == []
        slow = doc("evolution", [{"n": 500, "epochs_per_sec": 0.01}])
        failures = gate.check_floors(slow, baseline, 0.7, 0.1)
        assert len(failures) == 1
        assert "epochs_per_sec" in failures[0]

    def test_committed_baseline_matches_smoke_keys(self):
        committed = json.loads((REPO / "BENCH_evolution.json").read_text())
        assert committed["benchmark"] == "evolution"
        smoke_keys = {(500,)}
        baseline_keys = {
            (row["n"],) for row in committed["results"]
        }
        assert smoke_keys <= baseline_keys


class TestObsBenchmark:
    def test_registered_with_relative_ratio_floor(self):
        key_fields, relative, absolute = gate.BENCHMARKS["obs"]
        assert key_fields == ("n",)
        # throughput_ratio (obs-on / obs-off, same machine) is the
        # hardware-independent overhead budget; raw off-throughput only
        # guards order-of-magnitude collapses.
        assert relative == ("throughput_ratio",)
        assert absolute == ("payments_per_sec_off",)

    def test_gates_overhead_ratio(self):
        baseline = doc("obs", [
            {"n": 200, "throughput_ratio": 1.0,
             "payments_per_sec_off": 5000.0},
        ])
        ok = doc("obs", [
            {"n": 200, "throughput_ratio": 0.95,
             "payments_per_sec_off": 4000.0},
        ])
        assert gate.check_floors(ok, baseline, 0.90, 0.1) == []
        slow = doc("obs", [
            {"n": 200, "throughput_ratio": 0.5,
             "payments_per_sec_off": 4000.0},
        ])
        failures = gate.check_floors(slow, baseline, 0.90, 0.1)
        assert len(failures) == 1
        assert "throughput_ratio" in failures[0]

    def test_committed_baseline_matches_smoke_keys(self):
        path = REPO / "BENCH_obs.json"
        if not path.exists():
            pytest.skip("BENCH_obs.json not committed yet")
        committed = json.loads(path.read_text())
        assert committed["benchmark"] == "obs"
        baseline_keys = {(row["n"],) for row in committed["results"]}
        assert {(200,)} <= baseline_keys  # the CI smoke case
        for row in committed["results"]:
            assert row["parity_identical"] is True
