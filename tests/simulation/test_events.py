"""Unit tests for the event queue."""

import pytest

from repro.errors import SimulationError
from repro.simulation.events import (
    ChannelCloseEvent,
    ChannelOpenEvent,
    EventQueue,
    PaymentEvent,
)


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.push(PaymentEvent(time=3.0, sender="a", receiver="b", amount=1.0))
        queue.push(PaymentEvent(time=1.0, sender="a", receiver="b", amount=1.0))
        queue.push(PaymentEvent(time=2.0, sender="a", receiver="b", amount=1.0))
        times = [queue.pop().time for _ in range(3)]
        assert times == [1.0, 2.0, 3.0]

    def test_stable_for_equal_times(self):
        queue = EventQueue()
        first = PaymentEvent(time=1.0, sender="a", receiver="b", amount=1.0)
        second = PaymentEvent(time=1.0, sender="c", receiver="d", amount=2.0)
        queue.push(first)
        queue.push(second)
        assert queue.pop() is first
        assert queue.pop() is second

    def test_rejects_scheduling_in_the_past(self):
        queue = EventQueue()
        queue.push(PaymentEvent(time=5.0, sender="a", receiver="b", amount=1.0))
        queue.pop()
        with pytest.raises(SimulationError):
            queue.push(PaymentEvent(time=4.0, sender="a", receiver="b", amount=1.0))

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_peek_and_len(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        assert not queue
        queue.push(ChannelOpenEvent(time=2.0, u="a", v="b", balance_u=1.0))
        assert queue.peek_time() == 2.0
        assert len(queue) == 1

    def test_mixed_event_types(self):
        queue = EventQueue()
        queue.push(ChannelCloseEvent(time=2.0, channel_id="x"))
        queue.push(PaymentEvent(time=1.0, sender="a", receiver="b", amount=1.0))
        assert isinstance(queue.pop(), PaymentEvent)
        assert isinstance(queue.pop(), ChannelCloseEvent)
