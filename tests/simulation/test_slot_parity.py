"""Event vs batched backend parity under HTLC slot exhaustion.

The batched engine's HTLC mode keeps per-direction in-flight slot
counters in array state; this suite drives both engines into slot
exhaustion — down to tight per-channel caps and up against the default
Lightning 483 cap — and requires the runs to be *bit-identical*:
the same failure-reason multiset (including ``no-htlc-slots``), the
same metrics document, and the same final channel balances.
"""

import pytest

from repro.network.fees import LinearFee
from repro.network.graph import ChannelGraph
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import PaymentEvent
from repro.simulation.fastpath import BatchedSimulationEngine
from repro.transactions.distributions import UniformDistribution
from repro.transactions.workload import PoissonWorkload


def poisson(graph, rate, seed):
    return PoissonWorkload(
        UniformDistribution.from_graph(graph),
        {node: rate for node in graph.nodes},
        seed=seed,
    )


def star_graph(leaves=5, balance=50.0, slot_cap=None):
    graph = ChannelGraph()
    for i in range(leaves):
        graph.add_channel(
            "hub", f"leaf{i}", balance, balance,
            max_accepted_htlcs=slot_cap,
        )
    return graph


def final_balances(graph):
    # Keyed by endpoints, not channel_id: ids are globally sequential,
    # so two separately built graphs never share them. All graphs here
    # are simple, so (u, v, node) is unique.
    return {
        (channel.u, channel.v, node): channel.balance(node)
        for channel in graph.channels for node in channel.endpoints
    }


def run_both(graph_factory, schedule, seed=7, hold=5.0, fee=None):
    """Run the same event schedule on both engines; return the metrics."""
    results = []
    for engine_cls in (SimulationEngine, BatchedSimulationEngine):
        graph = graph_factory()
        engine = engine_cls(
            graph, fee=fee, seed=seed,
            payment_mode="htlc", htlc_hold_mean=hold,
        )
        schedule(engine)
        results.append((engine.run(), final_balances(graph)))
    (event_metrics, event_balances), (batched_metrics, batched_balances) = (
        results
    )
    assert event_metrics.to_dict() == batched_metrics.to_dict()
    assert event_balances == batched_balances
    return event_metrics


class TestSlotExhaustionParity:
    def test_tight_cap_produces_identical_no_slots_failures(self):
        # Cap of 2 per direction, long holds: most payments through the
        # hub must fail on slots, identically on both engines.
        def schedule(engine):
            for i in range(40):
                engine.schedule(PaymentEvent(
                    time=0.1 * (i + 1),
                    sender=f"leaf{i % 5}",
                    receiver=f"leaf{(i + 1) % 5}",
                    amount=1.0,
                ))

        metrics = run_both(
            lambda: star_graph(slot_cap=2), schedule, hold=100.0
        )
        assert metrics.failure_reasons["no-htlc-slots"] > 0
        assert metrics.attempted == 40

    def test_default_483_cap_reached_and_enforced(self):
        # One channel, uncapped balance pressure: payment 484 while 483
        # are still in flight must fail on slots — the Lightning cap —
        # on both engines, bit-identically.
        def graph_factory():
            graph = ChannelGraph()
            graph.add_channel("a", "b", 10_000.0, 10_000.0)
            return graph

        def schedule(engine):
            for i in range(500):
                engine.schedule(PaymentEvent(
                    time=0.001 * (i + 1), sender="a", receiver="b",
                    amount=1.0,
                ))

        metrics = run_both(graph_factory, schedule, hold=1000.0)
        assert metrics.failure_reasons["no-htlc-slots"] == 500 - 483
        assert metrics.htlc_locked_peak == pytest.approx(483.0)

    def test_slots_release_on_resolve_identically(self):
        # Short holds: slots cycle, later payments reuse them. The
        # interleaving of resolve and payment events is the hard part —
        # any ordering divergence shows up in the failure counts.
        def schedule(engine):
            for i in range(60):
                engine.schedule(PaymentEvent(
                    time=0.5 * (i + 1),
                    sender=f"leaf{i % 5}",
                    receiver=f"leaf{(i + 2) % 5}",
                    amount=2.0,
                ))

        metrics = run_both(
            lambda: star_graph(slot_cap=3), schedule, hold=0.4
        )
        assert metrics.succeeded > 0

    def test_workload_driven_parity_with_slots_and_fees(self):
        # End-to-end: a Poisson workload plus a success fee, tight slot
        # caps — revenue, fees, and failures must all agree.
        def schedule(engine):
            engine.schedule_workload(
                poisson(engine.graph, rate=5.0, seed=11), horizon=20.0
            )

        metrics = run_both(
            lambda: star_graph(slot_cap=2, balance=5.0), schedule,
            hold=2.0, fee=LinearFee(base=0.01, rate=0.001),
        )
        assert metrics.attempted > 0

    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_parity_across_seeds(self, seed):
        def schedule(engine):
            engine.schedule_workload(
                poisson(engine.graph, rate=3.0, seed=seed), horizon=15.0
            )

        run_both(
            lambda: star_graph(slot_cap=1, balance=3.0), schedule,
            seed=seed, hold=3.0,
        )
