"""Unit and statistical tests for the discrete-event simulator."""

import pytest

from repro.network.fees import ConstantFee
from repro.network.graph import ChannelGraph
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import (
    ChannelCloseEvent,
    ChannelOpenEvent,
    PaymentEvent,
)
from repro.transactions.distributions import (
    EmpiricalDistribution,
    UniformDistribution,
)
from repro.transactions.workload import PoissonWorkload, Transaction


@pytest.fixture
def line3_graph() -> ChannelGraph:
    return ChannelGraph.from_edges([("a", "b"), ("b", "c")], balance=100.0)


class TestPaymentProcessing:
    def test_single_payment(self, line3_graph):
        engine = SimulationEngine(line3_graph)
        engine.schedule(
            PaymentEvent(time=1.0, sender="a", receiver="c", amount=5.0)
        )
        metrics = engine.run()
        assert metrics.attempted == 1
        assert metrics.succeeded == 1
        assert metrics.volume_delivered == 5.0
        assert metrics.sent["a"] == 1
        assert metrics.received["c"] == 1

    def test_intermediary_earns_fee(self, line3_graph):
        engine = SimulationEngine(line3_graph, fee=ConstantFee(0.5))
        engine.schedule(
            PaymentEvent(time=1.0, sender="a", receiver="c", amount=1.0)
        )
        metrics = engine.run()
        assert metrics.revenue["b"] == pytest.approx(0.5)
        assert metrics.fees_paid["a"] == pytest.approx(0.5)

    def test_failure_counted_and_classified(self):
        graph = ChannelGraph.from_edges([("a", "b")], balance=1.0)
        engine = SimulationEngine(graph)
        engine.schedule(
            PaymentEvent(time=1.0, sender="a", receiver="b", amount=100.0)
        )
        metrics = engine.run()
        assert metrics.failed == 1
        assert metrics.failure_reasons["no-capacity-path"] == 1

    def test_edge_traffic_recorded(self, line3_graph):
        engine = SimulationEngine(line3_graph)
        engine.schedule(
            PaymentEvent(time=1.0, sender="a", receiver="c", amount=1.0)
        )
        metrics = engine.run()
        assert metrics.edge_traffic[("a", "b")] == 1
        assert metrics.edge_traffic[("b", "c")] == 1

    def test_run_until_leaves_later_events_queued(self, line3_graph):
        engine = SimulationEngine(line3_graph)
        engine.schedule(PaymentEvent(time=1.0, sender="a", receiver="b", amount=1.0))
        engine.schedule(PaymentEvent(time=9.0, sender="a", receiver="b", amount=1.0))
        metrics = engine.run(until=5.0)
        assert metrics.attempted == 1
        assert metrics.horizon == 5.0

    def test_balance_conservation(self, line3_graph):
        total_before = line3_graph.total_capacity()
        engine = SimulationEngine(line3_graph, fee=ConstantFee(0.1))
        for i in range(20):
            engine.schedule(
                PaymentEvent(
                    time=float(i + 1),
                    sender=["a", "c"][i % 2],
                    receiver=["c", "a"][i % 2],
                    amount=2.0,
                )
            )
        engine.run()
        assert line3_graph.total_capacity() == pytest.approx(total_before)


class TestLifecycleEvents:
    def test_channel_open_event(self, line3_graph):
        engine = SimulationEngine(line3_graph)
        engine.schedule(
            ChannelOpenEvent(time=1.0, u="a", v="c", balance_u=5.0, balance_v=5.0)
        )
        engine.schedule(
            PaymentEvent(time=2.0, sender="a", receiver="c", amount=4.0)
        )
        metrics = engine.run()
        assert metrics.succeeded == 1
        # direct channel means no intermediary traffic
        assert metrics.edge_traffic.get(("a", "b"), 0) == 0

    def test_channel_close_event(self, line3_graph):
        channel = line3_graph.channels_between("a", "b")[0]
        engine = SimulationEngine(line3_graph)
        engine.schedule(ChannelCloseEvent(time=1.0, channel_id=channel.channel_id))
        engine.schedule(
            PaymentEvent(time=2.0, sender="a", receiver="c", amount=1.0)
        )
        metrics = engine.run()
        assert metrics.failed == 1


class TestWorkloadIntegration:
    def test_schedule_workload_counts(self, line3_graph):
        dist = UniformDistribution.from_graph(line3_graph)
        workload = PoissonWorkload(
            dist, {n: 1.0 for n in line3_graph.nodes}, seed=0
        )
        engine = SimulationEngine(line3_graph)
        scheduled = engine.schedule_workload(workload, horizon=50.0)
        metrics = engine.run()
        assert metrics.attempted == scheduled
        assert metrics.horizon == pytest.approx(
            metrics.horizon
        )

    def test_schedule_transactions_trace(self, line3_graph):
        trace = [
            Transaction(time=1.0, sender="a", receiver="c", amount=1.0),
            Transaction(time=2.0, sender="c", receiver="a", amount=1.0),
        ]
        engine = SimulationEngine(line3_graph)
        assert engine.schedule_transactions(trace) == 2
        metrics = engine.run()
        assert metrics.succeeded == 2

    def test_revenue_rate_definition(self, line3_graph):
        engine = SimulationEngine(line3_graph, fee=ConstantFee(1.0))
        engine.schedule(
            PaymentEvent(time=1.0, sender="a", receiver="c", amount=1.0)
        )
        metrics = engine.run(until=10.0)
        assert metrics.revenue_rate("b") == pytest.approx(0.1)
        assert metrics.edge_rate("a", "b") == pytest.approx(0.1)

    def test_empirical_matches_predicted_intermediary_rate(self):
        """Long-run simulated revenue rate ≈ analytic E_rev (E11 in small)."""
        graph = ChannelGraph.from_edges([("a", "b"), ("b", "c")], balance=1e9)
        dist = EmpiricalDistribution(
            {"a": {"c": 1.0}, "c": {"a": 1.0}}
        )
        workload = PoissonWorkload(dist, {"a": 1.0, "c": 1.0}, seed=42)
        engine = SimulationEngine(graph, fee=ConstantFee(1.0))
        engine.schedule_workload(workload, horizon=500.0)
        metrics = engine.run(until=500.0)
        # all traffic crosses b at total rate 2: revenue rate ≈ 2 * fee
        assert metrics.revenue_rate("b") == pytest.approx(2.0, rel=0.15)
