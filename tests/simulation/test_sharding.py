"""Sharded trace execution: metric-exact partitioned simulation.

The headline property: for a multi-component graph, running a random
workload through :class:`ShardedTraceRunner` with 1, 2, and 8 shards
yields the same :class:`SimulationMetrics` as the unsharded run — exact
on every counter and every per-node/per-edge tally (payments only ever
move balances inside their sender's component, and ``route_rng="payment"``
keeps each payment's tie-break draws independent of its co-runners).
"""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.network.fees import LinearFee
from repro.network.graph import ChannelGraph
from repro.simulation.engine import SimulationEngine
from repro.simulation.fastpath import BatchedSimulationEngine
from repro.simulation.metrics import SimulationMetrics
from repro.simulation.sharding import (
    ShardedTraceRunner,
    connected_component_ids,
)
from repro.transactions.workload import Transaction


def multi_component_graph(components=4, size=6, balance=4.0, seed=3):
    """Several disjoint ring communities with random extra chords."""
    rng = np.random.default_rng(seed)
    graph = ChannelGraph()
    for c in range(components):
        names = [f"c{c}n{i}" for i in range(size)]
        for i in range(size):
            graph.add_channel(
                names[i], names[(i + 1) % size], balance, balance
            )
        for _ in range(2):
            u, v = rng.choice(size, size=2, replace=False)
            if not graph.has_channel(names[u], names[v]):
                graph.add_channel(names[u], names[v], balance, balance)
    return graph


def random_trace(graph, count, seed, max_amount=2.0):
    rng = np.random.default_rng(seed)
    nodes = list(graph.nodes)
    trace = []
    time = 0.0
    for _ in range(count):
        time += float(rng.exponential(0.1))
        sender, receiver = (
            nodes[i] for i in rng.choice(len(nodes), size=2, replace=False)
        )
        trace.append(
            Transaction(
                time=time,
                sender=sender,
                receiver=receiver,
                amount=float(rng.uniform(0.1, max_amount)),
            )
        )
    return trace


def copy_graph(graph):
    return graph.copy()


def metric_fields(metrics):
    return {
        "attempted": metrics.attempted,
        "succeeded": metrics.succeeded,
        "failed": metrics.failed,
        "revenue": dict(metrics.revenue),
        "fees_paid": dict(metrics.fees_paid),
        "sent": dict(metrics.sent),
        "received": dict(metrics.received),
        "edge_traffic": dict(metrics.edge_traffic),
        "failure_reasons": dict(metrics.failure_reasons),
        "horizon": metrics.horizon,
    }


class TestShardCountInvariance:
    @pytest.mark.parametrize("workload_seed", [0, 11, 42])
    def test_1_2_8_shards_match_unsharded(self, workload_seed):
        """The satellite property: shard count never changes the result."""
        graph = multi_component_graph()
        trace = random_trace(graph, 300, workload_seed)
        fee = LinearFee(0.01, 0.001)
        unsharded = BatchedSimulationEngine(
            copy_graph(graph), fee=fee, seed=7, route_rng="payment"
        ).run_trace(trace)
        baseline = metric_fields(unsharded)
        for shards in (1, 2, 8):
            merged = ShardedTraceRunner(shards=shards).run(
                copy_graph(graph), trace, fee=fee, seed=7
            )
            result = metric_fields(merged)
            # Per-component accounting is bit-exact; the only order-
            # sensitive global float sum is volume_delivered.
            assert result == baseline, f"shards={shards}"
            assert merged.volume_delivered == pytest.approx(
                unsharded.volume_delivered, rel=1e-12
            )

    def test_matches_event_engine_too(self):
        """Sharded-batched == unsharded-event under payment route RNG."""
        graph = multi_component_graph(components=3, size=5)
        trace = random_trace(graph, 200, seed=5)
        fee = LinearFee(0.01, 0.001)
        event_engine = SimulationEngine(
            copy_graph(graph), fee=fee, seed=7, route_rng="payment"
        )
        event_engine.schedule_transactions(trace)
        event_metrics = event_engine.run()
        merged = ShardedTraceRunner(shards=4).run(
            copy_graph(graph), trace, fee=fee, seed=7
        )
        assert metric_fields(event_metrics) == metric_fields(merged)

    def test_process_executor_matches_serial(self):
        graph = multi_component_graph(components=3, size=5)
        trace = random_trace(graph, 120, seed=9)
        fee = LinearFee(0.01, 0.001)
        serial = ShardedTraceRunner(shards=3, executor="serial").run(
            copy_graph(graph), trace, fee=fee, seed=7
        )
        parallel = ShardedTraceRunner(
            shards=3, executor="process", max_workers=2
        ).run(copy_graph(graph), trace, fee=fee, seed=7)
        assert metric_fields(serial) == metric_fields(parallel)
        assert serial.volume_delivered == parallel.volume_delivered

    def test_event_backend_shards(self):
        graph = multi_component_graph(components=2, size=5)
        trace = random_trace(graph, 100, seed=2)
        batched = ShardedTraceRunner(shards=2, backend="batched").run(
            copy_graph(graph), trace, seed=7
        )
        event = ShardedTraceRunner(shards=2, backend="event").run(
            copy_graph(graph), trace, seed=7
        )
        assert metric_fields(batched) == metric_fields(event)

    def test_connected_graph_degrades_to_one_shard(self):
        graph = ChannelGraph.from_edges(
            [("a", "b"), ("b", "c"), ("c", "d")], balance=5.0
        )
        trace = random_trace(graph, 50, seed=1)
        merged = ShardedTraceRunner(shards=8).run(
            copy_graph(graph), trace, seed=7
        )
        unsharded = BatchedSimulationEngine(
            copy_graph(graph), seed=7, route_rng="payment"
        ).run_trace(trace)
        assert metric_fields(merged) == metric_fields(unsharded)


class TestGuardsAndHelpers:
    def test_stream_rng_with_multiple_shards_rejected(self):
        graph = multi_component_graph(components=2)
        trace = random_trace(graph, 20, seed=0)
        with pytest.raises(SimulationError, match="payment"):
            ShardedTraceRunner(shards=2).run(
                graph, trace, route_rng="stream"
            )

    def test_stream_rng_single_component_allowed(self):
        """One effective shard keeps the stream semantics intact."""
        graph = ChannelGraph.from_edges([("a", "b"), ("b", "c")], balance=5.0)
        trace = random_trace(graph, 30, seed=0)
        merged = ShardedTraceRunner(shards=4).run(
            copy_graph(graph), trace, route_rng="stream", seed=7
        )
        unsharded = BatchedSimulationEngine(
            copy_graph(graph), seed=7, route_rng="stream"
        ).run_trace(trace)
        assert metric_fields(merged) == metric_fields(unsharded)

    def test_first_selection_streams_shard_fine(self):
        graph = multi_component_graph(components=2)
        trace = random_trace(graph, 60, seed=4)
        merged = ShardedTraceRunner(shards=2).run(
            copy_graph(graph), trace,
            path_selection="first", route_rng="stream", seed=7,
        )
        unsharded = BatchedSimulationEngine(
            copy_graph(graph), seed=7,
            path_selection="first", route_rng="stream",
        ).run_trace(trace)
        assert metric_fields(merged) == metric_fields(unsharded)

    def test_component_ids(self):
        graph = multi_component_graph(components=3, size=4)
        comp = connected_component_ids(graph)
        assert len(set(comp.values())) == 3
        assert comp["c0n0"] == comp["c0n3"]
        assert comp["c0n0"] != comp["c1n0"]

    def test_bad_shard_count(self):
        with pytest.raises(SimulationError, match="shards"):
            ShardedTraceRunner(shards=0)

    def test_merged_empty(self):
        merged = SimulationMetrics.merged([])
        assert merged.attempted == 0
        assert merged.horizon == 0.0

    def test_merged_adds_and_maxes(self):
        a = SimulationMetrics(attempted=3, succeeded=2, failed=1, horizon=4.0)
        a.revenue["x"] = 1.5
        b = SimulationMetrics(attempted=1, succeeded=1, horizon=9.0)
        b.revenue["x"] = 0.5
        b.revenue["y"] = 2.0
        merged = SimulationMetrics.merged([a, b])
        assert merged.attempted == 4
        assert merged.succeeded == 3
        assert merged.failed == 1
        assert merged.horizon == 9.0
        assert merged.revenue == {"x": 2.0, "y": 2.0}
