"""Regression tests for the deterministic-or-loud default-seed fallback.

Historically ``SimulationEngine(seed=None)`` drew *two* independent
entropy values (one for the router, one for the per-payment RNG base) and
recorded neither, so an unseeded run could never be replayed. Now both
engines resolve the seed once through :func:`repro.determinism.resolve_seed`,
log it, and surface it as ``metrics.seed``.
"""

import logging

import pytest

from repro.determinism import resolve_seed
from repro.network.graph import ChannelGraph
from repro.simulation.engine import SimulationEngine
from repro.simulation.fastpath import BatchedSimulationEngine
from repro.simulation.metrics import SimulationMetrics
from repro.transactions.workload import Transaction


def _diamond_graph() -> ChannelGraph:
    # Two equal-length a->d paths, so random tie-breaking actually
    # consumes RNG draws and a replayed seed is observable.
    return ChannelGraph.from_edges(
        [("a", "b"), ("b", "d"), ("a", "c"), ("c", "d")], balance=100.0
    )


def _trace(n: int = 40) -> list:
    return [
        Transaction(time=float(i + 1), sender="a", receiver="d", amount=1.0)
        for i in range(n)
    ]


class TestResolveSeed:
    def test_explicit_seed_is_identity(self):
        assert resolve_seed(7) == 7
        assert resolve_seed(0) == 0

    def test_none_draws_and_logs(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.determinism"):
            drawn = resolve_seed(None)
        assert isinstance(drawn, int)
        assert str(drawn) in caplog.text

    def test_none_draws_fresh_entropy(self):
        # Vanishingly unlikely to collide; a collision would mean the
        # fallback is (silently) constant, the exact bug class this guards.
        assert resolve_seed(None) != resolve_seed(None)


class TestEngineSeedSurfacing:
    @pytest.mark.parametrize("engine_cls", [
        SimulationEngine, BatchedSimulationEngine,
    ])
    def test_seeded_run_records_seed(self, engine_cls):
        engine = engine_cls(_diamond_graph(), seed=13)
        assert engine.seed == 13
        assert engine.metrics.seed == 13

    @pytest.mark.parametrize("engine_cls", [
        SimulationEngine, BatchedSimulationEngine,
    ])
    def test_unseeded_run_is_replayable(self, engine_cls, caplog):
        graph = _diamond_graph()
        with caplog.at_level(logging.WARNING, logger="repro.determinism"):
            engine = engine_cls(graph, seed=None, route_rng="payment")
        if engine_cls is BatchedSimulationEngine:
            metrics = engine.run_trace(_trace())
        else:
            engine.schedule_transactions(_trace())
            metrics = engine.run()
        assert isinstance(metrics.seed, int)
        assert str(metrics.seed) in caplog.text

        # Replaying with the surfaced seed reproduces the run exactly,
        # including per-edge traffic (i.e. the actual route choices).
        replay = engine_cls(
            _diamond_graph(), seed=metrics.seed, route_rng="payment"
        )
        if engine_cls is BatchedSimulationEngine:
            replay_metrics = replay.run_trace(_trace())
        else:
            replay.schedule_transactions(_trace())
            replay_metrics = replay.run()
        assert replay_metrics == metrics

    def test_explicit_seed_draws_no_entropy(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.determinism"):
            SimulationEngine(_diamond_graph(), seed=3)
        assert caplog.text == ""


class TestMergedSeed:
    def test_unanimous_seed_survives_merge(self):
        parts = [SimulationMetrics(seed=5), SimulationMetrics(seed=5)]
        assert SimulationMetrics.merged(parts).seed == 5

    def test_mixed_seeds_merge_to_none(self):
        parts = [SimulationMetrics(seed=5), SimulationMetrics(seed=6)]
        assert SimulationMetrics.merged(parts).seed is None
