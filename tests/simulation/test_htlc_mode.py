"""Tests for the simulator's HTLC payment mode (in-flight contention)."""

import pytest

from repro.errors import SimulationError
from repro.network.fees import ConstantFee
from repro.network.graph import ChannelGraph
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import PaymentEvent
from repro.transactions.distributions import UniformDistribution
from repro.transactions.workload import PoissonWorkload


@pytest.fixture
def line3_graph() -> ChannelGraph:
    return ChannelGraph.from_edges([("a", "b"), ("b", "c")], balance=10.0)


class TestHtlcMode:
    def test_single_payment_settles(self, line3_graph):
        engine = SimulationEngine(line3_graph, payment_mode="htlc", seed=1)
        engine.schedule(
            PaymentEvent(time=1.0, sender="a", receiver="c", amount=4.0)
        )
        metrics = engine.run()
        assert metrics.succeeded == 1
        assert metrics.pending == 0
        assert metrics.htlc_locked_peak >= 8.0  # two hops of 4

    def test_balances_settle_correctly(self, line3_graph):
        total = line3_graph.total_capacity()
        engine = SimulationEngine(line3_graph, payment_mode="htlc", seed=1)
        engine.schedule(
            PaymentEvent(time=1.0, sender="a", receiver="c", amount=4.0)
        )
        engine.run()
        assert line3_graph.total_capacity() == pytest.approx(total)
        bc = line3_graph.channels_between("b", "c")[0]
        assert bc.balance("c") == pytest.approx(14.0)

    def test_contention_fails_second_payment(self, line3_graph):
        """Two overlapping payments exceed in-flight capacity: one fails."""
        engine = SimulationEngine(
            line3_graph, payment_mode="htlc", seed=1, htlc_hold_mean=100.0
        )
        engine.schedule(
            PaymentEvent(time=1.0, sender="a", receiver="c", amount=7.0)
        )
        engine.schedule(
            PaymentEvent(time=1.001, sender="a", receiver="c", amount=7.0)
        )
        metrics = engine.run()
        assert metrics.failed == 1
        reasons = dict(metrics.failure_reasons)
        assert (
            reasons.get("lock-contention", 0)
            + reasons.get("no-capacity-path", 0)
            == 1
        )

    def test_instant_mode_would_succeed_sequentially(self, line3_graph):
        """The same two payments succeed when applied instantly in order
        (the second direction refills)... here same direction, so the
        second fails in instant mode too unless balances refill — use
        opposite directions to show the contrast."""
        engine = SimulationEngine(line3_graph, payment_mode="instant")
        engine.schedule(
            PaymentEvent(time=1.0, sender="a", receiver="c", amount=7.0)
        )
        engine.schedule(
            PaymentEvent(time=2.0, sender="c", receiver="a", amount=7.0)
        )
        metrics = engine.run()
        assert metrics.succeeded == 2

    def test_fees_accrue_on_settle(self, line3_graph):
        engine = SimulationEngine(
            line3_graph, payment_mode="htlc", fee=ConstantFee(0.5), seed=2
        )
        engine.schedule(
            PaymentEvent(time=1.0, sender="a", receiver="c", amount=1.0)
        )
        metrics = engine.run()
        assert metrics.revenue["b"] == pytest.approx(0.5)
        assert metrics.fees_paid["a"] == pytest.approx(0.5)

    def test_run_until_leaves_pending(self, line3_graph):
        engine = SimulationEngine(
            line3_graph, payment_mode="htlc", seed=3, htlc_hold_mean=50.0
        )
        engine.schedule(
            PaymentEvent(time=1.0, sender="a", receiver="c", amount=1.0)
        )
        metrics = engine.run(until=1.5)
        assert metrics.pending in (0, 1)  # hold is random; usually pending
        # draining the queue resolves everything
        final = engine.run()
        assert final.pending == 0

    def test_workload_statistics(self, line3_graph):
        dist = UniformDistribution.from_graph(line3_graph)
        workload = PoissonWorkload(
            dist, {n: 1.0 for n in line3_graph.nodes}, seed=5
        )
        engine = SimulationEngine(
            line3_graph, payment_mode="htlc", seed=5, htlc_hold_mean=0.01
        )
        engine.schedule_workload(workload, horizon=60.0)
        metrics = engine.run()
        assert metrics.pending == 0
        assert metrics.success_rate > 0.8  # short holds, ample capacity

    def test_invalid_mode_rejected(self, line3_graph):
        with pytest.raises(SimulationError):
            SimulationEngine(line3_graph, payment_mode="teleport")

    def test_invalid_hold_rejected(self, line3_graph):
        with pytest.raises(SimulationError):
            SimulationEngine(
                line3_graph, payment_mode="htlc", htlc_hold_mean=0.0
            )

    def test_longer_holds_hurt_throughput(self):
        """More in-flight time => more contention => lower success rate."""
        def run(hold: float) -> float:
            graph = ChannelGraph.from_edges(
                [("a", "b"), ("b", "c"), ("c", "d")], balance=3.0
            )
            dist = UniformDistribution.from_graph(graph)
            workload = PoissonWorkload(
                dist, {n: 2.0 for n in graph.nodes}, seed=9
            )
            engine = SimulationEngine(
                graph, payment_mode="htlc", seed=9, htlc_hold_mean=hold
            )
            engine.schedule_workload(workload, horizon=40.0)
            metrics = engine.run()
            resolved = metrics.succeeded + metrics.failed
            return metrics.succeeded / resolved if resolved else 0.0

        assert run(5.0) < run(0.01)
