"""Batched-backend parity: identical metrics to the event engine.

The batched backend's contract is *exactness*, not approximation: for
the same graph, trace, and seed it must reproduce the event engine's
metrics — including the RNG-sampled path choices of
``path_selection="random"`` — and leave the graph in the same final
state. These tests drive both backends over the same pre-generated
traces and compare everything.
"""

import pytest

from repro.errors import ScenarioError, SimulationError
from repro.network.fees import ConstantFee, LinearFee
from repro.network.graph import ChannelGraph
from repro.scenarios import (
    FeeSpec,
    Scenario,
    ScenarioRunner,
    SimulationSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.scenarios.runner import build_topology, build_workload
from repro.simulation.engine import SimulationEngine
from repro.simulation.fastpath import BatchedSimulationEngine
from repro.transactions.workload import TraceArrays, Transaction


def metric_fields(metrics):
    return {
        "attempted": metrics.attempted,
        "succeeded": metrics.succeeded,
        "failed": metrics.failed,
        "volume_delivered": metrics.volume_delivered,
        "horizon": metrics.horizon,
        "revenue": dict(metrics.revenue),
        "fees_paid": dict(metrics.fees_paid),
        "sent": dict(metrics.sent),
        "received": dict(metrics.received),
        "edge_traffic": dict(metrics.edge_traffic),
        "failure_reasons": dict(metrics.failure_reasons),
    }


def balances_by_pair(graph):
    return {
        frozenset((c.u, c.v)): (c.balance(c.u), c.balance(c.v))
        for c in graph.channels
    }


def run_both(scenario, engine_kwargs=None):
    """(event metrics, batched metrics, event graph, batched graph)."""
    from repro.scenarios.runner import build_fee

    kwargs = dict(engine_kwargs or {})
    seed = scenario.seed
    event_graph = build_topology(scenario.topology, seed=seed)
    trace = list(
        build_workload(scenario, event_graph).generate(
            scenario.simulation.horizon
        )
    )
    fee = build_fee(scenario)
    event = SimulationEngine(event_graph, fee=fee, seed=seed, **kwargs)
    event.schedule_transactions(trace)
    event_metrics = event.run()
    batched_graph = build_topology(scenario.topology, seed=seed)
    batched = BatchedSimulationEngine(
        batched_graph, fee=fee, seed=seed, **kwargs
    )
    batched_metrics = batched.run_trace(trace)
    return event_metrics, batched_metrics, event_graph, batched_graph


def scenario_for(topology, horizon=12.0, seed=7, workload_params=None):
    return Scenario(
        topology=topology,
        workload=WorkloadSpec("poisson", dict(workload_params or {})),
        fee=FeeSpec("linear", {"base": 0.01, "rate": 0.001}),
        simulation=SimulationSpec(horizon=horizon),
        seed=seed,
    )


class TestMetricsParity:
    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_small_graph_parity(self, seed):
        """n < 150 exercises the python-BFS branch."""
        scenario = scenario_for(
            TopologySpec("ba", {"n": 40}), horizon=25.0, seed=seed
        )
        event, batched, g1, g2 = run_both(scenario)
        assert metric_fields(event) == metric_fields(batched)
        assert balances_by_pair(g1) == balances_by_pair(g2)

    @pytest.mark.parametrize("seed", [0, 7])
    def test_csr_graph_parity(self, seed):
        """n >= 150 exercises the vectorised masked-BFS branch."""
        scenario = scenario_for(
            TopologySpec("ba", {"n": 200}), horizon=6.0, seed=seed
        )
        event, batched, g1, g2 = run_both(scenario)
        assert metric_fields(event) == metric_fields(batched)
        assert balances_by_pair(g1) == balances_by_pair(g2)

    def test_variable_amounts_parity(self):
        """Continuously-distributed sizes: one mask per distinct amount."""
        scenario = scenario_for(
            TopologySpec("ba", {"n": 160}),
            horizon=5.0,
            workload_params={
                "sizes": {
                    "kind": "truncated-exponential",
                    "scale": 0.5,
                    "high": 5.0,
                },
            },
        )
        event, batched, g1, g2 = run_both(scenario)
        assert metric_fields(event) == metric_fields(batched)
        assert balances_by_pair(g1) == balances_by_pair(g2)

    @pytest.mark.parametrize("kind,params", [
        ("star", {"leaves": 8, "balance": 3.0}),
        ("circle", {"n": 12, "balance": 2.0}),
        ("path", {"n": 9, "balance": 4.0}),
    ])
    def test_section_iv_topologies(self, kind, params):
        scenario = scenario_for(TopologySpec(kind, params), horizon=20.0)
        event, batched, g1, g2 = run_both(scenario)
        assert metric_fields(event) == metric_fields(batched)
        assert balances_by_pair(g1) == balances_by_pair(g2)

    def test_path_selection_first(self):
        scenario = scenario_for(TopologySpec("ba", {"n": 170}), horizon=5.0)
        event, batched, *_ = run_both(
            scenario, engine_kwargs={"path_selection": "first"}
        )
        assert metric_fields(event) == metric_fields(batched)

    def test_payment_route_rng(self):
        scenario = scenario_for(TopologySpec("ba", {"n": 170}), horizon=5.0)
        event, batched, *_ = run_both(
            scenario, engine_kwargs={"route_rng": "payment"}
        )
        assert metric_fields(event) == metric_fields(batched)

    def test_no_fee_forwarding(self):
        scenario = scenario_for(TopologySpec("ba", {"n": 40}), horizon=10.0)
        event, batched, *_ = run_both(
            scenario, engine_kwargs={"fee_forwarding": False}
        )
        assert metric_fields(event) == metric_fields(batched)

    def test_epoch_size_invariance(self):
        """Epochs are an optimisation window: any size, same results."""
        scenario = scenario_for(TopologySpec("ba", {"n": 50}), horizon=15.0)
        graph = build_topology(scenario.topology, seed=7)
        trace = list(build_workload(scenario, graph).generate(15.0))
        results = []
        for epoch_size in (1, 3, 64, 100000):
            g = build_topology(scenario.topology, seed=7)
            engine = BatchedSimulationEngine(
                g, fee=LinearFee(0.01, 0.001), seed=7, epoch_size=epoch_size
            )
            results.append(metric_fields(engine.run_trace(trace)))
        assert all(r == results[0] for r in results[1:])

    def test_backend_via_scenario_runner(self):
        base = scenario_for(TopologySpec("ba", {"n": 60}), horizon=10.0)
        event_result = ScenarioRunner().run(base)
        batched_result = ScenarioRunner().run(
            base.with_overrides({"simulation.backend": "batched"})
        )
        assert metric_fields(event_result.metrics) == metric_fields(
            batched_result.metrics
        )
        assert event_result.row["succeeded"] == batched_result.row["succeeded"]


class TestFailureParity:
    def test_unknown_endpoint_and_self_pair(self):
        graph = ChannelGraph.from_edges([("a", "b"), ("b", "c")], balance=5.0)
        trace = [
            Transaction(time=1.0, sender="a", receiver="ghost", amount=1.0),
            Transaction(time=2.0, sender="b", receiver="b", amount=1.0),
            Transaction(time=3.0, sender="nope", receiver="nope", amount=1.0),
            Transaction(time=4.0, sender="a", receiver="c", amount=1.0),
        ]
        event = SimulationEngine(
            ChannelGraph.from_edges([("a", "b"), ("b", "c")], balance=5.0),
            seed=0,
        )
        event.schedule_transactions(trace)
        event_metrics = event.run()
        batched = BatchedSimulationEngine(graph, seed=0)
        batched_metrics = batched.run_trace(trace)
        assert metric_fields(event_metrics) == metric_fields(batched_metrics)
        assert batched_metrics.failure_reasons["unknown-endpoint"] == 1
        assert batched_metrics.failure_reasons["other"] == 2

    def test_split_balance_failure(self):
        """Feasible at `amount` but not at amount+fees on an inner hop."""
        def build():
            graph = ChannelGraph()
            # a->b holds enough for the amount (1.0) but not for
            # amount + b's fee (1.5), so routing passes and execution
            # fails on the sender-side hop.
            graph.add_channel("a", "b", 1.2, 0.0)
            graph.add_channel("b", "c", 5.0, 0.0)
            return graph

        trace = [Transaction(time=1.0, sender="a", receiver="c", amount=1.0)]
        event = SimulationEngine(build(), fee=ConstantFee(0.5), seed=0)
        event.schedule_transactions(trace)
        event_metrics = event.run()
        batched = BatchedSimulationEngine(build(), fee=ConstantFee(0.5), seed=0)
        batched_metrics = batched.run_trace(trace)
        assert event_metrics.failure_reasons["split-balance"] == 1
        assert metric_fields(event_metrics) == metric_fields(batched_metrics)

    def test_no_capacity_path(self):
        graph = ChannelGraph.from_edges([("a", "b")], balance=0.5)
        batched = BatchedSimulationEngine(graph, seed=0)
        metrics = batched.run_trace(
            [Transaction(time=1.0, sender="a", receiver="b", amount=2.0)]
        )
        assert metrics.failure_reasons["no-capacity-path"] == 1


class TestGuards:
    def test_unknown_payment_mode_rejected(self):
        graph = ChannelGraph.from_edges([("a", "b")], balance=1.0)
        with pytest.raises(SimulationError, match="payment_mode"):
            BatchedSimulationEngine(graph, payment_mode="teleport")

    def test_htlc_mode_accepted(self):
        graph = ChannelGraph.from_edges([("a", "b")], balance=1.0)
        engine = BatchedSimulationEngine(graph, payment_mode="htlc")
        assert engine.payment_mode == "htlc"

    def test_bad_hold_mean_rejected(self):
        graph = ChannelGraph.from_edges([("a", "b")], balance=1.0)
        with pytest.raises(SimulationError, match="htlc_hold_mean"):
            BatchedSimulationEngine(graph, htlc_hold_mean=0.0)

    def test_parallel_channels_rejected(self):
        graph = ChannelGraph()
        graph.add_channel("a", "b", 1.0, 1.0)
        graph.add_channel("a", "b", 2.0, 2.0)
        engine = BatchedSimulationEngine(graph)
        with pytest.raises(SimulationError, match="parallel"):
            engine.run_trace([])

    def test_spec_accepts_batched_htlc(self):
        spec = SimulationSpec(payment_mode="htlc", backend="batched")
        assert spec.payment_mode == "htlc"

    def test_spec_rejects_unknown_backend(self):
        with pytest.raises(ScenarioError, match="backend"):
            SimulationSpec(backend="warp")

    def test_batched_attack_scenario_validates(self):
        from repro.scenarios import AttackSpec

        scenario = Scenario(
            topology=TopologySpec("star", {"leaves": 4}),
            simulation=SimulationSpec(backend="batched"),
            attack=AttackSpec("slow-jamming", {"budget": 10.0}),
        )
        assert scenario.simulation.backend == "batched"

    def test_attack_runner_guard(self, monkeypatch):
        """Defence in depth: the runner re-consults the capability table."""
        from repro.attacks.runner import AttackRunner
        from repro.scenarios import AttackSpec
        from repro.scenarios import capabilities as caps

        monkeypatch.setitem(
            caps.BACKEND_CAPABILITIES,
            "frozen",
            caps.EngineCapabilities(
                backend="frozen", payment_modes=("instant",),
                event_injection=False,
            ),
        )
        scenario = Scenario(
            topology=TopologySpec("star", {"leaves": 4}),
            simulation=SimulationSpec(horizon=5.0),
            attack=AttackSpec("slow-jamming", {"budget": 10.0}),
        )
        object.__setattr__(
            scenario, "simulation", SimulationSpec(backend="frozen")
        )
        with pytest.raises(ScenarioError, match="event injection"):
            AttackRunner().run(scenario)

    def test_bad_epoch_size(self):
        graph = ChannelGraph.from_edges([("a", "b")], balance=1.0)
        with pytest.raises(SimulationError, match="epoch_size"):
            BatchedSimulationEngine(graph, epoch_size=0)

    def test_unsorted_trace_rejected(self):
        graph = ChannelGraph.from_edges([("a", "b")], balance=5.0)
        engine = BatchedSimulationEngine(graph)
        with pytest.raises(SimulationError, match="time-ordered"):
            engine.run_trace([
                Transaction(time=2.0, sender="a", receiver="b", amount=1.0),
                Transaction(time=1.0, sender="b", receiver="a", amount=1.0),
            ])


class TestTraceArrays:
    def test_round_trip(self):
        nodes = ("a", "b", "c")
        txs = [
            Transaction(time=1.0, sender="a", receiver="b", amount=2.0),
            Transaction(time=2.0, sender="x", receiver="b", amount=1.0),
            Transaction(time=3.0, sender="c", receiver="c", amount=1.0),
        ]
        trace = TraceArrays.from_transactions(txs, nodes)
        assert len(trace) == 3
        assert trace.to_transactions() == txs

    def test_select_preserves_global_indices(self):
        nodes = ("a", "b")
        txs = [
            Transaction(time=float(i), sender="a", receiver="b", amount=1.0)
            for i in range(5)
        ]
        trace = TraceArrays.from_transactions(txs, nodes)
        sub = trace.select([1, 3, 4])
        assert list(sub.indices) == [1, 3, 4]
        assert [tx.time for tx in sub.to_transactions()] == [1.0, 3.0, 4.0]

    def test_generate_trace_matches_generate(self):
        scenario = scenario_for(TopologySpec("ba", {"n": 20}), horizon=10.0)
        g1 = build_topology(scenario.topology, seed=7)
        g2 = build_topology(scenario.topology, seed=7)
        listed = list(build_workload(scenario, g1).generate(10.0))
        arrays = build_workload(scenario, g2).generate_trace(10.0, g2.nodes)
        assert arrays.to_transactions() == listed

    def test_run_trace_accepts_arrays(self):
        scenario = scenario_for(TopologySpec("ba", {"n": 30}), horizon=8.0)
        graph = build_topology(scenario.topology, seed=7)
        trace = build_workload(scenario, graph).generate_trace(
            8.0, graph.nodes
        )
        g_list = build_topology(scenario.topology, seed=7)
        from_list = BatchedSimulationEngine(g_list, seed=7).run_trace(
            trace.to_transactions()
        )
        g_arr = build_topology(scenario.topology, seed=7)
        from_arrays = BatchedSimulationEngine(g_arr, seed=7).run_trace(trace)
        assert metric_fields(from_list) == metric_fields(from_arrays)


class TestPaymentIndexStamping:
    def test_explicit_indices_advance_the_sequence(self):
        """Default stamping after an explicit batch must not reuse its
        indices (duplicate per-payment RNG keys)."""
        graph = ChannelGraph.from_edges([("a", "b")], balance=50.0)
        engine = SimulationEngine(graph, seed=0, route_rng="payment")
        txs = [
            Transaction(time=1.0, sender="a", receiver="b", amount=1.0),
            Transaction(time=2.0, sender="a", receiver="b", amount=1.0),
        ]
        engine.schedule_transactions(txs, indices=[5, 9])
        engine.schedule_transactions(
            [Transaction(time=3.0, sender="a", receiver="b", amount=1.0)]
        )
        indices = sorted(
            event.index for _, _, event in engine._queue._heap
        )
        assert indices == [5, 9, 10]


class TestStats:
    def test_stats_account_for_all_routed_payments(self):
        scenario = scenario_for(TopologySpec("ba", {"n": 50}), horizon=15.0)
        graph = build_topology(scenario.topology, seed=7)
        trace = list(build_workload(scenario, graph).generate(15.0))
        engine = BatchedSimulationEngine(graph, seed=7)
        engine.run_trace(trace)
        stats = engine.stats
        assert stats.payments == len(trace)
        assert stats.tree_builds + stats.tree_hits > 0
        assert stats.epochs >= 1
        # Every cache miss is either a first-touch build or a conflict.
        assert stats.conflicts <= stats.tree_builds
