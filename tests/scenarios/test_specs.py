"""Spec construction, JSON round-trips, and override semantics."""

import json

import pytest

from repro.errors import ScenarioError
from repro.scenarios import (
    AlgorithmSpec,
    FeeSpec,
    Scenario,
    SimulationSpec,
    TopologySpec,
    WorkloadSpec,
)


def full_scenario() -> Scenario:
    return Scenario(
        topology=TopologySpec("ba", {"n": 30, "attachments": 2}),
        workload=WorkloadSpec(
            "poisson",
            {
                "zipf_s": 1.5,
                "sizes": {"kind": "uniform", "low": 0.0, "high": 2.0},
            },
        ),
        fee=FeeSpec("linear", {"base": 0.01, "rate": 0.001}),
        algorithm=AlgorithmSpec(
            "greedy",
            {"budget": 8.0, "lock": 1.0},
            user="joiner",
            model={"zipf_s": 1.5},
        ),
        simulation=SimulationSpec(horizon=25.0, payment_mode="htlc"),
        name="full",
        seed=42,
    )


class TestRoundTrip:
    def test_minimal_scenario(self):
        s = Scenario(topology=TopologySpec("star", {"leaves": 5}))
        assert Scenario.from_dict(s.to_dict()) == s

    def test_full_scenario(self):
        s = full_scenario()
        assert Scenario.from_dict(s.to_dict()) == s

    def test_survives_json_text(self):
        s = full_scenario()
        assert Scenario.from_json(s.to_json()) == s

    def test_survives_json_dump_load(self):
        s = full_scenario()
        assert Scenario.from_dict(json.loads(json.dumps(s.to_dict()))) == s

    def test_tuple_params_normalise_to_json_form(self):
        # tuples become lists on construction, so equality after a JSON
        # round-trip holds even for tuple-valued params
        spec = FeeSpec("piecewise", {"knots": ((0.0, 0.1), (5.0, 0.5))})
        assert spec.params["knots"] == [[0.0, 0.1], [5.0, 0.5]]
        assert FeeSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_each_plugin_spec_round_trips(self):
        for cls, kind in [
            (TopologySpec, "ba"),
            (WorkloadSpec, "poisson"),
            (FeeSpec, "constant"),
        ]:
            spec = cls(kind, {"x": 1})
            assert cls.from_dict(spec.to_dict()) == spec

    def test_simulation_spec_round_trips(self):
        spec = SimulationSpec(horizon=5.0, payment_mode="htlc")
        assert SimulationSpec.from_dict(spec.to_dict()) == spec

    def test_optional_sections_omitted_from_dict(self):
        doc = Scenario(topology=TopologySpec("ba", {"n": 10})).to_dict()
        assert "workload" not in doc
        assert "algorithm" not in doc


class TestValidation:
    def test_empty_kind_rejected(self):
        with pytest.raises(ScenarioError):
            TopologySpec("")

    def test_non_json_params_rejected_at_construction(self):
        with pytest.raises(ScenarioError):
            TopologySpec("ba", {"rng": object()})

    def test_unknown_scenario_fields_rejected(self):
        doc = Scenario(topology=TopologySpec("ba")).to_dict()
        doc["typo"] = 1
        with pytest.raises(ScenarioError):
            Scenario.from_dict(doc)

    def test_unknown_spec_fields_rejected(self):
        with pytest.raises(ScenarioError):
            TopologySpec.from_dict({"kind": "ba", "parms": {}})

    def test_non_mapping_params_rejected(self):
        with pytest.raises(ScenarioError):
            TopologySpec.from_dict({"kind": "ba", "params": 5})
        with pytest.raises(ScenarioError):
            TopologySpec("ba", params=[1, 2])

    def test_non_mapping_model_rejected(self):
        with pytest.raises(ScenarioError):
            AlgorithmSpec.from_dict({"kind": "greedy", "model": [1]})

    def test_missing_topology_rejected(self):
        with pytest.raises(ScenarioError):
            Scenario.from_dict({"name": "x", "seed": 0})

    def test_unsupported_schema_version_rejected(self):
        doc = Scenario(topology=TopologySpec("ba")).to_dict()
        doc["schema_version"] = 99
        with pytest.raises(ScenarioError):
            Scenario.from_dict(doc)

    def test_invalid_json_text_rejected(self):
        with pytest.raises(ScenarioError):
            Scenario.from_json("{not json")

    def test_non_positive_horizon_rejected(self):
        with pytest.raises(ScenarioError):
            SimulationSpec(horizon=0.0)

    def test_non_numeric_horizon_rejected(self):
        # a quoted number is an easy hand-edit mistake in scenario JSON
        with pytest.raises(ScenarioError):
            SimulationSpec(horizon="100")

    def test_non_numeric_htlc_hold_mean_rejected(self):
        with pytest.raises(ScenarioError):
            SimulationSpec(htlc_hold_mean=None)

    def test_non_int_seed_rejected(self):
        with pytest.raises(ScenarioError):
            Scenario(topology=TopologySpec("ba"), seed="7")


class TestFeeSpecV2:
    """The two-sided fee schema: v1 documents migrate losslessly."""

    def test_v1_document_migrates_to_success_only(self):
        # A v1 FeeSpec document has no upfront fields at all.
        spec = FeeSpec.from_dict(
            {"kind": "linear", "params": {"base": 0.01, "rate": 0.001}}
        )
        assert spec.upfront_base == 0.0
        assert spec.upfront_rate == 0.0
        assert not spec.has_upfront

    def test_v1_scenario_document_loads_under_v2(self):
        document = full_scenario().to_dict()
        document["schema_version"] = 1
        del document["fee"]["upfront_base"]
        del document["fee"]["upfront_rate"]
        scenario = Scenario.from_dict(document)
        assert not scenario.fee.has_upfront
        # re-emitted documents are always current-schema
        assert scenario.to_dict()["schema_version"] == 2
        assert scenario.to_dict()["fee"]["upfront_rate"] == 0.0

    def test_upfront_round_trip(self):
        spec = FeeSpec(
            "linear", {"base": 0.01, "rate": 0.001},
            upfront_base=0.002, upfront_rate=0.05,
        )
        assert spec.has_upfront
        doc = spec.to_dict()
        assert doc["upfront_base"] == 0.002
        assert doc["upfront_rate"] == 0.05
        assert FeeSpec.from_dict(json.loads(json.dumps(doc))) == spec

    def test_negative_upfront_rejected(self):
        with pytest.raises(ScenarioError, match="upfront_rate"):
            FeeSpec("constant", {"fee": 0.1}, upfront_rate=-0.1)
        with pytest.raises(ScenarioError, match="upfront_base"):
            FeeSpec("constant", {"fee": 0.1}, upfront_base=-1.0)

    def test_non_numeric_upfront_rejected(self):
        with pytest.raises(ScenarioError, match="upfront_rate"):
            FeeSpec("constant", {"fee": 0.1}, upfront_rate="0.05")

    def test_upfront_override_path(self):
        s = full_scenario()
        out = s.with_overrides({"fee.upfront_rate": 0.05})
        assert out.fee.upfront_rate == 0.05
        assert out.fee.has_upfront
        assert not s.fee.has_upfront


class TestOverrides:
    def test_override_nested_param(self):
        s = full_scenario()
        out = s.with_overrides({"topology.params.n": 99, "seed": 1})
        assert out.topology.params["n"] == 99
        assert out.seed == 1
        # untouched sections survive
        assert out.fee == s.fee

    def test_override_creates_missing_section(self):
        s = Scenario(topology=TopologySpec("ba", {"n": 10}))
        out = s.with_overrides({"fee.kind": "constant", "fee.params.fee": 0.2})
        assert out.fee == FeeSpec("constant", {"fee": 0.2})

    def test_override_through_scalar_rejected(self):
        s = Scenario(topology=TopologySpec("ba", {"n": 10}))
        with pytest.raises(ScenarioError):
            s.with_overrides({"name.sub": 1})

    def test_original_unchanged(self):
        s = full_scenario()
        s.with_overrides({"topology.params.n": 1})
        assert s.topology.params["n"] == 30
