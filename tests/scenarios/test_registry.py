"""Plugin registries: builtin coverage, lookup errors, collision rules."""

import pytest

from repro.errors import ScenarioError, UnknownPluginError
from repro.scenarios import (
    ALGORITHMS,
    FEES,
    JoinAlgorithm,
    Registry,
    TOPOLOGIES,
    WORKLOADS,
)
# Importing the runner guarantees the builtin providers are registered.
from repro.scenarios.runner import ScenarioRunner  # noqa: F401


class TestBuiltins:
    def test_topologies_registered(self):
        for key in ("ba", "core-periphery", "erdos-renyi", "star", "path",
                    "circle", "complete", "file"):
            assert key in TOPOLOGIES

    def test_algorithms_registered(self):
        for key in ("greedy", "exhaustive", "continuous", "bruteforce"):
            assert key in ALGORITHMS

    def test_fees_registered(self):
        for key in ("constant", "linear", "piecewise"):
            assert key in FEES

    def test_workloads_registered(self):
        assert "poisson" in WORKLOADS

    def test_algorithms_satisfy_join_protocol(self):
        for key in ALGORITHMS:
            assert isinstance(ALGORITHMS.get(key), JoinAlgorithm)


class TestLookupErrors:
    def test_unknown_topology_key(self):
        with pytest.raises(UnknownPluginError) as exc:
            TOPOLOGIES.get("hypercube")
        assert "hypercube" in str(exc.value)
        assert "ba" in str(exc.value)  # known keys are listed

    def test_unknown_algorithm_key(self):
        with pytest.raises(UnknownPluginError):
            ALGORITHMS.get("simulated-annealing")

    def test_unknown_fee_key(self):
        with pytest.raises(UnknownPluginError):
            FEES.get("quadratic")

    def test_unknown_workload_key(self):
        with pytest.raises(UnknownPluginError):
            WORKLOADS.get("burst")

    def test_unknown_plugin_error_is_scenario_error(self):
        assert issubclass(UnknownPluginError, ScenarioError)


class TestRegistration:
    def test_register_and_get(self):
        registry = Registry("thing")

        @registry.register("x", "alias-x")
        def build():
            return 1

        assert registry.get("x") is build
        assert registry.get("alias-x") is build
        assert len(registry) == 2
        assert list(registry) == ["alias-x", "x"]

    def test_reregistering_same_callable_is_idempotent(self):
        registry = Registry("thing")

        def build():
            return 1

        registry.register("x")(build)
        registry.register("x")(build)
        assert registry.get("x") is build

    def test_key_collision_rejected(self):
        registry = Registry("thing")
        registry.register("x")(lambda: 1)
        with pytest.raises(ScenarioError):
            registry.register("x")(lambda: 2)
