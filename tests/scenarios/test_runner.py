"""ScenarioRunner: stage execution, seed derivation, executor parity."""

import pytest

from repro.errors import ScenarioError, UnknownPluginError
from repro.scenarios import (
    AlgorithmSpec,
    FeeSpec,
    Scenario,
    ScenarioRunner,
    SimulationSpec,
    TopologySpec,
    WorkloadSpec,
    derive_seed,
)
from repro.scenarios.runner import build_topology


def sim_scenario(**overrides) -> Scenario:
    defaults = dict(
        topology=TopologySpec("ba", {"n": 15}),
        workload=WorkloadSpec("poisson", {"zipf_s": 1.0}),
        fee=FeeSpec("linear", {"base": 0.01, "rate": 0.001}),
        simulation=SimulationSpec(horizon=4.0),
        name="sim",
        seed=5,
    )
    defaults.update(overrides)
    return Scenario(**defaults)


class TestRun:
    def test_topology_only(self):
        result = ScenarioRunner().run(
            Scenario(topology=TopologySpec("star", {"leaves": 6}))
        )
        assert result.graph is not None
        assert len(result.graph) == 7
        assert result.row["nodes"] == 7
        assert result.optimisation is None
        assert result.metrics is None

    def test_algorithm_stage(self):
        scenario = Scenario(
            topology=TopologySpec("ba", {"n": 12}),
            algorithm=AlgorithmSpec("greedy", {"budget": 4.0, "lock": 1.0}),
            seed=3,
        )
        result = ScenarioRunner().run(scenario)
        assert result.optimisation is not None
        assert result.optimisation.algorithm == "greedy"
        assert result.row["algorithm"] == "greedy"
        assert result.row["strategy_channels"] == len(
            result.optimisation.strategy
        )

    def test_simulation_stage(self):
        result = ScenarioRunner().run(sim_scenario())
        assert result.metrics is not None
        assert result.row["attempted"] == result.metrics.attempted
        assert 0.0 <= result.row["success_rate"] <= 1.0

    def test_workload_params_may_pin_their_own_seed(self):
        pinned = sim_scenario(
            workload=WorkloadSpec("poisson", {"zipf_s": 1.0, "seed": 42})
        )
        row = ScenarioRunner().run(pinned).row
        reference = ScenarioRunner().run(
            sim_scenario(seed=42, workload=WorkloadSpec("poisson", {"zipf_s": 1.0}))
        ).row
        # the pinned workload seed (42) drives arrivals even though the
        # scenario seed is 5; engine seeds differ, so only compare arrivals
        assert row["attempted"] == reference["attempted"]

    def test_same_seed_reproduces(self):
        a = ScenarioRunner().run(sim_scenario()).row
        b = ScenarioRunner().run(sim_scenario()).row
        assert a == b

    def test_different_seeds_differ(self):
        a = ScenarioRunner().run(sim_scenario(seed=1)).row
        b = ScenarioRunner().run(sim_scenario(seed=2)).row
        assert a != b

    def test_file_topology_round_trip(self, tmp_path):
        from repro.snapshots import save_snapshot

        graph = build_topology(TopologySpec("ba", {"n": 9}), seed=1)
        path = tmp_path / "snap.json"
        save_snapshot(graph, path)
        loaded = ScenarioRunner().run(
            Scenario(topology=TopologySpec("file", {"path": str(path)}))
        )
        assert loaded.row["nodes"] == 9
        assert loaded.row["channels"] == graph.num_channels()

    def test_unknown_topology_kind_raises(self):
        with pytest.raises(UnknownPluginError):
            ScenarioRunner().run(Scenario(topology=TopologySpec("hypercube")))

    def test_bad_algorithm_params_raise_scenario_error(self):
        scenario = Scenario(
            topology=TopologySpec("ba", {"n": 10}),
            algorithm=AlgorithmSpec("greedy", {"budget": 4.0, "bogus": 1}),
        )
        with pytest.raises(ScenarioError):
            ScenarioRunner().run(scenario)

    def test_bad_model_overrides_raise_scenario_error(self):
        scenario = Scenario(
            topology=TopologySpec("ba", {"n": 10}),
            algorithm=AlgorithmSpec(
                "greedy", {"budget": 4.0, "lock": 1.0}, model={"bogus": 1}
            ),
        )
        with pytest.raises(ScenarioError):
            ScenarioRunner().run(scenario)


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_seed(7, 3) == derive_seed(7, 3)

    def test_varies_with_index_and_base(self):
        seeds = {derive_seed(7, i) for i in range(50)}
        assert len(seeds) == 50
        assert derive_seed(7, 0) != derive_seed(8, 0)

    def test_in_numpy_seed_range(self):
        for i in range(10):
            assert 0 <= derive_seed(123, i) < 2**31


class TestRunSweep:
    GRID = {"topology.params.n": [8, 12], "simulation.horizon": [2.0, 4.0]}

    def test_rows_follow_grid_order(self):
        rows = ScenarioRunner().run_sweep(sim_scenario(), self.GRID)
        assert [r["topology.params.n"] for r in rows] == [8, 8, 12, 12]
        assert [r["nodes"] for r in rows] == [8, 8, 12, 12]

    def test_serial_and_process_rows_identical(self):
        scenario = sim_scenario()
        serial = ScenarioRunner().run_sweep(
            scenario, self.GRID, executor="serial"
        )
        process = ScenarioRunner().run_sweep(
            scenario, self.GRID, executor="process", max_workers=2
        )
        assert serial == process

    def test_per_point_seeds_are_derived(self):
        rows = ScenarioRunner().run_sweep(sim_scenario(seed=9), self.GRID)
        assert [r["seed"] for r in rows] == [
            derive_seed(9, i) for i in range(4)
        ]

    def test_empty_grid_keeps_scenario_seed(self):
        # a degenerate sweep must agree with run() on the same scenario
        scenario = sim_scenario(seed=9)
        rows = ScenarioRunner().run_sweep(scenario, {})
        assert rows == [ScenarioRunner().run(scenario).row]

    def test_phantom_workload_rates_fail_fast(self):
        scenario = sim_scenario(
            workload=WorkloadSpec("poisson", {"rates": {"phantom": 50.0}})
        )
        with pytest.raises(ScenarioError, match="phantom"):
            ScenarioRunner().run(scenario)

    def test_explicit_seed_sweep_wins_over_derivation(self):
        rows = ScenarioRunner().run_sweep(
            sim_scenario(), {"seed": [100, 200]}
        )
        assert [r["seed"] for r in rows] == [100, 200]

    def test_unknown_executor_rejected(self):
        with pytest.raises(ScenarioError):
            ScenarioRunner().run_sweep(
                sim_scenario(), self.GRID, executor="threads"
            )

    def test_progress_callback_serial(self):
        seen = []
        ScenarioRunner().run_sweep(
            sim_scenario(),
            {"topology.params.n": [8, 12]},
            progress=lambda index, point: seen.append(index),
        )
        assert seen == [0, 1]
