"""One factory, one seed policy: every execution path builds the same
engine.

Regression for the historical duplication between ``build_engine`` and
the attack runner's internal engine construction: the attack baseline
run must be byte-identical to the plain simulation stage of the same
scenario, because both now go through :mod:`repro.scenarios.factory`.
"""

import dataclasses

import pytest

from repro.errors import ScenarioError
from repro.scenarios import (
    AttackSpec,
    FeeSpec,
    Scenario,
    ScenarioRunner,
    SimulationSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.scenarios.factory import (
    build_engine,
    build_simulation_engine,
    build_topology,
    build_workload,
)
from repro.simulation.engine import SimulationEngine
from repro.simulation.fastpath import BatchedSimulationEngine


def base_scenario(seed=7, horizon=20.0):
    return Scenario(
        topology=TopologySpec("star", {"leaves": 6, "balance": 10.0}),
        workload=WorkloadSpec("poisson", {"zipf_s": 1.0}),
        fee=FeeSpec("linear", {"base": 0.01, "rate": 0.001}),
        simulation=SimulationSpec(horizon=horizon),
        seed=seed,
    )


def metric_fields(metrics, include_horizon=True):
    fields = {
        "attempted": metrics.attempted,
        "succeeded": metrics.succeeded,
        "failed": metrics.failed,
        "volume_delivered": metrics.volume_delivered,
        "revenue": dict(metrics.revenue),
        "fees_paid": dict(metrics.fees_paid),
        "sent": dict(metrics.sent),
        "received": dict(metrics.received),
        "edge_traffic": dict(metrics.edge_traffic),
        "failure_reasons": dict(metrics.failure_reasons),
    }
    if include_horizon:
        fields["horizon"] = metrics.horizon
    return fields


class TestOneFactory:
    @pytest.mark.parametrize("seed", [0, 7, 99])
    def test_attack_baseline_equals_plain_simulation(self, seed):
        """The attack runner's honest baseline is the simulation stage.

        Identical spec + seed must produce the identical event stream —
        same payments, same routes, same per-node revenue — whether the
        engine was built for a plain simulation run or for the attack
        baseline (the horizon differs by convention: the attack runner
        pins it to the spec's horizon).
        """
        scenario = base_scenario(seed=seed)
        plain = ScenarioRunner().run(scenario)
        attacked = ScenarioRunner().run(
            dataclasses.replace(
                scenario,
                attack=AttackSpec("slow-jamming", {"budget": 50.0}),
            )
        )
        assert metric_fields(
            plain.metrics, include_horizon=False
        ) == metric_fields(attacked.baseline_metrics, include_horizon=False)

    def test_build_engine_uses_spec_fields(self):
        scenario = dataclasses.replace(
            base_scenario(),
            simulation=SimulationSpec(
                horizon=5.0,
                payment_mode="htlc",
                htlc_hold_mean=0.25,
                fee_forwarding=False,
                path_selection="first",
                route_rng="payment",
            ),
        )
        graph = build_topology(scenario.topology, seed=scenario.seed)
        engine = build_engine(scenario, graph)
        assert isinstance(engine, SimulationEngine)
        assert engine.payment_mode == "htlc"
        assert engine.htlc_hold_mean == 0.25
        assert engine.router.fee_forwarding is False
        assert engine.router.path_selection == "first"
        assert engine.route_rng == "payment"

    def test_build_simulation_engine_dispatches_backend(self):
        scenario = base_scenario()
        graph = build_topology(scenario.topology, seed=7)
        assert isinstance(
            build_simulation_engine(scenario, graph), SimulationEngine
        )
        batched = dataclasses.replace(
            scenario, simulation=SimulationSpec(backend="batched")
        )
        assert isinstance(
            build_simulation_engine(batched, graph), BatchedSimulationEngine
        )

    def test_build_engine_rejects_batched_spec(self):
        scenario = dataclasses.replace(
            base_scenario(), simulation=SimulationSpec(backend="batched")
        )
        graph = build_topology(scenario.topology, seed=7)
        with pytest.raises(ScenarioError, match="event"):
            build_engine(scenario, graph)

    def test_attacks_import_factory_at_module_level(self):
        """The lazy-import workaround is gone (no cycle remains)."""
        import repro.attacks.runner as attacks_runner
        import repro.scenarios.factory as factory

        assert (
            attacks_runner.build_simulation_engine
            is factory.build_simulation_engine
        )
        assert attacks_runner.build_topology is factory.build_topology
        assert attacks_runner.build_workload is factory.build_workload

    def test_runner_reexports_factory(self):
        import repro.scenarios.factory as factory
        import repro.scenarios.runner as runner

        for name in (
            "build_engine", "build_fee", "build_topology", "build_workload",
            "build_simulation_engine", "build_batched_engine",
        ):
            assert getattr(runner, name) is getattr(factory, name)

    def test_workload_seed_injection_is_shared(self):
        """Same scenario -> same trace, wherever the workload is built."""
        scenario = base_scenario(seed=13)
        g1 = build_topology(scenario.topology, seed=13)
        g2 = build_topology(scenario.topology, seed=13)
        trace1 = list(build_workload(scenario, g1).generate(10.0))
        trace2 = list(build_workload(scenario, g2).generate(10.0))
        assert trace1 == trace2
