"""Capability negotiation: engines declare what they support.

Backend feature checks are negotiated through frozen
:class:`EngineCapabilities` declarations instead of name comparisons —
the registry, the engines' ``capabilities()`` classmethods, and the
call sites that consult them (spec validation, attack runner, sharded
trace runner) must all agree.
"""

import dataclasses

import pytest

from repro.errors import ScenarioError
from repro.scenarios.capabilities import (
    BACKEND_CAPABILITIES,
    BATCHED_CAPABILITIES,
    EVENT_CAPABILITIES,
    EngineCapabilities,
    backend_capabilities,
)


class TestRegistry:
    def test_known_backends(self):
        assert backend_capabilities("event") is EVENT_CAPABILITIES
        assert backend_capabilities("batched") is BATCHED_CAPABILITIES
        assert set(BACKEND_CAPABILITIES) == {"event", "batched"}

    def test_unknown_backend_rejected(self):
        with pytest.raises(ScenarioError, match="teleport"):
            backend_capabilities("teleport")

    def test_declarations_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            EVENT_CAPABILITIES.event_injection = False


class TestDeclarations:
    def test_event_backend_is_fully_featured(self):
        caps = EVENT_CAPABILITIES
        assert caps.supports_payment_mode("instant")
        assert caps.supports_payment_mode("htlc")
        assert caps.event_injection
        assert caps.mid_run_topology
        assert caps.record_history
        assert caps.parallel_channels

    def test_batched_backend_declares_its_limits(self):
        caps = BATCHED_CAPABILITIES
        assert caps.supports_payment_mode("instant")
        assert caps.supports_payment_mode("htlc")
        assert caps.event_injection
        assert not caps.mid_run_topology
        assert not caps.record_history
        assert not caps.parallel_channels

    def test_no_backend_claims_shard_safe_stream_rng(self):
        # The sharded runner's refusal of route_rng="stream" rests on
        # this: revisit the refusal if a backend ever declares it.
        assert not any(
            caps.stream_rng_shard_safe
            for caps in BACKEND_CAPABILITIES.values()
        )


class TestEngineClassmethods:
    def test_engines_expose_their_declarations(self):
        from repro.simulation.engine import SimulationEngine
        from repro.simulation.fastpath import BatchedSimulationEngine

        assert SimulationEngine.capabilities() is EVENT_CAPABILITIES
        assert BatchedSimulationEngine.capabilities() is BATCHED_CAPABILITIES

    def test_declared_backend_names_match_registry_keys(self):
        for name, caps in BACKEND_CAPABILITIES.items():
            assert caps.backend == name
