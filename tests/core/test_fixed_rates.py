"""Tests pinning down the fixed-rate revenue estimator (Thm 1-5 regime)."""

import pytest

from repro.core.strategy import Action, Strategy
from repro.core.utility import JoiningUserModel
from repro.errors import InvalidParameter
from repro.network.graph import ChannelGraph
from repro.params import ModelParameters
from repro.transactions.distributions import EmpiricalDistribution


@pytest.fixture
def two_cities() -> ChannelGraph:
    """Two nodes that only transact with each other, far apart."""
    return ChannelGraph.from_edges(
        [("left", "m1"), ("m1", "m2"), ("m2", "right")], balance=10.0
    )


def build_model(graph: ChannelGraph) -> JoiningUserModel:
    params = ModelParameters(
        fee_avg=1.0,
        fee_out_avg=0.0,
        total_tx_rate=10.0,
        user_tx_rate=1.0,
        zipf_s=0.0,
    )
    distribution = EmpiricalDistribution(
        {"left": {"right": 1.0}, "right": {"left": 1.0}}
    )
    return JoiningUserModel(
        graph,
        "u",
        params,
        distribution=distribution,
        own_probs={"m1": 1.0},
        sender_rates={"left": 5.0, "right": 5.0, "m1": 0.0, "m2": 0.0},
        revenue_mode="fixed-rate",
    )


class TestFixedRateEstimates:
    def test_modularity_exact(self, two_cities):
        """E_rev(S) is exactly the sum of per-peer contributions."""
        model = build_model(two_cities)
        singles = {
            peer: model.expected_revenue(Strategy([Action(peer, 1.0)]))
            for peer in two_cities.nodes
        }
        pair = Strategy([Action("left", 1.0), Action("right", 1.0)])
        assert model.expected_revenue(pair) == pytest.approx(
            singles["left"] + singles["right"]
        )

    def test_rates_reflect_all_connected_configuration(self, two_cities):
        """With u connected to everyone, left->right traffic goes
        left-u-right (2 hops beating the 3-hop line), so the outbound
        edge (u, right) carries all of left's 5/unit traffic."""
        model = build_model(two_cities)
        rates = model._estimate_fixed_rates()
        assert rates["right"] == pytest.approx(5.0)
        assert rates["left"] == pytest.approx(5.0)
        # middle nodes receive/forward nothing in that configuration
        assert rates["m1"] == pytest.approx(0.0)
        assert rates["m2"] == pytest.approx(0.0)

    def test_duplicate_peer_counts_once(self, two_cities):
        model = build_model(two_cities)
        single = model.expected_revenue(Strategy([Action("right", 1.0)]))
        doubled = model.expected_revenue(
            Strategy([Action("right", 1.0), Action("right", 2.0)])
        )
        assert doubled == pytest.approx(single)

    def test_thin_channels_earn_nothing_with_routing_amount(self, two_cities):
        params = ModelParameters(
            fee_avg=1.0, fee_out_avg=0.0, total_tx_rate=10.0,
            user_tx_rate=1.0, zipf_s=0.0,
        )
        model = JoiningUserModel(
            two_cities,
            "u",
            params,
            distribution=EmpiricalDistribution(
                {"left": {"right": 1.0}, "right": {"left": 1.0}}
            ),
            own_probs={"m1": 1.0},
            sender_rates={"left": 5.0, "right": 5.0, "m1": 0.0, "m2": 0.0},
            revenue_mode="fixed-rate",
            routing_amount=2.0,
        )
        thin = model.expected_revenue(
            Strategy([Action("left", 1.0), Action("right", 1.0)])
        )
        thick = model.expected_revenue(
            Strategy([Action("left", 2.0), Action("right", 2.0)])
        )
        assert thin == 0.0
        assert thick > 0.0

    def test_invalid_mode_rejected(self, two_cities):
        with pytest.raises(InvalidParameter):
            JoiningUserModel(
                two_cities, "u", ModelParameters(), revenue_mode="magic"
            )

    def test_rates_cached_across_evaluations(self, two_cities):
        model = build_model(two_cities)
        first = model._estimate_fixed_rates()
        second = model._estimate_fixed_rates()
        assert first is second
