"""Unit tests for pluggable cost models (future-work extension)."""

import math

import pytest

from repro.core.costmodels import (
    AmortisedOnchainCost,
    DiscountedOpportunityCost,
    LinearOpportunityCost,
)
from repro.core.strategy import Action, Strategy
from repro.core.utility import JoiningUserModel
from repro.errors import InvalidParameter
from repro.network.graph import ChannelGraph
from repro.params import ModelParameters


class TestLinearOpportunityCost:
    def test_matches_paper_formula(self):
        model = LinearOpportunityCost(onchain_cost=1.0, opportunity_rate=0.1)
        assert model.channel_cost(10.0) == pytest.approx(2.0)

    def test_from_parameters(self):
        params = ModelParameters(onchain_cost=2.0, opportunity_rate=0.25)
        model = LinearOpportunityCost.from_parameters(params)
        assert model.channel_cost(4.0) == pytest.approx(3.0)

    def test_strategy_cost_modular(self):
        model = LinearOpportunityCost(1.0, 0.1)
        assert model.strategy_cost([2.0, 3.0]) == pytest.approx(
            model.channel_cost(2.0) + model.channel_cost(3.0)
        )

    def test_validation(self):
        with pytest.raises(InvalidParameter):
            LinearOpportunityCost(-1.0, 0.1)
        with pytest.raises(InvalidParameter):
            LinearOpportunityCost(1.0, 0.1).channel_cost(-1.0)


class TestDiscountedOpportunityCost:
    def test_small_rate_approximates_linear(self):
        """For small ρT the Guasoni model reduces to the paper's r = ρT."""
        rho, lifetime = 0.001, 1.0
        discounted = DiscountedOpportunityCost(1.0, rho, lifetime)
        linear = LinearOpportunityCost(1.0, rho * lifetime)
        assert discounted.channel_cost(100.0) == pytest.approx(
            linear.channel_cost(100.0), rel=1e-3
        )

    def test_saturates_at_principal(self):
        model = DiscountedOpportunityCost(0.0, interest_rate=10.0, lifetime=100.0)
        assert model.channel_cost(50.0) == pytest.approx(50.0)

    def test_monotone_in_lifetime(self):
        costs = [
            DiscountedOpportunityCost(1.0, 0.05, t).channel_cost(100.0)
            for t in (0.5, 1.0, 5.0, 50.0)
        ]
        assert costs == sorted(costs)

    def test_effective_linear_rate(self):
        model = DiscountedOpportunityCost(1.0, 0.05, 2.0)
        assert model.effective_linear_rate() == pytest.approx(
            1.0 - math.exp(-0.1)
        )


class TestAmortisedOnchainCost:
    def test_spreads_onchain_fee(self):
        model = AmortisedOnchainCost(10.0, 0.0, lifetime=5.0)
        assert model.channel_cost(0.0) == pytest.approx(2.0)

    def test_lifetime_must_be_positive(self):
        with pytest.raises(InvalidParameter):
            AmortisedOnchainCost(1.0, 0.1, lifetime=0.0)


class TestIntegrationWithUtilityModel:
    """Section II-C: 'our computational results still hold in this
    extended model of channel cost' — the cost stays modular, so the
    utility pipeline accepts any cost model unchanged."""

    @pytest.fixture
    def graph(self) -> ChannelGraph:
        return ChannelGraph.from_edges([("a", "b"), ("b", "c")], balance=5.0)

    def test_cost_model_overrides_params(self, graph):
        params = ModelParameters(onchain_cost=1.0, opportunity_rate=0.0)
        cost_model = DiscountedOpportunityCost(1.0, 0.5, 2.0)
        base = JoiningUserModel(graph, "u", params)
        extended = JoiningUserModel(graph, "u2", params, cost_model=cost_model)
        strategy = Strategy([Action("b", 10.0)])
        assert extended.channel_costs(strategy) == pytest.approx(
            cost_model.channel_cost(10.0)
        )
        assert extended.channel_costs(strategy) > base.channel_costs(strategy)

    def test_utility_uses_cost_model(self, graph):
        params = ModelParameters(onchain_cost=1.0, opportunity_rate=0.0)
        cost_model = DiscountedOpportunityCost(1.0, 1.0, 10.0)
        model = JoiningUserModel(graph, "u", params, cost_model=cost_model)
        cheap = model.utility(Strategy([Action("b", 0.0)]))
        pricey = model.utility(Strategy([Action("b", 4.0)]))
        # discounted opportunity cost makes large locks strictly worse
        assert pricey < cheap

    def test_submodularity_preserved(self, graph):
        """Thm 1 survives the extended cost model (modular costs)."""
        from repro.core.objective import ObjectiveEvaluator
        from repro.core.properties import check_submodularity
        from repro.core.strategy import ActionSpace

        params = ModelParameters(onchain_cost=1.0)
        model = JoiningUserModel(
            graph, "u", params,
            cost_model=DiscountedOpportunityCost(1.0, 0.2, 3.0),
            revenue_mode="fixed-rate",
        )
        omega = ActionSpace.fixed_lock(graph, "u", 1.0)
        evaluator = ObjectiveEvaluator(model, kind="utility")
        report = check_submodularity(evaluator, omega, trials=60, seed=0)
        assert report.ok
