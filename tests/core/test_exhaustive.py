"""Unit tests for Algorithm 2 (exhaustive search over fund divisions)."""

import math

import pytest

from repro.core.algorithms.bruteforce import brute_force
from repro.core.algorithms.exhaustive import (
    count_divisions,
    exhaustive_discrete,
    fund_divisions,
)
from repro.core.algorithms.greedy import greedy_fixed_funds
from repro.core.strategy import ActionSpace
from repro.core.utility import JoiningUserModel
from repro.errors import InvalidParameter
from repro.network.graph import ChannelGraph
from repro.params import ModelParameters


@pytest.fixture
def model() -> JoiningUserModel:
    graph = ChannelGraph.from_edges(
        [("a", "b"), ("b", "c"), ("c", "d")], balance=5.0
    )
    params = ModelParameters(
        onchain_cost=1.0,
        opportunity_rate=0.05,
        fee_avg=0.5,
        fee_out_avg=0.1,
        total_tx_rate=20.0,
        user_tx_rate=2.0,
        zipf_s=1.0,
    )
    return JoiningUserModel(graph, "u", params, revenue_mode="fixed-rate")


class TestFundDivisions:
    def test_partitions_small(self):
        divisions = list(fund_divisions(3, 2))
        assert divisions == [(3, 0), (2, 1)]

    def test_compositions_small(self):
        divisions = set(fund_divisions(2, 2, unique_multisets=False))
        assert divisions == {(0, 2), (1, 1), (2, 0)}

    def test_division_sums_preserved(self):
        for division in fund_divisions(7, 4):
            assert sum(division) == 7

    def test_partitions_non_increasing(self):
        for division in fund_divisions(6, 3):
            assert list(division) == sorted(division, reverse=True)

    def test_count_matches_enumeration_partitions(self):
        assert count_divisions(6, 3) == len(list(fund_divisions(6, 3)))

    def test_count_matches_enumeration_compositions(self):
        assert count_divisions(5, 3, unique_multisets=False) == len(
            list(fund_divisions(5, 3, unique_multisets=False))
        )
        assert count_divisions(5, 3, unique_multisets=False) == math.comb(7, 2)

    def test_zero_units(self):
        assert list(fund_divisions(0, 3)) == [(0, 0, 0)]

    def test_rejects_bad_args(self):
        with pytest.raises(InvalidParameter):
            list(fund_divisions(-1, 2))
        with pytest.raises(InvalidParameter):
            list(fund_divisions(1, 0))


class TestExhaustiveDiscrete:
    def test_respects_budget(self, model):
        result = exhaustive_discrete(model, budget=4.0, granularity=1.0)
        assert result.strategy.budget_cost(model.params) <= 4.0 + 1e-9

    def test_locks_are_multiples_of_granularity(self, model):
        result = exhaustive_discrete(model, budget=4.0, granularity=0.5)
        for action in result.strategy:
            assert (action.locked / 0.5) == pytest.approx(
                round(action.locked / 0.5)
            )

    def test_at_least_as_good_as_fixed_lock_greedy(self, model):
        """Algorithm 2 explores lock=1.0 divisions among others."""
        budget = 4.0
        greedy = greedy_fixed_funds(model, budget=budget, lock=1.0)
        exhaustive = exhaustive_discrete(model, budget=budget, granularity=1.0)
        assert exhaustive.objective_value >= greedy.objective_value - 1e-9

    def test_ratio_against_bruteforce(self, model):
        budget = 4.0
        omega = ActionSpace.discrete(
            model.base_graph, "u", budget, 1.0, model.params
        )
        optimum = brute_force(model, budget=budget, omega=omega)
        result = exhaustive_discrete(model, budget=budget, granularity=1.0)
        if optimum.objective_value > 0:
            ratio = result.objective_value / optimum.objective_value
            assert ratio >= (1 - 1 / math.e) - 1e-9

    def test_max_divisions_truncates(self, model):
        result = exhaustive_discrete(
            model, budget=5.0, granularity=0.5, max_divisions=3
        )
        assert result.details["divisions_tried"] == 3
        assert result.details["truncated"]

    def test_details_record_combinatorics(self, model):
        result = exhaustive_discrete(model, budget=4.0, granularity=1.0)
        assert result.details["units"] == 4
        assert result.details["max_channels"] == 4
        assert result.details["divisions_tried"] >= 1

    def test_rejects_budget_below_one_channel(self, model):
        with pytest.raises(InvalidParameter):
            exhaustive_discrete(model, budget=0.5, granularity=0.1)

    def test_rejects_bad_granularity(self, model):
        with pytest.raises(InvalidParameter):
            exhaustive_discrete(model, budget=4.0, granularity=0.0)

    def test_granularity_tradeoff_coarser_is_fewer_divisions(self, model):
        fine = exhaustive_discrete(model, budget=4.0, granularity=0.5)
        coarse = exhaustive_discrete(model, budget=4.0, granularity=2.0)
        assert (
            coarse.details["divisions_tried"] < fine.details["divisions_tried"]
        )
