"""Unit tests for the channel cost model (Section II-C / III-D)."""

import pytest

from repro.core.costs import (
    benefit_positivity_condition,
    channel_cost,
    onchain_alternative_cost,
    strategy_cost,
)
from repro.core.strategy import Action, Strategy
from repro.params import ModelParameters


class TestChannelCost:
    def test_c_plus_rl(self):
        params = ModelParameters(onchain_cost=2.0, opportunity_rate=0.25)
        assert channel_cost(params, 8.0) == pytest.approx(4.0)

    def test_strategy_cost_sums(self):
        params = ModelParameters(onchain_cost=1.0, opportunity_rate=0.1)
        strategy = Strategy([Action("a", 10.0), Action("b", 20.0)])
        assert strategy_cost(params, strategy) == pytest.approx(
            (1 + 1.0) + (1 + 2.0)
        )

    def test_onchain_alternative(self):
        params = ModelParameters(user_tx_rate=6.0, onchain_cost=2.0)
        assert onchain_alternative_cost(params) == pytest.approx(6.0)


class TestPositivityCondition:
    def test_holds_when_fees_small(self):
        params = ModelParameters(
            user_tx_rate=100.0, onchain_cost=1.0, opportunity_rate=0.0
        )
        # C_u = 50; E_fees + B/C * L = 1 + 10 * 1 = 11 < 50
        assert benefit_positivity_condition(
            params, expected_fees=1.0, budget=10.0, max_single_channel_cost=1.0
        )

    def test_fails_when_fees_large(self):
        params = ModelParameters(user_tx_rate=2.0, onchain_cost=1.0)
        # C_u = 1; lhs >= 10
        assert not benefit_positivity_condition(
            params, expected_fees=10.0, budget=5.0, max_single_channel_cost=1.0
        )
