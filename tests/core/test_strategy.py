"""Unit tests for actions, strategies and action spaces."""

import pytest

from repro.errors import BudgetExceeded, InvalidParameter
from repro.core.strategy import Action, ActionSpace, Strategy
from repro.network.graph import ChannelGraph
from repro.params import ModelParameters


class TestAction:
    def test_costs(self):
        params = ModelParameters(onchain_cost=1.0, opportunity_rate=0.1)
        action = Action("v", 5.0)
        assert action.budget_cost(params) == pytest.approx(6.0)
        assert action.utility_cost(params) == pytest.approx(1.5)

    def test_rejects_negative_lock(self):
        with pytest.raises(InvalidParameter):
            Action("v", -1.0)

    def test_hashable_and_equal(self):
        assert Action("v", 1.0) == Action("v", 1.0)
        assert hash(Action("v", 1.0)) == hash(Action("v", 1.0))
        assert Action("v", 1.0) != Action("v", 2.0)


class TestStrategyMultiset:
    def test_canonical_order(self):
        s1 = Strategy([Action("b", 1.0), Action("a", 2.0)])
        s2 = Strategy([Action("a", 2.0), Action("b", 1.0)])
        assert s1 == s2
        assert hash(s1) == hash(s2)

    def test_duplicates_allowed(self):
        strategy = Strategy([Action("a", 1.0), Action("a", 1.0)])
        assert len(strategy) == 2
        assert strategy.peers == ("a", "a")

    def test_contains(self):
        strategy = Strategy([Action("a", 1.0)])
        assert Action("a", 1.0) in strategy
        assert Action("a", 2.0) not in strategy

    def test_with_action(self):
        base = Strategy([Action("a", 1.0)])
        extended = base.with_action(Action("b", 2.0))
        assert len(base) == 1  # immutable
        assert len(extended) == 2

    def test_without_action(self):
        strategy = Strategy([Action("a", 1.0), Action("a", 1.0)])
        reduced = strategy.without_action(Action("a", 1.0))
        assert len(reduced) == 1
        assert Action("a", 1.0) in reduced

    def test_without_missing_action(self):
        with pytest.raises(InvalidParameter):
            Strategy().without_action(Action("a", 1.0))

    def test_replacing(self):
        strategy = Strategy([Action("a", 1.0)])
        swapped = strategy.replacing(Action("a", 1.0), Action("b", 3.0))
        assert Action("b", 3.0) in swapped
        assert Action("a", 1.0) not in swapped


class TestBudget:
    def test_budget_cost_sums_c_plus_l(self):
        params = ModelParameters(onchain_cost=1.0)
        strategy = Strategy([Action("a", 2.0), Action("b", 3.0)])
        assert strategy.budget_cost(params) == pytest.approx(7.0)

    def test_utility_cost_uses_opportunity_rate(self):
        params = ModelParameters(onchain_cost=1.0, opportunity_rate=0.5)
        strategy = Strategy([Action("a", 2.0)])
        assert strategy.utility_cost(params) == pytest.approx(2.0)

    def test_check_budget_passes(self):
        params = ModelParameters(onchain_cost=1.0)
        Strategy([Action("a", 2.0)]).check_budget(params, 3.0)

    def test_check_budget_raises(self):
        params = ModelParameters(onchain_cost=1.0)
        with pytest.raises(BudgetExceeded):
            Strategy([Action("a", 5.0)]).check_budget(params, 3.0)

    def test_fits_budget(self):
        params = ModelParameters(onchain_cost=1.0)
        assert Strategy([Action("a", 1.0)]).fits_budget(params, 2.0)
        assert not Strategy([Action("a", 1.5)]).fits_budget(params, 2.0)

    def test_total_locked(self):
        strategy = Strategy([Action("a", 1.5), Action("b", 2.5)])
        assert strategy.total_locked() == pytest.approx(4.0)


class TestActionSpace:
    @pytest.fixture
    def graph(self) -> ChannelGraph:
        return ChannelGraph.from_edges([("a", "b"), ("b", "c")])

    def test_fixed_lock_excludes_new_user(self, graph):
        omega = ActionSpace.fixed_lock(graph, "a", 1.0)
        assert all(action.peer != "a" for action in omega)
        assert len(omega) == 2

    def test_fixed_lock_for_outsider(self, graph):
        omega = ActionSpace.fixed_lock(graph, "newcomer", 2.0)
        assert len(omega) == 3
        assert all(action.locked == 2.0 for action in omega)

    def test_fixed_lock_rejects_negative(self, graph):
        with pytest.raises(InvalidParameter):
            ActionSpace.fixed_lock(graph, "u", -1.0)

    def test_discrete_locks_are_multiples(self, graph):
        params = ModelParameters(onchain_cost=1.0)
        omega = ActionSpace.discrete(graph, "u", budget=3.0, granularity=0.5,
                                     params=params)
        locks = {action.locked for action in omega}
        assert locks == {0.0, 0.5, 1.0, 1.5, 2.0}

    def test_discrete_empty_when_budget_below_c(self, graph):
        params = ModelParameters(onchain_cost=2.0)
        omega = ActionSpace.discrete(graph, "u", budget=1.0, granularity=0.5,
                                     params=params)
        assert omega == []

    def test_discrete_rejects_bad_granularity(self, graph):
        with pytest.raises(InvalidParameter):
            ActionSpace.discrete(graph, "u", 3.0, 0.0, ModelParameters())

    def test_max_channels(self):
        params = ModelParameters(onchain_cost=1.0)
        assert ActionSpace.max_channels(params, budget=10.0, lock=1.0) == 5
        assert ActionSpace.max_channels(params, budget=1.9, lock=1.0) == 0
