"""Unit tests for the continuous (benefit-function) optimiser."""

import math

import pytest

from repro.core.algorithms.bruteforce import brute_force
from repro.core.algorithms.continuous import continuous_local_search, lock_grid
from repro.core.strategy import Action
from repro.core.utility import JoiningUserModel
from repro.errors import InvalidParameter
from repro.network.graph import ChannelGraph
from repro.params import ModelParameters


@pytest.fixture
def model() -> JoiningUserModel:
    graph = ChannelGraph.from_edges(
        [("a", "b"), ("b", "c"), ("c", "d")], balance=5.0
    )
    params = ModelParameters(
        onchain_cost=0.5,
        opportunity_rate=0.01,
        fee_avg=0.5,
        fee_out_avg=0.1,
        total_tx_rate=40.0,
        user_tx_rate=4.0,
        zipf_s=1.0,
    )
    return JoiningUserModel(graph, "u", params)


class TestLockGrid:
    def test_includes_zero(self):
        grid = lock_grid(10.0, 1.0)
        assert 0.0 in grid

    def test_includes_routing_amount(self):
        grid = lock_grid(10.0, 1.0, routing_amount=2.5)
        assert 2.5 in grid

    def test_bounded_by_affordable(self):
        grid = lock_grid(10.0, 1.0)
        assert max(grid) <= 9.0 + 1e-9

    def test_tiny_budget_only_zero(self):
        assert lock_grid(0.5, 1.0) == [0.0]


class TestContinuousLocalSearch:
    def test_respects_budget(self, model):
        result = continuous_local_search(model, budget=3.0)
        assert result.strategy.budget_cost(model.params) <= 3.0 + 1e-9

    def test_returns_connected_strategy_when_profitable(self, model):
        result = continuous_local_search(model, budget=3.0)
        assert len(result.strategy) >= 1
        assert result.objective_value > -math.inf

    def test_rejects_nonpositive_budget(self, model):
        with pytest.raises(InvalidParameter):
            continuous_local_search(model, budget=0.0)

    def test_one_fifth_guarantee_vs_bruteforce(self, model):
        """The local search should beat 1/5 of the discrete optimum."""
        budget = 3.0
        locks = [0.0, 1.0]
        omega = [
            Action(peer, lock)
            for peer in model.base_graph.nodes
            for lock in locks
        ]
        optimum = brute_force(
            model, budget=budget, omega=omega, objective="benefit",
            max_subset_size=4,
        )
        result = continuous_local_search(model, budget=budget, locks=locks)
        assert optimum.objective_value > 0
        assert result.objective_value >= optimum.objective_value / 5 - 1e-9

    def test_positivity_condition_reported(self, model):
        result = continuous_local_search(model, budget=3.0)
        assert "positivity_condition" in result.details
        assert isinstance(result.details["positivity_condition"], bool)

    def test_capacity_aware_locks_meet_routing_amount(self):
        """With routing_amount set, chosen channels lock enough to route."""
        graph = ChannelGraph.from_edges(
            [("a", "b"), ("b", "c"), ("c", "d")], balance=5.0
        )
        params = ModelParameters(
            onchain_cost=0.5,
            opportunity_rate=0.01,
            fee_avg=0.5,
            fee_out_avg=0.1,
            total_tx_rate=40.0,
            user_tx_rate=4.0,
            zipf_s=1.0,
        )
        model = JoiningUserModel(
            graph, "u", params, routing_amount=1.0, peer_deposit="match"
        )
        result = continuous_local_search(model, budget=4.0)
        assert len(result.strategy) >= 1
        assert all(a.locked >= 1.0 for a in result.strategy)

    def test_custom_epsilon_converges(self, model):
        result = continuous_local_search(
            model, budget=3.0, epsilon=0.2, refine_rounds=0
        )
        assert result.objective_value > -math.inf
