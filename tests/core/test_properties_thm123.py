"""Tests reproducing Theorems 1-3 (objective-function properties).

Thm 1: U is submodular. Thm 2: U' is monotone, U is not. Thm 3: U can be
negative. We verify each claim empirically on randomised instances — this
is the test-level counterpart of bench E3.
"""

import pytest

from repro.core.objective import ObjectiveEvaluator
from repro.core.properties import (
    check_monotonicity,
    check_submodularity,
    find_negative_utility_example,
)
from repro.core.strategy import ActionSpace
from repro.core.utility import JoiningUserModel
from repro.params import ModelParameters
from repro.snapshots.synthetic import barabasi_albert_snapshot


@pytest.fixture(scope="module")
def instance():
    """Model under the paper's fixed-λ assumption (Thm 1-5 regime)."""
    graph = barabasi_albert_snapshot(14, attachments=2, seed=9)
    params = ModelParameters(
        onchain_cost=1.0,
        opportunity_rate=0.1,
        fee_avg=0.3,
        fee_out_avg=0.2,
        total_tx_rate=50.0,
        user_tx_rate=5.0,
        zipf_s=1.0,
    )
    model = JoiningUserModel(graph, "u", params, revenue_mode="fixed-rate")
    omega = ActionSpace.fixed_lock(graph, "u", 1.0)[:8]
    return model, omega


class TestTheorem1Submodularity:
    def test_simplified_utility_submodular(self, instance):
        model, omega = instance
        evaluator = ObjectiveEvaluator(model, kind="simplified")
        report = check_submodularity(evaluator, omega, trials=120, seed=0)
        assert report.ok, f"violations: {report.violations}, gap {report.worst_gap}"

    def test_full_utility_submodular(self, instance):
        model, omega = instance
        evaluator = ObjectiveEvaluator(model, kind="utility")
        report = check_submodularity(evaluator, omega, trials=120, seed=1)
        assert report.ok

    def test_benefit_submodular(self, instance):
        model, omega = instance
        evaluator = ObjectiveEvaluator(model, kind="benefit")
        report = check_submodularity(evaluator, omega, trials=120, seed=2)
        assert report.ok


class TestTheorem2Monotonicity:
    def test_simplified_utility_monotone(self, instance):
        model, omega = instance
        evaluator = ObjectiveEvaluator(model, kind="simplified")
        ran, violations = check_monotonicity(evaluator, omega, trials=120, seed=3)
        assert ran > 0
        assert violations == 0

    def test_full_utility_not_monotone(self, instance):
        """With expensive channels, adding one can lower U (Thm 2)."""
        model, omega = instance
        expensive = ModelParameters(
            onchain_cost=5.0,
            opportunity_rate=1.0,
            fee_avg=0.01,
            fee_out_avg=0.01,
            total_tx_rate=10.0,
            user_tx_rate=1.0,
            zipf_s=1.0,
        )
        pricey_model = JoiningUserModel(model.base_graph, "u2", expensive)
        evaluator = ObjectiveEvaluator(pricey_model, kind="utility")
        ran, violations = check_monotonicity(evaluator, omega, trials=120, seed=4)
        assert violations > 0


class TestExactRevenueDeviation:
    """Documented deviation: with *exact* betweenness revenue (the default
    ``revenue_mode="betweenness"``), submodularity fails — one channel earns
    nothing, a second suddenly creates transit, so the marginal revenue of
    the second channel jumps. The paper's Thm 1 avoids this by assuming
    λ_xy is a fixed value; see DESIGN.md and bench E3."""

    def test_betweenness_revenue_violates_submodularity(self, instance):
        model, omega = instance
        exact_model = JoiningUserModel(
            model.base_graph, "u9", model.params, revenue_mode="betweenness"
        )
        evaluator = ObjectiveEvaluator(exact_model, kind="simplified")
        report = check_submodularity(evaluator, omega, trials=150, seed=0)
        assert not report.ok  # violations exist by construction


class TestTheorem3Negativity:
    def test_negative_utility_exists(self, instance):
        model, omega = instance
        expensive = ModelParameters(
            onchain_cost=10.0,
            opportunity_rate=1.0,
            fee_avg=0.01,
            fee_out_avg=0.5,
            total_tx_rate=10.0,
            user_tx_rate=5.0,
            zipf_s=1.0,
        )
        pricey_model = JoiningUserModel(model.base_graph, "u3", expensive)
        evaluator = ObjectiveEvaluator(pricey_model, kind="utility")
        witness = find_negative_utility_example(
            evaluator, omega, trials=60, seed=5
        )
        assert witness is not None
        assert evaluator(witness) < 0
