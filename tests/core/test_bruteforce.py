"""Unit tests for the brute-force baseline optimiser."""

import pytest

from repro.core.algorithms.bruteforce import brute_force
from repro.core.strategy import Action
from repro.core.utility import JoiningUserModel
from repro.errors import InvalidParameter
from repro.network.graph import ChannelGraph
from repro.params import ModelParameters


@pytest.fixture
def model() -> JoiningUserModel:
    graph = ChannelGraph.from_edges([("a", "b"), ("b", "c")], balance=5.0)
    params = ModelParameters(
        onchain_cost=1.0, fee_avg=0.5, fee_out_avg=0.1,
        total_tx_rate=20.0, user_tx_rate=1.0, zipf_s=1.0,
    )
    return JoiningUserModel(graph, "u", params)


class TestBruteForce:
    def test_finds_global_optimum_small(self, model):
        result = brute_force(model, budget=10.0, lock=1.0)
        # enumerate manually: all subsets of {a, b, c} with lock 1
        from itertools import combinations

        from repro.core.strategy import Strategy

        best = float("-inf")
        for size in range(1, 4):
            for subset in combinations(["a", "b", "c"], size):
                strategy = Strategy([Action(p, 1.0) for p in subset])
                best = max(best, model.simplified_utility(strategy))
        assert result.objective_value == pytest.approx(best)

    def test_respects_budget(self, model):
        result = brute_force(model, budget=2.5, lock=1.0)
        assert len(result.strategy) <= 1  # each channel costs 2.0

    def test_custom_omega(self, model):
        omega = [Action("b", 0.0), Action("b", 2.0)]
        result = brute_force(model, budget=10.0, omega=omega)
        assert all(a.peer == "b" for a in result.strategy)

    def test_max_subset_size(self, model):
        result = brute_force(model, budget=10.0, lock=1.0, max_subset_size=1)
        assert len(result.strategy) <= 1

    def test_objective_selection(self, model):
        simplified = brute_force(model, budget=6.0, lock=1.0)
        utility = brute_force(model, budget=6.0, lock=1.0, objective="utility")
        # utility subtracts channel costs, so its optimum uses <= channels
        assert len(utility.strategy) <= len(simplified.strategy)

    def test_rejects_nonpositive_budget(self, model):
        with pytest.raises(InvalidParameter):
            brute_force(model, budget=-1.0)

    def test_explored_counter(self, model):
        result = brute_force(model, budget=10.0, lock=1.0)
        assert result.details["subsets_explored"] == 7  # 3 + 3 + 1
