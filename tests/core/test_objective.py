"""Unit tests for the caching objective evaluator."""

import pytest

from repro.core.objective import ObjectiveEvaluator
from repro.core.strategy import Action, Strategy
from repro.core.utility import JoiningUserModel
from repro.errors import InvalidParameter
from repro.network.graph import ChannelGraph
from repro.params import ModelParameters


@pytest.fixture
def evaluator() -> ObjectiveEvaluator:
    graph = ChannelGraph.from_edges([("a", "b"), ("b", "c")])
    model = JoiningUserModel(graph, "u", ModelParameters(zipf_s=0.0))
    return ObjectiveEvaluator(model, kind="simplified")


class TestCaching:
    def test_repeat_evaluation_cached(self, evaluator):
        strategy = Strategy([Action("b", 1.0)])
        first = evaluator(strategy)
        second = evaluator(strategy)
        assert first == second
        assert evaluator.evaluations == 1
        assert evaluator.cache_hits == 1

    def test_equivalent_strategies_share_cache(self, evaluator):
        s1 = Strategy([Action("a", 1.0), Action("b", 2.0)])
        s2 = Strategy([Action("b", 2.0), Action("a", 1.0)])
        evaluator(s1)
        evaluator(s2)
        assert evaluator.evaluations == 1

    def test_marginal(self, evaluator):
        base = Strategy([Action("b", 1.0)])
        gain = evaluator.marginal(base, Action("a", 1.0))
        expected = evaluator(base.with_action(Action("a", 1.0))) - evaluator(base)
        assert gain == pytest.approx(expected)

    def test_reset_counters(self, evaluator):
        evaluator(Strategy([Action("a", 1.0)]))
        evaluator.reset_counters()
        assert evaluator.evaluations == 0
        assert evaluator.cache_hits == 0

    def test_clear_forces_recompute(self, evaluator):
        strategy = Strategy([Action("a", 1.0)])
        evaluator(strategy)
        evaluator.clear()
        evaluator(strategy)
        assert evaluator.evaluations == 1

    def test_max_cache_evicts(self):
        graph = ChannelGraph.from_edges([("a", "b"), ("b", "c")])
        model = JoiningUserModel(graph, "u", ModelParameters(zipf_s=0.0))
        evaluator = ObjectiveEvaluator(model, max_cache=1)
        evaluator(Strategy([Action("a", 1.0)]))
        evaluator(Strategy([Action("b", 1.0)]))
        evaluator(Strategy([Action("a", 1.0)]))  # evicted, recompute
        assert evaluator.evaluations == 3

    def test_invalid_kind(self, evaluator):
        with pytest.raises(InvalidParameter):
            ObjectiveEvaluator(evaluator.model, kind="bogus")

    def test_invalid_max_cache(self, evaluator):
        with pytest.raises(InvalidParameter):
            ObjectiveEvaluator(evaluator.model, max_cache=0)
