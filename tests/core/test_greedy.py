"""Unit tests for Algorithm 1 (greedy, fixed funds)."""

import math

import pytest

from repro.core.algorithms.bruteforce import brute_force
from repro.core.algorithms.greedy import greedy_fixed_funds, greedy_over_actions
from repro.core.objective import ObjectiveEvaluator
from repro.core.strategy import Action, ActionSpace
from repro.core.utility import JoiningUserModel
from repro.errors import InvalidParameter
from repro.network.graph import ChannelGraph
from repro.params import ModelParameters
from repro.snapshots.synthetic import barabasi_albert_snapshot


@pytest.fixture
def small_model() -> JoiningUserModel:
    graph = ChannelGraph.from_edges(
        [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")], balance=5.0
    )
    params = ModelParameters(
        onchain_cost=1.0,
        opportunity_rate=0.01,
        fee_avg=0.5,
        fee_out_avg=0.2,
        total_tx_rate=20.0,
        user_tx_rate=2.0,
        zipf_s=1.0,
    )
    return JoiningUserModel(graph, "u", params)


class TestGreedyBasics:
    def test_respects_budget(self, small_model):
        result = greedy_fixed_funds(small_model, budget=4.0, lock=1.0)
        assert result.strategy.budget_cost(small_model.params) <= 4.0 + 1e-9
        assert len(result.strategy) <= 2  # M = floor(4 / 2)

    def test_uses_fixed_lock(self, small_model):
        result = greedy_fixed_funds(small_model, budget=6.0, lock=1.5)
        assert all(a.locked == 1.5 for a in result.strategy)

    def test_rejects_nonpositive_budget(self, small_model):
        with pytest.raises(InvalidParameter):
            greedy_fixed_funds(small_model, budget=0.0, lock=1.0)

    def test_zero_m_returns_empty(self, small_model):
        result = greedy_fixed_funds(small_model, budget=0.5, lock=1.0)
        assert len(result.strategy) == 0
        assert result.objective_value == -math.inf

    def test_prefix_values_recorded(self, small_model):
        result = greedy_fixed_funds(small_model, budget=6.0, lock=1.0)
        values = result.details["prefix_values"]
        assert len(values) == len(result.details["prefix_sizes"])
        assert result.objective_value == max(values)

    def test_deterministic(self, small_model):
        r1 = greedy_fixed_funds(small_model, budget=6.0, lock=1.0)
        graph = small_model.base_graph
        model2 = JoiningUserModel(graph, "u", small_model.params)
        r2 = greedy_fixed_funds(model2, budget=6.0, lock=1.0)
        assert r1.strategy == r2.strategy

    def test_picks_unique_peers(self, small_model):
        result = greedy_fixed_funds(small_model, budget=20.0, lock=1.0)
        peers = result.strategy.peers
        assert len(peers) == len(set(peers))


class TestTheorem4Guarantee:
    """Greedy achieves >= (1 - 1/e) of the optimum of U' (Thm 4).

    U' values can be negative (fees dominate); the Nemhauser guarantee is
    stated for non-negative functions, so we compare *gains over the best
    singleton baseline* on instances where the optimum is positive.
    """

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_ratio_on_random_instances(self, seed):
        graph = barabasi_albert_snapshot(12, attachments=2, seed=seed)
        params = ModelParameters(
            onchain_cost=0.4,
            opportunity_rate=0.001,
            fee_avg=1.0,
            fee_out_avg=0.05,
            total_tx_rate=100.0,
            user_tx_rate=1.0,
            zipf_s=1.0,
        )
        model = JoiningUserModel(graph, "u", params, revenue_mode="fixed-rate")
        budget = 4.2  # M = 3 channels at lock 1.0
        greedy = greedy_fixed_funds(model, budget=budget, lock=1.0)
        optimum = brute_force(model, budget=budget, lock=1.0)
        assert optimum.objective_value > 0
        ratio = greedy.objective_value / optimum.objective_value
        assert ratio >= (1 - 1 / math.e) - 1e-9

    def test_evaluation_count_linear_in_m_n(self, small_model):
        result = greedy_fixed_funds(small_model, budget=6.0, lock=1.0)
        n = len(small_model.base_graph)
        m = result.details["max_channels"]
        # greedy evaluates at most one objective per candidate per step
        # (+1 for the empty strategy)
        assert result.evaluations <= m * n + 1


class TestGreedyOverActions:
    def test_monotone_objective_takes_full_prefix(self, small_model):
        evaluator = ObjectiveEvaluator(small_model, kind="simplified")
        omega = ActionSpace.fixed_lock(small_model.base_graph, "u", 1.0)
        result = greedy_over_actions(evaluator, omega, max_channels=2)
        # U' is monotone: the longest prefix is optimal
        assert len(result.strategy) == 2

    def test_empty_omega(self, small_model):
        evaluator = ObjectiveEvaluator(small_model, kind="simplified")
        result = greedy_over_actions(evaluator, [], max_channels=3)
        assert len(result.strategy) == 0

    def test_rejects_negative_max(self, small_model):
        evaluator = ObjectiveEvaluator(small_model, kind="simplified")
        with pytest.raises(InvalidParameter):
            greedy_over_actions(evaluator, [], max_channels=-1)

    def test_allow_reuse_permits_parallel_channels(self, small_model):
        evaluator = ObjectiveEvaluator(small_model, kind="simplified")
        omega = [Action("b", 1.0)]
        result = greedy_over_actions(
            evaluator, omega, max_channels=3, allow_reuse=True
        )
        # the single action may be picked repeatedly (though it won't help
        # U', the loop must terminate and stay within max_channels)
        assert len(result.strategy) <= 3
