"""Unit tests for the joining-user utility model (Section II-C)."""

import math

import pytest

from repro.core.strategy import Action, Strategy
from repro.core.utility import JoiningUserModel
from repro.errors import InvalidParameter
from repro.network.graph import ChannelGraph
from repro.params import ModelParameters
from repro.transactions.distributions import UniformDistribution


@pytest.fixture
def line3_graph() -> ChannelGraph:
    return ChannelGraph.from_edges([("a", "b"), ("b", "c")], balance=10.0)


@pytest.fixture
def model(line3_graph) -> JoiningUserModel:
    params = ModelParameters(
        onchain_cost=1.0,
        opportunity_rate=0.1,
        fee_avg=1.0,
        fee_out_avg=1.0,
        total_tx_rate=3.0,  # 1 per existing node
        user_tx_rate=1.0,
        zipf_s=0.0,  # uniform ranking for hand-computable numbers
    )
    return JoiningUserModel(
        line3_graph,
        "u",
        params,
        distribution=UniformDistribution.from_graph(line3_graph),
    )


class TestConstruction:
    def test_rejects_user_already_present(self, line3_graph):
        with pytest.raises(InvalidParameter):
            JoiningUserModel(line3_graph, "a")

    def test_rejects_empty_graph(self):
        with pytest.raises(InvalidParameter):
            JoiningUserModel(ChannelGraph(), "u")

    def test_own_probs_uniform_with_uniform_distribution(self, model):
        assert model.own_probs == pytest.approx(
            {"a": 1 / 3, "b": 1 / 3, "c": 1 / 3}
        )

    def test_own_probs_zipf_by_default(self, line3_graph):
        model = JoiningUserModel(line3_graph, "u", ModelParameters(zipf_s=1.0))
        probs = model.own_probs
        assert probs["b"] == max(probs.values())  # b has highest degree
        assert sum(probs.values()) == pytest.approx(1.0)

    def test_explicit_own_probs_normalised(self, line3_graph):
        model = JoiningUserModel(
            line3_graph, "u", ModelParameters(), own_probs={"a": 2.0, "b": 2.0}
        )
        assert model.own_probs == pytest.approx({"a": 0.5, "b": 0.5})

    def test_sender_rates_default_equal_split(self, model):
        assert model.sender_rates == pytest.approx(
            {"a": 1.0, "b": 1.0, "c": 1.0}
        )


class TestExpectedFees:
    def test_disconnected_infinite(self, model):
        assert math.isinf(model.expected_fees(Strategy()))

    def test_connect_to_middle(self, model):
        # u-b: distances u->a=2, u->b=1, u->c=2; N_u=1, f=1, uniform 1/3
        fees = model.expected_fees(Strategy([Action("b", 1.0)]))
        assert fees == pytest.approx((2 + 1 + 2) / 3)

    def test_connect_to_end(self, model):
        # u-a: d(u,a)=1, d(u,b)=2, d(u,c)=3
        fees = model.expected_fees(Strategy([Action("a", 1.0)]))
        assert fees == pytest.approx((1 + 2 + 3) / 3)

    def test_more_channels_weakly_reduce_fees(self, model):
        one = model.expected_fees(Strategy([Action("a", 1.0)]))
        two = model.expected_fees(
            Strategy([Action("a", 1.0), Action("c", 1.0)])
        )
        assert two <= one

    def test_intermediaries_convention(self, line3_graph):
        params = ModelParameters(zipf_s=0.0, user_tx_rate=1.0, fee_out_avg=1.0)
        model = JoiningUserModel(
            line3_graph,
            "u",
            params,
            distribution=UniformDistribution.from_graph(line3_graph),
            hop_convention="intermediaries",
        )
        fees = model.expected_fees(Strategy([Action("b", 1.0)]))
        # intermediary counts: a:1, b:0, c:1
        assert fees == pytest.approx(2 / 3)


class TestExpectedRevenue:
    def test_no_channels_no_revenue(self, model):
        assert model.expected_revenue(Strategy()) == 0.0

    def test_leaf_position_no_revenue(self, model):
        assert model.expected_revenue(Strategy([Action("b", 1.0)])) == 0.0

    def test_bridge_position_earns(self, model):
        # u connects to a and c: path a-u-c (length 2) ties with a-b-c, so
        # u carries half the a<->c traffic: 2 ordered pairs * 1/2 share *
        # rate 1 * p 1/2 * f_avg 1 = 0.5
        revenue = model.expected_revenue(
            Strategy([Action("a", 1.0), Action("c", 1.0)])
        )
        assert revenue == pytest.approx(0.5)

    def test_own_traffic_earns_nothing(self, line3_graph):
        # a single node network: only u's own traffic exists
        solo = ChannelGraph.from_edges([("a", "b")])
        params = ModelParameters(zipf_s=0.0)
        model = JoiningUserModel(
            solo, "u", params,
            distribution=UniformDistribution.from_graph(solo),
        )
        strategy = Strategy([Action("a", 1.0), Action("b", 1.0)])
        # a<->b shortest path is direct; u carries nothing
        assert model.expected_revenue(strategy) == 0.0


class TestUtilityAggregation:
    def test_utility_combines_components(self, model):
        strategy = Strategy([Action("a", 1.0), Action("c", 1.0)])
        expected = (
            model.expected_revenue(strategy)
            - model.expected_fees(strategy)
            - strategy.utility_cost(model.params)
        )
        assert model.utility(strategy) == pytest.approx(expected)

    def test_disconnected_utility_is_minus_inf(self, model):
        assert model.utility(Strategy()) == -math.inf

    def test_benefit_shifts_by_onchain_cost(self, model):
        strategy = Strategy([Action("b", 1.0)])
        assert model.benefit(strategy) == pytest.approx(
            model.params.onchain_alternative_cost() + model.utility(strategy)
        )

    def test_objective_dispatch(self, model):
        strategy = Strategy([Action("b", 1.0)])
        assert model.objective(strategy, "utility") == model.utility(strategy)
        assert model.objective(strategy, "simplified") == pytest.approx(
            model.simplified_utility(strategy)
        )
        with pytest.raises(InvalidParameter):
            model.objective(strategy, "nope")

    def test_simplified_ignores_channel_costs(self, model):
        cheap = Strategy([Action("b", 0.0)])
        pricey = Strategy([Action("b", 8.0)])
        assert model.simplified_utility(cheap) == pytest.approx(
            model.simplified_utility(pricey)
        )
        assert model.utility(cheap) > model.utility(pricey)


class TestWorkingCopyConsistency:
    def test_evaluations_do_not_mutate_base(self, line3_graph, model):
        before = line3_graph.num_channels()
        model.utility(Strategy([Action("a", 1.0)]))
        model.utility(Strategy([Action("b", 1.0), Action("c", 1.0)]))
        assert line3_graph.num_channels() == before

    def test_alternating_strategies_consistent(self, model):
        s1 = Strategy([Action("a", 1.0)])
        s2 = Strategy([Action("b", 1.0), Action("c", 2.0)])
        first = model.utility(s1)
        model.utility(s2)
        again = model.utility(s1)
        assert first == pytest.approx(again)

    def test_parallel_channels_in_strategy(self, model):
        strategy = Strategy([Action("b", 1.0), Action("b", 1.0)])
        value = model.utility(strategy)
        assert not math.isnan(value)
        # parallel channel doubles cost but not connectivity
        single = model.utility(Strategy([Action("b", 1.0)]))
        assert value < single

    def test_with_strategy_returns_fresh_graph(self, model):
        strategy = Strategy([Action("a", 2.0)])
        applied = model.with_strategy(strategy)
        assert applied.has_channel("u", "a")
        assert not model.base_graph.has_node("u")

    def test_peer_deposit_match(self, line3_graph):
        model = JoiningUserModel(
            line3_graph, "u", ModelParameters(), peer_deposit="match"
        )
        graph = model.with_strategy(Strategy([Action("a", 3.0)]))
        channel = graph.channels_between("u", "a")[0]
        assert channel.balance("a") == pytest.approx(3.0)

    def test_peer_deposit_fixed(self, line3_graph):
        model = JoiningUserModel(
            line3_graph, "u", ModelParameters(), peer_deposit=0.0
        )
        graph = model.with_strategy(Strategy([Action("a", 3.0)]))
        channel = graph.channels_between("u", "a")[0]
        assert channel.balance("a") == 0.0

    def test_invalid_peer_deposit(self, line3_graph):
        with pytest.raises(InvalidParameter):
            JoiningUserModel(
                line3_graph, "u", ModelParameters(), peer_deposit="half"
            )


class TestRoutingAmount:
    def test_small_lock_blocks_reduced_graph(self, line3_graph):
        params = ModelParameters(zipf_s=0.0)
        model = JoiningUserModel(
            line3_graph,
            "u",
            params,
            distribution=UniformDistribution.from_graph(line3_graph),
            routing_amount=5.0,
            peer_deposit="match",
        )
        # lock below the routing amount: the channel cannot carry traffic
        thin = model.expected_fees(Strategy([Action("b", 1.0)]))
        thick = model.expected_fees(Strategy([Action("b", 5.0)]))
        assert math.isinf(thin)
        assert not math.isinf(thick)
