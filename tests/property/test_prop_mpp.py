"""Property-based tests: MPP atomicity and max-flow consistency."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.graph import ChannelGraph
from repro.network.mpp import MppRouter

NODES = ["s", "x", "y", "t"]


def build_graph(balances) -> ChannelGraph:
    graph = ChannelGraph()
    edges = [("s", "x"), ("s", "y"), ("x", "t"), ("y", "t"), ("x", "y")]
    for (u, v), (bu, bv) in zip(edges, balances):
        graph.add_channel(u, v, bu, bv)
    return graph


balances_strategy = st.lists(
    st.tuples(
        st.floats(0.0, 20.0, allow_nan=False),
        st.floats(0.0, 20.0, allow_nan=False),
    ),
    min_size=5,
    max_size=5,
)
amount_strategy = st.floats(0.1, 60.0, allow_nan=False)


@given(balances=balances_strategy, amount=amount_strategy)
@settings(max_examples=120, deadline=None)
def test_mpp_atomic_all_or_nothing(balances, amount):
    """Either the full amount arrives at t, or no balance moves at all."""
    graph = build_graph(balances)
    snapshot = {
        c.channel_id: (c.balance(c.u), c.balance(c.v)) for c in graph.channels
    }
    received_before = graph.balance_of("t")
    result = MppRouter(graph).pay("s", "t", amount)
    if result.success:
        assert graph.balance_of("t") == pytest.approx(
            received_before + amount, abs=1e-6
        )
    else:
        after = {
            c.channel_id: (c.balance(c.u), c.balance(c.v))
            for c in graph.channels
        }
        for cid in snapshot:
            assert snapshot[cid] == pytest.approx(after[cid], abs=1e-9)


@given(balances=balances_strategy, amount=amount_strategy)
@settings(max_examples=120, deadline=None)
def test_mpp_never_exceeds_max_flow(balances, amount):
    """Success implies the amount was within the max-flow bound."""
    graph = build_graph(balances)
    router = MppRouter(graph)
    max_flow = router.max_sendable_estimate("s", "t")
    result = router.pay("s", "t", amount)
    if result.success:
        assert amount <= max_flow + 1e-6


@given(balances=balances_strategy, amount=amount_strategy)
@settings(max_examples=80, deadline=None)
def test_mpp_conserves_total_coins(balances, amount):
    graph = build_graph(balances)
    total = graph.total_capacity()
    MppRouter(graph).pay("s", "t", amount)
    assert graph.total_capacity() == pytest.approx(total, abs=1e-6)
