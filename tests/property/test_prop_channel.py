"""Property-based tests: channel balance invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InsufficientBalance
from repro.network.channel import Channel

balances = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
amounts = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)


@given(balance_u=balances, balance_v=balances, payments=st.lists(
    st.tuples(st.sampled_from(["u", "v"]), amounts), max_size=30,
))
@settings(max_examples=200)
def test_capacity_conserved_and_balances_nonnegative(
    balance_u, balance_v, payments
):
    """No sequence of payments changes capacity or drives balances < 0."""
    channel = Channel("u", "v", balance_u, balance_v)
    capacity = channel.capacity
    for sender, amount in payments:
        try:
            channel.send(sender, amount)
        except InsufficientBalance:
            pass
    assert channel.balance("u") >= 0.0
    assert channel.balance("v") >= 0.0
    assert abs(channel.capacity - capacity) <= 1e-6 * max(capacity, 1.0)


@given(balance_u=balances, balance_v=balances, amount=amounts)
@settings(max_examples=200)
def test_send_is_exactly_reversible(balance_u, balance_v, amount):
    """A payment followed by the exact refund restores both balances."""
    channel = Channel("u", "v", balance_u, balance_v)
    if not channel.can_send("u", amount):
        return
    channel.send("u", amount)
    channel.send("v", amount)
    assert channel.balance("u") == pytest_approx(balance_u)
    assert channel.balance("v") == pytest_approx(balance_v)


def pytest_approx(value):
    import pytest

    return pytest.approx(value, abs=1e-6)


@given(balance_u=balances, amount=amounts)
@settings(max_examples=100)
def test_can_send_iff_send_succeeds(balance_u, amount):
    channel = Channel("u", "v", balance_u, 0.0)
    can = channel.can_send("u", amount)
    try:
        channel.send("u", amount)
        sent = True
    except InsufficientBalance:
        sent = False
    assert can == sent
