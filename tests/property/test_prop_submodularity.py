"""Property-based tests: Thm 1/2 invariants under the fixed-λ regime.

Random graphs, random parameters — the paper's claims must hold for every
instance when the model uses ``revenue_mode="fixed-rate"`` (the theorem's
own assumption).
"""

import math

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.objective import ObjectiveEvaluator
from repro.core.strategy import Action, Strategy
from repro.core.utility import JoiningUserModel
from repro.network.graph import ChannelGraph
from repro.params import ModelParameters


@st.composite
def instances(draw):
    n = draw(st.integers(min_value=3, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    structure = nx.gnp_random_graph(n, 0.5, seed=seed)
    if not nx.is_connected(structure):
        structure = nx.path_graph(n)
    graph = ChannelGraph()
    for u, v in structure.edges:
        graph.add_channel(u, v, 1.0, 1.0)
    params = ModelParameters(
        onchain_cost=draw(st.floats(0.1, 3.0)),
        opportunity_rate=draw(st.floats(0.0, 0.5)),
        fee_avg=draw(st.floats(0.01, 1.0)),
        fee_out_avg=draw(st.floats(0.01, 1.0)),
        total_tx_rate=draw(st.floats(1.0, 100.0)),
        user_tx_rate=draw(st.floats(0.1, 10.0)),
        zipf_s=draw(st.floats(0.0, 3.0)),
    )
    model = JoiningUserModel(graph, "u", params, revenue_mode="fixed-rate")
    peers = sorted(graph.nodes, key=str)
    subset_bits = draw(st.integers(min_value=0, max_value=2 ** len(peers) - 1))
    nested_bits = draw(st.integers(min_value=0, max_value=2 ** len(peers) - 1))
    s2_peers = [p for i, p in enumerate(peers) if subset_bits >> i & 1]
    s1_peers = [
        p
        for i, p in enumerate(peers)
        if (subset_bits >> i & 1) and (nested_bits >> i & 1)
    ]
    extra = draw(st.sampled_from([p for p in peers if p not in s2_peers] or peers))
    if extra in s2_peers:
        return None
    s1 = Strategy([Action(p, 1.0) for p in s1_peers])
    s2 = Strategy([Action(p, 1.0) for p in s2_peers])
    return model, s1, s2, Action(extra, 1.0)


@given(instance=instances())
@settings(max_examples=80, deadline=None)
def test_simplified_utility_submodular_and_monotone(instance):
    """Thm 1 + Thm 2 for U' on arbitrary nested strategy pairs."""
    if instance is None:
        return
    model, s1, s2, extra = instance
    evaluator = ObjectiveEvaluator(model, kind="simplified")
    values = {
        "s1": evaluator(s1),
        "s1x": evaluator(s1.with_action(extra)),
        "s2": evaluator(s2),
        "s2x": evaluator(s2.with_action(extra)),
    }
    finite = {k: v for k, v in values.items() if not math.isinf(v)}
    # monotonicity (where finite): adding an action never hurts U'
    if not math.isinf(values["s1"]) and not math.isinf(values["s1x"]):
        assert values["s1x"] >= values["s1"] - 1e-9
    if not math.isinf(values["s2"]) and not math.isinf(values["s2x"]):
        assert values["s2x"] >= values["s2"] - 1e-9
    # submodularity (all finite): diminishing returns
    if len(finite) == 4:
        gain_small = values["s1x"] - values["s1"]
        gain_large = values["s2x"] - values["s2"]
        assert gain_large <= gain_small + 1e-9


@given(instance=instances())
@settings(max_examples=60, deadline=None)
def test_full_utility_submodular(instance):
    """Thm 1 for the full U (costs are modular, so submodularity holds)."""
    if instance is None:
        return
    model, s1, s2, extra = instance
    evaluator = ObjectiveEvaluator(model, kind="utility")
    values = [
        evaluator(s1),
        evaluator(s1.with_action(extra)),
        evaluator(s2),
        evaluator(s2.with_action(extra)),
    ]
    if any(math.isinf(v) for v in values):
        return
    gain_small = values[1] - values[0]
    gain_large = values[3] - values[2]
    assert gain_large <= gain_small + 1e-9


@given(instance=instances())
@settings(max_examples=40, deadline=None)
def test_revenue_nonnegative_and_fees_nonnegative(instance):
    if instance is None:
        return
    model, s1, s2, _extra = instance
    for strategy in (s1, s2):
        assert model.expected_revenue(strategy) >= -1e-12
        fees = model.expected_fees(strategy)
        assert fees >= -1e-12 or math.isinf(fees)
