"""Property-based tests: payment-layer invariants under random workloads.

Failure injection: random payment sequences with arbitrary amounts (many
infeasible) must never corrupt conservation laws — total coins, per-node
net worth (modulo fees paid/earned), and HTLC atomicity.
"""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.fees import ConstantFee
from repro.network.graph import ChannelGraph
from repro.network.htlc import HtlcRouter, HtlcState
from repro.network.rebalancing import execute_rebalance, find_rebalancing_cycle
from repro.network.routing import Router
from repro.errors import RoutingError

NODES = ["a", "b", "c", "d"]


def build_graph(balances) -> ChannelGraph:
    graph = ChannelGraph()
    edges = [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")]
    for (u, v), (bu, bv) in zip(edges, balances):
        graph.add_channel(u, v, bu, bv)
    return graph


balances_strategy = st.lists(
    st.tuples(
        st.floats(0.0, 50.0, allow_nan=False),
        st.floats(0.0, 50.0, allow_nan=False),
    ),
    min_size=4,
    max_size=4,
)
payments_strategy = st.lists(
    st.tuples(
        st.sampled_from(NODES),
        st.sampled_from(NODES),
        st.floats(0.01, 30.0, allow_nan=False),
    ),
    max_size=25,
)


class TestInstantRouting:
    @given(balances=balances_strategy, payments=payments_strategy)
    @settings(max_examples=100, deadline=None)
    def test_total_coins_conserved_zero_fee(self, balances, payments):
        graph = build_graph(balances)
        total = graph.total_capacity()
        router = Router(graph)
        for sender, receiver, amount in payments:
            if sender == receiver:
                continue
            router.execute(sender, receiver, amount)
        assert graph.total_capacity() == pytest.approx(total)

    @given(balances=balances_strategy, payments=payments_strategy)
    @settings(max_examples=60, deadline=None)
    def test_fee_accounting_consistent(self, balances, payments):
        """Sender pays exactly what intermediaries collectively earn."""
        graph = build_graph(balances)
        router = Router(graph, fee=ConstantFee(0.05))
        for sender, receiver, amount in payments:
            if sender == receiver:
                continue
            outcome = router.execute(sender, receiver, amount)
            if outcome.success:
                assert sum(outcome.fees_per_node.values()) == pytest.approx(
                    outcome.route.fee, abs=1e-9
                )

    @given(balances=balances_strategy, payments=payments_strategy)
    @settings(max_examples=60, deadline=None)
    def test_no_negative_balances_ever(self, balances, payments):
        graph = build_graph(balances)
        router = Router(graph, fee=ConstantFee(0.1))
        for sender, receiver, amount in payments:
            if sender == receiver:
                continue
            router.execute(sender, receiver, amount)
            for channel in graph.channels:
                assert channel.balance(channel.u) >= -1e-9
                assert channel.balance(channel.v) >= -1e-9


class TestHtlcAtomicity:
    @given(balances=balances_strategy, payments=payments_strategy)
    @settings(max_examples=60, deadline=None)
    def test_failed_locks_never_change_balances(self, balances, payments):
        graph = build_graph(balances)
        router = HtlcRouter(graph)
        routing = Router(graph)
        for sender, receiver, amount in payments:
            if sender == receiver:
                continue
            snapshot = {
                c.channel_id: (c.balance(c.u), c.balance(c.v))
                for c in graph.channels
            }
            try:
                route = routing.find_route(sender, receiver, amount)
            except RoutingError:
                continue
            payment = router.lock(route.nodes, amount)
            if payment.state is HtlcState.FAILED:
                after = {
                    c.channel_id: (c.balance(c.u), c.balance(c.v))
                    for c in graph.channels
                }
                assert snapshot == after
            else:
                router.settle(payment)

    @given(balances=balances_strategy, payments=payments_strategy,
           fail_mask=st.lists(st.booleans(), max_size=25))
    @settings(max_examples=60, deadline=None)
    def test_lock_then_fail_is_identity(self, balances, payments, fail_mask):
        """Any payment that is locked and then failed leaves no trace."""
        graph = build_graph(balances)
        total = graph.total_capacity()
        router = HtlcRouter(graph)
        routing = Router(graph)
        mask = list(fail_mask) + [True] * len(payments)
        for (sender, receiver, amount), should_fail in zip(payments, mask):
            if sender == receiver:
                continue
            try:
                route = routing.find_route(sender, receiver, amount)
            except RoutingError:
                continue
            payment = router.lock(route.nodes, amount)
            if payment.state is not HtlcState.PENDING:
                continue
            if should_fail:
                router.fail(payment)
            else:
                router.settle(payment)
        assert graph.total_capacity() == pytest.approx(total)
        for channel in graph.channels:
            assert channel.balance(channel.u) >= -1e-9


class TestRebalancingInvariant:
    @given(balances=balances_strategy,
           amount=st.floats(0.1, 10.0, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_rebalance_preserves_net_worth_of_everyone(self, balances, amount):
        graph = build_graph(balances)
        worth = {node: graph.balance_of(node) for node in NODES}
        try:
            cycle = find_rebalancing_cycle(graph, "a", amount)
        except RoutingError:
            return
        if execute_rebalance(graph, cycle, amount):
            for node in NODES:
                assert graph.balance_of(node) == pytest.approx(
                    worth[node], abs=1e-6
                )
