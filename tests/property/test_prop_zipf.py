"""Property-based tests: modified-Zipf invariants (Section II-B)."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.network.graph import ChannelGraph
from repro.transactions.ranking import rank_factors_from_degrees
from repro.transactions.zipf import ModifiedZipf


@st.composite
def degree_sequences(draw):
    seq = draw(
        st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=30)
    )
    return sorted(seq, reverse=True)


@st.composite
def random_graphs(draw):
    n = draw(st.integers(min_value=3, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    structure = nx.gnp_random_graph(n, 0.5, seed=seed)
    graph = ChannelGraph()
    for node in structure.nodes:
        graph.add_node(node)
    for u, v in structure.edges:
        graph.add_channel(u, v, 1.0, 1.0)
    return graph


class TestRankFactorProperties:
    @given(degrees=degree_sequences(), s=st.floats(0.0, 5.0, allow_nan=False))
    @settings(max_examples=150)
    def test_factors_positive_and_bounded(self, degrees, s):
        factors = rank_factors_from_degrees(degrees, s)
        assert all(0 < f <= 1.0 for f in factors)

    @given(degrees=degree_sequences(), s=st.floats(0.0, 5.0, allow_nan=False))
    @settings(max_examples=150)
    def test_equal_degree_equal_factor(self, degrees, s):
        factors = rank_factors_from_degrees(degrees, s)
        by_degree = {}
        for degree, factor in zip(degrees, factors):
            by_degree.setdefault(degree, set()).add(round(factor, 12))
        assert all(len(values) == 1 for values in by_degree.values())

    @given(degrees=degree_sequences(), s=st.floats(0.01, 5.0, allow_nan=False))
    @settings(max_examples=150)
    def test_paper_monotonicity_property(self, degrees, s):
        """r1(v1) < r2(v2) => rf(v1) > rf(v2) (end of Section II-B)."""
        factors = rank_factors_from_degrees(degrees, s)
        # distinct degree blocks appear in strictly decreasing factor order
        block_factors = []
        for degree, factor in zip(degrees, factors):
            if not block_factors or block_factors[-1][0] != degree:
                block_factors.append((degree, factor))
        values = [f for _, f in block_factors]
        assert all(a > b for a, b in zip(values, values[1:]))

    @given(degrees=degree_sequences())
    @settings(max_examples=80)
    def test_total_mass_conserved(self, degrees):
        """Tie-averaging redistributes but never creates/destroys mass."""
        s = 1.0
        factors = rank_factors_from_degrees(degrees, s)
        plain = [1.0 / r**s for r in range(1, len(degrees) + 1)]
        assert sum(factors) == pytest.approx(sum(plain))


class TestZipfOnRandomGraphs:
    @given(graph=random_graphs(), s=st.floats(0.0, 4.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_rows_are_distributions(self, graph, s):
        zipf = ModifiedZipf(graph, s=s)
        for sender in graph.nodes:
            row = zipf.receivers(sender)
            assert sender not in row
            assert sum(row.values()) == pytest.approx(1.0)
            assert all(p >= 0 for p in row.values())

    @given(graph=random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_higher_degree_weakly_more_likely(self, graph):
        zipf = ModifiedZipf(graph, s=1.5)
        sender = list(graph.nodes)[0]
        row = zipf.receivers(sender)
        ranked = sorted(
            row.items(),
            key=lambda kv: graph.degree(kv[0]),
            reverse=True,
        )
        probs = [p for _, p in ranked]
        degrees = [graph.degree(v) for v, _ in ranked]
        for i in range(len(probs) - 1):
            if degrees[i] > degrees[i + 1]:
                assert probs[i] >= probs[i + 1] - 1e-12
