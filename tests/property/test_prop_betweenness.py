"""Property-based tests: weighted Brandes vs ground truth on random graphs."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.betweenness import (
    pair_weighted_betweenness,
    pair_weighted_betweenness_exact,
    uniform_pair_weight,
)


@st.composite
def digraphs(draw):
    n = draw(st.integers(min_value=2, max_value=9))
    seed = draw(st.integers(min_value=0, max_value=100_000))
    p = draw(st.floats(min_value=0.2, max_value=0.8))
    structure = nx.gnp_random_graph(n, p, seed=seed, directed=True)
    return structure


@st.composite
def weighted_instances(draw):
    graph = draw(digraphs())
    multipliers = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
            min_size=len(graph),
            max_size=len(graph),
        )
    )
    weight_of = dict(zip(graph.nodes, multipliers))

    def weight(s, r):
        return weight_of[s] * (1.0 + 0.1 * weight_of[r])

    return graph, weight


class TestBrandesEqualsEnumeration:
    @given(instance=weighted_instances())
    @settings(max_examples=60, deadline=None)
    def test_node_values_match(self, instance):
        graph, weight = instance
        fast = pair_weighted_betweenness(graph, weight)
        slow = pair_weighted_betweenness_exact(graph, weight)
        for node in graph.nodes:
            assert fast.node_value(node) == pytest.approx(
                slow.node_value(node), abs=1e-8
            )

    @given(instance=weighted_instances())
    @settings(max_examples=60, deadline=None)
    def test_edge_values_match(self, instance):
        graph, weight = instance
        fast = pair_weighted_betweenness(graph, weight)
        slow = pair_weighted_betweenness_exact(graph, weight)
        keys = set(fast.edge) | set(slow.edge)
        for key in keys:
            assert fast.edge.get(key, 0.0) == pytest.approx(
                slow.edge.get(key, 0.0), abs=1e-8
            )


class TestConservationLaws:
    @given(graph=digraphs())
    @settings(max_examples=60, deadline=None)
    def test_first_hop_mass_equals_reachable_weight(self, graph):
        """Sum of edge traffic out of s equals the number of targets s can
        reach (each unit of pair weight leaves the source exactly once)."""
        for s in graph.nodes:
            out_mass = sum(
                value
                for (src, _dst), value in pair_weighted_betweenness(
                    graph, uniform_pair_weight, sources=[s]
                ).edge.items()
                if src == s
            )
            reachable = len(nx.descendants(graph, s))
            assert out_mass == pytest.approx(reachable, abs=1e-8)

    @given(graph=digraphs())
    @settings(max_examples=40, deadline=None)
    def test_node_value_bounded_by_total_pairs(self, graph):
        n = graph.number_of_nodes()
        result = pair_weighted_betweenness(graph, uniform_pair_weight)
        for value in result.node.values():
            assert value <= n * (n - 1) + 1e-9
