"""Unit tests for :mod:`repro.params`."""

import dataclasses

import pytest

from repro.errors import InvalidParameter
from repro.params import DEFAULT_PARAMS, ModelParameters


class TestValidation:
    def test_defaults_valid(self):
        params = ModelParameters()
        assert params.onchain_cost > 0

    @pytest.mark.parametrize(
        "field",
        [
            "onchain_cost",
            "total_tx_rate",
            "user_tx_rate",
            "max_tx_size",
        ],
    )
    def test_positive_fields_reject_zero(self, field):
        with pytest.raises(InvalidParameter):
            ModelParameters(**{field: 0.0})

    @pytest.mark.parametrize(
        "field",
        ["opportunity_rate", "zipf_s", "epsilon", "fee_avg", "fee_out_avg"],
    )
    def test_non_negative_fields_reject_negative(self, field):
        with pytest.raises(InvalidParameter):
            ModelParameters(**{field: -0.1})

    @pytest.mark.parametrize(
        "field",
        ["opportunity_rate", "zipf_s", "epsilon", "fee_avg", "fee_out_avg"],
    )
    def test_non_negative_fields_accept_zero(self, field):
        params = ModelParameters(**{field: 0.0})
        assert getattr(params, field) == 0.0

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_PARAMS.onchain_cost = 2.0


class TestDerivedQuantities:
    def test_channel_cost_is_c_plus_rl(self):
        params = ModelParameters(onchain_cost=2.0, opportunity_rate=0.1)
        assert params.channel_cost(10.0) == pytest.approx(2.0 + 1.0)

    def test_channel_cost_zero_lock(self):
        params = ModelParameters(onchain_cost=2.0, opportunity_rate=0.1)
        assert params.channel_cost(0.0) == pytest.approx(2.0)

    def test_channel_cost_rejects_negative_lock(self):
        with pytest.raises(InvalidParameter):
            ModelParameters().channel_cost(-1.0)

    def test_onchain_alternative_cost(self):
        params = ModelParameters(user_tx_rate=10.0, onchain_cost=3.0)
        assert params.onchain_alternative_cost() == pytest.approx(15.0)

    def test_replace_creates_validated_copy(self):
        params = ModelParameters().replace(fee_avg=0.7)
        assert params.fee_avg == 0.7
        assert DEFAULT_PARAMS.fee_avg != 0.7

    def test_replace_rejects_invalid(self):
        with pytest.raises(InvalidParameter):
            ModelParameters().replace(fee_avg=-1.0)

    def test_as_dict_round_trip(self):
        params = ModelParameters(zipf_s=1.5)
        rebuilt = ModelParameters(**params.as_dict())
        assert rebuilt == params
