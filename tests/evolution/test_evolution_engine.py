"""EvolutionEngine: determinism, convergence, phases, trajectory shape."""

import math

import pytest

from repro.equilibrium.topologies import circle, path, star
from repro.evolution import (
    AnalyticUtilityProvider,
    EmpiricalUtilityProvider,
    EvolutionEngine,
    classify_topology,
    gini,
)
from repro.network.graph import ChannelGraph
from repro.scenarios import (
    ChurnSpec,
    EvolutionSpec,
    FeeSpec,
    GrowthSpec,
    Scenario,
    ScenarioRunner,
    TopologySpec,
    WorkloadSpec,
)


def stable_star_spec(**overrides) -> EvolutionSpec:
    base = dict(
        epochs=5, utility="analytic", traffic_horizon=4.0,
        a=0.1, b=0.1, edge_cost=1.0, zipf_s=2.0, patience=2,
    )
    base.update(overrides)
    return EvolutionSpec(**base)


def evolving_scenario(seed=7, **spec_overrides) -> Scenario:
    spec = EvolutionSpec(
        epochs=5,
        growth=GrowthSpec("fixed", {
            "per_epoch": 1, "algorithm": "random-attach",
            "params": {"k": 2, "lock": 1.0},
        }),
        churn=ChurnSpec("uniform", {"rate": 0.1}),
        utility="empirical",
        traffic_horizon=5.0,
        sample=3,
        mode="sampled",
        edge_cost=0.01,
        final_nash_check=False,
        **spec_overrides,
    )
    return Scenario(
        topology=TopologySpec("circle", {"n": 8, "balance": 5.0}),
        workload=WorkloadSpec("poisson", {"zipf_s": 1.0}),
        fee=FeeSpec("linear", {"base": 0.05, "rate": 0.01}),
        evolution=spec,
        name="evolving",
        seed=seed,
    )


class TestGini:
    def test_degenerate_cases(self):
        assert gini([]) == 0.0
        assert gini([0.0, 0.0]) == 0.0
        assert gini([5.0, 5.0, 5.0]) == pytest.approx(0.0)

    def test_concentration(self):
        assert gini([0.0, 0.0, 0.0, 10.0]) == pytest.approx(0.75)
        assert 0.0 < gini([1.0, 2.0, 3.0, 4.0]) < 0.5


class TestClassify:
    def test_section_iv_topologies(self):
        assert classify_topology(star(6)) == "star"
        assert classify_topology(path(5)) == "path"
        assert classify_topology(circle(5)) == "circle"

    def test_complete_and_other(self):
        from repro.equilibrium.topologies import complete

        assert classify_topology(complete(5)) == "complete"
        diamond = ChannelGraph.from_edges(
            [("a", "b"), ("b", "c"), ("c", "d"), ("b", "d")]
        )
        assert classify_topology(diamond) == "other"

    def test_disconnected_is_other(self):
        graph = ChannelGraph.from_edges([("a", "b"), ("c", "d")])
        assert classify_topology(graph) == "other"

    def test_parallel_channels_collapse(self):
        graph = star(4)
        hub_leaf = graph.channels[0]
        graph.add_channel(hub_leaf.u, hub_leaf.v, 1.0, 1.0)
        assert classify_topology(graph) == "star"


class TestConvergence:
    def test_stable_star_converges_and_is_nash(self):
        engine = EvolutionEngine(star(4), stable_star_spec(), seed=7)
        trajectory = engine.run()
        assert trajectory.converged
        assert trajectory.epochs_run == 2  # patience epochs, both quiet
        assert trajectory.final_topology == "star"
        assert trajectory.nash_stable is True
        assert trajectory.final_max_gain == 0.0
        assert trajectory.totals["total_moves"] == 0

    def test_circle_evolves_to_stable_star(self):
        engine = EvolutionEngine(circle(5), stable_star_spec(epochs=8), seed=7)
        trajectory = engine.run()
        assert trajectory.converged
        assert trajectory.final_topology == "star"
        assert trajectory.nash_stable is True

    def test_quiet_epochs_of_live_poisson_growth_are_not_convergence(self):
        # rate 0.05 draws ~0 arrivals almost every epoch: the run must
        # still execute all epochs instead of mislabelling luck as a
        # rest point
        from repro.evolution import PoissonGrowth

        engine = EvolutionEngine(
            star(4),
            stable_star_spec(epochs=6, final_nash_check=False),
            growth=PoissonGrowth(
                rate=0.05, algorithm="random-attach", params={"k": 1},
            ),
            seed=0,
        )
        trajectory = engine.run()
        assert trajectory.epochs_run == 6
        assert not trajectory.converged

    def test_zero_rate_processes_still_allow_convergence(self):
        from repro.evolution import PoissonGrowth, UniformChurn

        engine = EvolutionEngine(
            star(4),
            stable_star_spec(),
            growth=PoissonGrowth(rate=0.0),
            churn=UniformChurn(rate=0.0),
            seed=0,
        )
        trajectory = engine.run()
        assert trajectory.converged
        assert trajectory.epochs_run == 2

    def test_non_convergence_reports_false(self):
        engine = EvolutionEngine(
            circle(5), stable_star_spec(epochs=1, final_nash_check=False),
            seed=7,
        )
        trajectory = engine.run()
        assert not trajectory.converged
        assert trajectory.epochs_run == 1
        assert trajectory.nash_stable is None


class TestFullRunDeterminism:
    def test_bit_identical_repeated_runs(self):
        first = ScenarioRunner().run(evolving_scenario())
        second = ScenarioRunner().run(evolving_scenario())
        assert first.evolution.to_json() == second.evolution.to_json()
        assert first.row == second.row

    def test_seed_changes_trajectory(self):
        first = ScenarioRunner().run(evolving_scenario(seed=7))
        second = ScenarioRunner().run(evolving_scenario(seed=8))
        assert first.evolution.to_json() != second.evolution.to_json()

    def test_arrivals_and_churn_account(self):
        result = ScenarioRunner().run(evolving_scenario())
        trajectory = result.evolution
        totals = trajectory.totals
        assert totals["total_arrivals"] == sum(
            r.arrivals for r in trajectory.records
        )
        assert totals["total_departures"] == sum(
            r.departures for r in trajectory.records
        )
        assert totals["total_arrivals"] == 5  # fixed growth, 1 per epoch
        # closure costs are realised per closed channel at onchain_fee
        assert totals["total_closure_costs"] >= 0.0
        if totals["total_departures"] == 0:
            assert totals["total_closure_costs"] == 0.0

    def test_row_columns_are_flat_scalars(self):
        row = ScenarioRunner().run(evolving_scenario()).row
        for key, value in row.items():
            assert isinstance(value, (int, float, str, bool, type(None))), (
                key, value,
            )


class TestPhases:
    def test_traffic_disabled_when_horizon_zero(self):
        engine = EvolutionEngine(
            star(4),
            stable_star_spec(traffic_horizon=0.0, final_nash_check=False),
            seed=0,
        )
        trajectory = engine.run()
        assert all(r.attempted == 0 for r in trajectory.records)
        assert all(r.total_revenue == 0.0 for r in trajectory.records)

    def test_traffic_measured_not_persisted(self):
        # the engine measures traffic on a copy: the working graph's
        # balances stay at their configured values between epochs
        graph = star(4, balance=5.0)
        engine = EvolutionEngine(
            graph, stable_star_spec(final_nash_check=False), seed=0
        )
        trajectory = engine.run()
        assert any(r.attempted > 0 for r in trajectory.records)
        for channel in engine.graph.channels:
            assert channel.balance(channel.u) == pytest.approx(5.0)
            assert channel.balance(channel.v) == pytest.approx(5.0)

    def test_empirical_provider_requires_traffic(self):
        provider = EmpiricalUtilityProvider()
        from repro.errors import SimulationError

        with pytest.raises(SimulationError, match="traffic epoch"):
            provider.prepare(star(3), None, [], 0)

    def test_analytic_provider_welfare_matches_model(self):
        from repro.equilibrium import NetworkGameModel
        from repro.equilibrium.welfare import social_welfare

        model = NetworkGameModel(a=0.1, b=0.1, edge_cost=1.0, zipf_s=2.0)
        provider = AnalyticUtilityProvider(model)
        graph = star(5)
        assert provider.welfare(graph) == pytest.approx(
            social_welfare(graph, model)
        )

    def test_trajectory_json_shape(self):
        trajectory = ScenarioRunner().run(evolving_scenario()).evolution
        doc = trajectory.to_dict()
        assert doc["epochs_run"] == len(doc["epochs"])
        for record in doc["epochs"]:
            assert set(record) >= {
                "epoch", "nodes", "channels", "arrivals", "departures",
                "closure_costs", "success_rate", "revenue_gini", "moves",
                "max_gain", "welfare", "topology", "move_log",
            }
            assert not math.isnan(record["welfare"])
