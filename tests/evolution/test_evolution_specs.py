"""EvolutionSpec / GrowthSpec / ChurnSpec validation and round-trips."""

import pytest

from repro.errors import ScenarioError
from repro.scenarios import (
    AlgorithmSpec,
    AttackSpec,
    ChurnSpec,
    EvolutionSpec,
    GrowthSpec,
    Scenario,
    SimulationSpec,
    TopologySpec,
)


def full_spec() -> EvolutionSpec:
    return EvolutionSpec(
        epochs=4,
        growth=GrowthSpec("poisson", {"rate": 2.0, "algorithm": "greedy",
                                      "params": {"budget": 4.0, "lock": 1.0}}),
        churn=ChurnSpec("uniform", {"rate": 0.1, "min_nodes": 4}),
        utility="empirical",
        traffic_horizon=5.0,
        sample=3,
        mode="sampled",
        moves_per_node=6,
        add_budget=2,
        a=0.2,
        b=0.3,
        final_nash_check=False,
    )


class TestRoundTrip:
    def test_spec_round_trips(self):
        spec = full_spec()
        assert EvolutionSpec.from_dict(spec.to_dict()) == spec

    def test_scenario_round_trips_with_evolution(self):
        scenario = Scenario(
            topology=TopologySpec("star", {"leaves": 5}),
            evolution=full_spec(),
            name="evo",
            seed=3,
        )
        assert Scenario.from_dict(scenario.to_dict()) == scenario
        assert Scenario.from_json(scenario.to_json()) == scenario

    def test_defaults_round_trip(self):
        spec = EvolutionSpec()
        assert EvolutionSpec.from_dict(spec.to_dict()) == spec
        assert spec.growth is None and spec.churn is None


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"epochs": 0},
        {"epochs": 1.5},
        {"utility": "psychic"},
        {"mode": "yolo"},
        {"traffic_horizon": -1.0},
        {"balance": 0.0},
        {"sample": 0},
        {"add_budget": -1},
        {"moves_per_node": 0},
        {"patience": 0},
        {"a": -0.1},
        {"onchain_fee": -2},
        {"growth": {"kind": "poisson"}},
        {"churn": "uniform"},
        {"utility": "empirical", "traffic_horizon": 0.0},
    ])
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ScenarioError):
            EvolutionSpec(**kwargs)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ScenarioError, match="unknown EvolutionSpec"):
            EvolutionSpec.from_dict({"epochs": 2, "bogus": 1})

    def test_growth_spec_requires_kind(self):
        with pytest.raises(ScenarioError):
            GrowthSpec.from_dict({"params": {}})


class TestScenarioExclusions:
    def test_excludes_simulation(self):
        with pytest.raises(ScenarioError, match="per-epoch traffic"):
            Scenario(
                topology=TopologySpec("star", {"leaves": 4}),
                simulation=SimulationSpec(),
                evolution=EvolutionSpec(),
            )

    def test_excludes_algorithm(self):
        with pytest.raises(ScenarioError, match="GrowthSpec"):
            Scenario(
                topology=TopologySpec("star", {"leaves": 4}),
                algorithm=AlgorithmSpec("greedy", {"budget": 2.0, "lock": 1.0}),
                evolution=EvolutionSpec(),
            )

    def test_excludes_attack(self):
        with pytest.raises(ScenarioError):
            Scenario(
                topology=TopologySpec("star", {"leaves": 4}),
                attack=AttackSpec("slow-jamming", {"budget": 10.0}),
                evolution=EvolutionSpec(),
            )

    def test_requires_spec_type(self):
        with pytest.raises(ScenarioError, match="EvolutionSpec"):
            Scenario(
                topology=TopologySpec("star", {"leaves": 4}),
                evolution={"epochs": 3},
            )
