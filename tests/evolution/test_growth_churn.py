"""Arrival and departure processes, and the random-attach join algorithm."""

import numpy as np
import pytest

from repro.core.utility import JoiningUserModel
from repro.errors import InvalidParameter, ScenarioError
from repro.evolution import (
    DegreeBiasedChurn,
    FixedGrowth,
    PoissonGrowth,
    UniformChurn,
    random_attach,
)
from repro.equilibrium.topologies import CENTER, star
from repro.network.graph import ChannelGraph
from repro.params import ModelParameters
from repro.scenarios import ChurnSpec, GrowthSpec, build_churn, build_growth


class TestRandomAttach:
    def test_opens_k_channels(self):
        graph = star(6)
        model = JoiningUserModel(graph, "newbie", ModelParameters())
        result = random_attach(model, k=3, lock=2.0, seed=1)
        assert result.algorithm == "random-attach"
        assert len(result.strategy) == 3
        assert all(action.locked == 2.0 for action in result.strategy)
        peers = {action.peer for action in result.strategy}
        assert peers <= set(graph.nodes)

    def test_deterministic_for_seed(self):
        graph = star(8)
        model = JoiningUserModel(graph, "newbie", ModelParameters())
        first = random_attach(model, k=2, seed=5)
        second = random_attach(model, k=2, seed=5)
        assert list(first.strategy) == list(second.strategy)

    def test_caps_k_at_population(self):
        graph = ChannelGraph.from_edges([("a", "b")])
        model = JoiningUserModel(graph, "c", ModelParameters())
        result = random_attach(model, k=10, seed=0)
        assert len(result.strategy) == 2

    def test_rejects_bad_params(self):
        graph = star(4)
        model = JoiningUserModel(graph, "x", ModelParameters())
        with pytest.raises(InvalidParameter):
            random_attach(model, k=0)
        with pytest.raises(InvalidParameter):
            random_attach(model, lock=-1.0)


class TestGrowth:
    def test_fixed_growth_counts(self):
        growth = FixedGrowth(per_epoch=3)
        rng = np.random.default_rng(0)
        assert growth.arrivals(rng) == 3

    def test_poisson_growth_deterministic_and_rate_zero(self):
        rng1 = np.random.default_rng(4)
        rng2 = np.random.default_rng(4)
        growth = PoissonGrowth(rate=2.5)
        assert growth.arrivals(rng1) == growth.arrivals(rng2)
        assert PoissonGrowth(rate=0.0).arrivals(rng1) == 0

    def test_join_opens_channels_on_live_graph(self):
        graph = star(5)
        before = graph.num_channels()
        growth = FixedGrowth(
            per_epoch=1, algorithm="random-attach", params={"k": 2},
        )
        growth.join(graph, "n00000", seed=9)
        assert "n00000" in graph
        assert graph.num_channels() == before + 2
        # dual-funded at the locked amount on both sides
        for channel in graph.channels_of("n00000"):
            assert channel.balance("n00000") == channel.balance(
                channel.other("n00000")
            )

    def test_join_merges_parallel_actions(self):
        # a strategy naming the same peer twice must still yield a
        # simple graph (batched-backend requirement)
        from repro.core.algorithms.common import OptimisationResult
        from repro.core.strategy import Action, Strategy
        from repro.scenarios import register_algorithm

        def doubled(model, **_kwargs):
            strategy = Strategy([Action("b", 1.0), Action("b", 2.0)])
            return OptimisationResult(
                algorithm="doubled", strategy=strategy,
                objective_value=0.0, utility=0.0,
            )

        register_algorithm("test-doubled-join")(doubled)
        graph = ChannelGraph.from_edges([("a", "b"), ("b", "c")])
        growth = FixedGrowth(per_epoch=1, algorithm="test-doubled-join")
        growth.join(graph, "d", seed=0)
        channels = graph.channels_between("d", "b")
        assert len(channels) == 1
        assert channels[0].balance("d") == pytest.approx(3.0)

    def test_bad_model_overrides_raise_scenario_error(self):
        graph = star(4)
        growth = FixedGrowth(per_epoch=1, model={"bogus_param": 1.0})
        with pytest.raises(ScenarioError, match="model overrides"):
            growth.join(graph, "x", seed=0)

    def test_registry_builders(self):
        growth = build_growth(GrowthSpec("poisson", {"rate": 1.5}))
        assert isinstance(growth, PoissonGrowth)
        assert growth.rate == 1.5
        with pytest.raises(ScenarioError, match="rejected params"):
            build_growth(GrowthSpec("fixed", {"bogus": 1}))


class TestChurn:
    def test_uniform_churn_deterministic(self):
        graph = star(8)
        a = UniformChurn(rate=0.5).departures(graph, np.random.default_rng(2))
        b = UniformChurn(rate=0.5).departures(graph, np.random.default_rng(2))
        assert a == b

    def test_rate_zero_and_one(self):
        graph = star(8)
        rng = np.random.default_rng(0)
        assert UniformChurn(rate=0.0).departures(graph, rng) == []
        everyone = UniformChurn(rate=1.0, min_nodes=3).departures(
            graph, np.random.default_rng(0)
        )
        # rate 1 removes as many as the floor allows, in canonical order
        assert len(everyone) == len(graph) - 3

    def test_min_nodes_floor(self):
        graph = star(3)  # 4 nodes
        churn = UniformChurn(rate=1.0, min_nodes=4)
        assert churn.departures(graph, np.random.default_rng(0)) == []

    def test_degree_bias_prefers_hub(self):
        graph = star(12)
        churn = DegreeBiasedChurn(rate=0.25, bias=3.0, min_nodes=3)
        hub_hits = 0
        for seed in range(40):
            departures = churn.departures(graph, np.random.default_rng(seed))
            if CENTER in departures:
                hub_hits += 1
        # hub degree is 12 vs leaf degree 1: bias 3 makes the hub's
        # departure probability saturate at 1 while leaves stay ~0.0001
        assert hub_hits == 40

    def test_negative_bias_spares_hub(self):
        graph = star(12)
        churn = DegreeBiasedChurn(rate=0.9, bias=-4.0, min_nodes=3)
        for seed in range(10):
            departures = churn.departures(graph, np.random.default_rng(seed))
            assert CENTER not in departures

    def test_rejects_bad_rate(self):
        with pytest.raises(InvalidParameter):
            UniformChurn(rate=1.5)
        with pytest.raises(InvalidParameter):
            UniformChurn(rate=0.1, min_nodes=1)

    def test_registry_builders(self):
        churn = build_churn(ChurnSpec("degree-biased", {"rate": 0.2, "bias": 2.0}))
        assert isinstance(churn, DegreeBiasedChurn)
        assert churn.bias == 2.0
        with pytest.raises(ScenarioError, match="rejected params"):
            build_churn(ChurnSpec("uniform", {"nope": 3}))
