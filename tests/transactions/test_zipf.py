"""Unit tests for the modified Zipf distribution (Section II-B)."""

import pytest

from repro.errors import NodeNotFound
from repro.network.graph import ChannelGraph
from repro.transactions.zipf import ModifiedZipf


@pytest.fixture
def star5() -> ChannelGraph:
    return ChannelGraph.from_edges(
        [("hub", f"leaf{i}") for i in range(5)], balance=1.0
    )


class TestProbabilities:
    def test_rows_normalised(self, star5):
        zipf = ModifiedZipf(star5, s=1.3)
        for sender in star5.nodes:
            row = zipf.receivers(sender)
            assert sum(row.values()) == pytest.approx(1.0)

    def test_self_probability_zero(self, star5):
        zipf = ModifiedZipf(star5, s=1.0)
        assert zipf.probability("hub", "hub") == 0.0

    def test_hub_most_likely_receiver(self, star5):
        zipf = ModifiedZipf(star5, s=1.0)
        row = zipf.receivers("leaf0")
        assert row["hub"] == max(row.values())

    def test_equal_degree_equal_probability(self, star5):
        zipf = ModifiedZipf(star5, s=1.7)
        row = zipf.receivers("leaf0")
        leaf_probs = {v: p for v, p in row.items() if v.startswith("leaf")}
        assert len(set(round(p, 12) for p in leaf_probs.values())) == 1

    def test_s_zero_is_uniform(self, star5):
        zipf = ModifiedZipf(star5, s=0.0)
        row = zipf.receivers("leaf0")
        assert all(p == pytest.approx(1.0 / 5.0) for p in row.values())

    def test_large_s_concentrates_on_hub(self, star5):
        zipf = ModifiedZipf(star5, s=10.0)
        row = zipf.receivers("leaf0")
        assert row["hub"] > 0.99

    def test_unknown_sender(self, star5):
        with pytest.raises(NodeNotFound):
            ModifiedZipf(star5).receivers("ghost")

    def test_unknown_receiver_zero(self, star5):
        assert ModifiedZipf(star5).probability("leaf0", "ghost") == 0.0


class TestCaching:
    def test_cache_returns_copies(self, star5):
        zipf = ModifiedZipf(star5, s=1.0, cache=True)
        row = zipf.receivers("leaf0")
        row["hub"] = 999.0
        assert zipf.receivers("leaf0")["hub"] != 999.0

    def test_invalidate_after_mutation(self, star5):
        zipf = ModifiedZipf(star5, s=1.0, cache=True)
        before = zipf.receivers("leaf0")["leaf1"]
        # leaf1 gains degree: its probability should rise after invalidation
        star5.add_channel("leaf1", "leaf2", 1.0, 1.0)
        zipf.invalidate()
        after = zipf.receivers("leaf0")["leaf1"]
        assert after > before

    def test_no_cache_mode_sees_mutations(self, star5):
        zipf = ModifiedZipf(star5, s=1.0, cache=False)
        before = zipf.receivers("leaf0")["leaf1"]
        star5.add_channel("leaf1", "leaf2", 1.0, 1.0)
        after = zipf.receivers("leaf0")["leaf1"]
        assert after > before


class TestSampling:
    def test_sample_receiver_respects_support(self, star5):
        import numpy as np

        zipf = ModifiedZipf(star5, s=1.0)
        rng = np.random.default_rng(0)
        for _ in range(50):
            receiver = zipf.sample_receiver("leaf0", rng)
            assert receiver != "leaf0"
            assert receiver in star5

    def test_sample_distribution_close_to_probabilities(self, star5):
        import numpy as np

        zipf = ModifiedZipf(star5, s=1.0)
        rng = np.random.default_rng(42)
        counts = {}
        n = 4000
        for _ in range(n):
            receiver = zipf.sample_receiver("leaf0", rng)
            counts[receiver] = counts.get(receiver, 0) + 1
        expected = zipf.receivers("leaf0")
        for node, p in expected.items():
            assert counts.get(node, 0) / n == pytest.approx(p, abs=0.03)
