"""Unit tests for the Poisson workload generator."""

import pytest

from repro.errors import InvalidParameter
from repro.transactions.distributions import (
    EmpiricalDistribution,
    UniformDistribution,
)
from repro.transactions.sizes import UniformSizes
from repro.transactions.workload import PoissonWorkload


@pytest.fixture
def simple_workload() -> PoissonWorkload:
    dist = UniformDistribution(["a", "b", "c"])
    return PoissonWorkload(dist, {"a": 1.0, "b": 1.0, "c": 1.0}, seed=0)


class TestGeneration:
    def test_times_increasing_within_horizon(self, simple_workload):
        txs = list(simple_workload.generate(10.0))
        times = [tx.time for tx in txs]
        assert times == sorted(times)
        assert all(0 < t < 10.0 for t in times)

    def test_count_generation(self, simple_workload):
        txs = simple_workload.generate_count(25)
        assert len(txs) == 25

    def test_sender_never_receiver(self, simple_workload):
        for tx in simple_workload.generate_count(200):
            assert tx.sender != tx.receiver

    def test_default_size_one(self, simple_workload):
        assert all(
            tx.amount == 1.0 for tx in simple_workload.generate_count(10)
        )

    def test_custom_sizes(self):
        dist = UniformDistribution(["a", "b"])
        workload = PoissonWorkload(
            dist, {"a": 1.0, "b": 1.0}, sizes=UniformSizes(low=2.0, high=3.0),
            seed=1,
        )
        for tx in workload.generate_count(50):
            assert 2.0 <= tx.amount <= 3.0

    def test_seed_reproducible(self):
        dist = UniformDistribution(["a", "b", "c"])
        make = lambda: PoissonWorkload(
            dist, {"a": 1.0, "b": 2.0, "c": 0.5}, seed=42
        ).generate_count(30)
        assert make() == make()

    def test_rejects_bad_horizon(self, simple_workload):
        with pytest.raises(InvalidParameter):
            list(simple_workload.generate(0.0))

    def test_rejects_all_zero_rates(self):
        dist = UniformDistribution(["a", "b"])
        with pytest.raises(InvalidParameter):
            PoissonWorkload(dist, {"a": 0.0, "b": 0.0})


class TestStatistics:
    def test_arrival_rate_matches_total(self):
        dist = UniformDistribution(["a", "b"])
        workload = PoissonWorkload(dist, {"a": 3.0, "b": 2.0}, seed=7)
        txs = list(workload.generate(200.0))
        observed_rate = len(txs) / 200.0
        assert observed_rate == pytest.approx(5.0, rel=0.1)

    def test_sender_rates_respected(self):
        dist = UniformDistribution(["a", "b"])
        workload = PoissonWorkload(dist, {"a": 9.0, "b": 1.0}, seed=11)
        txs = workload.generate_count(3000)
        share_a = sum(1 for tx in txs if tx.sender == "a") / len(txs)
        assert share_a == pytest.approx(0.9, abs=0.03)

    def test_zero_rate_sender_never_sends(self):
        dist = UniformDistribution(["a", "b", "c"])
        workload = PoissonWorkload(
            dist, {"a": 1.0, "b": 0.0, "c": 1.0}, seed=3
        )
        assert all(tx.sender != "b" for tx in workload.generate_count(300))

    def test_receiver_distribution_respected(self):
        dist = EmpiricalDistribution({"a": {"b": 4.0, "c": 1.0}})
        workload = PoissonWorkload(dist, {"a": 1.0}, seed=5)
        table = workload.empirical_pair_counts(2000)
        row = table["a"]
        share_b = row.get("b", 0) / (row.get("b", 0) + row.get("c", 0))
        assert share_b == pytest.approx(0.8, abs=0.04)
