"""Unit tests for degree ranking and rank factors (Section II-B)."""

import pytest

from repro.errors import InvalidParameter, NodeNotFound
from repro.network.graph import ChannelGraph
from repro.transactions.ranking import (
    degree_ranking,
    rank_factors,
    rank_factors_from_degrees,
)


@pytest.fixture
def star5() -> ChannelGraph:
    return ChannelGraph.from_edges(
        [("hub", f"leaf{i}") for i in range(5)], balance=1.0
    )


class TestDegreeRanking:
    def test_highest_degree_first(self, star5):
        ranked = degree_ranking(star5)
        assert ranked[0] == ("hub", 5)
        assert all(d == 1 for _, d in ranked[1:])

    def test_perspective_excludes_own_channels(self, star5):
        ranked = degree_ranking(star5, perspective="leaf0")
        nodes = [n for n, _ in ranked]
        assert "leaf0" not in nodes
        hub_degree = dict(ranked)["hub"]
        assert hub_degree == 4  # channel to leaf0 not counted

    def test_perspective_missing_node(self, star5):
        with pytest.raises(NodeNotFound):
            degree_ranking(star5, perspective="ghost")

    def test_deterministic_tie_order(self, star5):
        first = degree_ranking(star5)
        second = degree_ranking(star5)
        assert first == second


class TestRankFactorsFromDegrees:
    def test_distinct_degrees_plain_zipf(self):
        factors = rank_factors_from_degrees([5, 3, 1], s=1.0)
        assert factors == pytest.approx([1.0, 0.5, 1.0 / 3.0])

    def test_tie_block_averaged(self):
        # ranks 1, 2, 3 where 2 and 3 tie: both get (1/2 + 1/3)/2
        factors = rank_factors_from_degrees([5, 2, 2], s=1.0)
        expected_tie = (0.5 + 1.0 / 3.0) / 2.0
        assert factors == pytest.approx([1.0, expected_tie, expected_tie])

    def test_s_zero_uniform(self):
        factors = rank_factors_from_degrees([4, 3, 2, 2], s=0.0)
        assert factors == pytest.approx([1.0, 1.0, 1.0, 1.0])

    def test_all_tied(self):
        factors = rank_factors_from_degrees([1, 1, 1], s=2.0)
        expected = (1.0 + 1.0 / 4.0 + 1.0 / 9.0) / 3.0
        assert factors == pytest.approx([expected] * 3)

    def test_monotone_in_rank(self):
        """Paper's property: earlier (better) rank block => larger factor."""
        degrees = [9, 9, 5, 5, 5, 2, 1, 1]
        factors = rank_factors_from_degrees(degrees, s=1.3)
        # factors of distinct blocks strictly decrease
        blocks = sorted(set(factors), reverse=True)
        assert blocks == sorted(
            {f for f in factors}, reverse=True
        )
        assert factors[0] > factors[2] > factors[5] > factors[6]

    def test_rejects_unsorted(self):
        with pytest.raises(InvalidParameter):
            rank_factors_from_degrees([1, 2], s=1.0)

    def test_rejects_negative_s(self):
        with pytest.raises(InvalidParameter):
            rank_factors_from_degrees([2, 1], s=-0.5)

    def test_empty(self):
        assert rank_factors_from_degrees([], s=1.0) == []


class TestRankFactorsOnGraph:
    def test_star_leaves_equal_factor(self, star5):
        factors = rank_factors(star5, perspective="leaf0", s=1.0)
        leaf_factors = {v: f for v, f in factors.items() if v != "hub"}
        values = set(round(f, 12) for f in leaf_factors.values())
        assert len(values) == 1

    def test_hub_gets_top_factor(self, star5):
        factors = rank_factors(star5, perspective="leaf0", s=1.0)
        assert factors["hub"] == pytest.approx(1.0)
        assert all(
            factors["hub"] > f for v, f in factors.items() if v != "hub"
        )

    def test_excludes_perspective(self, star5):
        factors = rank_factors(star5, perspective="leaf0", s=1.0)
        assert "leaf0" not in factors
        assert len(factors) == 5
