"""Unit tests for Eq. 2 rate estimation (``p_e``, ``λ_e``)."""

import pytest

from repro.network.graph import ChannelGraph
from repro.transactions.distributions import UniformDistribution
from repro.transactions.rates import (
    edge_probabilities,
    edge_rates,
    intermediary_traffic,
    traffic_profile,
)
from repro.transactions.zipf import ModifiedZipf


@pytest.fixture
def line3_graph() -> ChannelGraph:
    return ChannelGraph.from_edges([("a", "b"), ("b", "c")], balance=10.0)


class TestEdgeProbabilities:
    def test_uniform_line_probabilities(self, line3_graph):
        dist = UniformDistribution.from_graph(line3_graph)
        probs = edge_probabilities(line3_graph, dist)
        # one transaction: sender uniform (1/3), receiver uniform (1/2).
        # edge (a,b): used by a->b and a->c => 2 * 1/6 = 1/3
        assert probs[("a", "b")] == pytest.approx(1 / 3)
        assert probs[("b", "a")] == pytest.approx(1 / 3)
        assert probs[("b", "c")] == pytest.approx(1 / 3)

    def test_probabilities_sum_bounded_by_mean_path_length(self, line3_graph):
        """Σ_e p_e equals the mean shortest-path hop count of one tx."""
        dist = UniformDistribution.from_graph(line3_graph)
        probs = edge_probabilities(line3_graph, dist)
        # pairs at distance 1: (a,b),(b,a),(b,c),(c,b) — 4 of 6;
        # distance 2: (a,c),(c,a). mean = (4*1 + 2*2)/6 = 4/3
        assert sum(probs.values()) == pytest.approx(4 / 3)

    def test_custom_sender_weights(self, line3_graph):
        dist = UniformDistribution.from_graph(line3_graph)
        probs = edge_probabilities(
            line3_graph, dist, sender_weights={"a": 1.0, "b": 0.0, "c": 0.0}
        )
        # only a sends: a->b (1/2) and a->c (1/2) both cross (a,b)
        assert probs[("a", "b")] == pytest.approx(1.0)
        assert ("b", "a") not in probs

    def test_exact_matches_brandes(self, line3_graph):
        dist = ModifiedZipf(line3_graph, s=1.2)
        fast = edge_probabilities(line3_graph, dist, exact=False)
        slow = edge_probabilities(line3_graph, dist, exact=True)
        assert set(fast) == set(slow)
        for edge in fast:
            assert fast[edge] == pytest.approx(slow[edge], abs=1e-9)

    def test_capacity_restriction_reroutes(self):
        # square a-b-c-d-a; thin edge a-b in one direction
        graph = ChannelGraph()
        graph.add_channel("a", "b", 0.5, 10.0)
        graph.add_channel("b", "c", 10.0, 10.0)
        graph.add_channel("c", "d", 10.0, 10.0)
        graph.add_channel("d", "a", 10.0, 10.0)
        dist = UniformDistribution.from_graph(graph)
        unrestricted = edge_probabilities(graph, dist, amount=0.0)
        restricted = edge_probabilities(graph, dist, amount=1.0)
        assert unrestricted[("a", "b")] > 0
        assert ("a", "b") not in restricted  # a->b can't carry 1.0


class TestEdgeRates:
    def test_rates_scale_with_total(self, line3_graph):
        dist = UniformDistribution.from_graph(line3_graph)
        probs = edge_probabilities(line3_graph, dist)
        rates = edge_rates(line3_graph, dist, total_tx_rate=50.0)
        for edge, p in probs.items():
            assert rates[edge] == pytest.approx(50.0 * p)


class TestIntermediaryTraffic:
    def test_middle_node_carries_cross_traffic(self, line3_graph):
        dist = UniformDistribution.from_graph(line3_graph)
        traffic = intermediary_traffic(line3_graph, dist)
        # b is intermediary for a<->c: 1/2 each direction
        assert traffic["b"] == pytest.approx(1.0)
        assert traffic["a"] == 0.0
        assert traffic["c"] == 0.0

    def test_per_sender_rates_weighting(self, line3_graph):
        dist = UniformDistribution.from_graph(line3_graph)
        traffic = intermediary_traffic(
            line3_graph, dist, per_sender_rates={"a": 10.0, "b": 0.0, "c": 0.0}
        )
        # only a sends: a->c crosses b with probability 1/2, rate 10
        assert traffic["b"] == pytest.approx(5.0)

    def test_profile_exposes_both_views(self, line3_graph):
        dist = UniformDistribution.from_graph(line3_graph)
        profile = traffic_profile(line3_graph, dist)
        assert profile.node_value("b") == pytest.approx(1.0)
        assert profile.edge_value("a", "b") == pytest.approx(1.0)
