"""Unit tests for the transaction-distribution interface."""

import numpy as np
import pytest

from repro.errors import InvalidParameter, NodeNotFound
from repro.network.graph import ChannelGraph
from repro.transactions.distributions import (
    EmpiricalDistribution,
    UniformDistribution,
)


class TestUniform:
    def test_probability(self):
        dist = UniformDistribution(["a", "b", "c"])
        assert dist.probability("a", "b") == pytest.approx(0.5)

    def test_self_zero(self):
        dist = UniformDistribution(["a", "b", "c"])
        assert dist.probability("a", "a") == 0.0

    def test_receivers_sum_to_one(self):
        dist = UniformDistribution(["a", "b", "c", "d"])
        assert sum(dist.receivers("a").values()) == pytest.approx(1.0)

    def test_needs_two_nodes(self):
        with pytest.raises(InvalidParameter):
            UniformDistribution(["solo"])

    def test_unknown_sender(self):
        dist = UniformDistribution(["a", "b"])
        with pytest.raises(NodeNotFound):
            dist.receivers("ghost")

    def test_from_graph(self):
        graph = ChannelGraph.from_edges([("a", "b"), ("b", "c")])
        dist = UniformDistribution.from_graph(graph)
        assert dist.probability("a", "c") == pytest.approx(0.5)


class TestEmpirical:
    def test_normalises_rows(self):
        dist = EmpiricalDistribution({"a": {"b": 3.0, "c": 1.0}})
        assert dist.probability("a", "b") == pytest.approx(0.75)
        assert dist.probability("a", "c") == pytest.approx(0.25)

    def test_drops_self_and_nonpositive(self):
        dist = EmpiricalDistribution({"a": {"a": 5.0, "b": 1.0, "c": 0.0}})
        assert dist.probability("a", "a") == 0.0
        assert dist.probability("a", "b") == pytest.approx(1.0)

    def test_rejects_empty_row(self):
        with pytest.raises(InvalidParameter):
            EmpiricalDistribution({"a": {"a": 1.0}})

    def test_unknown_sender(self):
        dist = EmpiricalDistribution({"a": {"b": 1.0}})
        with pytest.raises(NodeNotFound):
            dist.probability("ghost", "b")

    def test_receivers_copy(self):
        dist = EmpiricalDistribution({"a": {"b": 1.0}})
        row = dist.receivers("a")
        row["b"] = 0.0
        assert dist.probability("a", "b") == pytest.approx(1.0)


class TestSampling:
    def test_sample_receiver_matches_distribution(self):
        dist = EmpiricalDistribution({"a": {"b": 9.0, "c": 1.0}})
        rng = np.random.default_rng(1)
        draws = [dist.sample_receiver("a", rng) for _ in range(1000)]
        share_b = draws.count("b") / len(draws)
        assert share_b == pytest.approx(0.9, abs=0.04)
