"""Unit tests for transaction-size distributions."""

import numpy as np

_trapz = getattr(np, "trapezoid", getattr(np, "trapz", None))
import pytest

from repro.errors import InvalidParameter
from repro.transactions.sizes import (
    FixedSize,
    TruncatedExponentialSizes,
    UniformSizes,
)


class TestUniformSizes:
    def test_pdf_integrates_to_one(self):
        dist = UniformSizes(high=10.0)
        grid = np.linspace(*dist.support(), 2001)
        assert _trapz(dist.pdf(grid), grid) == pytest.approx(1.0, rel=1e-3)

    def test_mean(self):
        assert UniformSizes(high=10.0).mean() == pytest.approx(5.0, rel=1e-3)

    def test_mean_with_offset(self):
        assert UniformSizes(low=2.0, high=4.0).mean() == pytest.approx(
            3.0, rel=1e-3
        )

    def test_samples_in_support(self):
        dist = UniformSizes(low=1.0, high=3.0)
        samples = dist.sample(np.random.default_rng(0), 500)
        assert samples.min() >= 1.0
        assert samples.max() <= 3.0

    def test_rejects_bad_bounds(self):
        with pytest.raises(InvalidParameter):
            UniformSizes(high=1.0, low=1.0)


class TestTruncatedExponential:
    def test_pdf_integrates_to_one(self):
        dist = TruncatedExponentialSizes(scale=1.0, high=5.0)
        grid = np.linspace(0.0, 5.0, 4001)
        assert _trapz(dist.pdf(grid), grid) == pytest.approx(1.0, rel=1e-3)

    def test_samples_within_truncation(self):
        dist = TruncatedExponentialSizes(scale=2.0, high=3.0)
        samples = dist.sample(np.random.default_rng(1), 2000)
        assert samples.min() >= 0.0
        assert samples.max() <= 3.0

    def test_sample_mean_matches_analytic(self):
        dist = TruncatedExponentialSizes(scale=1.0, high=10.0)
        samples = dist.sample(np.random.default_rng(2), 20000)
        assert samples.mean() == pytest.approx(dist.mean(), rel=0.05)

    def test_skews_small(self):
        dist = TruncatedExponentialSizes(scale=0.5, high=5.0)
        assert dist.mean() < 2.5  # well below the uniform mean

    def test_rejects_bad_params(self):
        with pytest.raises(InvalidParameter):
            TruncatedExponentialSizes(scale=0.0, high=1.0)
        with pytest.raises(InvalidParameter):
            TruncatedExponentialSizes(scale=1.0, high=0.0)


class TestFixedSize:
    def test_samples_exact(self):
        dist = FixedSize(2.5)
        samples = dist.sample(np.random.default_rng(3), 10)
        assert np.all(samples == 2.5)

    def test_mean_exact(self):
        assert FixedSize(4.0).mean() == 4.0

    def test_pdf_spike_integrates_to_one(self):
        dist = FixedSize(3.0)
        grid = np.linspace(*dist.support(), 10001)
        assert _trapz(dist.pdf(grid), grid) == pytest.approx(1.0, rel=1e-2)

    def test_rejects_nonpositive(self):
        with pytest.raises(InvalidParameter):
            FixedSize(0.0)
