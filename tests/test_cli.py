"""End-to-end tests of the CLI."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0


class TestGenerate:
    def test_generates_snapshot_file(self, tmp_path, capsys):
        out = tmp_path / "snap.json"
        code = main(["generate", "--nodes", "20", str(out)])
        assert code == 0
        doc = json.loads(out.read_text())
        assert len(doc["nodes"]) == 20
        assert "wrote snapshot" in capsys.readouterr().out


class TestJoin:
    def test_greedy_join_prints_summary(self, capsys):
        code = main(
            ["join", "--nodes", "15", "--budget", "4", "--algorithm", "greedy"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[greedy]" in out
        assert "chosen channels" in out

    def test_join_on_saved_snapshot(self, tmp_path, capsys):
        snap = tmp_path / "snap.json"
        main(["generate", "--nodes", "12", str(snap)])
        capsys.readouterr()
        code = main(
            ["join", "--snapshot", str(snap), "--budget", "3",
             "--algorithm", "greedy"]
        )
        assert code == 0
        assert "[greedy]" in capsys.readouterr().out

    def test_continuous_join(self, capsys):
        code = main(
            ["join", "--nodes", "8", "--budget", "3",
             "--algorithm", "continuous"]
        )
        assert code == 0
        assert "[continuous]" in capsys.readouterr().out


class TestStability:
    def test_star_stable_report(self, capsys):
        code = main(
            ["stability", "star", "--size", "5", "-a", "0.1", "-b", "0.1",
             "--zipf-s", "2.0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "NE=True" in out
        assert "Thm 8" in out

    def test_path_unstable_report(self, capsys):
        code = main(["stability", "path", "--size", "5"])
        assert code == 0
        assert "NE=False" in capsys.readouterr().out


class TestEstimate:
    def test_round_trip_report(self, capsys):
        code = main(
            ["estimate", "--nodes", "10", "--samples", "400",
             "--zipf-s", "1.0", "--seed", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "estimated s" in out
        assert "busiest senders" in out


class TestSimulate:
    def test_simulate_reports_metrics(self, capsys):
        code = main(
            ["simulate", "--nodes", "15", "--horizon", "5", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "payments:" in out
