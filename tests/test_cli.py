"""End-to-end tests of the CLI."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0


class TestGenerate:
    def test_generates_snapshot_file(self, tmp_path, capsys):
        out = tmp_path / "snap.json"
        code = main(["generate", "--nodes", "20", str(out)])
        assert code == 0
        doc = json.loads(out.read_text())
        assert len(doc["nodes"]) == 20
        assert "wrote snapshot" in capsys.readouterr().out


class TestJoin:
    def test_greedy_join_prints_summary(self, capsys):
        code = main(
            ["join", "--nodes", "15", "--budget", "4", "--algorithm", "greedy"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[greedy]" in out
        assert "chosen channels" in out

    def test_join_on_saved_snapshot(self, tmp_path, capsys):
        snap = tmp_path / "snap.json"
        main(["generate", "--nodes", "12", str(snap)])
        capsys.readouterr()
        code = main(
            ["join", "--snapshot", str(snap), "--budget", "3",
             "--algorithm", "greedy"]
        )
        assert code == 0
        assert "[greedy]" in capsys.readouterr().out

    def test_continuous_join(self, capsys):
        code = main(
            ["join", "--nodes", "8", "--budget", "3",
             "--algorithm", "continuous"]
        )
        assert code == 0
        assert "[continuous]" in capsys.readouterr().out


class TestStability:
    def test_star_stable_report(self, capsys):
        code = main(
            ["stability", "star", "--size", "5", "-a", "0.1", "-b", "0.1",
             "--zipf-s", "2.0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "NE=True" in out
        assert "Thm 8" in out

    def test_path_unstable_report(self, capsys):
        code = main(["stability", "path", "--size", "5"])
        assert code == 0
        assert "NE=False" in capsys.readouterr().out


class TestEstimate:
    def test_round_trip_report(self, capsys):
        code = main(
            ["estimate", "--nodes", "10", "--samples", "400",
             "--zipf-s", "1.0", "--seed", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "estimated s" in out
        assert "busiest senders" in out


class TestSimulate:
    def test_simulate_reports_metrics(self, capsys):
        code = main(
            ["simulate", "--nodes", "15", "--horizon", "5", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "payments:" in out

    def test_batched_backend_matches_event(self, capsys):
        args = ["simulate", "--nodes", "15", "--horizon", "5", "--seed", "1"]
        assert main(args) == 0
        event_out = capsys.readouterr().out
        assert main(args + ["--backend", "batched"]) == 0
        batched_out = capsys.readouterr().out
        assert batched_out == event_out


def write_scenario(path, **overrides):
    doc = {
        "name": "cli-test",
        "seed": 4,
        "topology": {"kind": "ba", "params": {"n": 12}},
        "workload": {"kind": "poisson", "params": {"zipf_s": 1.0}},
        "fee": {"kind": "linear", "params": {"base": 0.01, "rate": 0.001}},
        "algorithm": {"kind": "greedy", "params": {"budget": 4.0, "lock": 1.0}},
        "simulation": {"horizon": 3.0},
    }
    doc.update(overrides)
    path.write_text(json.dumps(doc))
    return path


class TestRunScenario:
    def test_executes_scenario_json(self, tmp_path, capsys):
        scen = write_scenario(tmp_path / "scen.json")
        code = main(["run-scenario", str(scen)])
        assert code == 0
        out = capsys.readouterr().out
        assert "[cli-test]" in out
        assert "[greedy]" in out
        assert "payments:" in out

    def test_seed_override(self, tmp_path, capsys):
        scen = write_scenario(tmp_path / "scen.json")
        code = main(["run-scenario", str(scen), "--seed", "99"])
        assert code == 0
        assert "99" in capsys.readouterr().out

    def test_backend_override(self, tmp_path, capsys):
        scen = write_scenario(
            tmp_path / "scen.json", algorithm=None
        )
        code = main(["run-scenario", str(scen), "--backend", "batched"])
        assert code == 0
        assert "payments:" in capsys.readouterr().out

    def test_backend_override_without_simulation_errors(self, tmp_path, capsys):
        scen = write_scenario(tmp_path / "scen.json", simulation=None)
        code = main(["run-scenario", str(scen), "--backend", "batched"])
        assert code == 2
        assert "simulation" in capsys.readouterr().err


class TestSweep:
    def test_parse_grid_setting_scalars_and_json_lists(self):
        from repro.cli import _parse_grid_setting

        assert _parse_grid_setting("topology.params.n=10,20") == {
            "topology.params.n": [10, 20]
        }
        assert _parse_grid_setting("fee.kind=linear") == {"fee.kind": ["linear"]}
        # a JSON array is the explicit value list: the only way to sweep
        # list-valued parameters such as piecewise fee knots
        assert _parse_grid_setting("fee.params.knots=[[[0,0.1],[5,0.5]]]") == {
            "fee.params.knots": [[[0, 0.1], [5, 0.5]]]
        }

    def test_scenario_errors_print_cleanly(self, tmp_path, capsys):
        scen = write_scenario(
            tmp_path / "scen.json",
            algorithm={"kind": "no-such-algo", "params": {}},
        )
        code = main(["run-scenario", str(scen)])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "no-such-algo" in err

    def test_sweep_prints_table(self, tmp_path, capsys):
        scen = write_scenario(tmp_path / "scen.json")
        code = main(
            ["sweep", str(scen), "--set", "topology.params.n=8,10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep of cli-test" in out
        assert "topology.params.n" in out

    def test_sweep_writes_json_output(self, tmp_path, capsys):
        scen = write_scenario(tmp_path / "scen.json")
        rows_path = tmp_path / "rows.json"
        code = main(
            ["sweep", str(scen), "--set", "topology.params.n=8,10",
             "--output", str(rows_path)]
        )
        assert code == 0
        rows = json.loads(rows_path.read_text())
        assert [row["nodes"] for row in rows] == [8, 10]

    def test_sweep_process_executor_matches_serial(self, tmp_path, capsys):
        scen = write_scenario(tmp_path / "scen.json")
        serial_path = tmp_path / "serial.json"
        process_path = tmp_path / "process.json"
        assert main(
            ["sweep", str(scen), "--set", "topology.params.n=8,10",
             "--output", str(serial_path)]
        ) == 0
        assert main(
            ["sweep", str(scen), "--set", "topology.params.n=8,10",
             "--executor", "process", "--workers", "2",
             "--output", str(process_path)]
        ) == 0
        assert (
            json.loads(serial_path.read_text())
            == json.loads(process_path.read_text())
        )


class TestAttack:
    def test_attack_reports_damage(self, capsys):
        code = main(
            ["attack", "--topology", "star", "--strategy", "slow-jamming",
             "--budget", "500", "--seed", "7", "--horizon", "15"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[slow-jamming vs center]" in out
        assert "attack report" in out
        assert "victim_revenue_delta" in out

    def test_attack_is_deterministic(self, capsys):
        args = ["attack", "--topology", "star", "--strategy", "slow-jamming",
                "--budget", "1000", "--seed", "7", "--horizon", "15"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_attack_explicit_victim_on_path(self, capsys):
        code = main(
            ["attack", "--topology", "path", "--size", "6",
             "--strategy", "liquidity-depletion", "--budget", "400",
             "--victim", "v002", "--seed", "3", "--horizon", "10"]
        )
        assert code == 0
        assert "vs v002" in capsys.readouterr().out

    def test_attack_unknown_victim_errors_cleanly(self, capsys):
        code = main(
            ["attack", "--victim", "nobody", "--horizon", "5"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_compare_prints_resilience_table(self, capsys):
        code = main(
            ["attack", "--compare", "--size", "7", "--budget", "400",
             "--seed", "7", "--horizon", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "NE resilience under slow-jamming" in out
        for topology in ("star", "path", "circle"):
            assert topology in out


class TestEvolve:
    def test_emits_byte_identical_json_for_fixed_seed(self, capsys):
        args = ["evolve", "--topology", "circle", "--epochs", "5",
                "--seed", "7"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first
        doc = json.loads(first)
        assert doc["epochs_run"] == len(doc["epochs"])
        assert doc["final_topology"] == "star"  # the attractor here

    def test_trajectory_written_to_file(self, tmp_path, capsys):
        out = tmp_path / "trajectory.json"
        code = main(
            ["evolve", "--topology", "star", "--size", "5", "--epochs", "4",
             "--churn-rate", "0.1", "--seed", "3", "--output", str(out)]
        )
        assert code == 0
        assert "wrote trajectory" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        assert {"converged", "epochs", "final_topology", "totals"} <= set(doc)

    def test_empirical_utility_runs(self, capsys):
        code = main(
            ["evolve", "--topology", "circle", "--size", "5", "--epochs", "3",
             "--utility", "empirical", "--mode", "sampled", "--sample", "2",
             "--seed", "1"]
        )
        assert code == 0
        json.loads(capsys.readouterr().out)

    def test_invalid_spec_errors_with_exit_2(self, capsys):
        code = main(
            ["evolve", "--topology", "circle", "--epochs", "3",
             "--utility", "empirical", "--horizon", "0"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "traffic_horizon" in err

    def test_invalid_topology_size_errors_cleanly(self, capsys):
        code = main(["evolve", "--topology", "circle", "--size", "2"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_emergence_table(self, capsys):
        code = main(
            ["evolve", "--emergence", "--size", "5", "--epochs", "4",
             "--seed", "7"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "topology emergence under evolution" in out
        for topology in ("star", "path", "circle"):
            assert topology in out


class TestObservability:
    def test_simulate_trace_out_writes_jsonl_and_leaves_output_unchanged(
        self, tmp_path, capsys
    ):
        argv = ["simulate", "--nodes", "15", "--horizon", "3", "--seed", "5"]
        assert main(argv) == 0
        plain = capsys.readouterr().out

        trace = tmp_path / "trace.jsonl"
        assert main(argv + ["--trace-out", str(trace)]) == 0
        captured = capsys.readouterr()
        assert captured.out == plain  # tracing never changes results
        assert "trace records" in captured.err
        records = [json.loads(line) for line in trace.read_text().splitlines()]
        assert records[0]["type"] == "meta"
        assert any(r.get("name") == "phase" for r in records)

    def test_run_scenario_profile_prints_hotspots(self, tmp_path, capsys):
        scen = write_scenario(tmp_path / "scen.json", algorithm=None)
        code = main(["run-scenario", str(scen), "--profile"])
        assert code == 0
        out = capsys.readouterr().out
        assert "per-phase wall time" in out

    def test_profile_command_emits_report_telemetry_and_trace(
        self, tmp_path, capsys
    ):
        from repro.obs import RunTelemetry

        scen = write_scenario(
            tmp_path / "scen.json",
            algorithm=None,
            simulation={"horizon": 3.0, "backend": "batched"},
        )
        telemetry_path = tmp_path / "telemetry.json"
        trace_path = tmp_path / "trace.jsonl"
        code = main([
            "profile", str(scen), "--top", "5",
            "--output", str(telemetry_path), "--trace-out", str(trace_path),
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "per-phase wall time" in captured.out
        assert "cache / conflict rates" in captured.out
        assert "trace records" in captured.err
        telemetry = RunTelemetry.from_json(telemetry_path.read_text())
        assert telemetry.counters["fastpath.payments"] > 0
        assert trace_path.exists()

    def test_profile_matches_plain_run_results(self, tmp_path, capsys):
        scen = write_scenario(tmp_path / "scen.json", algorithm=None)
        assert main(["run-scenario", str(scen)]) == 0
        plain = capsys.readouterr().out
        assert main(["profile", str(scen)]) == 0
        profiled = capsys.readouterr().out
        # the summary line is shared verbatim between the two commands
        assert plain.splitlines()[0] == profiled.splitlines()[0]
