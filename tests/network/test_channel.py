"""Unit tests for :mod:`repro.network.channel` (Figure 1 semantics)."""

import pytest

from repro.errors import InsufficientBalance, InvalidParameter
from repro.network.channel import Channel


class TestConstruction:
    def test_basic(self):
        channel = Channel("u", "v", 10.0, 7.0)
        assert channel.balance("u") == 10.0
        assert channel.balance("v") == 7.0
        assert channel.capacity == 17.0

    def test_default_counterparty_balance_zero(self):
        channel = Channel("u", "v", 4.0)
        assert channel.balance("v") == 0.0

    def test_rejects_self_channel(self):
        with pytest.raises(InvalidParameter):
            Channel("u", "u", 1.0, 1.0)

    def test_rejects_negative_balance(self):
        with pytest.raises(InvalidParameter):
            Channel("u", "v", -1.0, 1.0)

    def test_auto_channel_ids_unique(self):
        c1 = Channel("u", "v", 1.0)
        c2 = Channel("u", "v", 1.0)
        assert c1.channel_id != c2.channel_id

    def test_explicit_channel_id(self):
        channel = Channel("u", "v", 1.0, channel_id="my-chan")
        assert channel.channel_id == "my-chan"


class TestPaymentsFigure1:
    """Replays the balance updates of the paper's Figure 1."""

    def test_figure1_sequence(self):
        channel = Channel("u", "v", 10.0, 7.0)
        # payment of 10 from v to u? Figure 1: x=10 arrives at (10, 7);
        # then u pays 10? The figure shows u's balance dropping 10 -> 5
        # after a payment of 5 v<-u and others; we replay the *final*
        # documented step exactly: at b_u = 5, a payment of 6 u -> v fails.
        channel = Channel("u", "v", 5.0, 12.0)
        assert not channel.can_send("u", 6.0)
        with pytest.raises(InsufficientBalance):
            channel.send("u", 6.0)
        # balances unchanged on failure
        assert channel.balance("u") == 5.0
        assert channel.balance("v") == 12.0

    def test_send_updates_both_sides(self):
        channel = Channel("u", "v", 10.0, 7.0)
        channel.send("u", 5.0)
        assert channel.balance("u") == 5.0
        assert channel.balance("v") == 12.0

    def test_capacity_invariant_under_payments(self):
        channel = Channel("u", "v", 10.0, 7.0)
        for sender, amount in [("u", 3.0), ("v", 8.0), ("u", 1.5)]:
            channel.send(sender, amount)
        assert channel.capacity == pytest.approx(17.0)

    def test_exact_balance_payment_allowed(self):
        channel = Channel("u", "v", 5.0, 0.0)
        channel.send("u", 5.0)
        assert channel.balance("u") == 0.0
        assert channel.balance("v") == 5.0

    def test_rejects_negative_amount(self):
        channel = Channel("u", "v", 5.0, 0.0)
        with pytest.raises(InvalidParameter):
            channel.send("u", -1.0)

    def test_send_from_non_endpoint_rejected(self):
        channel = Channel("u", "v", 5.0, 0.0)
        with pytest.raises(InvalidParameter):
            channel.send("w", 1.0)


class TestHistoryAndViews:
    def test_history_disabled_by_default(self):
        channel = Channel("u", "v", 5.0, 5.0)
        channel.send("u", 1.0)
        assert channel.history == ()

    def test_history_records_payments(self):
        channel = Channel("u", "v", 5.0, 5.0, record_history=True)
        channel.send("u", 1.0, timestamp=3.5)
        channel.send("v", 2.0, timestamp=4.0)
        assert len(channel.history) == 2
        first = channel.history[0]
        assert first.sender == "u"
        assert first.receiver == "v"
        assert first.amount == 1.0
        assert first.timestamp == 3.5

    def test_directed_views(self):
        channel = Channel("u", "v", 10.0, 7.0)
        views = list(channel.directed_views())
        assert ("u", "v", 10.0) in views
        assert ("v", "u", 7.0) in views

    def test_other(self):
        channel = Channel("u", "v", 1.0)
        assert channel.other("u") == "v"
        assert channel.other("v") == "u"

    def test_deposit(self):
        channel = Channel("u", "v", 1.0, 1.0)
        channel.deposit("u", 4.0)
        assert channel.balance("u") == 5.0
        assert channel.capacity == 6.0

    def test_deposit_rejects_negative(self):
        channel = Channel("u", "v", 1.0, 1.0)
        with pytest.raises(InvalidParameter):
            channel.deposit("u", -1.0)
