"""HTLC slot caps (``max_accepted_htlcs``) and concurrent unwind paths.

Covers the jamming substrate: per-direction slot exhaustion raises a clear
:class:`HtlcError`, the router degrades it into a failed lock with a
``"no-slots"`` reason, and timeout/cancel restores balances *and* slots
exactly — including with many concurrent in-flight payments contending on
the same channel (the unwind path a jamming attack exercises).
"""

import pytest

from repro.errors import HtlcError as ErrorsHtlcError
from repro.errors import InvalidParameter
from repro.network.channel import DEFAULT_MAX_ACCEPTED_HTLCS, Channel
from repro.network.fees import ConstantFee, FeePolicy
from repro.network.graph import ChannelGraph
from repro.network.htlc import HtlcError, HtlcRouter, HtlcState


@pytest.fixture
def line3() -> ChannelGraph:
    graph = ChannelGraph()
    graph.add_channel("a", "b", 100.0, 100.0)
    graph.add_channel("b", "c", 100.0, 100.0)
    return graph


class TestChannelSlots:
    def test_default_cap_is_lightning_483(self):
        channel = Channel("u", "v", 1.0)
        assert DEFAULT_MAX_ACCEPTED_HTLCS == 483
        assert channel.max_accepted_htlcs == 483

    def test_htlc_error_is_the_errors_module_class(self):
        # HtlcError moved to repro.errors so Channel can raise it; the
        # legacy import path must stay the same class.
        assert HtlcError is ErrorsHtlcError

    def test_open_close_tracks_per_direction(self):
        channel = Channel("u", "v", 5.0, 5.0, max_accepted_htlcs=2)
        channel.open_htlc("u")
        channel.open_htlc("u")
        assert channel.htlc_slots_used("u") == 2
        assert channel.htlc_slots_used("v") == 0
        assert not channel.has_free_htlc_slot("u")
        assert channel.has_free_htlc_slot("v")
        channel.close_htlc("u")
        assert channel.has_free_htlc_slot("u")

    def test_exhaustion_raises_clear_htlc_error(self):
        channel = Channel("u", "v", 5.0, 5.0, max_accepted_htlcs=1)
        channel.open_htlc("u")
        with pytest.raises(HtlcError, match="no free HTLC slot"):
            channel.open_htlc("u")

    def test_close_without_open_raises(self):
        channel = Channel("u", "v", 5.0, 5.0)
        with pytest.raises(HtlcError, match="no open HTLC"):
            channel.close_htlc("u")

    def test_unlimited_cap(self):
        channel = Channel("u", "v", 5.0, 5.0, max_accepted_htlcs=None)
        for _ in range(1000):
            channel.open_htlc("u")
        assert channel.has_free_htlc_slot("u")

    def test_invalid_cap_rejected(self):
        with pytest.raises(InvalidParameter):
            Channel("u", "v", 1.0, max_accepted_htlcs=0)

    def test_graph_passthrough_and_bulk_cap(self):
        graph = ChannelGraph()
        channel = graph.add_channel("a", "b", 1.0, max_accepted_htlcs=7)
        assert channel.max_accepted_htlcs == 7
        graph.set_htlc_slot_cap(3)
        assert channel.max_accepted_htlcs == 3
        with pytest.raises(InvalidParameter):
            graph.set_htlc_slot_cap(0)

    def test_copy_preserves_cap(self):
        graph = ChannelGraph()
        graph.add_channel("a", "b", 1.0, max_accepted_htlcs=5)
        clone = graph.copy()
        assert clone.channels[0].max_accepted_htlcs == 5



class TestRouterSlotExhaustion:
    def test_lock_fails_with_no_slots_reason(self, line3):
        for channel in line3.channels:
            channel.max_accepted_htlcs = 2
        router = HtlcRouter(line3)
        held = [router.lock(["a", "b", "c"], 1.0) for _ in range(2)]
        assert all(p.state is HtlcState.PENDING for p in held)
        rejected = router.lock(["a", "b", "c"], 1.0)
        assert rejected.state is HtlcState.FAILED
        assert rejected.failure_reason == "no-slots"

    def test_no_balance_reason_distinct(self, line3):
        router = HtlcRouter(line3)
        rejected = router.lock(["a", "b", "c"], 1000.0)
        assert rejected.state is HtlcState.FAILED
        assert rejected.failure_reason == "no-balance"

    def test_slots_free_again_after_settle_and_fail(self, line3):
        for channel in line3.channels:
            channel.max_accepted_htlcs = 1
        router = HtlcRouter(line3)
        p1 = router.lock(["a", "b", "c"], 1.0)
        assert router.lock(["a", "b", "c"], 1.0).state is HtlcState.FAILED
        router.settle(p1)
        p2 = router.lock(["a", "b", "c"], 1.0)
        assert p2.state is HtlcState.PENDING
        router.fail(p2)
        assert router.lock(["a", "b", "c"], 1.0).state is HtlcState.PENDING

    def test_mid_path_slot_failure_releases_earlier_hops(self, line3):
        # Jam only the second hop: the first hop's reservation (balance
        # AND slot) must unwind when the lock aborts mid-path.
        bc = line3.channels_between("b", "c")[0]
        bc.max_accepted_htlcs = 1
        bc.open_htlc("b")
        ab = line3.channels_between("a", "b")[0]
        router = HtlcRouter(line3)
        before = ab.balance("a")
        rejected = router.lock(["a", "b", "c"], 2.0)
        assert rejected.state is HtlcState.FAILED
        assert rejected.failure_reason == "no-slots"
        assert ab.balance("a") == before
        assert ab.htlc_slots_used("a") == 0


class TestUpfrontCharges:
    """The per-attempt side of a two-sided FeePolicy at the lock layer.

    The unjamming countermeasure: every hop a lock actually places pays
    ``policy.upfront(hop_amount)`` to its receiver — settle, fail, or
    expire, the charge stands (and unwinding never refunds it). The
    charge is ledger-only: channel balances, slots, and routing are
    identical with or without it.
    """

    def policy_router(self, graph, upfront_rate=0.1, upfront_base=0.5):
        return HtlcRouter(graph, fee=FeePolicy(
            success=ConstantFee(0.0),
            upfront_base=upfront_base,
            upfront_rate=upfront_rate,
        ))

    def test_pending_lock_charges_every_placed_hop(self, line3):
        router = self.policy_router(line3)
        payment = router.lock(["a", "b", "c"], 2.0)
        assert payment.state is HtlcState.PENDING
        # one charge per hop receiver: b (for a->b) and c (for b->c)
        assert set(payment.upfront_fees_per_node) == {"b", "c"}
        assert payment.upfront_fees_per_node["c"] == pytest.approx(
            0.5 + 0.1 * 2.0
        )
        assert payment.upfront_total == pytest.approx(
            sum(payment.upfront_fees_per_node.values())
        )

    def test_mid_path_failure_still_charges_placed_hops(self, line3):
        # Jam the second hop's slots: the a->b hop is placed (and pays),
        # the b->c hop never places (and doesn't).
        bc = line3.channels_between("b", "c")[0]
        bc.max_accepted_htlcs = 1
        bc.open_htlc("b")
        router = self.policy_router(line3)
        rejected = router.lock(["a", "b", "c"], 2.0)
        assert rejected.state is HtlcState.FAILED
        assert rejected.failure_reason == "no-slots"
        assert set(rejected.upfront_fees_per_node) == {"b"}
        assert rejected.upfront_total == pytest.approx(0.5 + 0.1 * 2.0)

    def test_fail_and_expire_never_refund(self, line3):
        router = self.policy_router(line3, upfront_base=0.0)
        failed = router.lock(["a", "b", "c"], 3.0)
        charged = failed.upfront_total
        router.fail(failed)
        assert failed.upfront_total == charged
        expired = router.lock(["a", "b", "c"], 3.0)
        assert router.expire(expired, height=10**6)
        assert expired.upfront_total == pytest.approx(charged)

    def test_charge_is_ledger_only(self, line3):
        # Identical locks with and without an upfront side must leave
        # identical balances and slots: the charge never moves coins.
        plain = HtlcRouter(line3)
        p1 = plain.lock(["a", "b", "c"], 2.0)
        plain.fail(p1)
        before = {
            (c.u, c.v, n): c.balance(n)
            for c in line3.channels for n in c.endpoints
        }
        upfront = self.policy_router(line3)
        p2 = upfront.lock(["a", "b", "c"], 2.0)
        upfront.fail(p2)
        after = {
            (c.u, c.v, n): c.balance(n)
            for c in line3.channels for n in c.endpoints
        }
        assert before == after
        assert p2.upfront_total > 0

    def test_success_only_fee_charges_nothing(self, line3):
        router = HtlcRouter(line3, fee=ConstantFee(0.1))
        payment = router.lock(["a", "b", "c"], 2.0)
        assert payment.upfront_fees_per_node == {}
        assert payment.upfront_total == 0.0


class TestConcurrentUnwind:
    """Timeout/cancel balance restoration with many concurrent payments."""

    def test_concurrent_inflight_then_expire_restores_everything(self, line3):
        router = HtlcRouter(line3, base_expiry=10, expiry_delta=40)
        ab = line3.channels_between("a", "b")[0]
        bc = line3.channels_between("b", "c")[0]
        balances = {
            (c, node): c.balance(node)
            for c in line3.channels for node in c.endpoints
        }
        payments = [router.lock(["a", "b", "c"], 3.0) for _ in range(10)]
        assert all(p.state is HtlcState.PENDING for p in payments)
        assert ab.htlc_slots_used("a") == 10
        assert bc.htlc_slots_used("b") == 10
        assert ab.balance("a") == balances[(ab, "a")] - 30.0
        # all ten share the same path length, hence the same first-hop
        # expiry: every one expires at the same height
        expiry = payments[0].hops[0].expiry
        assert all(router.expire(p, height=expiry) for p in payments)
        for (channel, node), value in balances.items():
            assert channel.balance(node) == pytest.approx(value)
        assert ab.htlc_slots_used("a") == 0
        assert bc.htlc_slots_used("b") == 0
        assert router.locked_capital() == 0.0

    def test_interleaved_settle_fail_expire_conserves_coins(self, line3):
        router = HtlcRouter(line3, base_expiry=5, expiry_delta=10)
        total = line3.total_capacity()
        held = [router.lock(["a", "b", "c"], 2.0) for _ in range(9)]
        # settle a third, fail a third, expire a third — in interleaved
        # order, mimicking a mixed honest/adversarial resolution pattern.
        for i, payment in enumerate(held):
            if i % 3 == 0:
                router.settle(payment)
            elif i % 3 == 1:
                router.fail(payment)
            else:
                assert router.expire(payment, height=10**6)
        assert line3.total_capacity() == pytest.approx(total)
        assert router.in_flight == ()
        for channel in line3.channels:
            for node in channel.endpoints:
                assert channel.htlc_slots_used(node) == 0

    def test_expire_before_timeout_keeps_payment_live(self, line3):
        router = HtlcRouter(line3, base_expiry=10, expiry_delta=40)
        payment = router.lock(["a", "b", "c"], 1.0)
        assert not router.expire(payment, height=payment.hops[0].expiry - 1)
        assert payment.state is HtlcState.PENDING
        router.fail(payment)

    def test_partial_balance_contention_fails_cleanly(self, line3):
        # 100 coins per direction, 3.0 each: payment #34 must fail on
        # balance while 33 remain pending; its partial reservations unwind.
        router = HtlcRouter(line3)
        pending = []
        for _ in range(33):
            payment = router.lock(["a", "b", "c"], 3.0)
            assert payment.state is HtlcState.PENDING
            pending.append(payment)
        overflow = router.lock(["a", "b", "c"], 3.0)
        assert overflow.state is HtlcState.FAILED
        assert overflow.failure_reason == "no-balance"
        for payment in pending:
            router.fail(payment)
        ab = line3.channels_between("a", "b")[0]
        assert ab.balance("a") == pytest.approx(100.0)
