"""Parity and caching tests for the CSR view layer.

Randomised graphs: everything the CSR snapshots compute — pair-weighted
betweenness, shortest-path counts, hop distances, reduced-subgraph
membership, routing — must match the legacy networkx implementations
within 1e-9.
"""

import pytest

from repro.errors import InvalidParameter, ScenarioError
from repro.network.betweenness import (
    _bfs_shortest_paths,
    betweenness_arrays,
    pair_weighted_betweenness,
)
from repro.network.graph import ChannelGraph
from repro.network.reduced import feasible_pairs, infeasible_edges, reduced_view
from repro.network.routing import Router
from repro.network.views import (
    GraphView,
    bfs_distances,
    bfs_shortest_path_tree,
    shortest_path_indices,
)
from repro.core.fees_paid import single_source_hops
from repro.snapshots import barabasi_albert_snapshot, erdos_renyi_snapshot
from repro.transactions.zipf import ModifiedZipf

TOL = 1e-9


def legacy_digraph(graph: ChannelGraph, min_balance: float = 0.0):
    """The networkx materialisation without tripping the deprecation."""
    return graph.view(directed=True, reduced=min_balance).to_networkx()


def random_graphs():
    """A spread of randomised topologies (sizes straddle the small-graph
    fast-path threshold)."""
    graphs = []
    for seed in (1, 7, 42):
        graphs.append(barabasi_albert_snapshot(30, seed=seed))
        graphs.append(erdos_renyi_snapshot(25, p=0.15, seed=seed))
    graphs.append(barabasi_albert_snapshot(170, seed=3))  # vectorised path
    return graphs


class TestViewStructure:
    def test_nodes_and_entries_match_digraph(self):
        for graph in random_graphs():
            view = graph.view(directed=True)
            digraph = legacy_digraph(graph)
            assert set(view.nodes) == set(digraph.nodes)
            rows = view.entry_rows()
            edges = {
                (view.nodes[rows[k]], view.nodes[view.indices[k]])
                for k in range(view.num_entries)
            }
            assert edges == set(digraph.edges)

    def test_balances_match_digraph(self):
        graph = barabasi_albert_snapshot(40, seed=9)
        view = graph.view(directed=True)
        digraph = legacy_digraph(graph)
        rows = view.entry_rows()
        for k in range(view.num_entries):
            src = view.nodes[rows[k]]
            dst = view.nodes[view.indices[k]]
            assert view.balances[k] == pytest.approx(
                digraph[src][dst]["balance"], abs=TOL
            )

    def test_parallel_channels_aggregate(self):
        graph = ChannelGraph()
        graph.add_channel("a", "b", 3.0, 1.0)
        graph.add_channel("a", "b", 2.0, 5.0)
        view = graph.view(directed=True)
        entry = view.entry_between(view.index_of("a"), view.index_of("b"))
        assert view.balances[entry] == pytest.approx(5.0)
        assert view.capacities[entry] == pytest.approx(11.0)
        assert set(view.channels_for_entry(entry)) == {
            c.channel_id for c in graph.channels
        }

    def test_arrays_immutable(self):
        view = barabasi_albert_snapshot(10, seed=0).view(directed=True)
        with pytest.raises(ValueError):
            view.balances[0] = 99.0
        with pytest.raises(ValueError):
            view.indices[0] = 0

    def test_undirected_cannot_be_reduced(self):
        graph = barabasi_albert_snapshot(10, seed=0)
        with pytest.raises(InvalidParameter):
            graph.view(directed=False, reduced=1.0)

    def test_negative_reduction_rejected(self):
        graph = barabasi_albert_snapshot(10, seed=0)
        with pytest.raises(InvalidParameter):
            graph.view(directed=True, reduced=-1.0)

    def test_fee_params_surface_in_arrays(self):
        graph = ChannelGraph()
        graph.add_channel("a", "b", 1.0, 1.0, fee_base=0.5, fee_rate=0.01)
        view = graph.view(directed=True)
        assert view.fee_base[0] == pytest.approx(0.5)
        assert view.fee_rate[0] == pytest.approx(0.01)

    def test_parallel_fee_policies_keep_one_real_policy(self):
        graph = ChannelGraph()
        graph.add_channel("a", "b", 1.0, 1.0, fee_base=1.0, fee_rate=0.0)
        graph.add_channel("a", "b", 1.0, 1.0, fee_base=0.0, fee_rate=2.0)
        view = graph.view(directed=True)
        # cheapest at unit amount wins, as a whole (base, rate) pair —
        # never a synthesized component-wise mix like (0, 0).
        assert (float(view.fee_base[0]), float(view.fee_rate[0])) == (1.0, 0.0)


class TestBetweennessParity:
    def test_uniform_weights(self):
        for graph in random_graphs():
            view = graph.view(directed=True)
            legacy = pair_weighted_betweenness(legacy_digraph(graph))
            fast = pair_weighted_betweenness(view)
            for node in legacy.node:
                assert fast.node[node] == pytest.approx(
                    legacy.node[node], abs=TOL
                )
            for edge in set(legacy.edge) | set(fast.edge):
                assert fast.edge.get(edge, 0.0) == pytest.approx(
                    legacy.edge.get(edge, 0.0), abs=TOL
                )

    def test_zipf_weights(self):
        for graph in random_graphs()[:4]:
            distribution = ModifiedZipf(graph, s=1.0)

            def weight(s, r):
                return distribution.probability(s, r)

            legacy = pair_weighted_betweenness(legacy_digraph(graph), weight)
            fast = pair_weighted_betweenness(graph.view(directed=True), weight)
            for node in legacy.node:
                assert fast.node[node] == pytest.approx(
                    legacy.node[node], abs=TOL
                )
            for edge in set(legacy.edge) | set(fast.edge):
                assert fast.edge.get(edge, 0.0) == pytest.approx(
                    legacy.edge.get(edge, 0.0), abs=TOL
                )

    def test_restricted_sources(self):
        graph = barabasi_albert_snapshot(30, seed=5)
        sources = list(graph.nodes)[:7]
        legacy = pair_weighted_betweenness(
            legacy_digraph(graph), sources=sources
        )
        fast = pair_weighted_betweenness(
            graph.view(directed=True), sources=sources
        )
        for node in legacy.node:
            assert fast.node[node] == pytest.approx(legacy.node[node], abs=TOL)

    def test_reduced_subgraph_betweenness(self):
        graph = barabasi_albert_snapshot(30, seed=11)
        amount = 2.0
        legacy = pair_weighted_betweenness(legacy_digraph(graph, amount))
        fast = pair_weighted_betweenness(
            graph.view(directed=True, reduced=amount)
        )
        for node in legacy.node:
            assert fast.node[node] == pytest.approx(legacy.node[node], abs=TOL)

    def test_arrays_form(self):
        graph = barabasi_albert_snapshot(20, seed=2)
        view = graph.view(directed=True)
        arrays = betweenness_arrays(view)
        result = arrays.to_result()
        assert arrays.node_values.shape == (view.num_nodes,)
        assert arrays.edge_values.shape == (view.num_entries,)
        assert result.node_value(view.nodes[0]) == pytest.approx(
            float(arrays.node_values[0]), abs=TOL
        )


class TestShortestPathCounts:
    def test_sigma_matches_legacy_bfs(self):
        for graph in random_graphs():
            view = graph.view(directed=True)
            digraph = legacy_digraph(graph)
            for source in list(view.nodes)[:5]:
                _, _, legacy_sigma, legacy_dist = _bfs_shortest_paths(
                    digraph, source
                )
                tree = bfs_shortest_path_tree(view, view.index_of(source))
                for i, node in enumerate(view.nodes):
                    if node in legacy_dist:
                        assert tree.dist[i] == legacy_dist[node]
                        assert tree.sigma[i] == pytest.approx(
                            legacy_sigma[node], abs=TOL
                        )
                    else:
                        assert tree.dist[i] == -1

    def test_hop_distances_match(self):
        graph = barabasi_albert_snapshot(35, seed=13)
        view = graph.view(directed=True)
        digraph = legacy_digraph(graph)
        for source in list(view.nodes)[:5]:
            legacy = single_source_hops(digraph, source)
            fast = single_source_hops(view, source)
            assert fast == legacy

    def test_blocked_nodes_excluded(self):
        graph = ChannelGraph.from_edges([("a", "b"), ("b", "c"), ("a", "c")])
        view = graph.view(directed=True)
        dist = bfs_distances(
            view, view.index_of("a"), blocked=[view.index_of("b")]
        )
        assert dist[view.index_of("b")] == -1
        assert dist[view.index_of("c")] == 1

    def test_shortest_path_indices_roundtrip(self):
        graph = barabasi_albert_snapshot(25, seed=4)
        view = graph.view(directed=True)
        digraph = legacy_digraph(graph)
        import networkx as nx

        for target in list(view.nodes)[1:6]:
            path = shortest_path_indices(
                view, view.index_of(view.nodes[0]), view.index_of(target)
            )
            expected = nx.shortest_path_length(
                digraph, view.nodes[0], target
            )
            assert path is not None
            assert len(path) - 1 == expected


class TestReducedParity:
    def test_membership_matches_legacy(self):
        for graph in random_graphs()[:4]:
            for amount in (0.5, 2.0, 8.0):
                view = reduced_view(graph, amount)
                digraph = legacy_digraph(graph, amount)
                rows = view.entry_rows()
                edges = {
                    (view.nodes[rows[k]], view.nodes[view.indices[k]])
                    for k in range(view.num_entries)
                }
                assert edges == set(digraph.edges)

    def test_feasible_pairs_matches_descendants(self):
        import networkx as nx

        graph = barabasi_albert_snapshot(25, seed=21)
        for amount in (1.0, 4.0):
            digraph = legacy_digraph(graph, amount)
            expected = sum(
                len(nx.descendants(digraph, s)) for s in digraph.nodes
            )
            assert feasible_pairs(graph, amount) == expected

    def test_infeasible_edges_sorted_and_complete(self):
        graph = barabasi_albert_snapshot(20, seed=6)
        amount = 3.0
        digraph = legacy_digraph(graph)
        expected = sorted(
            (
                (s, d, data["balance"])
                for s, d, data in digraph.edges(data=True)
                if data["balance"] < amount
            ),
            key=lambda t: (str(t[0]), str(t[1])),
        )
        got = infeasible_edges(graph, amount)
        assert [(s, d) for s, d, _ in got] == [(s, d) for s, d, _ in expected]
        for (_, _, b1), (_, _, b2) in zip(got, expected):
            assert b1 == pytest.approx(b2, abs=TOL)


class TestRoutingOnViews:
    def test_first_route_is_shortest_and_feasible(self):
        import networkx as nx

        graph = barabasi_albert_snapshot(30, seed=17, capacity_mu=3.0)
        router = Router(graph)
        digraph = legacy_digraph(graph, 1.0)
        nodes = list(graph.nodes)
        for sender, receiver in zip(nodes[:6], nodes[6:12]):
            try:
                expected = nx.shortest_path_length(digraph, sender, receiver)
            except nx.NetworkXNoPath:
                continue
            route = router.find_route(sender, receiver, 1.0)
            assert route.hops == expected
            for src, dst in zip(route.nodes, route.nodes[1:]):
                assert sum(
                    c.balance(src) for c in graph.channels_between(src, dst)
                ) >= 1.0

    def test_random_routes_are_shortest(self):
        import networkx as nx

        graph = barabasi_albert_snapshot(30, seed=19, capacity_mu=3.0)
        router = Router(graph, path_selection="random", seed=3)
        digraph = legacy_digraph(graph, 1.0)
        nodes = list(graph.nodes)
        sender, receiver = nodes[0], nodes[-1]
        expected = nx.shortest_path_length(digraph, sender, receiver)
        for _ in range(20):
            assert router.find_route(sender, receiver, 1.0).hops == expected

    def test_random_selection_covers_all_shortest_paths(self):
        # diamond: two equal shortest paths a->b->d / a->c->d
        graph = ChannelGraph.from_edges(
            [("a", "b"), ("b", "d"), ("a", "c"), ("c", "d")], balance=10.0
        )
        router = Router(graph, path_selection="random", seed=0)
        seen = set()
        for _ in range(60):
            seen.add(router.find_route("a", "d", 1.0).nodes)
        assert seen == {("a", "b", "d"), ("a", "c", "d")}

    def test_csr_branch_routes_large_path_graph(self):
        """>= SMALL_GRAPH_NODES nodes takes the vectorised CSR branch;
        the route must still run sender -> receiver."""
        from repro.network.views import SMALL_GRAPH_NODES

        n = SMALL_GRAPH_NODES + 10
        edges = [(f"v{i}", f"v{i+1}") for i in range(n - 1)]
        graph = ChannelGraph.from_edges(edges, balance=10.0)
        for selection in ("first", "random"):
            router = Router(graph, path_selection=selection, seed=1)
            route = router.find_route("v0", "v5", 1.0)
            assert route.nodes == tuple(f"v{i}" for i in range(6))
        outcome = Router(graph).execute("v0", "v5", 2.0)
        assert outcome.success
        first_hop = graph.channels_between("v0", "v1")[0]
        assert first_hop.balance("v0") == pytest.approx(8.0)
        assert first_hop.balance("v1") == pytest.approx(12.0)

    def test_csr_branch_matches_small_branch(self):
        """The two dispatch branches must agree on the same graph."""
        import networkx as nx
        from repro.network import views as views_module

        graph = barabasi_albert_snapshot(
            views_module.SMALL_GRAPH_NODES + 20, seed=29, capacity_mu=3.0
        )
        digraph = legacy_digraph(graph, 1.0)
        nodes = list(graph.nodes)
        csr_router = Router(graph)
        for sender, receiver in zip(nodes[:8], nodes[8:16]):
            try:
                expected = nx.shortest_path_length(digraph, sender, receiver)
            except nx.NetworkXNoPath:
                continue
            route = csr_router.find_route(sender, receiver, 1.0)
            assert route.nodes[0] == sender
            assert route.nodes[-1] == receiver
            assert route.hops == expected


class TestViewCaching:
    def test_view_reused_between_reads(self):
        graph = barabasi_albert_snapshot(10, seed=1)
        assert graph.view(directed=True) is graph.view(directed=True)
        assert graph.view(directed=False) is graph.view(directed=False)
        assert graph.view(directed=True, reduced=2.0) is graph.view(
            directed=True, reduced=2.0
        )

    def test_structural_mutation_invalidates(self):
        graph = barabasi_albert_snapshot(10, seed=1)
        before = graph.view(directed=True)
        graph.add_channel("n0", "n5", 1.0, 1.0)
        assert graph.view(directed=True) is not before

    def test_balance_mutation_invalidates(self):
        """Regression: balance updates during simulation must not serve
        stale capacity arrays to the router."""
        graph = ChannelGraph()
        channel = graph.add_channel("a", "b", 5.0, 0.0)
        before = graph.view(directed=True, reduced=4.0)
        assert before.num_entries == 1
        channel.send("a", 3.0)  # a-side drops to 2 < 4
        after = graph.view(directed=True, reduced=4.0)
        assert after is not before
        assert after.num_entries == 0

    def test_balance_mutation_refreshes_router(self):
        graph = ChannelGraph()
        graph.add_channel("a", "b", 5.0, 0.0)
        router = Router(graph)
        assert router.find_route("a", "b", 4.0).nodes == ("a", "b")
        router.execute("a", "b", 3.0)
        from repro.errors import RoutingError

        with pytest.raises(RoutingError):
            router.find_route("a", "b", 4.0)

    def test_removed_channel_stops_invalidation(self):
        graph = ChannelGraph()
        channel = graph.add_channel("a", "b", 5.0, 5.0)
        graph.remove_channel(channel.channel_id)
        version = graph.version
        channel.send("a", 1.0)  # detached channel: no bump
        assert graph.version == version


class TestDeprecatedWrappersRemoved:
    def test_networkx_materialisation_is_view_only(self):
        """The to_undirected/to_directed deprecation cycle completed."""
        graph = barabasi_albert_snapshot(10, seed=2)
        assert not hasattr(graph, "to_directed")
        assert not hasattr(graph, "to_undirected")
        digraph = graph.view(directed=True).to_networkx()
        assert digraph.number_of_nodes() == len(graph)
        undirected = graph.view(directed=False).to_networkx()
        assert undirected.number_of_nodes() == len(graph)


class TestScenarioResultView:
    def test_result_exposes_view(self):
        from repro import Scenario, ScenarioRunner, TopologySpec

        result = ScenarioRunner().run(
            Scenario(topology=TopologySpec("ba", {"n": 12}), seed=3)
        )
        view = result.view()
        assert isinstance(view, GraphView)
        assert view.num_nodes == 12
        assert result.view(reduced=1.0).num_entries <= view.num_entries

    def test_no_graph_raises(self):
        from repro.scenarios.runner import ScenarioResult
        from repro import Scenario, TopologySpec

        result = ScenarioResult(
            scenario=Scenario(topology=TopologySpec("ba", {"n": 5}))
        )
        with pytest.raises(ScenarioError):
            result.view()


class TestModelBackendParity:
    def test_greedy_identical_across_backends(self):
        from repro.core.utility import JoiningUserModel
        from repro.core.algorithms.greedy import greedy_fixed_funds
        from repro.params import ModelParameters

        graph = barabasi_albert_snapshot(20, seed=23)
        params = ModelParameters(total_tx_rate=50.0, user_tx_rate=2.0)
        results = {}
        for backend in ("views", "networkx"):
            model = JoiningUserModel(graph, "joiner", params, backend=backend)
            results[backend] = greedy_fixed_funds(model, budget=4.0, lock=1.0)
        assert results["views"].objective_value == pytest.approx(
            results["networkx"].objective_value, abs=TOL
        )
        assert (
            results["views"].strategy.actions
            == results["networkx"].strategy.actions
        )

    def test_invalid_backend_rejected(self):
        from repro.core.utility import JoiningUserModel
        from repro.params import ModelParameters

        graph = barabasi_albert_snapshot(5, seed=0)
        with pytest.raises(InvalidParameter):
            JoiningUserModel(
                graph, "u", ModelParameters(), backend="pandas"
            )
