"""Unit tests for the HTLC layer (atomic multi-hop payments)."""

import pytest

from repro.errors import RoutingError
from repro.network.channel import Channel
from repro.network.fees import ConstantFee, LinearFee
from repro.network.graph import ChannelGraph
from repro.network.htlc import HtlcError, HtlcRouter, HtlcState


@pytest.fixture
def line4() -> ChannelGraph:
    graph = ChannelGraph()
    graph.add_channel("a", "b", 10.0, 10.0)
    graph.add_channel("b", "c", 10.0, 10.0)
    graph.add_channel("c", "d", 10.0, 10.0)
    return graph


def total_coins(graph: ChannelGraph) -> float:
    return graph.total_capacity()


class TestChannelWithdraw:
    def test_withdraw_reduces_balance(self):
        channel = Channel("u", "v", 5.0, 5.0)
        channel.withdraw("u", 3.0)
        assert channel.balance("u") == 2.0
        assert channel.capacity == 7.0

    def test_withdraw_insufficient(self):
        from repro.errors import InsufficientBalance

        channel = Channel("u", "v", 1.0, 5.0)
        with pytest.raises(InsufficientBalance):
            channel.withdraw("u", 2.0)

    def test_withdraw_negative(self):
        from repro.errors import InvalidParameter

        channel = Channel("u", "v", 1.0, 5.0)
        with pytest.raises(InvalidParameter):
            channel.withdraw("u", -1.0)


class TestLockSettle:
    def test_happy_path_settles(self, line4):
        router = HtlcRouter(line4)
        payment = router.pay(["a", "b", "c", "d"], 4.0)
        assert payment.state is HtlcState.SETTLED
        assert line4.channels_between("a", "b")[0].balance("a") == 6.0
        assert line4.channels_between("c", "d")[0].balance("d") == 14.0

    def test_coins_conserved_after_settle(self, line4):
        before = total_coins(line4)
        HtlcRouter(line4).pay(["a", "b", "c", "d"], 3.0)
        assert total_coins(line4) == pytest.approx(before)

    def test_lock_reserves_funds(self, line4):
        router = HtlcRouter(line4)
        payment = router.lock(["a", "b", "c"], 8.0)
        assert payment.state is HtlcState.PENDING
        # a's side of (a,b) is down by 8; b cannot re-spend it yet
        assert line4.channels_between("a", "b")[0].balance("a") == 2.0
        assert line4.channels_between("a", "b")[0].balance("b") == 10.0
        assert router.locked_capital() == pytest.approx(16.0)

    def test_concurrent_payments_contend(self, line4):
        router = HtlcRouter(line4)
        first = router.lock(["a", "b"], 7.0)
        second = router.lock(["a", "b"], 7.0)  # only 3 left
        assert first.state is HtlcState.PENDING
        assert second.state is HtlcState.FAILED
        router.settle(first)
        assert line4.channels_between("a", "b")[0].balance("b") == 17.0

    def test_fees_accrue_to_intermediaries(self, line4):
        router = HtlcRouter(line4, fee=ConstantFee(0.5))
        payment = router.pay(["a", "b", "c", "d"], 2.0)
        assert payment.fees_per_node == pytest.approx({"b": 0.5, "c": 0.5})
        # b's total coins rose by its fee
        assert line4.balance_of("b") == pytest.approx(20.5)

    def test_linear_fee_compounds(self, line4):
        router = HtlcRouter(line4, fee=LinearFee(0.0, 0.1))
        payment = router.pay(["a", "b", "c", "d"], 1.0)
        assert payment.fees_per_node["c"] == pytest.approx(0.1)
        assert payment.fees_per_node["b"] == pytest.approx(0.11)


class TestFailureAtomicity:
    def test_mid_path_failure_unwinds_everything(self):
        graph = ChannelGraph()
        graph.add_channel("a", "b", 10.0, 0.0)
        graph.add_channel("b", "c", 1.0, 0.0)  # too thin
        router = HtlcRouter(graph)
        before = {
            c.channel_id: (c.balance(c.u), c.balance(c.v))
            for c in graph.channels
        }
        payment = router.lock(["a", "b", "c"], 5.0)
        assert payment.state is HtlcState.FAILED
        after = {
            c.channel_id: (c.balance(c.u), c.balance(c.v))
            for c in graph.channels
        }
        assert before == after

    def test_explicit_fail_restores(self, line4):
        router = HtlcRouter(line4)
        before = total_coins(line4)
        payment = router.lock(["a", "b", "c"], 5.0)
        router.fail(payment)
        assert payment.state is HtlcState.FAILED
        assert total_coins(line4) == pytest.approx(before)
        assert line4.channels_between("a", "b")[0].balance("a") == 10.0

    def test_double_settle_rejected(self, line4):
        router = HtlcRouter(line4)
        payment = router.pay(["a", "b"], 1.0)
        with pytest.raises(HtlcError):
            router.settle(payment)

    def test_fail_after_settle_rejected(self, line4):
        router = HtlcRouter(line4)
        payment = router.pay(["a", "b"], 1.0)
        with pytest.raises(HtlcError):
            router.fail(payment)


class TestExpiry:
    def test_expiry_decrements_per_hop(self, line4):
        router = HtlcRouter(line4, base_expiry=10, expiry_delta=40)
        payment = router.lock(["a", "b", "c", "d"], 1.0)
        expiries = [h.expiry for h in payment.hops]
        assert expiries == [90, 50, 10]

    def test_expire_before_timeout_is_noop(self, line4):
        router = HtlcRouter(line4)
        payment = router.lock(["a", "b", "c"], 1.0)
        assert not router.expire(payment, height=0)
        assert payment.state is HtlcState.PENDING

    def test_expire_after_timeout_unwinds(self, line4):
        router = HtlcRouter(line4, base_expiry=10, expiry_delta=40)
        payment = router.lock(["a", "b", "c"], 1.0)
        assert router.expire(payment, height=100)
        assert payment.state is HtlcState.FAILED
        assert line4.channels_between("a", "b")[0].balance("a") == 10.0


class TestValidation:
    def test_short_path_rejected(self, line4):
        with pytest.raises(RoutingError):
            HtlcRouter(line4).lock(["a"], 1.0)

    def test_nonpositive_amount_rejected(self, line4):
        with pytest.raises(HtlcError):
            HtlcRouter(line4).lock(["a", "b"], 0.0)

    def test_bad_expiry_params(self, line4):
        with pytest.raises(HtlcError):
            HtlcRouter(line4, base_expiry=0)

    def test_in_flight_listing(self, line4):
        router = HtlcRouter(line4)
        p1 = router.lock(["a", "b"], 1.0)
        p2 = router.lock(["c", "d"], 1.0)
        assert len(router.in_flight) == 2
        router.settle(p1)
        router.fail(p2)
        assert router.in_flight == ()

    def test_circular_self_payment_supported(self, line4):
        """A circular payment (rebalancing primitive) settles cleanly."""
        graph = ChannelGraph()
        graph.add_channel("a", "b", 10.0, 0.0)
        graph.add_channel("b", "c", 10.0, 0.0)
        graph.add_channel("c", "a", 10.0, 0.0)
        router = HtlcRouter(graph)
        payment = router.pay(["a", "b", "c", "a"], 4.0)
        assert payment.state is HtlcState.SETTLED
        assert graph.channels_between("c", "a")[0].balance("a") == 4.0
