"""Unit tests for the reduced subgraph ``G'`` (Section II-B)."""

import pytest

from repro.network.graph import ChannelGraph
from repro.network.reduced import (
    feasible_pairs,
    infeasible_edges,
    reduced_digraph,
)


@pytest.fixture
def skewed() -> ChannelGraph:
    graph = ChannelGraph()
    graph.add_channel("a", "b", 10.0, 1.0)
    graph.add_channel("b", "c", 4.0, 6.0)
    return graph


class TestReducedDigraph:
    def test_amount_zero_keeps_everything(self, skewed):
        reduced = reduced_digraph(skewed, 0.0)
        assert reduced.number_of_edges() == 4

    def test_moderate_amount_drops_thin_directions(self, skewed):
        reduced = reduced_digraph(skewed, 5.0)
        assert reduced.has_edge("a", "b")
        assert not reduced.has_edge("b", "a")  # 1 < 5
        assert not reduced.has_edge("b", "c")  # 4 < 5
        assert reduced.has_edge("c", "b")

    def test_huge_amount_drops_all(self, skewed):
        reduced = reduced_digraph(skewed, 100.0)
        assert reduced.number_of_edges() == 0
        assert reduced.number_of_nodes() == 3  # nodes kept


class TestInfeasibleEdges:
    def test_lists_dropped_directions(self, skewed):
        dropped = infeasible_edges(skewed, 5.0)
        pairs = {(s, d) for s, d, _ in dropped}
        assert pairs == {("b", "a"), ("b", "c")}

    def test_empty_when_amount_zero(self, skewed):
        assert infeasible_edges(skewed, 0.0) == []


class TestFeasiblePairs:
    def test_full_connectivity_small_amount(self, skewed):
        # all 6 ordered pairs feasible at amount 1 except none
        assert feasible_pairs(skewed, 1.0) == 6

    def test_partial_connectivity(self, skewed):
        # at 5.0 edges a->b and c->b survive: pairs (a,b), (c,b) only
        assert feasible_pairs(skewed, 5.0) == 2

    def test_no_connectivity(self, skewed):
        assert feasible_pairs(skewed, 1000.0) == 0
