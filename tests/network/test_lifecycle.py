"""Unit tests for channel lifecycle cost realisation (Section II-C)."""

import numpy as np
import pytest

from repro.errors import InvalidParameter
from repro.network.lifecycle import (
    ChannelLifecycle,
    CloseMode,
    sample_close_mode,
)


class TestRealise:
    def test_opening_always_split(self):
        lifecycle = ChannelLifecycle(onchain_fee=2.0, seed=0)
        costs = lifecycle.realise(CloseMode.COOPERATIVE)
        assert costs.open_cost_u == costs.open_cost_v == 1.0

    def test_unilateral_u_pays_full_close(self):
        lifecycle = ChannelLifecycle(onchain_fee=2.0, seed=0)
        costs = lifecycle.realise(CloseMode.UNILATERAL_U)
        assert costs.close_cost_u == 2.0
        assert costs.close_cost_v == 0.0
        assert costs.total("u") == 3.0
        assert costs.total("v") == 1.0

    def test_cooperative_splits_close(self):
        lifecycle = ChannelLifecycle(onchain_fee=2.0, seed=0)
        costs = lifecycle.realise(CloseMode.COOPERATIVE)
        assert costs.close_cost_u == costs.close_cost_v == 1.0

    def test_total_rejects_unknown_party(self):
        lifecycle = ChannelLifecycle(onchain_fee=2.0, seed=0)
        with pytest.raises(InvalidParameter):
            lifecycle.realise(CloseMode.COOPERATIVE).total("w")

    def test_negative_fee_rejected(self):
        with pytest.raises(InvalidParameter):
            ChannelLifecycle(onchain_fee=-1.0)


class TestExpectation:
    """The Section II-C claim: expected lifecycle cost is C per party."""

    def test_closed_form(self):
        lifecycle = ChannelLifecycle(onchain_fee=3.0, seed=0)
        assert lifecycle.expected_cost_per_party() == 3.0

    def test_monte_carlo_converges_to_c(self):
        fee = 2.0
        lifecycle = ChannelLifecycle(onchain_fee=fee, seed=42)
        mean_u, mean_v = lifecycle.empirical_mean_cost(samples=6000)
        assert mean_u == pytest.approx(fee, rel=0.05)
        assert mean_v == pytest.approx(fee, rel=0.05)

    def test_modes_uniform(self):
        rng = np.random.default_rng(7)
        counts = {mode: 0 for mode in CloseMode}
        n = 3000
        for _ in range(n):
            counts[sample_close_mode(rng)] += 1
        for mode in CloseMode:
            assert counts[mode] / n == pytest.approx(1 / 3, abs=0.05)

    def test_bad_sample_count(self):
        with pytest.raises(InvalidParameter):
            ChannelLifecycle(1.0, seed=0).empirical_mean_cost(samples=0)
