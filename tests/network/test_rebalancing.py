"""Unit tests for off-chain rebalancing cycles."""

import pytest

from repro.errors import RoutingError
from repro.network.graph import ChannelGraph
from repro.network.rebalancing import (
    auto_rebalance,
    channel_imbalances,
    execute_rebalance,
    find_rebalancing_cycle,
)


@pytest.fixture
def triangle() -> ChannelGraph:
    """a-b depleted on a's side; a-c and c-b healthy."""
    graph = ChannelGraph()
    graph.add_channel("a", "b", 1.0, 9.0)
    graph.add_channel("a", "c", 8.0, 2.0)
    graph.add_channel("c", "b", 6.0, 4.0)
    return graph


class TestImbalances:
    def test_sorted_most_depleted_first(self, triangle):
        imbalances = channel_imbalances(triangle, "a")
        assert imbalances[0].counterparty == "b"
        assert imbalances[0].local_ratio == pytest.approx(0.1)
        assert imbalances[-1].counterparty == "c"

    def test_skew_sign(self, triangle):
        imbalances = {i.counterparty: i for i in channel_imbalances(triangle, "a")}
        assert imbalances["b"].skew < 0
        assert imbalances["c"].skew > 0

    def test_unknown_node(self, triangle):
        from repro.errors import NodeNotFound

        with pytest.raises(NodeNotFound):
            channel_imbalances(triangle, "ghost")


class TestFindCycle:
    def test_finds_triangle_cycle(self, triangle):
        cycle = find_rebalancing_cycle(triangle, "a", amount=2.0)
        assert cycle[0] == cycle[-1] == "a"
        assert cycle == ["a", "c", "b", "a"]

    def test_respects_capacity(self, triangle):
        # amount 7 exceeds c->b balance of 6
        with pytest.raises(RoutingError):
            find_rebalancing_cycle(triangle, "a", amount=7.0)

    def test_explicit_neighbors(self, triangle):
        cycle = find_rebalancing_cycle(
            triangle, "a", 1.0, in_neighbor="b", out_neighbor="c"
        )
        assert cycle == ["a", "c", "b", "a"]

    def test_same_in_out_rejected(self, triangle):
        with pytest.raises(RoutingError):
            find_rebalancing_cycle(
                triangle, "a", 1.0, in_neighbor="b", out_neighbor="b"
            )

    def test_needs_two_channels(self):
        graph = ChannelGraph()
        graph.add_channel("a", "b", 1.0, 9.0)
        with pytest.raises(RoutingError):
            find_rebalancing_cycle(graph, "a", 1.0)

    def test_nonpositive_amount(self, triangle):
        with pytest.raises(RoutingError):
            find_rebalancing_cycle(triangle, "a", 0.0)

    def test_longer_cycle_through_intermediaries(self):
        graph = ChannelGraph()
        graph.add_channel("a", "b", 0.0, 10.0)   # fully depleted toward b
        graph.add_channel("a", "c", 10.0, 0.0)
        graph.add_channel("c", "d", 10.0, 0.0)
        graph.add_channel("d", "b", 10.0, 0.0)
        cycle = find_rebalancing_cycle(
            graph, "a", 3.0, in_neighbor="b", out_neighbor="c"
        )
        assert cycle == ["a", "c", "d", "b", "a"]


class TestExecute:
    def test_rebalance_moves_liquidity(self, triangle):
        cycle = find_rebalancing_cycle(triangle, "a", 2.0)
        assert execute_rebalance(triangle, cycle, 2.0)
        ab = triangle.channels_between("a", "b")[0]
        ac = triangle.channels_between("a", "c")[0]
        assert ab.balance("a") == pytest.approx(3.0)   # replenished
        assert ac.balance("a") == pytest.approx(6.0)   # paid from surplus

    def test_net_worth_preserved_without_fees(self, triangle):
        before = triangle.balance_of("a")
        cycle = find_rebalancing_cycle(triangle, "a", 2.0)
        execute_rebalance(triangle, cycle, 2.0)
        assert triangle.balance_of("a") == pytest.approx(before)

    def test_bad_cycle_shape_rejected(self, triangle):
        with pytest.raises(RoutingError):
            execute_rebalance(triangle, ["a", "b"], 1.0)
        with pytest.raises(RoutingError):
            execute_rebalance(triangle, ["a", "b", "c"], 1.0)

    def test_failed_cycle_leaves_balances(self, triangle):
        snapshot = {
            c.channel_id: (c.balance(c.u), c.balance(c.v))
            for c in triangle.channels
        }
        ok = execute_rebalance(triangle, ["a", "c", "b", "a"], 50.0)
        assert not ok
        after = {
            c.channel_id: (c.balance(c.u), c.balance(c.v))
            for c in triangle.channels
        }
        assert snapshot == after


class TestAutoRebalance:
    def test_reaches_target_ratio(self, triangle):
        cycles = auto_rebalance(triangle, "a", target_ratio=0.3, max_cycles=10)
        assert cycles >= 1
        worst = channel_imbalances(triangle, "a")[0]
        assert worst.local_ratio >= 0.3 - 1e-9

    def test_noop_when_already_balanced(self):
        graph = ChannelGraph()
        graph.add_channel("a", "b", 5.0, 5.0)
        graph.add_channel("a", "c", 5.0, 5.0)
        graph.add_channel("b", "c", 5.0, 5.0)
        assert auto_rebalance(graph, "a", target_ratio=0.4) == 0

    def test_invalid_target(self, triangle):
        with pytest.raises(RoutingError):
            auto_rebalance(triangle, "a", target_ratio=0.9)
