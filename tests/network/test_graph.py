"""Unit tests for :mod:`repro.network.graph`."""

import pytest

from repro.errors import ChannelNotFound, DuplicateChannel, NodeNotFound
from repro.network.graph import ChannelGraph


class TestConstruction:
    def test_empty(self):
        graph = ChannelGraph()
        assert len(graph) == 0
        assert graph.num_channels() == 0

    def test_add_node_idempotent(self):
        graph = ChannelGraph()
        graph.add_node("a")
        graph.add_node("a")
        assert len(graph) == 1

    def test_add_channel_creates_endpoints(self):
        graph = ChannelGraph()
        graph.add_channel("a", "b", 1.0, 2.0)
        assert "a" in graph and "b" in graph

    def test_duplicate_channel_id_rejected(self):
        graph = ChannelGraph()
        graph.add_channel("a", "b", 1.0, channel_id="x")
        with pytest.raises(DuplicateChannel):
            graph.add_channel("a", "c", 1.0, channel_id="x")

    def test_auto_ids_skip_past_explicit_ids(self):
        # A snapshot written by another process carries explicit chan-N ids
        # that a fresh process's auto-id counter would mint again; auto
        # generation must skip over them instead of raising.
        probe = ChannelGraph().add_channel("x", "y", 1.0)
        next_auto = int(probe.channel_id.split("-")[1]) + 1
        graph = ChannelGraph()
        taken = {f"chan-{i}" for i in range(next_auto, next_auto + 3)}
        for i, channel_id in enumerate(sorted(taken)):
            graph.add_channel("a", f"b{i}", 1.0, channel_id=channel_id)
        fresh = graph.add_channel("a", "c", 1.0)
        assert fresh.channel_id not in taken
        assert graph.num_channels() == 4

    def test_parallel_channels_allowed(self):
        graph = ChannelGraph()
        graph.add_channel("a", "b", 1.0)
        graph.add_channel("a", "b", 2.0)
        assert len(graph.channels_between("a", "b")) == 2
        assert graph.degree("a") == 2

    def test_from_edges(self, diamond):
        assert len(diamond) == 4
        assert diamond.num_channels() == 4
        for channel in diamond.channels:
            assert channel.capacity == 10.0


class TestRemoval:
    def test_remove_channel(self):
        graph = ChannelGraph()
        channel = graph.add_channel("a", "b", 1.0)
        graph.remove_channel(channel.channel_id)
        assert graph.num_channels() == 0
        assert graph.degree("a") == 0

    def test_remove_missing_channel(self):
        with pytest.raises(ChannelNotFound):
            ChannelGraph().remove_channel("nope")

    def test_remove_node_drops_incident_channels(self, diamond):
        diamond.remove_node("b")
        assert "b" not in diamond
        assert diamond.num_channels() == 1  # only c-d remains

    def test_remove_missing_node(self):
        with pytest.raises(NodeNotFound):
            ChannelGraph().remove_node("ghost")


class TestQueries:
    def test_neighbors_unique(self):
        graph = ChannelGraph()
        graph.add_channel("a", "b", 1.0)
        graph.add_channel("a", "b", 2.0)
        graph.add_channel("a", "c", 1.0)
        assert sorted(graph.neighbors("a")) == ["b", "c"]

    def test_degree_counts_parallel(self):
        graph = ChannelGraph()
        graph.add_channel("a", "b", 1.0)
        graph.add_channel("a", "b", 2.0)
        assert graph.degree("a") == 2
        assert graph.in_degree("a") == 2

    def test_degree_missing_node(self, diamond):
        with pytest.raises(NodeNotFound):
            diamond.degree("ghost")

    def test_has_channel(self, diamond):
        assert diamond.has_channel("a", "b")
        assert not diamond.has_channel("a", "d")
        assert not diamond.has_channel("a", "ghost")

    def test_total_capacity(self, diamond):
        assert diamond.total_capacity() == pytest.approx(40.0)

    def test_balance_of(self, line3):
        assert line3.balance_of("b") == pytest.approx(2.0 + 8.0)

    def test_directed_edges_cover_both_directions(self, line3):
        edges = set(line3.directed_edges())
        assert ("a", "b", 10.0) in edges
        assert ("b", "a", 2.0) in edges
        assert len(edges) == 4

    def test_channels_between_missing_node(self, diamond):
        with pytest.raises(NodeNotFound):
            diamond.channels_between("a", "ghost")


class TestViews:
    def test_undirected_view_structure(self, diamond):
        undirected = diamond.view(directed=False).to_networkx()
        assert undirected.number_of_nodes() == 4
        assert undirected.number_of_edges() == 4

    def test_undirected_view_cached(self, diamond):
        first = diamond.view(directed=False).to_networkx()
        assert first is diamond.view(directed=False).to_networkx()

    def test_undirected_cache_invalidated_on_mutation(self, diamond):
        view1 = diamond.view(directed=False).to_networkx()
        diamond.add_channel("d", "e", 1.0)
        view2 = diamond.view(directed=False).to_networkx()
        assert view1 is not view2
        assert view2.has_edge("d", "e")

    def test_undirected_merges_parallel_capacity(self):
        graph = ChannelGraph()
        graph.add_channel("a", "b", 1.0, 1.0)
        graph.add_channel("a", "b", 2.0, 2.0)
        view = graph.view(directed=False).to_networkx()
        assert view["a"]["b"]["capacity"] == pytest.approx(6.0)

    def test_directed_view_balances(self, line3):
        directed = line3.view(directed=True).to_networkx()
        assert directed["a"]["b"]["balance"] == pytest.approx(10.0)
        assert directed["b"]["a"]["balance"] == pytest.approx(2.0)

    def test_directed_reduced_drops_low_balance(self, line3):
        reduced = line3.view(directed=True, reduced=5.0).to_networkx()
        assert reduced.has_edge("a", "b")
        assert not reduced.has_edge("b", "a")  # balance 2 < 5
        assert reduced.has_edge("b", "c")
        assert not reduced.has_edge("c", "b")

    def test_directed_view_aggregates_parallel(self):
        graph = ChannelGraph()
        graph.add_channel("a", "b", 1.0, 0.0)
        graph.add_channel("a", "b", 2.0, 0.0)
        directed = graph.view(directed=True).to_networkx()
        assert directed["a"]["b"]["balance"] == pytest.approx(3.0)


class TestCopy:
    def test_copy_independent(self, diamond):
        clone = diamond.copy()
        clone.add_channel("a", "d", 1.0)
        assert not diamond.has_channel("a", "d")

    def test_copy_preserves_balances(self, line3):
        clone = line3.copy()
        channel = clone.channels_between("a", "b")[0]
        assert channel.balance("a") == 10.0
        assert channel.balance("b") == 2.0

    def test_copy_preserves_isolated_nodes(self):
        graph = ChannelGraph()
        graph.add_node("lonely")
        assert "lonely" in graph.copy()
