"""Unit tests for pair-weighted betweenness (the Eq. 2 engine)."""

import networkx as nx
import pytest

from repro.network.betweenness import (
    pair_weighted_betweenness,
    pair_weighted_betweenness_exact,
    uniform_pair_weight,
)


def _line_digraph(n: int) -> nx.DiGraph:
    graph = nx.DiGraph()
    for i in range(n - 1):
        graph.add_edge(i, i + 1)
        graph.add_edge(i + 1, i)
    return graph


class TestAgainstNetworkx:
    """With uniform weights our Brandes must equal classic betweenness."""

    @pytest.mark.parametrize(
        "maker",
        [
            lambda: _line_digraph(5),
            lambda: nx.complete_graph(5, create_using=nx.DiGraph),
            lambda: nx.cycle_graph(7, create_using=nx.DiGraph).to_directed(),
            lambda: nx.star_graph(6).to_directed(),
        ],
    )
    def test_node_betweenness_matches(self, maker):
        graph = maker()
        ours = pair_weighted_betweenness(graph, uniform_pair_weight)
        reference = nx.betweenness_centrality(graph, normalized=False)
        for node in graph.nodes:
            assert ours.node_value(node) == pytest.approx(
                reference[node], abs=1e-9
            )

    @pytest.mark.parametrize(
        "maker",
        [
            lambda: _line_digraph(5),
            lambda: nx.cycle_graph(6, create_using=nx.DiGraph).to_directed(),
        ],
    )
    def test_edge_betweenness_matches(self, maker):
        graph = maker()
        ours = pair_weighted_betweenness(graph, uniform_pair_weight)
        reference = nx.edge_betweenness_centrality(graph, normalized=False)
        for edge, value in reference.items():
            assert ours.edge_value(*edge) == pytest.approx(value, abs=1e-9)


class TestExactCrossCheck:
    def test_brandes_equals_enumeration_weighted(self):
        graph = nx.star_graph(5).to_directed()
        weights = {
            (s, r): 0.1 * (s + 1) + 0.01 * (r + 1)
            for s in graph.nodes
            for r in graph.nodes
            if s != r
        }
        weight_fn = lambda s, r: weights[(s, r)]
        fast = pair_weighted_betweenness(graph, weight_fn)
        slow = pair_weighted_betweenness_exact(graph, weight_fn)
        for node in graph.nodes:
            assert fast.node_value(node) == pytest.approx(
                slow.node_value(node), abs=1e-9
            )
        for edge, value in slow.edge.items():
            assert fast.edge_value(*edge) == pytest.approx(value, abs=1e-9)

    def test_multiple_shortest_paths_split_traffic(self):
        # diamond: 0-1-3 and 0-2-3 are both shortest 0->3 paths
        graph = nx.DiGraph()
        for u, v in [(0, 1), (0, 2), (1, 3), (2, 3)]:
            graph.add_edge(u, v)
            graph.add_edge(v, u)
        result = pair_weighted_betweenness(graph, uniform_pair_weight)
        # each middle node carries half of 0->3 and half of 3->0
        assert result.node_value(1) == pytest.approx(1.0)
        assert result.node_value(2) == pytest.approx(1.0)


class TestStructure:
    def test_endpoints_not_counted_as_intermediaries(self):
        graph = _line_digraph(3)  # 0-1-2
        result = pair_weighted_betweenness(graph, uniform_pair_weight)
        assert result.node_value(0) == 0.0
        assert result.node_value(2) == 0.0
        assert result.node_value(1) == pytest.approx(2.0)  # 0->2 and 2->0

    def test_edge_values_include_endpoint_hops(self):
        graph = _line_digraph(2)  # single edge both ways
        result = pair_weighted_betweenness(graph, uniform_pair_weight)
        assert result.edge_value(0, 1) == pytest.approx(1.0)
        assert result.edge_value(1, 0) == pytest.approx(1.0)

    def test_sources_restriction(self):
        graph = _line_digraph(4)
        only_zero = pair_weighted_betweenness(
            graph, uniform_pair_weight, sources=[0]
        )
        # only paths from 0: 0->2 passes 1; 0->3 passes 1,2
        assert only_zero.node_value(1) == pytest.approx(2.0)
        assert only_zero.node_value(2) == pytest.approx(1.0)

    def test_zero_weight_pairs_contribute_nothing(self):
        graph = _line_digraph(4)
        result = pair_weighted_betweenness(graph, lambda s, r: 0.0)
        assert all(v == 0.0 for v in result.node.values())
        assert all(v == 0.0 for v in result.edge.values())

    def test_disconnected_pairs_skipped(self):
        graph = nx.DiGraph()
        graph.add_edge(0, 1)
        graph.add_edge(1, 0)
        graph.add_node(2)
        result = pair_weighted_betweenness(graph, uniform_pair_weight)
        assert result.node_value(2) == 0.0

    def test_unknown_source_ignored(self):
        graph = _line_digraph(3)
        result = pair_weighted_betweenness(
            graph, uniform_pair_weight, sources=["ghost", 0]
        )
        assert result.node_value(1) == pytest.approx(1.0)
