"""Unit tests for atomic multi-part payments."""

import pytest

from repro.errors import InvalidParameter, RoutingError
from repro.network.fees import ConstantFee
from repro.network.graph import ChannelGraph
from repro.network.mpp import MppRouter
from repro.network.routing import Router


@pytest.fixture
def two_lanes() -> ChannelGraph:
    """Two disjoint 2-hop routes a->d, each with capacity 5 per direction."""
    graph = ChannelGraph()
    graph.add_channel("a", "b", 5.0, 5.0)
    graph.add_channel("b", "d", 5.0, 5.0)
    graph.add_channel("a", "c", 5.0, 5.0)
    graph.add_channel("c", "d", 5.0, 5.0)
    return graph


class TestSplitting:
    def test_single_path_sufficient_uses_one_part(self, two_lanes):
        result = MppRouter(two_lanes).pay("a", "d", 4.0)
        assert result.success
        assert result.num_parts == 1

    def test_splits_when_single_path_insufficient(self, two_lanes):
        # 8 > any single lane's 5, but both lanes together carry it
        assert not Router(two_lanes).execute("a", "d", 8.0).success
        result = MppRouter(two_lanes).pay("a", "d", 8.0)
        assert result.success
        assert result.num_parts == 2

    def test_balances_reflect_split(self, two_lanes):
        MppRouter(two_lanes).pay("a", "d", 8.0)
        received = sum(
            c.balance("d") for c in two_lanes.channels_of("d")
        )
        assert received == pytest.approx(10.0 + 8.0)

    def test_impossible_amount_fails_atomically(self, two_lanes):
        snapshot = {
            c.channel_id: (c.balance(c.u), c.balance(c.v))
            for c in two_lanes.channels
        }
        result = MppRouter(two_lanes).pay("a", "d", 11.0)  # > 10 max flow
        assert not result.success
        assert result.parts == []
        after = {
            c.channel_id: (c.balance(c.u), c.balance(c.v))
            for c in two_lanes.channels
        }
        assert snapshot == after

    def test_max_parts_respected(self, two_lanes):
        router = MppRouter(two_lanes, max_parts=1)
        result = router.pay("a", "d", 8.0)
        assert not result.success
        assert "part budget" in result.failure_reason or result.failure_reason

    def test_coins_conserved(self, two_lanes):
        total = two_lanes.total_capacity()
        MppRouter(two_lanes).pay("a", "d", 8.0)
        assert two_lanes.total_capacity() == pytest.approx(total)


class TestFeesAndEstimates:
    def test_fees_collected_per_part(self, two_lanes):
        router = MppRouter(two_lanes, fee=ConstantFee(0.25))
        result = router.pay("a", "d", 8.0)
        assert result.success
        fees = result.fees_per_node()
        # both intermediaries forwarded one part each
        assert fees.get("b", 0) == pytest.approx(0.25)
        assert fees.get("c", 0) == pytest.approx(0.25)

    def test_max_sendable_estimate_is_max_flow(self, two_lanes):
        router = MppRouter(two_lanes)
        assert router.max_sendable_estimate("a", "d") == pytest.approx(10.0)

    def test_estimate_zero_for_unknown_nodes(self, two_lanes):
        assert MppRouter(two_lanes).max_sendable_estimate("a", "ghost") == 0.0


class TestValidation:
    def test_rejects_self_payment(self, two_lanes):
        with pytest.raises(RoutingError):
            MppRouter(two_lanes).pay("a", "a", 1.0)

    def test_rejects_nonpositive_amount(self, two_lanes):
        with pytest.raises(InvalidParameter):
            MppRouter(two_lanes).pay("a", "d", 0.0)

    def test_rejects_bad_config(self, two_lanes):
        with pytest.raises(InvalidParameter):
            MppRouter(two_lanes, min_part=0.0)
        with pytest.raises(InvalidParameter):
            MppRouter(two_lanes, max_parts=0)

    def test_disconnected_receiver_fails_cleanly(self):
        graph = ChannelGraph.from_edges([("a", "b")])
        graph.add_node("island")
        result = MppRouter(graph).pay("a", "island", 1.0)
        assert not result.success
        assert "no feasible path" in result.failure_reason


class TestSharedBottleneck:
    def test_parallel_paths_with_shared_edge(self):
        """Splitting helps only up to the true max flow through shared edges."""
        graph = ChannelGraph()
        graph.add_channel("a", "b", 4.0, 0.0)
        graph.add_channel("a", "c", 4.0, 0.0)
        graph.add_channel("b", "d", 10.0, 0.0)
        graph.add_channel("c", "d", 10.0, 0.0)
        graph.add_channel("d", "e", 6.0, 0.0)  # shared bottleneck
        router = MppRouter(graph)
        assert router.max_sendable_estimate("a", "e") == pytest.approx(6.0)
        assert router.pay("a", "e", 6.0).success
        graph2 = ChannelGraph()
        graph2.add_channel("a", "b", 4.0, 0.0)
        graph2.add_channel("a", "c", 4.0, 0.0)
        graph2.add_channel("b", "d", 10.0, 0.0)
        graph2.add_channel("c", "d", 10.0, 0.0)
        graph2.add_channel("d", "e", 6.0, 0.0)
        assert not MppRouter(graph2).pay("a", "e", 7.0).success
