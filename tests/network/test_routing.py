"""Unit tests for :mod:`repro.network.routing`."""

import pytest

from repro.errors import RoutingError
from repro.network.fees import ConstantFee, LinearFee
from repro.network.graph import ChannelGraph
from repro.network.routing import Router


@pytest.fixture
def line4() -> ChannelGraph:
    graph = ChannelGraph()
    graph.add_channel("a", "b", 10.0, 10.0)
    graph.add_channel("b", "c", 10.0, 10.0)
    graph.add_channel("c", "d", 10.0, 10.0)
    return graph


class TestFindRoute:
    def test_direct_route(self, line4):
        route = Router(line4).find_route("a", "b", 1.0)
        assert route.nodes == ("a", "b")
        assert route.fee == 0.0

    def test_multi_hop_route(self, line4):
        route = Router(line4).find_route("a", "d", 1.0)
        assert route.nodes == ("a", "b", "c", "d")
        assert route.intermediaries == ("b", "c")

    def test_respects_capacity(self, line4):
        with pytest.raises(RoutingError):
            Router(line4).find_route("a", "d", 11.0)

    def test_capacity_direction_matters(self):
        graph = ChannelGraph()
        graph.add_channel("a", "b", 10.0, 0.0)
        router = Router(graph)
        assert router.find_route("a", "b", 5.0).nodes == ("a", "b")
        with pytest.raises(RoutingError):
            router.find_route("b", "a", 5.0)

    def test_unknown_endpoint(self, line4):
        with pytest.raises(RoutingError):
            Router(line4).find_route("a", "ghost", 1.0)

    def test_sender_equals_receiver(self, line4):
        with pytest.raises(RoutingError):
            Router(line4).find_route("a", "a", 1.0)

    def test_fee_accumulates_per_intermediary(self, line4):
        router = Router(line4, fee=ConstantFee(0.5))
        route = router.find_route("a", "d", 2.0)
        # 2 intermediaries, constant fee: total fee = 1.0
        assert route.fee == pytest.approx(1.0)

    def test_linear_fee_compounds_toward_sender(self, line4):
        router = Router(line4, fee=LinearFee(0.0, 0.1))
        route = router.find_route("a", "d", 1.0)
        # c forwards 1.0 (fee 0.1); b forwards 1.1 (fee 0.11)
        assert route.fee == pytest.approx(0.1 + 0.11)

    def test_no_fee_forwarding_mode(self, line4):
        router = Router(line4, fee=LinearFee(0.0, 0.1), fee_forwarding=False)
        route = router.find_route("a", "d", 1.0)
        assert route.fee == pytest.approx(0.0)


class TestExecute:
    def test_success_updates_balances(self, line4):
        router = Router(line4)
        outcome = router.execute("a", "d", 4.0)
        assert outcome.success
        ab = line4.channels_between("a", "b")[0]
        assert ab.balance("a") == pytest.approx(6.0)
        assert ab.balance("b") == pytest.approx(14.0)

    def test_fee_credited_to_intermediaries(self, line4):
        router = Router(line4, fee=ConstantFee(0.25))
        outcome = router.execute("a", "d", 1.0)
        assert outcome.success
        assert outcome.fees_per_node == pytest.approx(
            {"b": 0.25, "c": 0.25}
        )

    def test_intermediary_balance_gains_fee(self, line4):
        router = Router(line4, fee=ConstantFee(0.5))
        router.execute("a", "d", 1.0)
        # b received 1.0 + 2 fees worth and forwarded 1.0 + 1 fee
        assert line4.balance_of("b") == pytest.approx(20.0 + 0.5)

    def test_failure_leaves_balances_untouched(self, line4):
        router = Router(line4)
        before = {c.channel_id: c.balance(c.u) for c in line4.channels}
        outcome = router.execute("a", "d", 100.0)
        assert not outcome.success
        after = {c.channel_id: c.balance(c.u) for c in line4.channels}
        assert before == after

    def test_depletion_then_reverse_flow(self):
        graph = ChannelGraph()
        graph.add_channel("a", "b", 5.0, 0.0)
        router = Router(graph)
        assert router.execute("a", "b", 5.0).success
        assert not router.execute("a", "b", 1.0).success
        assert router.execute("b", "a", 3.0).success

    def test_aggregate_balance_split_across_parallel_channels(self):
        # two parallel channels each with 3 on a's side: aggregate 6 but no
        # single channel can carry 5.
        graph = ChannelGraph()
        graph.add_channel("a", "b", 3.0, 0.0)
        graph.add_channel("a", "b", 3.0, 0.0)
        outcome = Router(graph).execute("a", "b", 5.0)
        assert not outcome.success
        assert "no single channel" in outcome.failure_reason

    def test_parallel_channel_picked_by_largest_balance(self):
        graph = ChannelGraph()
        small = graph.add_channel("a", "b", 2.0, 0.0)
        large = graph.add_channel("a", "b", 8.0, 0.0)
        Router(graph).execute("a", "b", 1.0)
        assert large.balance("a") == pytest.approx(7.0)
        assert small.balance("a") == pytest.approx(2.0)


class TestQuoteFee:
    def test_quote_matches_route_fee(self, line4):
        router = Router(line4, fee=LinearFee(0.01, 0.02))
        route = router.find_route("a", "d", 2.0)
        assert router.quote_fee(route.nodes, 2.0) == pytest.approx(route.fee)

    def test_quote_needs_a_hop(self, line4):
        with pytest.raises(RoutingError):
            Router(line4).quote_fee(("a",), 1.0)
