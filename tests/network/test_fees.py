"""Unit tests for :mod:`repro.network.fees`."""

import numpy as np
import pytest

from repro.errors import InvalidParameter
from repro.network.fees import (
    ConstantFee,
    LinearFee,
    PiecewiseLinearFee,
    average_fee,
)
from repro.transactions.sizes import FixedSize, UniformSizes


class TestConstantFee:
    def test_value(self):
        assert ConstantFee(0.3)(100.0) == 0.3

    def test_rejects_negative(self):
        with pytest.raises(InvalidParameter):
            ConstantFee(-0.1)

    def test_vectorised(self):
        fees = ConstantFee(0.5).vectorised(np.array([1.0, 2.0, 3.0]))
        assert fees.tolist() == [0.5, 0.5, 0.5]


class TestLinearFee:
    def test_base_plus_rate(self):
        fee = LinearFee(base=0.1, rate=0.01)
        assert fee(10.0) == pytest.approx(0.2)

    def test_zero_amount_gives_base(self):
        assert LinearFee(0.1, 0.5)(0.0) == pytest.approx(0.1)

    def test_rejects_negative_amount(self):
        with pytest.raises(InvalidParameter):
            LinearFee(0.1, 0.1)(-5.0)

    def test_rejects_negative_params(self):
        with pytest.raises(InvalidParameter):
            LinearFee(-0.1, 0.1)

    def test_vectorised_matches_scalar(self):
        fee = LinearFee(0.2, 0.05)
        amounts = np.array([0.0, 1.0, 7.5])
        assert fee.vectorised(amounts) == pytest.approx(
            [fee(a) for a in amounts]
        )


class TestPiecewiseLinearFee:
    def test_interpolates(self):
        fee = PiecewiseLinearFee([(0.0, 0.0), (10.0, 1.0)])
        assert fee(5.0) == pytest.approx(0.5)

    def test_clamps_outside_range(self):
        fee = PiecewiseLinearFee([(1.0, 0.2), (2.0, 0.4)])
        assert fee(0.0) == pytest.approx(0.2)
        assert fee(5.0) == pytest.approx(0.4)

    def test_needs_two_knots(self):
        with pytest.raises(InvalidParameter):
            PiecewiseLinearFee([(0.0, 0.1)])

    def test_rejects_unsorted_knots(self):
        with pytest.raises(InvalidParameter):
            PiecewiseLinearFee([(1.0, 0.1), (1.0, 0.2)])

    def test_rejects_negative_fees(self):
        with pytest.raises(InvalidParameter):
            PiecewiseLinearFee([(0.0, -0.1), (1.0, 0.2)])


class TestAverageFee:
    def test_constant_fee_average_is_fee(self):
        favg = average_fee(ConstantFee(0.25), UniformSizes(high=10.0))
        assert favg == pytest.approx(0.25, rel=1e-3)

    def test_linear_fee_uniform_sizes(self):
        # E[base + rate*t] for t ~ U[0, T] is base + rate*T/2
        favg = average_fee(LinearFee(0.1, 0.02), UniformSizes(high=10.0))
        assert favg == pytest.approx(0.1 + 0.02 * 5.0, rel=1e-3)

    def test_fixed_size_average(self):
        favg = average_fee(LinearFee(0.0, 1.0), FixedSize(3.0))
        assert favg == pytest.approx(3.0, rel=1e-2)
