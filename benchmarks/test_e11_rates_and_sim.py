"""E11 — rate estimation and analytic-vs-simulated validation.

Three series:
* weighted-Brandes vs literal shortest-path enumeration (identical values,
  large speedup) — the paper's "efficient O(n²) estimation" claim;
* scaling of the Brandes pass on growing synthetic snapshots;
* analytic E_rev (Eq. 3) vs discrete-event simulated fee income on a
  snapshot — the model's predictions are realised by the simulator.
"""

import time

from repro.analysis.tables import format_table
from repro.network.betweenness import (
    pair_weighted_betweenness,
    pair_weighted_betweenness_exact,
)
from repro.network.fees import ConstantFee
from repro.simulation.engine import SimulationEngine
from repro.snapshots.synthetic import barabasi_albert_snapshot
from repro.transactions.rates import intermediary_traffic
from repro.transactions.workload import PoissonWorkload
from repro.transactions.zipf import ModifiedZipf


def test_e11_brandes_equals_enumeration(benchmark, emit_table):
    graph = barabasi_albert_snapshot(14, attachments=2, seed=30)
    distribution = ModifiedZipf(graph, s=1.0)
    rows = []
    digraph = graph.view(directed=True).to_networkx()
    weight = lambda s, r: distribution.probability(s, r)

    start = time.perf_counter()
    fast = pair_weighted_betweenness(digraph, weight)
    fast_time = time.perf_counter() - start
    start = time.perf_counter()
    slow = pair_weighted_betweenness_exact(digraph, weight)
    slow_time = time.perf_counter() - start

    max_gap = max(
        abs(fast.node_value(v) - slow.node_value(v)) for v in graph.nodes
    )
    rows.append(
        {
            "n": len(graph),
            "brandes_s": fast_time,
            "enumeration_s": slow_time,
            "speedup": slow_time / max(fast_time, 1e-9),
            "max_node_gap": max_gap,
        }
    )
    emit_table(
        format_table(rows, title="E11 — weighted Brandes vs enumeration")
    )
    assert max_gap < 1e-9

    benchmark(lambda: pair_weighted_betweenness(digraph, weight))


def test_e11_brandes_scaling(benchmark, emit_table):
    rows = []
    for n in (20, 40, 80, 120):
        graph = barabasi_albert_snapshot(n, attachments=2, seed=n)
        distribution = ModifiedZipf(graph, s=1.0)
        digraph = graph.view(directed=True).to_networkx()
        weight = lambda s, r: distribution.probability(s, r)
        # prime zipf caches so we time the betweenness pass itself
        for node in graph.nodes:
            distribution.receivers(node)
        start = time.perf_counter()
        pair_weighted_betweenness(digraph, weight)
        elapsed = time.perf_counter() - start
        rows.append({"n": n, "edges": digraph.number_of_edges(),
                     "seconds": elapsed})
    emit_table(format_table(rows, title="E11 — Brandes pass scaling"))
    # near-quadratic growth: 6x nodes should stay well under 100x time
    assert rows[-1]["seconds"] < 120 * rows[0]["seconds"] + 1.0

    graph = barabasi_albert_snapshot(40, attachments=2, seed=40)
    distribution = ModifiedZipf(graph, s=1.0)
    digraph = graph.view(directed=True).to_networkx()
    benchmark(
        lambda: pair_weighted_betweenness(
            digraph, lambda s, r: distribution.probability(s, r)
        )
    )


def test_e11_analytic_vs_simulated_revenue(benchmark, emit_table):
    graph = barabasi_albert_snapshot(
        12, seed=6, capacity_mu=6.0, capacity_sigma=0.2
    )
    fee = 0.25
    distribution = ModifiedZipf(graph, s=1.0)
    per_sender = {v: 1.0 for v in graph.nodes}
    predicted = intermediary_traffic(
        graph, distribution, per_sender_rates=per_sender
    )
    top_nodes = sorted(predicted, key=predicted.get, reverse=True)[:4]

    workload = PoissonWorkload(distribution, per_sender, seed=23)
    engine = SimulationEngine(
        graph.copy(), fee=ConstantFee(fee), fee_forwarding=False
    )
    horizon = 400.0
    engine.schedule_workload(workload, horizon)
    metrics = engine.run(until=horizon)

    rows = []
    for node in top_nodes:
        analytic = fee * predicted[node]
        observed = metrics.revenue_rate(node)
        rel_err = abs(observed - analytic) / max(analytic, 1e-12)
        rows.append(
            {
                "node": str(node),
                "analytic_Erev": analytic,
                "simulated_rate": observed,
                "rel_err": rel_err,
            }
        )
    emit_table(
        format_table(
            rows, title="E11 / Eq. 3 — analytic vs simulated revenue rates"
        )
    )
    assert metrics.success_rate > 0.9
    # the top earner must match within Poisson noise
    assert rows[0]["rel_err"] < 0.3

    def quick_sim():
        quick = SimulationEngine(
            graph.copy(), fee=ConstantFee(fee), fee_forwarding=False
        )
        quick_load = PoissonWorkload(distribution, per_sender, seed=5)
        quick.schedule_workload(quick_load, 20.0)
        return quick.run(until=20.0)

    benchmark(quick_sim)
