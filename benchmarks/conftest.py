"""Shared helpers for the experiment benchmarks (see DESIGN.md §4).

Each ``test_eXX_*`` module regenerates one experiment row/series from the
paper: it prints the table it reproduces (visible in the pytest output via
``emit``) and asserts the claim's *shape* — who wins, which regions are
stable, where the crossover sits.
"""

from __future__ import annotations

import pytest

from repro.params import ModelParameters


def emit(text: str) -> None:
    """Print a results table so it survives pytest's capture settings."""
    print()
    print(text)


@pytest.fixture
def emit_table(capsys):
    """Yield a printer that bypasses output capture."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _emit


@pytest.fixture
def profitable_params() -> ModelParameters:
    """A parameterisation where joining the PCN is clearly profitable."""
    return ModelParameters(
        onchain_cost=0.4,
        opportunity_rate=0.001,
        fee_avg=1.0,
        fee_out_avg=0.05,
        total_tx_rate=100.0,
        user_tx_rate=1.0,
        zipf_s=1.0,
    )
