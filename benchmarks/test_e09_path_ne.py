"""E9 — Theorem 10: the path graph is never a Nash equilibrium (n >= 4).

Sweeps path length and Zipf parameter; for every point some node (in the
proof: an endpoint) has a strictly improving deviation. Also prints the
endpoint's best move to show it matches the proof's rewiring argument.
"""

from repro.analysis.sweeps import run_sweep
from repro.analysis.tables import format_table
from repro.equilibrium.nash import best_response, check_nash
from repro.equilibrium.node_utility import NetworkGameModel
from repro.equilibrium.topologies import path


def evaluate(n: int, s: float) -> dict:
    model = NetworkGameModel(a=1.0, b=1.0, edge_cost=1.0, zipf_s=s)
    graph = path(n)
    report = check_nash(graph, model, mode="structured", seed=0)
    endpoint = best_response(graph, "v000", model, mode="structured", seed=0)
    return {
        "is_ne": report.is_nash,
        "deviators": len(report.deviating_nodes),
        "endpoint_gain": endpoint.gain,
        "endpoint_rewires": (
            endpoint.best_deviation is not None
            and bool(endpoint.best_deviation.add)
        ),
    }


def test_e09_path_never_ne(benchmark, emit_table):
    grid = {"n": [4, 5, 6, 7, 8], "s": [0.0, 1.0, 2.0]}
    rows = run_sweep(grid, evaluate)
    emit_table(
        format_table(rows, title="E9 / Thm 10 — path graphs are never NEs")
    )
    assert all(not row["is_ne"] for row in rows)
    # the endpoint itself always has a strict improvement that adds a channel
    assert all(row["endpoint_gain"] > 0 for row in rows)
    assert all(row["endpoint_rewires"] for row in rows)

    benchmark(lambda: evaluate(6, 1.0))
