"""E14 — network evolution and the welfare of stability.

Two extension series grounding the paper's conclusion that "the star graph
is the predominant topology":

* **best-response dynamics** from the path and circle: under star-friendly
  parameters the dynamics reach a stable graph whose diameter collapses
  toward the star's;
* **welfare and price of anarchy** across the candidate topologies: the
  star is simultaneously stable and welfare-maximal, so stability costs
  little on this family.
"""

import math

import networkx as nx

from repro.analysis.tables import format_table
from repro.equilibrium.conditions import harmonic
from repro.equilibrium.nash import best_response_dynamics, check_nash
from repro.equilibrium.node_utility import NetworkGameModel
from repro.equilibrium.topologies import circle, complete, path, star
from repro.equilibrium.welfare import evaluate_topologies, price_of_anarchy


def star_friendly_model(n: int) -> NetworkGameModel:
    """Thm 9 regime: s >= 2 and a/H, b/H <= l."""
    h = harmonic(n, 2.0)
    return NetworkGameModel(a=0.9 * h, b=0.9 * h, edge_cost=1.0, zipf_s=2.0)


def diameter(graph) -> float:
    undirected = graph.view(directed=False).to_networkx()
    if not nx.is_connected(undirected):
        return math.inf
    return nx.diameter(undirected)


def test_e14_best_response_dynamics(benchmark, emit_table):
    model = star_friendly_model(5)
    rows = []
    for name, start in (("path(6)", path(6)), ("circle(6)", circle(6))):
        final, rounds, converged = best_response_dynamics(
            start, model, max_rounds=8, seed=0
        )
        rows.append(
            {
                "start": name,
                "start_diameter": diameter(start),
                "final_diameter": diameter(final),
                "rounds": rounds,
                "converged": converged,
                "final_stable": check_nash(final, model, seed=0).is_nash,
            }
        )
    emit_table(
        format_table(
            rows,
            title="E14 — best-response dynamics under star-friendly params",
        )
    )
    for row in rows:
        assert row["converged"], row
        assert row["final_stable"], row
        # dynamics must not stretch the network; they compress distances
        assert row["final_diameter"] <= row["start_diameter"], row
    assert any(row["final_diameter"] < row["start_diameter"] for row in rows)

    benchmark(
        lambda: best_response_dynamics(
            path(5), star_friendly_model(4), max_rounds=4, seed=0
        )
    )


def test_e14_welfare_and_poa(benchmark, emit_table):
    n = 5
    model = star_friendly_model(n)
    candidates = [
        ("star", star(n)),
        ("path", path(n + 1)),
        ("circle", circle(n + 1)),
        ("complete", complete(n + 1)),
    ]
    poa, results = price_of_anarchy(candidates, model, seed=0)
    rows = [
        {
            "topology": r.name,
            "welfare": r.welfare,
            "stable": r.is_nash,
        }
        for r in results
    ]
    emit_table(
        format_table(
            rows,
            title=f"E14 — welfare vs stability (PoA over family = {poa:.3f})",
        )
    )
    by_name = {r.name: r for r in results}
    assert by_name["star"].is_nash
    assert not by_name["path"].is_nash
    # the star is welfare-maximal among the candidates here
    best = max(r.welfare for r in results if not math.isinf(r.welfare))
    assert by_name["star"].welfare == best

    benchmark(
        lambda: evaluate_topologies(
            [("star", star(4)), ("path", path(5))],
            star_friendly_model(4),
            seed=0,
        )
    )
