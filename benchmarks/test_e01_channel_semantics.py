"""E1 — Figure 1: channel balance semantics.

Replays the paper's Figure 1 sequence (balances (10,7) -> (5,12) -> (0,17),
then a failed size-6 payment from u) and benchmarks raw channel payment
throughput.
"""

from repro.analysis.tables import format_table
from repro.errors import InsufficientBalance
from repro.network.channel import Channel


def _figure1_rows():
    channel = Channel("u", "v", 10.0, 7.0)
    rows = [
        {
            "step": "initial",
            "b_u": channel.balance("u"),
            "b_v": channel.balance("v"),
            "outcome": "-",
        }
    ]
    for step, (sender, amount) in enumerate(
        [("u", 5.0), ("u", 5.0), ("u", 6.0)], start=1
    ):
        try:
            channel.send(sender, amount)
            outcome = "ok"
        except InsufficientBalance:
            outcome = "FAILED (insufficient balance)"
        rows.append(
            {
                "step": f"{sender} pays {amount:g}",
                "b_u": channel.balance("u"),
                "b_v": channel.balance("v"),
                "outcome": outcome,
            }
        )
    return rows, channel


def test_e01_figure1_sequence(benchmark, emit_table):
    rows, channel = _figure1_rows()
    emit_table(format_table(rows, title="E1 / Figure 1 — channel payments"))
    # shape assertions: last payment fails, capacity invariant
    assert rows[-1]["outcome"].startswith("FAILED")
    assert channel.capacity == 17.0
    assert channel.balance("u") == 0.0

    def throughput():
        c = Channel("a", "b", 1e9, 1e9)
        for _ in range(1000):
            c.send("a", 1.0)
            c.send("b", 1.0)
        return c

    benchmark(throughput)
