"""E5 — Algorithm 2 / Theorem 5: discretised funds, quality vs runtime.

Series reproduced:
* approximation ratio vs the brute-force optimum over the same discrete
  action set (>= 1 - 1/e where the optimum is positive);
* the m-vs-cost trade-off: smaller granularity => more divisions tried
  (the pseudo-polynomial T of Thm 5) => more objective evaluations.
"""

import math

from repro.analysis.tables import format_table
from repro.core.algorithms.bruteforce import brute_force
from repro.core.algorithms.exhaustive import count_divisions, exhaustive_discrete
from repro.core.strategy import ActionSpace
from repro.core.utility import JoiningUserModel
from repro.snapshots.synthetic import barabasi_albert_snapshot

GUARANTEE = 1 - 1 / math.e


def build_model(profitable_params, seed: int = 4) -> JoiningUserModel:
    graph = barabasi_albert_snapshot(10, attachments=2, seed=seed)
    return JoiningUserModel(
        graph, "u", profitable_params, revenue_mode="fixed-rate"
    )


def test_e05_ratio(benchmark, emit_table, profitable_params):
    budget = 3.0
    rows = []
    for seed in (4, 5, 6):
        model = build_model(profitable_params, seed)
        result = exhaustive_discrete(model, budget=budget, granularity=1.0)
        omega = ActionSpace.discrete(
            model.base_graph, "u", budget, 1.0, model.params
        )
        optimum = brute_force(
            model, budget=budget, omega=omega, max_subset_size=4
        )
        ratio = (
            result.objective_value / optimum.objective_value
            if optimum.objective_value > 0
            else float("nan")
        )
        rows.append(
            {
                "seed": seed,
                "alg2_U'": result.objective_value,
                "optimum_U'": optimum.objective_value,
                "ratio": ratio,
                "ok": not (ratio < GUARANTEE - 1e-9),
            }
        )
    emit_table(format_table(rows, title="E5 / Thm 5 — Algorithm 2 vs optimum"))
    assert all(row["ok"] for row in rows)

    model = build_model(profitable_params)
    benchmark(
        lambda: exhaustive_discrete(model, budget=budget, granularity=1.0)
    )


def test_e05_granularity_tradeoff(benchmark, emit_table, profitable_params):
    """Smaller m => larger division count (runtime) — Thm 5's trade-off."""
    budget = 3.0
    rows = []
    for granularity in (3.0, 1.5, 1.0, 0.75, 0.5):
        model = build_model(profitable_params)
        result = exhaustive_discrete(
            model, budget=budget, granularity=granularity
        )
        units = int(budget / granularity)
        parts = int(budget / model.params.onchain_cost) + 1
        rows.append(
            {
                "granularity_m": granularity,
                "units": units,
                "divisions": result.details["divisions_tried"],
                "T_compositions": count_divisions(
                    units, parts, unique_multisets=False
                ),
                "evaluations": result.evaluations,
                "U'": result.objective_value,
            }
        )
    emit_table(
        format_table(
            rows, title="E5 — granularity m vs search size (Thm 5 trade-off)"
        )
    )
    divisions = [row["divisions"] for row in rows]
    assert divisions == sorted(divisions), "finer m must enlarge the search"
    # quality is weakly improving as the grid refines on this instance
    assert rows[-1]["U'"] >= rows[0]["U'"] - 1e-9

    model = build_model(profitable_params)
    benchmark(
        lambda: exhaustive_discrete(model, budget=budget, granularity=1.5)
    )
