"""E7 — Theorem 6: longest shortest path through a hub vs the bound.

For graphs that plausibly model stable networks (stars, short chains with
expensive chords) the measured hub-path length d must satisfy

    d <= 2 * ((C+ε)/2 - λ_e f) / (p_min N f) + 1,

while traffic-heavy long paths violate the bound — i.e. they cannot be
stable, which is the theorem's contrapositive.
"""


from repro.analysis.tables import format_table
from repro.equilibrium.diameter import analyse_hub_path
from repro.equilibrium.topologies import CENTER, path, star
from repro.params import ModelParameters
from repro.snapshots.synthetic import barabasi_albert_snapshot


def test_e07_bound_table(benchmark, emit_table):
    scenarios = [
        (
            "star(8) cheap-chain",
            star(8),
            CENTER,
            ModelParameters(onchain_cost=0.5, total_tx_rate=100.0,
                            fee_avg=0.5, zipf_s=1.0),
            True,
        ),
        (
            "path(9) expensive C",
            path(9),
            "v004",
            ModelParameters(onchain_cost=1e6, total_tx_rate=10.0,
                            fee_avg=0.1, zipf_s=0.5),
            True,
        ),
        (
            "path(11) heavy traffic",
            path(11),
            "v005",
            ModelParameters(onchain_cost=0.01, total_tx_rate=1000.0,
                            fee_avg=1.0, zipf_s=0.0),
            False,  # bound violated => not stable
        ),
    ]
    # BA hub: realistic snapshot, hub = max-degree node
    snapshot = barabasi_albert_snapshot(40, attachments=2, seed=21)
    hub = max(snapshot.nodes, key=snapshot.degree)
    scenarios.append(
        (
            "BA(40) hub, costly C",
            snapshot,
            hub,
            ModelParameters(onchain_cost=50.0, total_tx_rate=40.0,
                            fee_avg=0.1, zipf_s=1.0),
            True,
        )
    )

    rows = []
    for name, graph, hub_node, params, expect_within in scenarios:
        analysis = analyse_hub_path(graph, hub_node, params)
        rows.append(
            {
                "scenario": name,
                "measured_d": analysis.measured_d,
                "bound": analysis.bound,
                "lambda_e": analysis.lambda_e,
                "p_min": analysis.p_min,
                "within_bound": analysis.within_bound,
                "expected": expect_within,
            }
        )
    emit_table(
        format_table(rows, title="E7 / Thm 6 — hub path length vs bound")
    )
    for row in rows:
        assert row["within_bound"] == row["expected"], row["scenario"]

    params = ModelParameters(onchain_cost=1.0, total_tx_rate=50.0,
                             fee_avg=0.2, zipf_s=1.0)
    benchmark(lambda: analyse_hub_path(path(9), "v004", params))
