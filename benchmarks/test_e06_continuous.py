"""E6 — Section III-D: continuous funds via the benefit function.

Series reproduced:
* local-search value vs the brute-force optimum of U^b — far above the
  1/5 guarantee on every instance;
* the positivity condition check the paper states for the guarantee;
* capacity-aware variant: chosen locks respect the routing amount.
"""

from repro.analysis.tables import format_table
from repro.core.algorithms.bruteforce import brute_force
from repro.core.algorithms.continuous import continuous_local_search
from repro.core.strategy import Action
from repro.core.utility import JoiningUserModel
from repro.snapshots.synthetic import barabasi_albert_snapshot


def build_model(profitable_params, seed: int = 11, **kwargs) -> JoiningUserModel:
    graph = barabasi_albert_snapshot(10, attachments=2, seed=seed)
    return JoiningUserModel(graph, "u", profitable_params, **kwargs)


def test_e06_ratio_vs_bruteforce(benchmark, emit_table, profitable_params):
    budget = 3.0
    locks = [0.0, 1.0]
    rows = []
    for seed in (11, 12, 13):
        model = build_model(profitable_params, seed)
        omega = [
            Action(peer, lock)
            for peer in model.base_graph.nodes
            for lock in locks
        ]
        optimum = brute_force(
            model, budget=budget, omega=omega, objective="benefit",
            max_subset_size=4,
        )
        result = continuous_local_search(model, budget=budget, locks=locks)
        ratio = (
            result.objective_value / optimum.objective_value
            if optimum.objective_value > 0
            else float("nan")
        )
        rows.append(
            {
                "seed": seed,
                "local_search_Ub": result.objective_value,
                "optimum_Ub": optimum.objective_value,
                "ratio": ratio,
                "guarantee": 0.2,
                "positivity_cond": result.details["positivity_condition"],
                "ok": ratio >= 0.2 - 1e-9,
            }
        )
    emit_table(
        format_table(rows, title="E6 / Sec III-D — local search vs optimum of U^b")
    )
    assert all(row["ok"] for row in rows)

    model = build_model(profitable_params, 14)
    benchmark(
        lambda: continuous_local_search(
            model, budget=budget, locks=locks, refine_rounds=0
        )
    )


def test_e06_capacity_aware_locks(benchmark, emit_table, profitable_params):
    routing_amount = 1.0
    model = build_model(
        profitable_params, seed=15,
        routing_amount=routing_amount, peer_deposit="match",
    )
    result = continuous_local_search(model, budget=4.0)
    rows = [
        {"peer": str(a.peer), "locked": a.locked,
         "routable": a.locked >= routing_amount}
        for a in result.strategy
    ]
    emit_table(
        format_table(
            rows,
            title="E6 — capacity-aware continuous locks (routing amount 1.0)",
        )
    )
    assert result.strategy.actions
    assert all(a.locked >= routing_amount for a in result.strategy)

    benchmark(
        lambda: continuous_local_search(model, budget=4.0, refine_rounds=0)
    )
