"""E4 — Algorithm 1 / Theorem 4: greedy quality and cost.

Series reproduced:
* approximation ratio of greedy vs the brute-force optimum of U' across
  random instances — every ratio must clear 1 - 1/e ≈ 0.632;
* objective-evaluation counts vs the O(M·n) bound.
"""

import math

from repro.analysis.tables import format_table
from repro.core.algorithms.bruteforce import brute_force
from repro.core.algorithms.greedy import greedy_fixed_funds
from repro.core.utility import JoiningUserModel
from repro.snapshots.synthetic import barabasi_albert_snapshot

GUARANTEE = 1 - 1 / math.e


def build_model(seed: int, profitable_params, n: int = 12) -> JoiningUserModel:
    graph = barabasi_albert_snapshot(n, attachments=2, seed=seed)
    return JoiningUserModel(
        graph, "u", profitable_params, revenue_mode="fixed-rate"
    )


def test_e04_ratio_sweep(benchmark, emit_table, profitable_params):
    rows = []
    budget, lock = 4.2, 1.0
    for seed in range(1, 7):
        model = build_model(seed, profitable_params)
        greedy = greedy_fixed_funds(model, budget=budget, lock=lock)
        optimum = brute_force(model, budget=budget, lock=lock)
        ratio = (
            greedy.objective_value / optimum.objective_value
            if optimum.objective_value > 0
            else float("nan")
        )
        rows.append(
            {
                "seed": seed,
                "greedy_U'": greedy.objective_value,
                "optimum_U'": optimum.objective_value,
                "ratio": ratio,
                "guarantee": GUARANTEE,
                "ok": ratio >= GUARANTEE - 1e-9,
            }
        )
    emit_table(
        format_table(rows, title="E4 / Thm 4 — greedy vs optimum of U'")
    )
    assert all(row["ok"] for row in rows)

    model = build_model(99, profitable_params)
    benchmark(lambda: greedy_fixed_funds(model, budget=budget, lock=lock))


def test_e04_evaluation_count_scaling(benchmark, emit_table, profitable_params):
    """Evaluations grow ~ M·n (Thm 4's 'O(M·n) estimations')."""
    rows = []
    lock = 1.0
    for n in (8, 12, 16, 20):
        for budget in (2.9, 4.3, 5.7):  # M = 2, 3, 4
            model = build_model(7, profitable_params, n=n)
            result = greedy_fixed_funds(model, budget=budget, lock=lock)
            m = result.details["max_channels"]
            rows.append(
                {
                    "n": n,
                    "M": m,
                    "evaluations": result.evaluations,
                    "bound_Mn+1": m * n + 1,
                    "within": result.evaluations <= m * n + 1,
                }
            )
    emit_table(
        format_table(rows, title="E4 — objective evaluations vs the M*n bound")
    )
    assert all(row["within"] for row in rows)

    model = build_model(7, profitable_params, n=16)
    benchmark(lambda: greedy_fixed_funds(model, budget=4.3, lock=lock))
