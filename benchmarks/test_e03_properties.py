"""E3 — Theorems 1-3: empirical property validation of the objective.

Prints the violation counts per (objective, revenue mode): under the
paper's fixed-λ assumption, U/U'/U^b are submodular and U' is monotone
(zero violations); with exact betweenness revenue, submodularity fails —
the documented deviation (DESIGN.md §6).
"""

from repro.analysis.tables import format_table
from repro.core.objective import ObjectiveEvaluator
from repro.core.properties import (
    check_monotonicity,
    check_submodularity,
    find_negative_utility_example,
)
from repro.core.strategy import ActionSpace
from repro.core.utility import JoiningUserModel
from repro.params import ModelParameters
from repro.snapshots.synthetic import barabasi_albert_snapshot

TRIALS = 150


def build(revenue_mode: str, user: str) -> tuple:
    graph = barabasi_albert_snapshot(14, attachments=2, seed=9)
    params = ModelParameters(
        onchain_cost=1.0,
        opportunity_rate=0.1,
        fee_avg=0.3,
        fee_out_avg=0.2,
        total_tx_rate=50.0,
        user_tx_rate=5.0,
        zipf_s=1.0,
    )
    model = JoiningUserModel(graph, user, params, revenue_mode=revenue_mode)
    omega = ActionSpace.fixed_lock(graph, user, 1.0)[:8]
    return model, omega


def test_e03_property_table(benchmark, emit_table):
    rows = []
    for mode in ("fixed-rate", "betweenness"):
        for kind in ("simplified", "utility", "benefit"):
            model, omega = build(mode, f"u-{mode}-{kind}")
            evaluator = ObjectiveEvaluator(model, kind=kind)
            submod = check_submodularity(evaluator, omega, trials=TRIALS, seed=0)
            ran, mono_violations = check_monotonicity(
                evaluator, omega, trials=TRIALS, seed=1
            )
            rows.append(
                {
                    "revenue_mode": mode,
                    "objective": kind,
                    "submod_violations": submod.violations,
                    "monotone_violations": mono_violations,
                    "trials": TRIALS,
                }
            )
    emit_table(
        format_table(
            rows, title="E3 / Thm 1-3 — property violations on random nestings"
        )
    )
    by_key = {(r["revenue_mode"], r["objective"]): r for r in rows}
    # Thm 1 (fixed-λ regime): all three objectives submodular
    for kind in ("simplified", "utility", "benefit"):
        assert by_key[("fixed-rate", kind)]["submod_violations"] == 0
    # Thm 2: U' monotone under fixed-λ
    assert by_key[("fixed-rate", "simplified")]["monotone_violations"] == 0
    # documented deviation: exact betweenness revenue is NOT submodular
    assert by_key[("betweenness", "simplified")]["submod_violations"] > 0

    model, omega = build("fixed-rate", "u-bench")
    evaluator = ObjectiveEvaluator(model, kind="simplified")
    benchmark(
        lambda: check_submodularity(evaluator, omega, trials=20, seed=3)
    )


def test_e03_negative_utility_witness(benchmark, emit_table):
    """Thm 3: with expensive channels a negative-utility strategy exists."""
    graph = barabasi_albert_snapshot(14, attachments=2, seed=9)
    params = ModelParameters(
        onchain_cost=10.0,
        opportunity_rate=1.0,
        fee_avg=0.01,
        fee_out_avg=0.5,
        total_tx_rate=10.0,
        user_tx_rate=5.0,
        zipf_s=1.0,
    )
    model = JoiningUserModel(graph, "u", params, revenue_mode="fixed-rate")
    omega = ActionSpace.fixed_lock(graph, "u", 1.0)[:8]
    evaluator = ObjectiveEvaluator(model, kind="utility")
    witness = find_negative_utility_example(evaluator, omega, trials=60, seed=5)
    assert witness is not None
    value = evaluator(witness)
    emit_table(
        format_table(
            [{"witness_channels": len(witness), "utility": value}],
            title="E3 / Thm 3 — negative-utility witness",
        )
    )
    assert value < 0
    benchmark(
        lambda: find_negative_utility_example(evaluator, omega, trials=10, seed=6)
    )
