"""E12 — ablation: greedy (Alg 1) vs the attachment heuristics of practice.

The paper's introduction notes Lightning implementations suggest "connect
to a trusted peer or a hub". This bench compares, on synthetic snapshots:

* Algorithm 1 greedy;
* top-degree attachment (the hub heuristic);
* random attachment;
* uniform-transaction-model greedy (the [19] assumption) evaluated under
  the Zipf model — isolating the value of the realistic distribution.

Shape: greedy wins (or ties) on its objective on every instance, and the
hub heuristic beats random.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.core.algorithms.greedy import greedy_fixed_funds
from repro.core.objective import ObjectiveEvaluator
from repro.core.strategy import Action, ActionSpace, Strategy
from repro.core.utility import JoiningUserModel
from repro.snapshots.synthetic import (
    barabasi_albert_snapshot,
    erdos_renyi_snapshot,
)
from repro.transactions.distributions import UniformDistribution

BUDGET, LOCK = 4.2, 1.0


def heuristic_strategy(graph, peers) -> Strategy:
    return Strategy([Action(p, LOCK) for p in peers])


def evaluate_instance(name: str, graph, profitable_params) -> dict:
    model = JoiningUserModel(
        graph, "u", profitable_params, revenue_mode="fixed-rate"
    )
    max_channels = ActionSpace.max_channels(
        profitable_params, BUDGET, LOCK
    )
    greedy = greedy_fixed_funds(model, budget=BUDGET, lock=LOCK)

    by_degree = sorted(graph.nodes, key=graph.degree, reverse=True)
    hub = heuristic_strategy(graph, by_degree[:max_channels])

    rng = np.random.default_rng(0)
    random_peers = rng.choice(
        len(graph.nodes), size=max_channels, replace=False
    )
    nodes = list(graph.nodes)
    random_strategy = heuristic_strategy(
        graph, [nodes[i] for i in random_peers]
    )

    # a greedy that believes transactions are uniform ([19]'s model), but
    # whose choice is scored under the realistic Zipf model
    uniform_model = JoiningUserModel(
        graph, "u2", profitable_params,
        distribution=UniformDistribution.from_graph(graph),
        revenue_mode="fixed-rate",
    )
    uniform_choice = greedy_fixed_funds(uniform_model, budget=BUDGET, lock=LOCK)

    score = ObjectiveEvaluator(model, kind="simplified")
    return {
        "snapshot": name,
        "greedy": score(greedy.strategy),
        "hub_heuristic": score(hub),
        "random": score(random_strategy),
        "uniform_model_greedy": score(uniform_choice.strategy),
    }


def test_e12_heuristic_ablation(benchmark, emit_table, profitable_params):
    instances = [
        ("BA(20) seed 1", barabasi_albert_snapshot(20, seed=1)),
        ("BA(20) seed 2", barabasi_albert_snapshot(20, seed=2)),
        ("BA(30) seed 3", barabasi_albert_snapshot(30, seed=3)),
        ("ER(20, 0.2)", erdos_renyi_snapshot(20, p=0.2, seed=4)),
    ]
    rows = [
        evaluate_instance(name, graph, profitable_params)
        for name, graph in instances
    ]
    emit_table(
        format_table(
            rows,
            title="E12 — attachment strategy ablation (objective U', higher "
            "is better)",
        )
    )
    for row in rows:
        assert row["greedy"] >= row["hub_heuristic"] - 1e-9, row
        assert row["greedy"] >= row["random"] - 1e-9, row
        assert row["greedy"] >= row["uniform_model_greedy"] - 1e-9, row
    # the hub heuristic should beat random attachment on BA snapshots
    ba_rows = [r for r in rows if r["snapshot"].startswith("BA")]
    assert sum(r["hub_heuristic"] >= r["random"] for r in ba_rows) >= 2

    graph = barabasi_albert_snapshot(20, seed=1)
    benchmark(lambda: evaluate_instance("bench", graph, profitable_params))
