"""E8 — Theorems 7/8/9: the star's Nash-equilibrium parameter region.

Sweeps (s, l) for fixed (n, a, b) and prints, per grid point, whether
(i) the Thm 8 closed-form conditions certify the star as a NE and
(ii) best-response search finds any improving deviation. The theorem's
shape: the closed form is *sound* (certified => no deviation found) and
the NE region grows with edge cost l and with s.
"""

from repro.analysis.sweeps import run_sweep
from repro.analysis.tables import format_table
from repro.equilibrium.conditions import (
    star_ne_closed_form,
    star_ne_sufficient_thm9,
)
from repro.equilibrium.nash import check_nash
from repro.equilibrium.node_utility import NetworkGameModel
from repro.equilibrium.topologies import CENTER, star

N_LEAVES = 5
A = B = 0.6


def evaluate(s: float, l: float) -> dict:
    closed = star_ne_closed_form(N_LEAVES, s, A, B, l)
    thm9 = star_ne_sufficient_thm9(N_LEAVES, s, A, B, l)
    model = NetworkGameModel(a=A, b=B, edge_cost=l, zipf_s=s)
    graph = star(N_LEAVES)
    # the star is leaf-transitive: checking one leaf plus the center is exact
    report = check_nash(
        graph, model, mode="exhaustive", nodes=["v000", CENTER]
    )
    return {
        "thm8_closed_form": closed,
        "thm9_sufficient": thm9,
        "simulated_ne": report.is_nash,
        "best_gain": report.max_gain(),
    }


def test_e08_parameter_region(benchmark, emit_table):
    grid = {
        "s": [0.0, 0.5, 1.0, 2.0, 3.0],
        "l": [0.05, 0.2, 0.5, 1.0],
    }
    rows = run_sweep(grid, evaluate)
    emit_table(
        format_table(
            rows,
            title=(
                f"E8 / Thm 7-9 — star({N_LEAVES}) NE region, a=b={A} "
                "(closed form vs best-response search)"
            ),
        )
    )
    # soundness: whenever Thm 8 certifies NE, no deviation may exist
    for row in rows:
        if row["thm8_closed_form"]:
            assert row["simulated_ne"], row
    # Thm 9 implies Thm 8
    for row in rows:
        if row["thm9_sufficient"]:
            assert row["thm8_closed_form"], row
    # the NE region is monotone in l at fixed s (simulated)
    for s in grid["s"]:
        flags = [r["simulated_ne"] for r in rows if r["s"] == s]
        first_true = flags.index(True) if True in flags else len(flags)
        assert all(flags[first_true:]), f"s={s}: {flags}"
    # both large-l columns are stable, tiny-l + small-s is not
    assert not next(
        r["simulated_ne"] for r in rows if r["s"] == 0.0 and r["l"] == 0.05
    )

    benchmark(lambda: evaluate(2.0, 1.0))
