"""E13 — extension experiments beyond the paper's explicit claims.

Three series exercising the future-work surface the paper names:

* **parameter estimation round-trip** (conclusion, item 3): simulate
  traffic with known (s, N_u), recover them from the trace;
* **interest-rate cost model** (conclusion, item 2 / Guasoni [17]):
  how the optimal strategy shifts from the linear to the discounted model
  as channel lifetime grows;
* **in-flight capital** (Section II-C's opportunity cost, realised):
  HTLC hold time vs payment success under contention.
"""

from repro.analysis.estimation import (
    estimate_sender_rates,
    estimate_zipf_s,
)
from repro.analysis.tables import format_table
from repro.core.algorithms.greedy import greedy_fixed_funds
from repro.core.costmodels import DiscountedOpportunityCost
from repro.core.utility import JoiningUserModel
from repro.network.graph import ChannelGraph
from repro.simulation.engine import SimulationEngine
from repro.snapshots.synthetic import barabasi_albert_snapshot
from repro.transactions.distributions import UniformDistribution
from repro.transactions.workload import PoissonWorkload
from repro.transactions.zipf import ModifiedZipf


def test_e13_estimation_round_trip(benchmark, emit_table):
    """Known parameters in, estimates out (future-work item 3)."""
    graph = barabasi_albert_snapshot(12, seed=3)
    rows = []
    for true_s in (0.5, 1.5, 3.0):
        workload = PoissonWorkload(
            ModifiedZipf(graph, s=true_s),
            {v: 1.0 for v in graph.nodes},
            seed=4,
        )
        trace = workload.generate_count(1500)
        estimate = estimate_zipf_s(graph, trace)
        rows.append(
            {
                "true_s": true_s,
                "estimated_s": estimate.s,
                "abs_error": abs(estimate.s - true_s),
                "samples": estimate.samples,
            }
        )
    emit_table(
        format_table(rows, title="E13 — Zipf s recovery from simulated traces")
    )
    assert all(row["abs_error"] < 0.5 for row in rows)

    # rate recovery with exact Poisson CIs
    workload = PoissonWorkload(
        ModifiedZipf(graph, s=1.0), {v: 1.0 for v in graph.nodes}, seed=5
    )
    horizon = 300.0
    trace = list(workload.generate(horizon))
    estimates = estimate_sender_rates(trace, horizon)
    hits = sum(e.contains(1.0) for e in estimates.values())
    emit_table(
        format_table(
            [{"senders": len(estimates), "ci_covering_truth": hits}],
            title="E13 — per-sender rate CIs (95%) covering the true rate",
        )
    )
    assert hits >= 0.8 * len(estimates)

    small_trace = trace[:200]
    benchmark(lambda: estimate_zipf_s(graph, small_trace, coarse_points=10,
                                      refine_iterations=10))


def test_e13_cost_model_ablation(benchmark, emit_table, profitable_params):
    """Guasoni-style discounting shrinks optimal channel counts as the
    channel lifetime (and hence forgone interest) grows."""
    graph = barabasi_albert_snapshot(12, seed=7)
    rows = []
    for lifetime in (0.1, 2.0, 10.0, 50.0):
        cost_model = DiscountedOpportunityCost(
            onchain_cost=profitable_params.onchain_cost,
            interest_rate=0.05,
            lifetime=lifetime,
        )
        model = JoiningUserModel(
            graph, "u", profitable_params,
            revenue_mode="fixed-rate", cost_model=cost_model,
        )
        result = greedy_fixed_funds(
            model, budget=8.0, lock=4.0, objective="utility"
        )
        rows.append(
            {
                "lifetime": lifetime,
                "effective_rate": cost_model.effective_linear_rate(),
                "channels": len(result.strategy),
                "utility": result.objective_value,
            }
        )
    emit_table(
        format_table(
            rows, title="E13 — discounted (interest-rate) cost model ablation"
        )
    )
    # longer lifetimes => heavier locking cost => weakly lower utility
    utilities = [row["utility"] for row in rows]
    assert all(u2 <= u1 + 1e-9 for u1, u2 in zip(utilities, utilities[1:]))
    rates = [row["effective_rate"] for row in rows]
    assert all(r2 >= r1 for r1, r2 in zip(rates, rates[1:]))

    model = JoiningUserModel(
        graph, "u2", profitable_params, revenue_mode="fixed-rate",
        cost_model=DiscountedOpportunityCost(0.4, 0.05, 10.0),
    )
    benchmark(lambda: greedy_fixed_funds(model, budget=8.0, lock=4.0,
                                         objective="utility"))


def test_e13_htlc_hold_time_contention(benchmark, emit_table):
    """In-flight capital is real opportunity cost: longer HTLC holds mean
    more contention and lower effective success under load."""

    def run(hold: float):
        graph = ChannelGraph.from_edges(
            [("a", "b"), ("b", "c"), ("c", "d")], balance=3.0
        )
        dist = UniformDistribution.from_graph(graph)
        workload = PoissonWorkload(dist, {n: 2.0 for n in graph.nodes}, seed=9)
        engine = SimulationEngine(
            graph, payment_mode="htlc", seed=9, htlc_hold_mean=hold
        )
        engine.schedule_workload(workload, horizon=40.0)
        metrics = engine.run()
        resolved = metrics.succeeded + metrics.failed
        return (
            metrics.succeeded / resolved if resolved else 0.0,
            metrics.htlc_locked_peak,
        )

    rows = []
    for hold in (0.01, 0.5, 2.0, 5.0):
        success, peak = run(hold)
        rows.append(
            {"hold_mean": hold, "success_rate": success, "locked_peak": peak}
        )
    emit_table(
        format_table(
            rows, title="E13 — HTLC hold time vs success under contention"
        )
    )
    assert rows[0]["success_rate"] > rows[-1]["success_rate"]
    assert rows[-1]["locked_peak"] >= rows[0]["locked_peak"]

    benchmark(lambda: run(0.5))
