"""E2 — Figure 2: the worked joining example.

E joins {A, B, C, D} (a path A-B-C-D): E sends 1 tx/month to B, A sends
9 tx/month to D, budget covers two channels plus 19 spare coins. The paper
says the optimum connects to A and D with sizes 10 and 9. We regenerate
the full two-channel utility table and verify by simulation that the
10/9 funding carries the month's payments.
"""

from itertools import combinations

from repro.analysis.tables import format_table
from repro.core.strategy import Action, Strategy
from repro.core.utility import JoiningUserModel
from repro.network.fees import ConstantFee
from repro.network.graph import ChannelGraph
from repro.params import ModelParameters
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import PaymentEvent
from repro.transactions.distributions import EmpiricalDistribution


def build_world():
    graph = ChannelGraph()
    for u, v in [("A", "B"), ("B", "C"), ("C", "D")]:
        graph.add_channel(u, v, 20.0, 20.0)
    params = ModelParameters(
        onchain_cost=1.0,
        opportunity_rate=0.001,
        fee_avg=1.0,
        fee_out_avg=1.0,
        total_tx_rate=9.0,
        user_tx_rate=1.0,
        zipf_s=1.0,
    )
    distribution = EmpiricalDistribution(
        {"A": {"D": 1.0}, "B": {"A": 1.0}, "C": {"A": 1.0}, "D": {"A": 1.0}}
    )
    model = JoiningUserModel(
        graph,
        "E",
        params,
        distribution=distribution,
        own_probs={"B": 1.0},
        sender_rates={"A": 9.0, "B": 0.0, "C": 0.0, "D": 0.0},
    )
    return graph, model


def test_e02_optimal_pair_is_a_d(benchmark, emit_table):
    _graph, model = build_world()
    rows = []
    for pair in combinations(["A", "B", "C", "D"], 2):
        strategy = Strategy([Action(p, 9.5) for p in pair])
        rows.append(
            {
                "channels": "+".join(pair),
                "E_rev": model.expected_revenue(strategy),
                "E_fees": model.expected_fees(strategy),
                "utility": model.utility(strategy),
            }
        )
    rows.sort(key=lambda r: r["utility"], reverse=True)
    emit_table(
        format_table(rows, title="E2 / Figure 2 — two-channel strategies for E")
    )
    assert rows[0]["channels"] in ("A+D", "D+A")

    benchmark(
        lambda: model.utility(Strategy([Action("A", 10.0), Action("D", 9.0)]))
    )


def test_e02_simulated_month_with_10_9_funding(emit_table, benchmark):
    _graph, model = build_world()

    def run_month():
        sim_graph = model.with_strategy(
            Strategy([Action("A", 10.0), Action("D", 9.0)])
        )
        engine = SimulationEngine(sim_graph, fee=ConstantFee(0.0))
        engine.schedule(
            PaymentEvent(time=0.5, sender="E", receiver="B", amount=1.0)
        )
        for i in range(9):
            engine.schedule(
                PaymentEvent(time=1.0 + i, sender="A", receiver="D", amount=1.0)
            )
        return engine.run()

    metrics = benchmark(run_month)
    emit_table(
        format_table(
            [
                {
                    "funding": "A:10 D:9",
                    "attempted": metrics.attempted,
                    "succeeded": metrics.succeeded,
                    "failed": metrics.failed,
                }
            ],
            title="E2 — simulated month under the paper's funding",
        )
    )
    assert metrics.succeeded == 10
    assert metrics.failed == 0
