"""E10 — Theorem 11: the circle stops being a NE beyond some size n0.

Sweeps circle size at a=b=1, l=0.5, s=0 and reports per size:
* whether any deviation improves (full structured family);
* the best *single-chord* deviation — the proof's construction — with the
  ring distance of its target (the proof connects to the opposite node).

Shape reproduced: small circles are stable, a crossover n0 exists, the
instability persists for all n >= n0, the winning chord is the opposite
node (ring distance n//2), and its gain grows with n (the proof's
asymptotic comparison b·n²·5/16 vs b·n²/4).
"""

from repro.analysis.tables import format_table
from repro.equilibrium.deviations import Deviation, apply_deviation
from repro.equilibrium.nash import best_response
from repro.equilibrium.node_utility import NetworkGameModel
from repro.equilibrium.topologies import circle, node_labels

EDGE_COST = 0.5


def build_model() -> NetworkGameModel:
    return NetworkGameModel(a=1.0, b=1.0, edge_cost=EDGE_COST, zipf_s=0.0)


def best_single_chord(graph, model, n: int):
    """Best single-added-chord deviation for v000 (the proof's move)."""
    labels = node_labels(n)
    base = model.node_utility(graph, "v000")
    best_k, best_gain = 0, 0.0
    for k in range(2, n // 2 + 1):
        deviation = Deviation(frozenset(), frozenset({labels[k]}))
        deviated = apply_deviation(graph, "v000", deviation)
        gain = model.node_utility(deviated, "v000") - base
        if gain > best_gain:
            best_gain, best_k = gain, k
    return best_k, best_gain


def test_e10_crossover(benchmark, emit_table):
    model = build_model()
    rows = []
    for n in range(4, 15):
        graph = circle(n)
        # the circle is vertex-transitive: checking one node is exact
        response = best_response(
            graph, "v000", model, mode="structured", seed=0
        )
        chord_k, chord_gain = best_single_chord(graph, model, n)
        rows.append(
            {
                "n": n,
                "is_ne": not response.can_improve,
                "best_gain": response.gain if response.can_improve else 0.0,
                "best_chord_dist": chord_k,
                "opposite": n // 2,
                "chord_gain": chord_gain,
            }
        )
    emit_table(
        format_table(
            rows,
            title=(
                "E10 / Thm 11 — circle stability vs size "
                f"(a=b=1, l={EDGE_COST}, s=0)"
            ),
        )
    )
    stable = [row["n"] for row in rows if row["is_ne"]]
    unstable = [row["n"] for row in rows if not row["is_ne"]]
    assert unstable, "large circles must be unstable"
    n0 = min(unstable)
    # small circles are stable at these parameters; crossover exists
    assert stable and max(stable) < n0 + 1
    # the instability persists for every n >= n0 (the 'for all n >= n0')
    assert all(not row["is_ne"] for row in rows if row["n"] >= n0)
    # the proof's construction: the winning chord reaches the opposite node
    for row in rows:
        if row["n"] >= n0 and row["chord_gain"] > 0:
            assert row["best_chord_dist"] == row["opposite"], row
    # and its gain grows with n
    gains = [row["chord_gain"] for row in rows if row["n"] >= n0]
    assert all(g2 >= g1 - 1e-9 for g1, g2 in zip(gains, gains[1:]))

    benchmark(
        lambda: best_response(
            circle(10), "v000", build_model(), mode="structured", seed=0
        )
    )
