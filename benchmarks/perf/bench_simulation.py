#!/usr/bin/env python
"""Event-vs-batched simulation benchmark: payments per second.

Replays one pre-generated Poisson trace (fixed-size payments, linear
fees, ``path_selection="random"``) through both simulation backends on
the same BA snapshot and reports wall-clock throughput plus the
speedup. Every row also records a parity proof — identical
success/failure counts and the maximum absolute per-node revenue gap —
so the speedup numbers can never come from silently diverging results.

Run:
    PYTHONPATH=src python benchmarks/perf/bench_simulation.py
    PYTHONPATH=src python benchmarks/perf/bench_simulation.py --smoke

Writes ``BENCH_simulation.json`` (see ``--output``). CI gates the smoke
rows against the committed baseline via ``benchmarks/perf/gate.py``.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from dataclasses import asdict
from typing import Dict

from repro import __version__
from repro.obs import Histogram, ObsSession
from repro.scenarios import (
    FeeSpec,
    Scenario,
    SimulationSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.scenarios.runner import build_fee, build_topology, build_workload
from repro.simulation.engine import SimulationEngine
from repro.simulation.fastpath import BatchedSimulationEngine

# (n, horizon): horizon 100 at unit per-node rate ~= 100 * n payments,
# so the full n=1000 case replays ~100k payments (the ISSUE 4 target).
FULL_CASES = ((200, 15.0), (1000, 100.0))
SMOKE_CASES = ((200, 15.0),)
SEED = 7
#: Lognormal capacity location: a well-capitalised network (~74%
#: success at n=1000), the regime simulation studies usually target.
#: Depletion-heavy graphs (the generator default, capacity_mu=1.5)
#: still run exactly but cache-invalidate more; the batched backend's
#: edge there shrinks to ~3-4x.
CAPACITY_MU = 3.0


def scenario_for(n: int, horizon: float) -> Scenario:
    return Scenario(
        topology=TopologySpec("ba", {"n": n, "capacity_mu": CAPACITY_MU}),
        workload=WorkloadSpec("poisson", {"zipf_s": 1.0}),
        fee=FeeSpec("linear", {"base": 0.01, "rate": 0.001}),
        simulation=SimulationSpec(horizon=horizon),
        name=f"bench-simulation-{n}",
        seed=SEED,
    )


def bench_case(n: int, horizon: float) -> Dict[str, object]:
    scenario = scenario_for(n, horizon)
    event_graph = build_topology(scenario.topology, seed=SEED)
    workload = build_workload(scenario, event_graph)
    trace = list(workload.generate(horizon))
    fee = build_fee(scenario)

    start = time.perf_counter()
    event_engine = SimulationEngine(event_graph, fee=fee, seed=SEED)
    event_engine.schedule_transactions(trace)
    event_metrics = event_engine.run()
    event_seconds = time.perf_counter() - start

    batched_graph = build_topology(scenario.topology, seed=SEED)
    batched_engine = BatchedSimulationEngine(batched_graph, fee=fee, seed=SEED)
    start = time.perf_counter()
    batched_metrics = batched_engine.run_trace(trace)
    batched_seconds = time.perf_counter() - start

    counts_identical = (
        event_metrics.succeeded == batched_metrics.succeeded
        and event_metrics.failed == batched_metrics.failed
        and dict(event_metrics.failure_reasons)
        == dict(batched_metrics.failure_reasons)
    )
    nodes = set(event_metrics.revenue) | set(batched_metrics.revenue)
    revenue_gap = max(
        (
            abs(
                event_metrics.revenue.get(node, 0.0)
                - batched_metrics.revenue.get(node, 0.0)
            )
            for node in nodes
        ),
        default=0.0,
    )
    payments = len(trace)
    return {
        "n": n,
        "horizon": horizon,
        "payments": payments,
        "success_rate": event_metrics.success_rate,
        "event_seconds": event_seconds,
        "batched_seconds": batched_seconds,
        "event_payments_per_sec": payments / event_seconds,
        "batched_payments_per_sec": payments / batched_seconds,
        "speedup": event_seconds / batched_seconds,
        "counts_identical": counts_identical,
        "parity_max_abs_gap": revenue_gap,
        "fastpath_stats": asdict(batched_engine.stats),
        "obs": _profiled_stats(scenario, trace, fee),
    }


#: Per-edge conflict-count distribution bounds (conflicts per edge).
_EDGE_CONFLICT_BOUNDS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 500.0)


def _profiled_stats(scenario: Scenario, trace, fee) -> Dict[str, object]:
    """Untimed profiled replay: cache rates + edge-conflict distribution.

    Runs outside the timed sections, so it costs the benchmark nothing
    but records *where* the batched backend's cache pressure lives —
    the conflict/tree-hit rates and the histogram of per-edge conflict
    counts that explain the speedup numbers above.
    """
    obs = ObsSession(enabled=True, profile=True)
    graph = build_topology(scenario.topology, seed=SEED)
    engine = BatchedSimulationEngine(graph, fee=fee, seed=SEED, obs=obs)
    engine.run_trace(trace)
    telemetry = obs.build_telemetry(top_edges=10)
    histogram = Histogram("edge_conflicts", bounds=_EDGE_CONFLICT_BOUNDS)
    for count in obs.edge_conflicts.values():
        histogram.observe(float(count))
    return {
        "conflict_rate": telemetry.cache.get("conflict_rate", 0.0),
        "tree_hit_rate": telemetry.cache.get("tree_hit_rate", 0.0),
        "top_conflicting_edges": [
            [str(src), str(dst), count]
            for src, dst, count in telemetry.top_conflicting_edges
        ],
        "edge_conflicts_histogram": histogram.to_dict(),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small case only, for the CI perf-regression job",
    )
    parser.add_argument(
        "--output", default="BENCH_simulation.json",
        help="where to write the results JSON",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="exit non-zero if any case's batched/event speedup falls "
        "below this (standalone guard; CI uses gate.py floors instead)",
    )
    args = parser.parse_args()
    cases = SMOKE_CASES if args.smoke else FULL_CASES

    results = []
    for n, horizon in cases:
        row = bench_case(n, horizon)
        results.append(row)
        print(
            f"n={row['n']:<5d} payments={row['payments']:>7d}  "
            f"event={row['event_payments_per_sec']:>7.0f}/s  "
            f"batched={row['batched_payments_per_sec']:>7.0f}/s  "
            f"speedup={row['speedup']:.1f}x  "
            f"parity_gap={row['parity_max_abs_gap']:.2e}  "
            f"counts_identical={row['counts_identical']}"
        )

    document = {
        "benchmark": "simulation",
        "version": __version__,
        "mode": "smoke" if args.smoke else "full",
        "seed": SEED,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": results,
    }
    with open(args.output, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")

    broken = [row for row in results if not row["counts_identical"]]
    if broken:
        raise SystemExit(f"backend parity broken: {broken}")
    if args.min_speedup is not None:
        slow = [row for row in results if row["speedup"] < args.min_speedup]
        if slow:
            raise SystemExit(
                f"simulation speedup regression: {slow} below "
                f"{args.min_speedup}x"
            )


if __name__ == "__main__":
    main()
