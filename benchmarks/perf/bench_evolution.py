#!/usr/bin/env python
"""Evolution-engine benchmark: epochs per second at scale.

Runs the full epoch loop — Poisson arrivals (5/epoch, random-attach
joins), uniform churn with realised closure costs, a batched traffic
epoch, and an empirical best-response sweep (sampled deviation family) —
on a BA snapshot and reports wall-clock epochs/sec plus the per-epoch
payment volume. The config exercises every phase at the ISSUE target
scale (n=500, arrival rate 5/epoch) while keeping the best-response
phase bounded (``sample`` nodes x ``moves_per_node`` candidate replays).

Run:
    PYTHONPATH=src python benchmarks/perf/bench_evolution.py
    PYTHONPATH=src python benchmarks/perf/bench_evolution.py --smoke

Writes ``BENCH_evolution.json`` (see ``--output``). CI gates the smoke
rows against the committed baseline via ``benchmarks/perf/gate.py``.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from typing import Dict

from repro import __version__
from repro.scenarios import (
    ChurnSpec,
    EvolutionSpec,
    FeeSpec,
    GrowthSpec,
    Scenario,
    ScenarioRunner,
    TopologySpec,
    WorkloadSpec,
)

# (n, epochs): the ISSUE target is n=500; epochs only scale wall-clock.
FULL_CASES = ((200, 10), (500, 10))
SMOKE_CASES = ((500, 3),)
SEED = 7
ARRIVAL_RATE = 5.0


def scenario_for(n: int, epochs: int) -> Scenario:
    return Scenario(
        topology=TopologySpec("ba", {"n": n, "capacity_mu": 3.0}),
        workload=WorkloadSpec(
            "poisson", {"rate": 0.05, "zipf_s": 1.0}
        ),
        fee=FeeSpec("linear", {"base": 0.05, "rate": 0.01}),
        evolution=EvolutionSpec(
            epochs=epochs,
            growth=GrowthSpec("poisson", {
                "rate": ARRIVAL_RATE,
                "algorithm": "random-attach",
                "params": {"k": 2, "lock": 1.0},
            }),
            churn=ChurnSpec("uniform", {"rate": 0.005}),
            utility="empirical",
            traffic_horizon=2.0,
            sample=2,
            mode="sampled",
            moves_per_node=6,
            edge_cost=0.01,
            patience=epochs + 1,  # never stop early: fixed work per row
            final_nash_check=False,
        ),
        name=f"bench-evolution-{n}",
        seed=SEED,
    )


def bench_case(n: int, epochs: int) -> Dict[str, object]:
    scenario = scenario_for(n, epochs)
    start = time.perf_counter()
    result = ScenarioRunner().run(scenario)
    seconds = time.perf_counter() - start
    trajectory = result.evolution
    payments = sum(r.attempted for r in trajectory.records)
    return {
        "n": n,
        "epochs": trajectory.epochs_run,
        "seconds": seconds,
        "epochs_per_sec": trajectory.epochs_run / seconds,
        "payments_simulated": payments,
        "arrival_rate": ARRIVAL_RATE,
        "final_nodes": trajectory.final().nodes,
        "final_channels": trajectory.final().channels,
        "total_arrivals": trajectory.totals["total_arrivals"],
        "total_departures": trajectory.totals["total_departures"],
        "total_moves": trajectory.totals["total_moves"],
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="n=500 with few epochs, for the CI perf-regression job",
    )
    parser.add_argument(
        "--output", default="BENCH_evolution.json",
        help="where to write the results JSON",
    )
    parser.add_argument(
        "--min-epochs-per-sec", type=float, default=None,
        help="exit non-zero if any case falls below this throughput "
        "(standalone guard; CI uses gate.py floors instead)",
    )
    args = parser.parse_args()
    cases = SMOKE_CASES if args.smoke else FULL_CASES

    results = []
    for n, epochs in cases:
        row = bench_case(n, epochs)
        results.append(row)
        print(
            f"n={row['n']:<5d} epochs={row['epochs']:>3d}  "
            f"epochs/sec={row['epochs_per_sec']:>6.2f}  "
            f"payments={row['payments_simulated']:>6d}  "
            f"arrivals={row['total_arrivals']}  "
            f"departures={row['total_departures']}  "
            f"moves={row['total_moves']}"
        )

    document = {
        "benchmark": "evolution",
        "version": __version__,
        "mode": "smoke" if args.smoke else "full",
        "seed": SEED,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": results,
    }
    with open(args.output, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")

    if args.min_epochs_per_sec is not None:
        slow = [
            row for row in results
            if row["epochs_per_sec"] < args.min_epochs_per_sec
        ]
        if slow:
            raise SystemExit(
                f"evolution throughput regression: {slow} below "
                f"{args.min_epochs_per_sec} epochs/sec"
            )


if __name__ == "__main__":
    main()
