#!/usr/bin/env python
"""Adversarial traffic throughput: attacker events/sec under honest load.

Times the full attack stage — baseline simulation, attacked simulation
with adversarial HTLCs interleaved on the shared event queue, damage
report — for each builtin strategy on star topologies of growing size.
The headline number is **attacker actions per wall-clock second**
(lock attempts + resolutions processed by the engine), with the honest
payment throughput of the same run alongside, so regressions in either
the strategies or the slot-tracking substrate show up directly. Every
case runs on both simulation backends — the event engine and the
vectorised batched engine — and the bench asserts their AttackReports
are identical before recording the batched rows' speedup.

Run:
    PYTHONPATH=src python benchmarks/perf/bench_attacks.py
    PYTHONPATH=src python benchmarks/perf/bench_attacks.py --smoke

Writes ``BENCH_attacks.json`` (see ``--output``).
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from typing import Dict

from repro import __version__
from repro.analysis.resilience import default_attack_scenario
from repro.attacks import AttackRunner
from repro.scenarios import Scenario, TopologySpec

STRATEGIES = ("slow-jamming", "liquidity-depletion", "fee-griefing")
BACKENDS = ("event", "batched")
FULL_CASES = ((16, 40.0), (64, 40.0))  # (leaves, horizon)
# The smoke case repeats a full case exactly so gate.py can match its
# rows against the committed BENCH_attacks.json baseline.
SMOKE_CASES = ((16, 40.0),)
SEED = 7


def attack_scenario(
    strategy: str, leaves: int, horizon: float, backend: str
) -> Scenario:
    scenario = default_attack_scenario(
        TopologySpec("star", {"leaves": leaves, "balance": 10.0}),
        strategy,
        {"budget": 1000.0},
        horizon=horizon,
        seed=SEED,
        name=f"bench-{strategy}",
    )
    return scenario.with_overrides({"simulation.backend": backend})


def bench_case(
    strategy: str, leaves: int, horizon: float, backend: str
) -> Dict[str, object]:
    scenario = attack_scenario(strategy, leaves, horizon, backend)
    start = time.perf_counter()
    outcome = AttackRunner().run(scenario)
    seconds = time.perf_counter() - start
    report = outcome.report
    # Every launch is one lock walk; every held HTLC also costs one
    # resolution event through the engine queue.
    attacker_events = report.attacks_launched + report.attacks_held
    honest_events = outcome.attacked_metrics.attempted
    return {
        "strategy": strategy,
        "leaves": leaves,
        "backend": backend,
        "horizon": horizon,
        "wall_seconds": seconds,
        "attacker_events": attacker_events,
        "honest_payments": honest_events,
        "attacker_events_per_sec": attacker_events / seconds,
        "honest_payments_per_sec": honest_events / seconds,
        "victim_revenue_delta": report.victim_revenue_delta,
        "locked_liquidity_integral": report.locked_liquidity_integral,
        "report": report.to_dict(),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small case only, for the CI perf smoke job",
    )
    parser.add_argument(
        "--output", default="BENCH_attacks.json",
        help="where to write the results JSON",
    )
    parser.add_argument(
        "--min-throughput", type=float, default=None,
        help="exit non-zero if any strategy processes fewer attacker "
        "events/sec than this (CI regression guard)",
    )
    args = parser.parse_args()
    cases = SMOKE_CASES if args.smoke else FULL_CASES

    results = []
    for leaves, horizon in cases:
        for strategy in STRATEGIES:
            rows = {
                backend: bench_case(strategy, leaves, horizon, backend)
                for backend in BACKENDS
            }
            # Parity first: the batched replay must be bit-identical
            # before its speedup means anything.
            reports = [row.pop("report") for row in rows.values()]
            if reports[0] != reports[1]:
                raise SystemExit(
                    f"backend divergence on {strategy} leaves={leaves}: "
                    "event and batched AttackReports differ"
                )
            rows["batched"]["speedup"] = (
                rows["batched"]["attacker_events_per_sec"]
                / rows["event"]["attacker_events_per_sec"]
            )
            for row in rows.values():
                results.append(row)
                speedup = (
                    f"  {row['speedup']:.2f}x" if "speedup" in row else ""
                )
                print(
                    f"{row['strategy']:20s} leaves={row['leaves']:<4d} "
                    f"{row['backend']:8s} "
                    f"attacker={row['attacker_events']:>7d} ev "
                    f"({row['attacker_events_per_sec']:>9.0f}/s)  "
                    f"honest={row['honest_payments']:>6d} pay "
                    f"({row['honest_payments_per_sec']:>7.0f}/s)  "
                    f"wall={row['wall_seconds']*1e3:8.1f}ms{speedup}"
                )

    document = {
        "benchmark": "attacks",
        "version": __version__,
        "mode": "smoke" if args.smoke else "full",
        "seed": SEED,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": results,
    }
    with open(args.output, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")

    if args.min_throughput is not None:
        slow = [
            row for row in results
            if row["attacker_events_per_sec"] < args.min_throughput
        ]
        if slow:
            raise SystemExit(
                f"attacker throughput regression: {slow} below "
                f"{args.min_throughput}/s"
            )


if __name__ == "__main__":
    main()
