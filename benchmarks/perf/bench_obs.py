#!/usr/bin/env python
"""Observability overhead benchmark: obs-off vs obs-disabled throughput.

Replays one pre-generated Poisson trace through the batched backend
three times on identical graphs — instrumentation disabled (the
default null session), enabled (what ``REPRO_OBS=1`` buys: metrics
registry + phase timing), and enabled in *profile* mode (additionally
per-edge conflict attribution, the costlier opt-in behind
``repro profile``) — and reports the throughput ratios. The design
contract of :mod:`repro.obs` is "zero overhead when disabled, a few
percent when enabled"; ``throughput_ratio`` (on/off) is the gated
budget, ``profile_ratio`` records what profile mode costs on top.
Every row carries a parity proof (bit-identical metrics documents
across all three runs), so the overhead numbers can never come from
diverging results.

Run:
    PYTHONPATH=src python benchmarks/perf/bench_obs.py
    PYTHONPATH=src python benchmarks/perf/bench_obs.py --smoke

Writes ``BENCH_obs.json`` (see ``--output``). CI gates the smoke rows
against the committed baseline via ``benchmarks/perf/gate.py`` with
``--floor-relative 0.90``.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from typing import Dict

from repro import __version__
from repro.obs import ObsSession
from repro.scenarios import (
    FeeSpec,
    Scenario,
    SimulationSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.scenarios.runner import build_fee, build_topology, build_workload
from repro.simulation.fastpath import BatchedSimulationEngine

# Same shape as bench_simulation: the full n=1000 case replays ~100k
# payments, the smoke case stays CI-sized.
FULL_CASES = ((200, 15.0), (1000, 100.0))
SMOKE_CASES = ((200, 15.0),)
SEED = 7
CAPACITY_MU = 3.0
#: Timed repeats per side; best-of damps scheduler noise.
REPEATS = 3


def scenario_for(n: int, horizon: float) -> Scenario:
    return Scenario(
        topology=TopologySpec("ba", {"n": n, "capacity_mu": CAPACITY_MU}),
        workload=WorkloadSpec("poisson", {"zipf_s": 1.0}),
        fee=FeeSpec("linear", {"base": 0.01, "rate": 0.001}),
        simulation=SimulationSpec(horizon=horizon, backend="batched"),
        name=f"bench-obs-{n}",
        seed=SEED,
    )


def _timed_run(scenario: Scenario, trace, fee, obs: ObsSession):
    """One timed batched replay; returns (seconds, metrics)."""
    graph = build_topology(scenario.topology, seed=SEED)
    engine = BatchedSimulationEngine(graph, fee=fee, seed=SEED, obs=obs)
    start = time.perf_counter()
    metrics = engine.run_trace(trace)
    return time.perf_counter() - start, metrics


def bench_case(n: int, horizon: float) -> Dict[str, object]:
    scenario = scenario_for(n, horizon)
    graph = build_topology(scenario.topology, seed=SEED)
    workload = build_workload(scenario, graph)
    trace = list(workload.generate(horizon))
    fee = build_fee(scenario)

    # A fresh session per repeat: each run measures cold-registry cost,
    # the shape every instrumented run actually pays. Repeats are
    # interleaved and the order rotates each round, so both slow drift
    # in machine load and position-in-round effects (allocator/GC debt
    # left by the previous run) hit all three configurations evenly.
    configs = (
        ("off", lambda: ObsSession(enabled=False)),
        ("on", lambda: ObsSession(enabled=True)),
        ("profile", lambda: ObsSession(enabled=True, profile=True)),
    )
    best: Dict[str, tuple] = {}
    for round_index in range(REPEATS):
        shift = round_index % len(configs)
        for key, make_session in configs[shift:] + configs[:shift]:
            sample = _timed_run(scenario, trace, fee, make_session())
            if key not in best or sample[0] < best[key][0]:
                best[key] = sample
    off_seconds, off_metrics = best["off"]
    on_seconds, on_metrics = best["on"]
    profile_seconds, profile_metrics = best["profile"]

    off_doc = off_metrics.to_dict()
    parity = (
        off_doc == on_metrics.to_dict()
        and off_doc == profile_metrics.to_dict()
    )
    payments = len(trace)
    off_pps = payments / off_seconds
    on_pps = payments / on_seconds
    profile_pps = payments / profile_seconds
    return {
        "n": n,
        "horizon": horizon,
        "payments": payments,
        "success_rate": off_metrics.success_rate,
        "seconds_off": off_seconds,
        "seconds_on": on_seconds,
        "seconds_profile": profile_seconds,
        "payments_per_sec_off": off_pps,
        "payments_per_sec_on": on_pps,
        "payments_per_sec_profile": profile_pps,
        "throughput_ratio": on_pps / off_pps,
        "profile_ratio": profile_pps / off_pps,
        "overhead_pct": 100.0 * (on_seconds - off_seconds) / off_seconds,
        "parity_identical": parity,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small case only, for the CI perf-regression job",
    )
    parser.add_argument(
        "--output", default="BENCH_obs.json",
        help="where to write the results JSON",
    )
    parser.add_argument(
        "--max-overhead", type=float, default=None,
        help="exit non-zero if any case's enabled-mode overhead exceeds "
        "this percentage (standalone guard; CI uses gate.py floors)",
    )
    args = parser.parse_args()
    cases = SMOKE_CASES if args.smoke else FULL_CASES

    results = []
    for n, horizon in cases:
        row = bench_case(n, horizon)
        results.append(row)
        print(
            f"n={row['n']:<5d} payments={row['payments']:>7d}  "
            f"off={row['payments_per_sec_off']:>7.0f}/s  "
            f"on={row['payments_per_sec_on']:>7.0f}/s  "
            f"profile={row['payments_per_sec_profile']:>7.0f}/s  "
            f"ratio={row['throughput_ratio']:.3f}  "
            f"overhead={row['overhead_pct']:+.1f}%  "
            f"parity={row['parity_identical']}"
        )

    document = {
        "benchmark": "obs",
        "version": __version__,
        "mode": "smoke" if args.smoke else "full",
        "seed": SEED,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": results,
    }
    with open(args.output, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")

    broken = [row for row in results if not row["parity_identical"]]
    if broken:
        raise SystemExit(f"obs-on/obs-off parity broken: {broken}")
    if args.max_overhead is not None:
        slow = [
            row for row in results
            if row["overhead_pct"] > args.max_overhead
        ]
        if slow:
            raise SystemExit(
                f"obs overhead regression: {slow} above "
                f"{args.max_overhead}%"
            )


if __name__ == "__main__":
    main()
