#!/usr/bin/env python
"""Old-vs-new graph-core benchmark: networkx paths against CSR views.

Times the two workloads the view redesign targets, on BA snapshots:

* **pair_weighted_betweenness** — the single hottest loop in the codebase
  (Eq. 2/Eq. 3): legacy dict-of-dict Brandes on an ``nx.DiGraph`` vs the
  vectorised accumulation on a :class:`~repro.network.views.GraphView`.
* **greedy_join** — Algorithm 1 end-to-end through
  :class:`~repro.core.utility.JoiningUserModel`, ``backend="networkx"``
  vs ``backend="views"`` (fixed-rate revenue mode, the Thm 4 regime).

Every timing pair also records the maximum absolute result gap, so the
speedup numbers are backed by a parity proof in the same JSON.

Run:
    PYTHONPATH=src python benchmarks/perf/bench_graphcore.py
    PYTHONPATH=src python benchmarks/perf/bench_graphcore.py --smoke

Writes ``BENCH_graphcore.json`` (see ``--output``).
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from typing import Callable, Dict, List

from repro import __version__
from repro.core.algorithms.greedy import greedy_fixed_funds
from repro.core.utility import JoiningUserModel
from repro.network.betweenness import pair_weighted_betweenness
from repro.params import ModelParameters
from repro.snapshots import barabasi_albert_snapshot

FULL_SIZES = (100, 500, 1000)
# Smoke straddles SMALL_GRAPH_NODES so both the python fallback (100)
# and the vectorised CSR branch (200) are regression-guarded in CI.
SMOKE_SIZES = (100, 200)
SEED = 7


def _time(fn: Callable[[], object], min_repeats: int, budget: float):
    """Best-of timing: repeat until ``budget`` seconds or ``min_repeats``."""
    times: List[float] = []
    result = None
    while len(times) < min_repeats or sum(times) < budget:
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
        if len(times) >= 50:
            break
    return min(times), len(times), result


def bench_betweenness(n: int, budget: float) -> Dict[str, object]:
    graph = barabasi_albert_snapshot(n, seed=SEED)
    view = graph.view(directed=True)
    digraph = view.to_networkx()
    old_seconds, old_reps, old_result = _time(
        lambda: pair_weighted_betweenness(digraph), 3, budget
    )
    new_seconds, new_reps, new_result = _time(
        lambda: pair_weighted_betweenness(view), 3, budget
    )
    gap = max(
        abs(old_result.node[node] - new_result.node[node])
        for node in old_result.node
    )
    edge_gap = max(
        abs(old_result.edge.get(e, 0.0) - new_result.edge.get(e, 0.0))
        for e in set(old_result.edge) | set(new_result.edge)
    )
    return {
        "workload": "pair_weighted_betweenness",
        "n": n,
        "old_seconds": old_seconds,
        "new_seconds": new_seconds,
        "speedup": old_seconds / new_seconds,
        "repeats": {"old": old_reps, "new": new_reps},
        "parity_max_abs_gap": max(gap, edge_gap),
    }


def bench_greedy(n: int, budget: float) -> Dict[str, object]:
    graph = barabasi_albert_snapshot(n, seed=SEED)
    params = ModelParameters(
        onchain_cost=0.5, total_tx_rate=10.0 * n, user_tx_rate=5.0
    )

    def run(backend: str):
        model = JoiningUserModel(
            graph, "joiner", params,
            revenue_mode="fixed-rate", backend=backend,
        )
        return greedy_fixed_funds(model, budget=3.0, lock=1.0)

    old_seconds, old_reps, old_result = _time(lambda: run("networkx"), 1, budget)
    new_seconds, new_reps, new_result = _time(lambda: run("views"), 1, budget)
    return {
        "workload": "greedy_join",
        "n": n,
        "old_seconds": old_seconds,
        "new_seconds": new_seconds,
        "speedup": old_seconds / new_seconds,
        "repeats": {"old": old_reps, "new": new_reps},
        "parity_max_abs_gap": abs(
            old_result.objective_value - new_result.objective_value
        ),
        "strategies_identical": (
            old_result.strategy.actions == new_result.strategy.actions
        ),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizes only, minimal repeats (CI regression guard)",
    )
    parser.add_argument(
        "--output", default="BENCH_graphcore.json",
        help="where to write the results JSON",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="exit non-zero if any pair_weighted_betweenness speedup "
        "falls below this (CI regression guard for the view cache)",
    )
    args = parser.parse_args()
    sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    budget = 0.2 if args.smoke else 1.0

    results = []
    for n in sizes:
        for bench in (bench_betweenness, bench_greedy):
            row = bench(n, budget)
            results.append(row)
            print(
                f"{row['workload']:28s} n={row['n']:<5d} "
                f"old={row['old_seconds']*1e3:9.2f}ms "
                f"new={row['new_seconds']*1e3:9.2f}ms "
                f"speedup={row['speedup']:6.2f}x "
                f"gap={row['parity_max_abs_gap']:.2e}"
            )

    document = {
        "benchmark": "graphcore",
        "version": __version__,
        "mode": "smoke" if args.smoke else "full",
        "seed": SEED,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": results,
    }
    with open(args.output, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")

    if args.min_speedup is not None:
        slow = [
            row for row in results
            if row["workload"] == "pair_weighted_betweenness"
            and row["speedup"] < args.min_speedup
        ]
        if slow:
            raise SystemExit(
                f"speedup regression: {slow} below {args.min_speedup}x"
            )


if __name__ == "__main__":
    main()
