#!/usr/bin/env python
"""Shared perf-regression gate: smoke results vs committed baselines.

Every perf benchmark writes a JSON document of result rows
(``BENCH_graphcore.json``, ``BENCH_attacks.json``,
``BENCH_simulation.json``). CI re-runs each benchmark in smoke mode and
this gate fails the job if a row's headline metric drops below a floor
derived from the committed baseline — so the floors track what the code
actually achieves instead of hand-maintained ``--min-*`` constants.

Rows are matched between the smoke run and the baseline on per-benchmark
key fields; smoke rows with no baseline counterpart are skipped (but at
least one row must match). Two floor classes keep the gate robust on
heterogeneous CI hardware:

* **relative** metrics (speedups — old-vs-new on the *same* machine)
  are hardware-independent and gate tight (default 0.7x baseline);
* **absolute** metrics (events/payments per second) vary with the
  runner, so they gate loosely (default 0.1x baseline) — still a hard
  stop for order-of-magnitude regressions.

Run:
    python benchmarks/perf/gate.py --results smoke.json \
        --baseline BENCH_simulation.json
"""

from __future__ import annotations

import argparse
import json
from typing import Dict, List, Tuple

#: benchmark name -> (row-matching key fields,
#:                    relative metrics, absolute metrics)
BENCHMARKS: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...], Tuple[str, ...]]] = {
    "graphcore": (("workload", "n"), ("speedup",), ()),
    "attacks": (
        ("strategy", "leaves", "backend"),
        (),
        ("attacker_events_per_sec",),
    ),
    "simulation": (
        ("n",),
        ("speedup",),
        ("batched_payments_per_sec",),
    ),
    "evolution": (("n",), (), ("epochs_per_sec",)),
    # throughput_ratio = obs-on / obs-off payments per second on the same
    # machine and run — relative by construction, so it gates tight; the
    # gate's floor-relative flag is the <=5% disabled-overhead budget.
    "obs": (("n",), ("throughput_ratio",), ("payments_per_sec_off",)),
}


def _row_key(row: Dict, fields: Tuple[str, ...]) -> Tuple:
    return tuple(row.get(field) for field in fields)


def check_floors(
    results_doc: Dict,
    baseline_doc: Dict,
    floor_relative: float,
    floor_absolute: float,
) -> List[str]:
    """Failure messages (empty = gate passes)."""
    name = results_doc.get("benchmark")
    if name != baseline_doc.get("benchmark"):
        return [
            f"benchmark mismatch: results are {name!r}, baseline is "
            f"{baseline_doc.get('benchmark')!r}"
        ]
    if name not in BENCHMARKS:
        return [f"unknown benchmark {name!r}; known: {sorted(BENCHMARKS)}"]
    key_fields, relative, absolute = BENCHMARKS[name]
    baseline_rows = {
        _row_key(row, key_fields): row
        for row in baseline_doc.get("results", [])
    }
    failures: List[str] = []
    matched = 0
    for row in results_doc.get("results", []):
        key = _row_key(row, key_fields)
        base = baseline_rows.get(key)
        if base is None:
            continue
        matched += 1
        checks = [(metric, floor_relative) for metric in relative]
        checks += [(metric, floor_absolute) for metric in absolute]
        for metric, floor in checks:
            if metric not in row or metric not in base:
                # A missing metric must fail loudly: skipping it would
                # silently disable the floor it carries.
                failures.append(
                    f"{name} {dict(zip(key_fields, key))}: metric "
                    f"{metric!r} missing from "
                    f"{'results' if metric not in row else 'baseline'} row"
                )
                continue
            threshold = floor * base[metric]
            if row[metric] < threshold:
                failures.append(
                    f"{name} {dict(zip(key_fields, key))}: {metric}="
                    f"{row[metric]:.4g} below floor {threshold:.4g} "
                    f"({floor}x baseline {base[metric]:.4g})"
                )
    if matched == 0:
        failures.append(
            f"{name}: no result row matches a baseline row on "
            f"{key_fields} — the gate checked nothing"
        )
    return failures


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--results", required=True, help="freshly-run benchmark JSON"
    )
    parser.add_argument(
        "--baseline", required=True, help="committed BENCH_*.json baseline"
    )
    parser.add_argument(
        "--floor-relative", type=float, default=0.7,
        help="floor multiplier for relative metrics (speedups)",
    )
    parser.add_argument(
        "--floor-absolute", type=float, default=0.1,
        help="floor multiplier for absolute metrics (throughput)",
    )
    args = parser.parse_args()
    with open(args.results) as handle:
        results_doc = json.load(handle)
    with open(args.baseline) as handle:
        baseline_doc = json.load(handle)
    failures = check_floors(
        results_doc, baseline_doc, args.floor_relative, args.floor_absolute
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        raise SystemExit(1)
    print(
        f"gate passed: {results_doc['benchmark']} within "
        f"{args.floor_relative}x (relative) / {args.floor_absolute}x "
        f"(absolute) of {args.baseline}"
    )


if __name__ == "__main__":
    main()
