"""Exception hierarchy for the ``repro`` package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch library errors without also
swallowing programming mistakes such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """A structural problem with a payment channel network graph."""


class NodeNotFound(GraphError):
    """A referenced node does not exist in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the channel graph")
        self.node = node


class ChannelNotFound(GraphError):
    """A referenced channel does not exist in the graph."""

    def __init__(self, u: object, v: object, channel_id: object = None) -> None:
        suffix = "" if channel_id is None else f" (channel id {channel_id!r})"
        super().__init__(f"no channel between {u!r} and {v!r}{suffix}")
        self.endpoints = (u, v)
        self.channel_id = channel_id


class DuplicateChannel(GraphError):
    """A channel with the same identifier already exists."""


class InsufficientBalance(ReproError):
    """A payment exceeds the sender-side balance of a channel."""

    def __init__(self, available: float, requested: float) -> None:
        super().__init__(
            f"payment of {requested} exceeds available balance {available}"
        )
        self.available = available
        self.requested = requested


class RoutingError(ReproError):
    """No feasible route exists for a payment."""


class HtlcError(ReproError):
    """An HTLC operation violated the protocol state machine.

    Also raised by :meth:`Channel.open_htlc
    <repro.network.channel.Channel.open_htlc>` when a channel direction has
    no free HTLC slot left (Lightning's ``max_accepted_htlcs`` cap).
    """


class BudgetExceeded(ReproError):
    """A strategy violates the joining user's budget constraint."""

    def __init__(self, cost: float, budget: float) -> None:
        super().__init__(f"strategy costs {cost} which exceeds budget {budget}")
        self.cost = cost
        self.budget = budget


class InvalidParameter(ReproError):
    """A model parameter is outside its valid domain."""


class SnapshotFormatError(ReproError):
    """A network snapshot file could not be parsed."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class ScenarioError(ReproError):
    """A scenario specification is malformed or cannot be executed."""


class ServiceError(ReproError):
    """A failure in the scenario service layer (store, job queue, daemon)."""


class UnknownPluginError(ScenarioError):
    """A scenario references a plugin key no registry entry matches."""

    def __init__(self, registry: str, key: str, known: object = ()) -> None:
        names = ", ".join(sorted(str(k) for k in known)) or "<none>"
        super().__init__(
            f"unknown {registry} {key!r}; registered: {names}"
        )
        self.registry = registry
        self.key = key
