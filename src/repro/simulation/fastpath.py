"""The batched simulation backend: vectorised epochs over view arrays.

The event engine pays two per-payment python costs that dominate large
runs: rebuilding the reduced :class:`~repro.network.views.GraphView`
after every successful payment (an O(channels) python loop) and
re-running BFS from scratch for every payment.
:class:`BatchedSimulationEngine` removes both while producing *exactly*
the same result:

* the full directed view is frozen **once**; balances live in one
  mutable float array indexed by CSR entry, and the reduced subgraph for
  a payment of size ``x`` is the boolean mask ``balances >= x`` — no
  python per-channel loop, ever;
* payments are processed in **epochs** — windows over which the reduced
  mask per amount threshold and the BFS shortest-path structure per
  (source, amount) pair are cached, so payments from the same sender
  reuse each other's BFS work;
* every balance update is logged, and cached state is only reused while
  it is *provably* identical to what the event engine would compute.
  A balance crossing an amount threshold (a **flip**) updates that
  amount's mask incrementally; a cached tree survives a flip unless the
  flipped edge interacts with its shortest-path DAG (an edge whose
  removal was not a DAG edge, or whose addition cannot create or
  shorten a shortest path, provably leaves ``dist``/``sigma``/the
  predecessor sets unchanged). Only a payment whose tree is actually
  invalidated — a **conflict** — pays for a fresh exact BFS;
* routing decisions therefore match the event engine payment for
  payment, including the RNG draws of ``path_selection="random"``,
  which go through the same walk code in the same trace order;
* per-node metrics accumulate into arrays (scatter-adds) and convert to
  the dict form of :class:`SimulationMetrics` once, at the end; final
  balances are written back to the channels once, at the end.

The backend supports ``payment_mode="instant"`` over simple graphs (no
parallel channels) and traces of payments only. HTLC holds, mid-run
channel open/close, and attack-strategy event injection need the event
queue — use ``backend="event"`` for those.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..determinism import resolve_seed
from ..errors import SimulationError
from ..network.fees import FeeFunction
from ..network.graph import ChannelGraph
from ..network.routing import (
    PaymentRouteRng,
    Router,
    small_bfs_structure,
    walk_small,
)
from ..network.views import (
    SMALL_GRAPH_NODES,
    GraphView,
    expand_frontier,
)
from ..transactions.workload import (
    SELF_PAIR,
    UNKNOWN_ENDPOINT,
    TraceArrays,
    Transaction,
)
from .metrics import SimulationMetrics

__all__ = ["BatchedSimulationEngine", "FastpathStats"]

#: Default payments per epoch (the cache-flush window). Epochs are
#: purely an optimisation boundary — results are identical for any
#: size; they bound the masked-state caches and the update log. The
#: default is large because flushes are expensive (every cached BFS
#: structure rebuilds) while the incremental log validation stays
#: cheap; memory stays modest (~tens of MB at n=1000).
DEFAULT_EPOCH_SIZE = 65536

#: Masked snapshots cached at once; the least-recently-used amount's
#: snapshot is evicted beyond this (a workload with continuously-
#: distributed amounts would otherwise accumulate one per distinct
#: amount).
MAX_MASKED_STATES = 64


@dataclass
class FastpathStats:
    """Counters describing how the batched backend earned its speedup."""

    payments: int = 0
    epochs: int = 0
    #: Payments whose cached BFS structure was invalidated by a balance
    #: flip interacting with its shortest-path DAG (the exact-fallback
    #: path: a fresh BFS is built from current state).
    conflicts: int = 0
    tree_builds: int = 0
    tree_hits: int = 0
    mask_builds: int = 0


class _MaskedState:
    """The reduced subgraph for one amount threshold, kept current.

    ``keep`` is the per-entry feasibility mask, updated incrementally as
    the balance log is replayed; the flip buffers record every observed
    mask change so cached trees can check exactly which flips happened
    since they were built.
    """

    __slots__ = ("amount", "keep", "log_pos", "flip_entries",
                 "flip_feasible", "flips_len", "trees")

    def __init__(self, amount: float, keep: np.ndarray) -> None:
        self.amount = amount
        self.keep = keep
        self.log_pos = 0
        self.flip_entries = np.empty(256, dtype=np.int64)
        self.flip_feasible = np.empty(256, dtype=bool)
        self.flips_len = 0
        #: source index -> (structure, flip-log position at build time)
        self.trees: Dict[int, Tuple[object, int]] = {}

    def record_flips(self, entries: np.ndarray, feasible: np.ndarray) -> None:
        needed = self.flips_len + entries.shape[0]
        if needed > self.flip_entries.shape[0]:
            size = max(needed, 2 * self.flip_entries.shape[0])
            self.flip_entries = np.concatenate(
                [self.flip_entries, np.empty(size, dtype=np.int64)]
            )
            self.flip_feasible = np.concatenate(
                [self.flip_feasible, np.empty(size, dtype=bool)]
            )
        self.flip_entries[self.flips_len:needed] = entries
        self.flip_feasible[self.flips_len:needed] = feasible
        self.flips_len = needed


class BatchedSimulationEngine:
    """Drives a pre-generated payment trace in vectorised epochs.

    Constructor arguments mirror :class:`SimulationEngine` so the two
    backends are interchangeable behind
    :class:`~repro.scenarios.specs.SimulationSpec`; ``epoch_size`` and
    the ``stats`` attribute are fastpath-specific.
    """

    def __init__(
        self,
        graph: ChannelGraph,
        fee: Optional[FeeFunction] = None,
        fee_forwarding: bool = True,
        path_selection: str = "random",
        seed: Optional[int] = 0,
        payment_mode: str = "instant",
        route_rng: str = "stream",
        epoch_size: int = DEFAULT_EPOCH_SIZE,
    ) -> None:
        if payment_mode != "instant":
            raise SimulationError(
                "the batched backend supports payment_mode='instant' only; "
                "HTLC hold semantics need the event queue (use the event "
                "backend)"
            )
        if route_rng not in ("stream", "payment"):
            raise SimulationError(
                f"route_rng must be 'stream' or 'payment', got {route_rng!r}"
            )
        if epoch_size < 1:
            raise SimulationError(
                f"epoch_size must be >= 1, got {epoch_size}"
            )
        self.graph = graph
        # Resolve the seed once (entropy drawn loudly when seed=None —
        # see repro.determinism) so the router and the per-payment RNG
        # base derive from one replayable value, mirroring the event
        # engine exactly.
        self.seed = resolve_seed(seed)
        # One Router, configured exactly like the event engine's: it owns
        # the fee schedule (_hop_amounts) and — in "stream" mode — the
        # sequential tie-break RNG whose draw order the fastpath
        # reproduces.
        self.router = Router(
            graph, fee=fee, fee_forwarding=fee_forwarding,
            path_selection=path_selection, seed=self.seed,
        )
        self.payment_mode = payment_mode
        self.route_rng = route_rng
        self.epoch_size = epoch_size
        self._route_base = self.seed % (2 ** 63)
        self.metrics = SimulationMetrics(seed=self.seed)
        self.stats = FastpathStats()

    # -- public API -----------------------------------------------------------

    def run_trace(
        self, trace: Union[TraceArrays, Sequence[Transaction]]
    ) -> SimulationMetrics:
        """Process every payment of ``trace`` and return the metrics.

        Accepts either :class:`TraceArrays` or a transaction sequence
        (columnised internally against the graph's node order). Repeated
        calls accumulate into the same metrics, like scheduling more
        events on the event engine; each call re-freezes the graph, so
        mutations between calls are picked up.
        """
        view = self.graph.view(directed=True)
        for channels in view.pair_channels:
            if len(channels) > 1:
                raise SimulationError(
                    "the batched backend requires a simple channel graph; "
                    f"parallel channels {channels} found (use the event "
                    "backend)"
                )
        for channel in self.graph.channels:
            if channel._history is not None:
                # The event engine appends a PaymentRecord per hop; the
                # batched backend only writes final balances — refuse
                # rather than silently return an empty audit trail.
                raise SimulationError(
                    "the batched backend does not record per-payment "
                    f"channel history (channel {channel.channel_id!r} has "
                    "record_history=True); use the event backend"
                )
        trace = self._columnise(trace, view)
        if len(trace) > 1 and bool((np.diff(trace.times) < 0).any()):
            # The event queue would reorder these; the batched loop will
            # not — refuse rather than silently diverge.
            raise SimulationError(
                "batched traces must be time-ordered (the event engine "
                "sorts its queue; the batched backend replays in order)"
            )
        run = _TraceRun(self, view, trace)
        run.execute()
        run.finalize()
        if len(trace):
            self.metrics.horizon = float(trace.times[-1])
        return self.metrics

    # -- helpers --------------------------------------------------------------

    def _columnise(
        self, trace: Union[TraceArrays, Sequence[Transaction]], view: GraphView
    ) -> TraceArrays:
        if not isinstance(trace, TraceArrays):
            return TraceArrays.from_transactions(list(trace), view.nodes)
        if trace.nodes == view.nodes:
            return trace
        # Node orders diverge (e.g. a trace generated against another
        # graph instance): re-columnise through the row form.
        return TraceArrays.from_transactions(
            trace.to_transactions(), view.nodes
        )

    def _payment_rng(self, index: int):
        if self.route_rng != "payment":
            return self.router._rng
        return PaymentRouteRng(self._route_base, index)


#: "No invalidating flip yet" sentinel for :attr:`_PartialTree.valid_depth`.
_DEPTH_INTACT = 1 << 62


class _PartialTree:
    """A target-early-stopped, resumable masked BFS.

    ``dist``/``sigma`` are exact for every node at depth <= ``level``
    (the last *completed* BFS level); ``frontier`` holds the
    yet-unexpanded nodes of that level, so a later payment needing a
    deeper target just continues the BFS instead of starting over.
    ``complete`` marks an exhausted search (unreached nodes are then
    genuinely unreachable).

    ``valid_depth`` is the invalidation watermark: mask flips since the
    build that interact with the shortest-path DAG shrink it to the flip
    edge's source depth, leaving all shallower levels provably exact —
    a payment whose target sits at depth <= ``valid_depth`` still walks
    this tree bit-for-bit identically to a fresh build.
    """

    __slots__ = (
        "dist", "sigma", "frontier", "level", "complete", "valid_depth",
    )

    def __init__(self, n: int, source: int) -> None:
        self.dist = np.full(n, -1, dtype=np.int64)
        self.sigma = np.zeros(n, dtype=np.float64)
        self.dist[source] = 0
        self.sigma[source] = 1.0
        self.frontier = np.array([source], dtype=np.int64)
        self.level = 0
        self.complete = False
        self.valid_depth = _DEPTH_INTACT

    def expand(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        keep: np.ndarray,
        target: int,
    ) -> None:
        """Run BFS levels until ``target`` is reached (or exhaustion).

        Mirrors :func:`~repro.network.views.bfs_shortest_path_tree` on
        the materialised reduced view — the ``keep`` filter sees edges
        in the same order the reduced CSR would, so the per-level
        bincounts accumulate ``sigma`` identically.
        """
        if self.complete or self.dist[target] >= 0:
            return
        dist = self.dist
        sigma = self.sigma
        n = dist.shape[0]
        frontier = self.frontier
        level = self.level
        seen = np.zeros(n, dtype=bool)
        while frontier.size:
            srcs, entries, targets = expand_frontier(indptr, indices, frontier)
            if targets.size:
                kept = keep[entries]
                srcs = srcs[kept]
                targets = targets[kept]
            if targets.size == 0:
                break
            fresh = targets[dist[targets] < 0]
            if fresh.size:
                dist[fresh] = level + 1
            tree = dist[targets] == level + 1
            if not tree.any():
                break
            sigma += np.bincount(
                targets[tree], weights=sigma[srcs[tree]], minlength=n
            )
            if fresh.size:
                seen[:] = False
                seen[fresh] = True
                frontier = np.nonzero(seen)[0]
            else:
                frontier = fresh
            level += 1
            if dist[target] == level:
                self.frontier = frontier
                self.level = level
                return
        self.frontier = np.zeros(0, dtype=np.int64)
        self.level = level
        self.complete = True


class _TraceRun:
    """Mutable state of one ``run_trace`` call."""

    def __init__(
        self, engine: BatchedSimulationEngine, view: GraphView,
        trace: TraceArrays,
    ) -> None:
        self.engine = engine
        self.view = view
        self.trace = trace
        self.n = view.num_nodes
        self.m = view.num_entries
        self.small = self.n < SMALL_GRAPH_NODES
        # Mutable balance state, updated with the same float ops (and in
        # the same order) as the event engine's Channel.send calls.
        self.balances = view.balances.copy()
        self.entry_rows = view.entry_rows()
        self.rev_entry = self._reverse_entries(view)
        if self.small:
            self.full_adj = view.adjacency_lists()
        else:
            rev_indptr, rev_indices, rev_order = view.reverse_adjacency()
            self.rev_indptr = rev_indptr
            self.rev_indices = rev_indices
            self.rev_order = rev_order
        # Per-node metric accumulators; *_touched tracks which nodes the
        # event engine would have created dict entries for (it records
        # zero-fee entries too).
        self.revenue = np.zeros(self.n, dtype=np.float64)
        self.revenue_touched = np.zeros(self.n, dtype=bool)
        self.fees_paid = np.zeros(self.n, dtype=np.float64)
        self.fees_touched = np.zeros(self.n, dtype=bool)
        self.sent = np.zeros(self.n, dtype=np.int64)
        self.received = np.zeros(self.n, dtype=np.int64)
        self.edge_traffic = np.zeros(self.m, dtype=np.int64)
        # Epoch state: the balance-update log and the masked snapshots
        # validated against it.
        self.log = np.empty(4096, dtype=np.int64)
        self.log_len = 0
        self.masks: Dict[float, _MaskedState] = {}
        self.epoch_payments = 0

    @staticmethod
    def _reverse_entries(view: GraphView) -> np.ndarray:
        """Entry index of every entry's opposite direction.

        An unreduced directed view always carries both orientations of a
        pair, so the lookup is total.
        """
        n = view.num_nodes
        keys = view.entry_rows() * n + view.indices
        rev_keys = view.indices * n + view.entry_rows()
        return np.searchsorted(keys, rev_keys).astype(np.int64)

    # -- epoch / cache machinery ----------------------------------------------

    def _flush_epoch(self) -> None:
        self.masks.clear()
        self.log_len = 0
        self.epoch_payments = 0
        self.engine.stats.epochs += 1

    def _log_update(self, entry: int) -> None:
        if self.log_len == self.log.shape[0]:
            self.log = np.concatenate(
                [self.log, np.empty(self.log.shape[0], dtype=np.int64)]
            )
        self.log[self.log_len] = entry
        self.log_len += 1

    def _masked_state(self, amount: float) -> _MaskedState:
        """The current reduced mask for ``amount`` (built or replayed).

        Replaying the update log keeps ``keep`` equal to
        ``balances >= amount`` and records every flip, so cached trees
        know exactly which mask changes happened since they were built.
        """
        state = self.masks.get(amount)
        if state is None:
            if len(self.masks) >= MAX_MASKED_STATES:
                # Evict only the least-recently-used amount's snapshot
                # (hot senders' trees for other amounts stay cached);
                # the shared log is bounded by the normal epoch flush.
                self.masks.pop(next(iter(self.masks)))
            state = _MaskedState(amount, self.balances >= amount)
            state.log_pos = self.log_len
            self.masks[amount] = state
            self.engine.stats.mask_builds += 1
            return state
        # Re-insert on access: dict order doubles as the LRU order.
        self.masks.pop(amount)
        self.masks[amount] = state
        if state.log_pos < self.log_len:
            entries = self.log[state.log_pos:self.log_len]
            feasible = self.balances[entries] >= amount
            flipped = feasible != state.keep[entries]
            if flipped.any():
                flip_entries = entries[flipped]
                state.keep[flip_entries] = feasible[flipped]
                state.record_flips(flip_entries, feasible[flipped])
            state.log_pos = self.log_len
        return state

    def _structure(self, state: _MaskedState, source: int, target: int):
        """A BFS structure from ``source`` over ``state``'s mask, exact
        for the *current* balances and deep enough to place ``target``.

        A cached structure is reused while the walk's region is provably
        identical to a fresh build: mask flips that interact with the
        shortest-path DAG shrink the tree's ``valid_depth`` watermark to
        the flip's source depth (shallower levels cannot be affected —
        any path through the flipped edge is longer); a payment whose
        target sits within the watermark walks the cached tree, deeper
        or unreached targets trigger a resume (partial trees whose
        frontier is intact) or an exact rebuild.
        """
        stats = self.engine.stats
        cached = state.trees.get(source)
        flips = state.flips_len
        if cached is not None:
            structure, built_at = cached
            if self.small:
                if built_at == flips or self._small_tree_valid(
                    structure, state, built_at
                ):
                    state.trees[source] = (structure, flips)
                    stats.tree_hits += 1
                    return structure
            else:
                if built_at < flips:
                    self._shrink_valid_depth(structure, state, built_at)
                    state.trees[source] = (structure, flips)
                depth = int(structure.dist[target])
                if 0 <= depth <= structure.valid_depth:
                    stats.tree_hits += 1
                    return structure
                if depth < 0 and structure.complete \
                        and structure.valid_depth == _DEPTH_INTACT:
                    # Unreachability is a whole-graph verdict: it only
                    # survives if no flip touched the DAG at all.
                    stats.tree_hits += 1
                    return structure
                if (
                    not structure.complete
                    and depth < 0
                    and structure.valid_depth >= structure.level
                ):
                    # The explored region and its frontier are intact:
                    # resuming with the current mask yields exactly a
                    # fresh build, and incorporates every deep flip.
                    structure.expand(
                        self.view.indptr, self.view.indices, state.keep,
                        target,
                    )
                    structure.valid_depth = _DEPTH_INTACT
                    state.trees[source] = (structure, flips)
                    stats.tree_hits += 1
                    return structure
            stats.conflicts += 1
        if self.small:
            adj = [
                [pair for pair in row if state.keep[pair[1]]]
                for row in self.full_adj
            ]
            structure = small_bfs_structure(adj, self.n, source)
        else:
            structure = _PartialTree(self.n, source)
            structure.expand(
                self.view.indptr, self.view.indices, state.keep, target
            )
        state.trees[source] = (structure, flips)
        stats.tree_builds += 1
        return structure

    def _small_tree_valid(
        self, structure, state: _MaskedState, built_at: int
    ) -> bool:
        """Do the flips since ``built_at`` leave the full structure exact?

        The python-branch twin of :meth:`_shrink_valid_depth`, boolean
        because small-graph rebuilds are cheap: an added edge ``u -> v``
        invalidates iff it creates or shortens a shortest path
        (``dist[v] < 0`` or ``dist[v] >= dist[u] + 1``); a removed one
        iff it was a DAG edge (``dist[v] == dist[u] + 1``). Edges out of
        an unreachable ``u`` cannot matter until an invalidating flip
        connects ``u`` first.
        """
        entries = state.flip_entries[built_at:state.flips_len]
        feasible = state.flip_feasible[built_at:state.flips_len]
        dist, _sigma, _preds = structure
        rows = self.entry_rows
        indices = self.view.indices
        for entry, now_feasible in zip(entries, feasible):
            du = dist[int(rows[entry])]
            dv = dist[int(indices[entry])]
            if du < 0:
                continue
            if now_feasible:
                if dv < 0 or dv >= du + 1:
                    return False
            elif dv == du + 1:
                return False
        return True

    def _shrink_valid_depth(
        self, structure: "_PartialTree", state: _MaskedState, built_at: int
    ) -> None:
        """Fold the flips since ``built_at`` into ``valid_depth``.

        A flip on edge ``u -> v`` can only alter shortest paths of
        length >= ``dist[u] + 1`` (every path through the edge enters
        ``u`` first), so levels <= ``dist[u]`` stay exact — the
        watermark drops to the minimum such ``dist[u]`` over the
        DAG-interacting flips: additions that reach a new node or
        satisfy ``dist[v] >= dist[u] + 1``, and removals of DAG edges
        (``dist[v] == dist[u] + 1``). For partial trees, additions out
        of the unexpanded frontier level are excluded — resumption
        expands with the current mask anyway.
        """
        entries = state.flip_entries[built_at:state.flips_len]
        feasible = state.flip_feasible[built_at:state.flips_len]
        dist = structure.dist
        du = dist[self.entry_rows[entries]]
        dv = dist[self.view.indices[entries]]
        explored = du >= 0
        if structure.complete:
            inner = explored
        else:
            inner = du < structure.level
        invalid_add = feasible & explored & (
            ((dv >= 0) & (dv >= du + 1)) | ((dv < 0) & inner)
        )
        invalid_remove = ~feasible & explored & (dv == du + 1)
        invalid = invalid_add | invalid_remove
        if invalid.any():
            structure.valid_depth = min(
                structure.valid_depth, int(du[invalid].min())
            )

    # -- payment processing ---------------------------------------------------

    def execute(self) -> None:
        engine = self.engine
        metrics = engine.metrics
        trace = self.trace
        if len(trace):
            engine.stats.epochs += 1
        senders = trace.senders
        receivers = trace.receivers
        amounts = trace.amounts
        indices = trace.indices
        for pos in range(len(trace)):
            if self.epoch_payments >= engine.epoch_size:
                self._flush_epoch()
            self.epoch_payments += 1
            engine.stats.payments += 1
            metrics.attempted += 1
            s = int(senders[pos])
            r = int(receivers[pos])
            if s == SELF_PAIR or s == r:
                # Event order: the sender==receiver check precedes the
                # endpoint check, and classifies as "other".
                metrics.failed += 1
                metrics.failure_reasons["other"] += 1
                continue
            if s == UNKNOWN_ENDPOINT or r == UNKNOWN_ENDPOINT:
                metrics.failed += 1
                metrics.failure_reasons["unknown-endpoint"] += 1
                continue
            self._process(s, r, float(amounts[pos]), int(indices[pos]))

    def _process(self, s: int, r: int, amount: float, index: int) -> None:
        engine = self.engine
        metrics = engine.metrics
        state = self._masked_state(amount)
        structure = self._structure(state, s, r)
        rng = engine._payment_rng(index)
        selection = engine.router.path_selection
        if self.small:
            dist, sigma, preds = structure
            path = walk_small(dist, sigma, preds, s, r, selection, rng)
        else:
            path = self._walk_masked(state, structure, s, r, selection, rng)
        if path is None:
            metrics.failed += 1
            metrics.failure_reasons["no-capacity-path"] += 1
            return
        hops = len(path) - 1
        hop_amounts = engine.router._hop_amounts(hops, amount)
        entries = [
            self.view.entry_between(path[i], path[i + 1])
            for i in range(hops)
        ]
        for entry, hop_amount in zip(entries, hop_amounts):
            if self.balances[entry] < hop_amount:
                # The aggregate route was feasible at `amount` but a hop
                # cannot carry amount+fees — the event engine's
                # "no single channel" execute failure.
                metrics.failed += 1
                metrics.failure_reasons["split-balance"] += 1
                return
        self._apply(s, r, amount, path, entries, hop_amounts)

    def _walk_masked(
        self, state: _MaskedState, tree: "_PartialTree", source: int,
        target: int, selection: str, rng,
    ) -> Optional[List[int]]:
        """Backward predecessor walk using the full-view reverse
        adjacency filtered by the mask.

        The full reverse rows are sorted by source index, so filtering by
        ``keep`` yields the predecessors in exactly the order a reduced
        view's reverse adjacency would — identical ``rng.choice`` inputs.
        """
        dist = tree.dist
        if dist[target] < 0:
            return None
        keep = state.keep
        sigma_all = tree.sigma
        path = [target]
        current = target
        while current != source:
            lo = self.rev_indptr[current]
            hi = self.rev_indptr[current + 1]
            preds = self.rev_indices[lo:hi]
            kept = keep[self.rev_order[lo:hi]]
            preds = preds[kept & (dist[preds] == dist[current] - 1)]
            if selection == "random" and preds.size > 1:
                sigma = sigma_all[preds]
                chosen = int(rng.choice(preds, p=sigma / sigma.sum()))
            else:
                chosen = int(preds[0])
            path.append(chosen)
            current = chosen
        return path[::-1]

    def _apply(
        self,
        s: int,
        r: int,
        amount: float,
        path: List[int],
        entries: List[int],
        hop_amounts: List[float],
    ) -> None:
        engine = self.engine
        metrics = engine.metrics
        balances = self.balances
        for entry, hop_amount in zip(entries, hop_amounts):
            rev = int(self.rev_entry[entry])
            balances[entry] -= hop_amount
            balances[rev] += hop_amount
            self.edge_traffic[entry] += 1
            self._log_update(entry)
            self._log_update(rev)
        metrics.succeeded += 1
        metrics.volume_delivered += amount
        self.sent[s] += 1
        self.received[r] += 1
        self.fees_paid[s] += hop_amounts[0] - amount
        self.fees_touched[s] = True
        fee_fn = engine.router.fee if not engine.router.fee_forwarding else None
        for i in range(1, len(path) - 1):
            node = path[i]
            fee = hop_amounts[i - 1] - hop_amounts[i]
            if fee_fn is not None:
                fee += fee_fn(amount)
            self.revenue[node] += fee
            self.revenue_touched[node] = True

    # -- finalisation ---------------------------------------------------------

    def finalize(self) -> None:
        """Fold the array accumulators into the metrics dicts and write
        the final balances back to the channels."""
        metrics = self.engine.metrics
        nodes = self.view.nodes
        for i in np.nonzero(self.revenue_touched)[0]:
            metrics.revenue[nodes[i]] += float(self.revenue[i])
        for i in np.nonzero(self.fees_touched)[0]:
            metrics.fees_paid[nodes[i]] += float(self.fees_paid[i])
        for i in np.nonzero(self.sent)[0]:
            metrics.sent[nodes[i]] += int(self.sent[i])
        for i in np.nonzero(self.received)[0]:
            metrics.received[nodes[i]] += int(self.received[i])
        for entry in np.nonzero(self.edge_traffic)[0]:
            src = nodes[int(self.entry_rows[entry])]
            dst = nodes[int(self.view.indices[entry])]
            metrics.edge_traffic[(src, dst)] += int(self.edge_traffic[entry])
        self._write_back()

    def _write_back(self) -> None:
        """Push the array balances into the channel objects.

        The arrays applied the exact float operations the event engine's
        ``Channel.send`` calls would have, in the same order, so the
        written state is bit-identical to an event-backend run.
        """
        view = self.view
        graph = self.engine.graph
        rows = self.entry_rows
        for entry in range(self.m):
            u = int(rows[entry])
            v = int(view.indices[entry])
            if u >= v:
                continue
            rev = int(self.rev_entry[entry])
            channel_id = view.pair_channels[int(view.edge_ids[entry])][0]
            channel = graph.channel(channel_id)
            balance_u = float(self.balances[entry])
            balance_v = float(self.balances[rev])
            if channel.u == view.nodes[u]:
                channel.set_balances(balance_u, balance_v)
            else:
                channel.set_balances(balance_v, balance_u)
