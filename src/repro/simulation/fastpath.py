"""The batched simulation backend: vectorised epochs over view arrays.

The event engine pays two per-payment python costs that dominate large
runs: rebuilding the reduced :class:`~repro.network.views.GraphView`
after every successful payment (an O(channels) python loop) and
re-running BFS from scratch for every payment.
:class:`BatchedSimulationEngine` removes both while producing *exactly*
the same result:

* the full directed view is frozen **once**; balances live in one
  mutable float array indexed by CSR entry, and the reduced subgraph for
  a payment of size ``x`` is the boolean mask ``balances >= x`` — no
  python per-channel loop, ever;
* payments are processed in **epochs** — windows over which the reduced
  mask per amount threshold and the BFS shortest-path structure per
  (source, amount) pair are cached, so payments from the same sender
  reuse each other's BFS work;
* every balance update is logged, and cached state is only reused while
  it is *provably* identical to what the event engine would compute.
  A balance crossing an amount threshold (a **flip**) updates that
  amount's mask incrementally; a cached tree survives a flip unless the
  flipped edge interacts with its shortest-path DAG (an edge whose
  removal was not a DAG edge, or whose addition cannot create or
  shorten a shortest path, provably leaves ``dist``/``sigma``/the
  predecessor sets unchanged). Only a payment whose tree is actually
  invalidated — a **conflict** — pays for a fresh exact BFS;
* routing decisions therefore match the event engine payment for
  payment, including the RNG draws of ``path_selection="random"``,
  which go through the same walk code in the same trace order;
* per-node metrics accumulate into arrays (scatter-adds) and convert to
  the dict form of :class:`SimulationMetrics` once, at the end; final
  balances are written back to the channels once, at the end.

The backend runs over simple graphs (no parallel channels) in both
payment modes. ``"instant"`` replays a pre-generated trace through
vectorised epochs. ``"htlc"`` adds per-entry in-flight slot counters
and an array-backed HTLC router (lock / settle-or-fail over escrowed
array balances) plus the same event-queue API as the event engine
(``schedule`` / ``register_handler`` / ``run``), so HTLC holds and
attack-strategy event injection replay **bit-identically** to the event
backend — same failure sets (including ``no-htlc-slots``), same metrics,
same final balances. Mid-run channel open/close still needs the event
backend: the array state freezes at the first ``run()`` call (after
attack strategies opened their channels). Each backend declares what it
supports in :mod:`repro.scenarios.capabilities`.
"""

from __future__ import annotations

import itertools
from dataclasses import asdict, dataclass
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

import numpy as np

from ..determinism import resolve_seed
from ..errors import HtlcError, RoutingError, SimulationError
from ..network.fees import ConstantFee, FeeFunction, FeePolicy
from ..network.graph import ChannelGraph
from ..network.htlc import HtlcState
from ..network.routing import (
    PaymentRouteRng,
    Router,
    small_bfs_structure,
    walk_small,
)
from ..network.views import (
    SMALL_GRAPH_NODES,
    GraphView,
    expand_frontier,
)
from ..obs import ObsSession, default_session
from ..transactions.workload import (
    SELF_PAIR,
    UNKNOWN_ENDPOINT,
    PoissonWorkload,
    TraceArrays,
    Transaction,
)
from .events import (
    ChannelCloseEvent,
    ChannelOpenEvent,
    Event,
    EventQueue,
    HtlcResolveEvent,
    PaymentEvent,
)
from .metrics import SimulationMetrics

__all__ = ["BatchedSimulationEngine", "FastpathStats"]

#: Default payments per epoch (the cache-flush window). Epochs are
#: purely an optimisation boundary — results are identical for any
#: size; they bound the masked-state caches and the update log. The
#: default is large because flushes are expensive (every cached BFS
#: structure rebuilds) while the incremental log validation stays
#: cheap; memory stays modest (~tens of MB at n=1000).
DEFAULT_EPOCH_SIZE = 65536

#: Masked snapshots cached at once; the least-recently-used amount's
#: snapshot is evicted beyond this (a workload with continuously-
#: distributed amounts would otherwise accumulate one per distinct
#: amount).
MAX_MASKED_STATES = 64


@dataclass
class FastpathStats:
    """Counters describing how the batched backend earned its speedup."""

    payments: int = 0
    epochs: int = 0
    #: Payments whose cached BFS structure was invalidated by a balance
    #: flip interacting with its shortest-path DAG (the exact-fallback
    #: path: a fresh BFS is built from current state).
    conflicts: int = 0
    tree_builds: int = 0
    tree_hits: int = 0
    mask_builds: int = 0


class _MaskedState:
    """The reduced subgraph for one amount threshold, kept current.

    ``keep`` is the per-entry feasibility mask, updated incrementally as
    the balance log is replayed; the flip buffers record every observed
    mask change so cached trees can check exactly which flips happened
    since they were built.
    """

    __slots__ = ("amount", "keep", "log_pos", "flip_entries",
                 "flip_feasible", "flips_len", "trees")

    def __init__(self, amount: float, keep: np.ndarray) -> None:
        self.amount = amount
        self.keep = keep
        self.log_pos = 0
        self.flip_entries = np.empty(256, dtype=np.int64)
        self.flip_feasible = np.empty(256, dtype=bool)
        self.flips_len = 0
        #: source index -> (structure, flip-log position at build time)
        self.trees: Dict[int, Tuple[object, int]] = {}

    def record_flips(self, entries: np.ndarray, feasible: np.ndarray) -> None:
        needed = self.flips_len + entries.shape[0]
        if needed > self.flip_entries.shape[0]:
            size = max(needed, 2 * self.flip_entries.shape[0])
            self.flip_entries = np.concatenate(
                [self.flip_entries, np.empty(size, dtype=np.int64)]
            )
            self.flip_feasible = np.concatenate(
                [self.flip_feasible, np.empty(size, dtype=bool)]
            )
        self.flip_entries[self.flips_len:needed] = entries
        self.flip_feasible[self.flips_len:needed] = feasible
        self.flips_len = needed


class BatchedSimulationEngine:
    """Drives a pre-generated payment trace in vectorised epochs.

    Constructor arguments mirror :class:`SimulationEngine` so the two
    backends are interchangeable behind
    :class:`~repro.scenarios.specs.SimulationSpec`; ``epoch_size`` and
    the ``stats`` attribute are fastpath-specific.
    """

    def __init__(
        self,
        graph: ChannelGraph,
        fee: Optional[FeeFunction] = None,
        fee_forwarding: bool = True,
        path_selection: str = "random",
        seed: Optional[int] = 0,
        payment_mode: str = "instant",
        htlc_hold_mean: float = 0.1,
        route_rng: str = "stream",
        epoch_size: int = DEFAULT_EPOCH_SIZE,
        obs: Optional[ObsSession] = None,
    ) -> None:
        if payment_mode not in ("instant", "htlc"):
            raise SimulationError(
                f"payment_mode must be 'instant' or 'htlc', "
                f"got {payment_mode!r}"
            )
        if htlc_hold_mean <= 0:
            raise SimulationError("htlc_hold_mean must be > 0")
        if route_rng not in ("stream", "payment"):
            raise SimulationError(
                f"route_rng must be 'stream' or 'payment', got {route_rng!r}"
            )
        if epoch_size < 1:
            raise SimulationError(
                f"epoch_size must be >= 1, got {epoch_size}"
            )
        self.graph = graph
        # Resolve the seed once (entropy drawn loudly when seed=None —
        # see repro.determinism) so the router and the per-payment RNG
        # base derive from one replayable value, mirroring the event
        # engine exactly.
        self.seed = resolve_seed(seed)
        # One Router, configured exactly like the event engine's: it owns
        # the fee schedule (_hop_amounts) and — in "stream" mode — the
        # sequential tie-break RNG whose draw order the fastpath
        # reproduces.
        self.router = Router(
            graph, fee=fee, fee_forwarding=fee_forwarding,
            path_selection=path_selection, seed=self.seed,
        )
        self.payment_mode = payment_mode
        self.htlc_hold_mean = htlc_hold_mean
        self.route_rng = route_rng
        self.epoch_size = epoch_size
        self._route_base = self.seed % (2 ** 63)
        self.metrics = SimulationMetrics(seed=self.seed)
        self.stats = FastpathStats()
        # Instrumentation handle: the shared no-op session unless the
        # caller passed one or REPRO_OBS opted the process in. Timing
        # and counters never touch the RNG or results above — obs-on
        # and obs-off runs are bit-identical (tests/obs/test_parity.py).
        self._obs = obs if obs is not None else default_session()
        self._obs_published: Dict[str, int] = {}
        # Event-queue machinery, mirroring the event engine field for
        # field so attack extensions drive either backend unchanged. The
        # hold RNG derives from seed + 1 exactly like the event engine's,
        # so honest hold times match draw for draw.
        self._queue = EventQueue()
        self._now = 0.0
        self._payment_seq = 0
        self._handlers: Dict[Type[Event], Callable[[Event], None]] = {}
        self._hold_rng = np.random.default_rng(self.seed + 1)
        self._pending_htlcs: Dict[int, Tuple["_ArrayHtlcPayment", PaymentEvent]] = {}
        # The array-backed HTLC router exists from construction (attack
        # strategies price routes via hop_amounts before any run), but
        # binds to frozen array state lazily at the first run() call —
        # after strategies opened their channels.
        self._array_router = _ArrayHtlcRouter(self.router.fee)
        self._state: Optional[_ArrayState] = None

    # -- public API -----------------------------------------------------------

    def run_trace(
        self, trace: Union[TraceArrays, Sequence[Transaction]]
    ) -> SimulationMetrics:
        """Process every payment of ``trace`` and return the metrics.

        Accepts either :class:`TraceArrays` or a transaction sequence
        (columnised internally against the graph's node order). In
        ``"instant"`` mode, repeated calls accumulate into the same
        metrics, like scheduling more events on the event engine; each
        call re-freezes the graph, so mutations between calls are picked
        up. In ``"htlc"`` mode the trace is scheduled on the event queue
        and :meth:`run` drains it — exactly what the event backend does
        for the same spec, resolve events past the last payment
        included.
        """
        if self.payment_mode == "htlc":
            if isinstance(trace, TraceArrays):
                self.schedule_transactions(
                    trace.to_transactions(),
                    indices=(int(i) for i in trace.indices),
                )
            else:
                self.schedule_transactions(list(trace))
            return self.run()
        view = self.graph.view(directed=True)
        self._check_graph(view)
        trace = self._columnise(trace, view)
        if len(trace) > 1 and bool((np.diff(trace.times) < 0).any()):
            # The event queue would reorder these; the batched loop will
            # not — refuse rather than silently diverge.
            raise SimulationError(
                "batched traces must be time-ordered (the event engine "
                "sorts its queue; the batched backend replays in order)"
            )
        run = _ArrayState(self, view)
        run.execute(trace)
        run.finalize()
        if len(trace):
            self.metrics.horizon = float(trace.times[-1])
        self._publish_obs(run)
        return self.metrics

    # -- event-queue API (htlc mode, attack injection) ------------------------

    @property
    def now(self) -> float:
        return self._now

    @property
    def htlc_router(self) -> "_ArrayHtlcRouter":
        """The engine's HTLC router — shared with adversarial extensions
        so attacker locks and honest locks contend for the same slots
        and balances, exactly as on the event backend."""
        return self._array_router

    @classmethod
    def capabilities(cls):
        """This backend's :class:`EngineCapabilities` declaration."""
        # Local import: the scenarios package pulls in the factory (and
        # through it this module), so the leaf is resolved lazily.
        from ..scenarios.capabilities import BATCHED_CAPABILITIES

        return BATCHED_CAPABILITIES

    def schedule(self, event: Event) -> None:
        self._queue.push(event)

    def register_handler(
        self, event_type: Type[Event], handler: Callable[[Event], None]
    ) -> None:
        """Register a dispatcher for a custom :class:`Event` subclass.

        Same contract as the event engine: extension events interleave
        with the honest workload in time order; builtin event types
        cannot be overridden.
        """
        builtin = (
            PaymentEvent, HtlcResolveEvent, ChannelOpenEvent, ChannelCloseEvent,
        )
        if issubclass(event_type, builtin):
            raise SimulationError(
                f"cannot override builtin event type {event_type.__name__}"
            )
        self._handlers[event_type] = handler

    def schedule_workload(
        self, workload: PoissonWorkload, horizon: float
    ) -> int:
        """Schedule all arrivals of ``workload`` within ``[0, horizon)``."""
        return self.schedule_transactions(workload.generate(horizon))

    def schedule_transactions(
        self,
        transactions: Iterable[Transaction],
        indices: Optional[Iterable[int]] = None,
    ) -> int:
        """Schedule an explicit transaction trace (event-engine twin)."""
        count = 0
        index_iter = iter(indices) if indices is not None else None
        for tx in transactions:
            if index_iter is not None:
                index = next(index_iter)
                self._payment_seq = max(self._payment_seq, index + 1)
            else:
                index = self._payment_seq
                self._payment_seq += 1
            self.schedule(
                PaymentEvent(
                    time=tx.time,
                    sender=tx.sender,
                    receiver=tx.receiver,
                    amount=tx.amount,
                    index=index,
                )
            )
            count += 1
        return count

    def run(self, until: Optional[float] = None) -> SimulationMetrics:
        """Process queued events in time order (event-engine twin).

        The array state is frozen at the first call — graph mutations
        after that (other than balance moves made through this engine)
        are not picked up; channel open/close events raise. Final
        balances are written back to the channels at the end of every
        call.
        """
        state = self._ensure_state()
        while self._queue:
            next_time = self._queue.peek_time()
            if until is not None and next_time is not None and next_time > until:
                break
            event = self._queue.pop()
            self._now = event.time
            self._dispatch(event, state)
        self.metrics.horizon = until if until is not None else self._now
        state.write_back()
        self._publish_obs(state)
        return self.metrics

    def _ensure_state(self) -> "_ArrayState":
        if self._state is None:
            view = self.graph.view(directed=True)
            self._check_graph(view)
            self._state = _ArrayState(self, view)
            self._array_router.bind(self._state)
        return self._state

    def _check_graph(self, view: GraphView) -> None:
        for channels in view.pair_channels:
            if len(channels) > 1:
                raise SimulationError(
                    "the batched backend requires a simple channel graph; "
                    f"parallel channels {channels} found (use the event "
                    "backend)"
                )
        for channel in self.graph.channels:
            if channel._history is not None:
                # The event engine appends a PaymentRecord per hop; the
                # batched backend only writes final balances — refuse
                # rather than silently return an empty audit trail.
                raise SimulationError(
                    "the batched backend does not record per-payment "
                    f"channel history (channel {channel.channel_id!r} has "
                    "record_history=True); use the event backend"
                )

    def _dispatch(self, event: Event, state: "_ArrayState") -> None:
        if isinstance(event, PaymentEvent):
            if self.payment_mode == "htlc":
                self._handle_payment_htlc(event, state)
            else:
                self._handle_payment_instant(event, state)
        elif isinstance(event, HtlcResolveEvent):
            self._handle_htlc_resolve(event)
        elif isinstance(event, (ChannelOpenEvent, ChannelCloseEvent)):
            raise SimulationError(
                "the batched backend froze its array state at the first "
                "run() call; mid-run channel open/close needs the event "
                "backend (see repro.scenarios.capabilities)"
            )
        else:
            handler = self._handlers.get(type(event))
            if handler is None:
                raise SimulationError(
                    f"unknown event type {type(event).__name__}"
                )
            handler(event)

    def _event_payment_rng(self, event: PaymentEvent):
        """The event's route RNG (event-engine twin, sharing the
        router's stream in ``"stream"`` mode so draw order matches)."""
        if self.route_rng != "payment":
            return self.router._rng
        index = event.index
        if index < 0:
            index = self._payment_seq
            self._payment_seq += 1
        return PaymentRouteRng(self._route_base, index)

    def _handle_payment_htlc(
        self, event: PaymentEvent, state: "_ArrayState"
    ) -> None:
        """Lock now, settle after an exponential hold (event-engine twin)."""
        metrics = self.metrics
        metrics.attempted += 1
        # The event engine resolves the RNG before routing (argument
        # evaluation), consuming an index even for payments that fail
        # validation — keep the sequence aligned.
        rng = self._event_payment_rng(event)
        if event.sender == event.receiver:
            metrics.failed += 1
            metrics.failure_reasons["other"] += 1
            return
        s = state.node_index.get(event.sender)
        r = state.node_index.get(event.receiver)
        if s is None or r is None:
            metrics.failed += 1
            metrics.failure_reasons["unknown-endpoint"] += 1
            return
        path = state.route_event(s, r, float(event.amount), rng)
        if path is None:
            metrics.failed += 1
            metrics.failure_reasons["no-capacity-path"] += 1
            return
        nodes = state.view.nodes
        payment = self._array_router.lock(
            [nodes[i] for i in path], event.amount
        )
        self._book_upfront_attempt(payment, event.sender)
        obs = self._obs
        if payment.state is not HtlcState.PENDING:
            metrics.failed += 1
            reason = (
                "no-htlc-slots" if payment.failure_reason == "no-slots"
                else "lock-contention"
            )
            metrics.failure_reasons[reason] += 1
            if obs.enabled:
                obs.registry.counter(f"htlc.lock_failed.{reason}").inc()
                if reason == "no-htlc-slots":
                    obs.registry.counter("htlc.slot_exhaustion").inc()
                obs.event(
                    "htlc.fail", t=event.time, reason=reason,
                    hops=len(path) - 1,
                )
            return
        metrics.htlc_locked_peak = max(
            metrics.htlc_locked_peak, self._array_router.locked_capital()
        )
        if obs.enabled:
            obs.registry.counter("htlc.locks").inc()
            obs.event(
                "htlc.lock", t=event.time,
                payment_id=payment.payment_id, hops=len(path) - 1,
            )
        self._pending_htlcs[payment.payment_id] = (payment, event)
        hold = float(self._hold_rng.exponential(self.htlc_hold_mean))
        self.schedule(
            HtlcResolveEvent(time=event.time + hold, payment_id=payment.payment_id)
        )

    def _handle_htlc_resolve(self, event: HtlcResolveEvent) -> None:
        entry = self._pending_htlcs.pop(event.payment_id, None)
        if entry is None:
            raise SimulationError(
                f"resolve for unknown HTLC payment {event.payment_id}"
            )
        payment, origin = entry
        self._array_router.settle(payment)
        obs = self._obs
        if obs.enabled:
            obs.registry.counter("htlc.settles").inc()
            obs.event(
                "htlc.settle", t=event.time, payment_id=event.payment_id
            )
        metrics = self.metrics
        metrics.succeeded += 1
        metrics.volume_delivered += origin.amount
        metrics.sent[origin.sender] += 1
        metrics.received[origin.receiver] += 1
        metrics.fees_paid[origin.sender] += sum(
            payment.fees_per_node.values()
        )
        for node, fee in payment.fees_per_node.items():
            metrics.revenue[node] += fee
        for src, dst in zip(payment.path, payment.path[1:]):
            metrics.edge_traffic[(src, dst)] += 1

    def _handle_payment_instant(
        self, event: PaymentEvent, state: "_ArrayState"
    ) -> None:
        """Apply a queued payment atomically (event-engine twin).

        Metrics are booked straight into the dicts (not the trace-mode
        array accumulators), matching the event engine's accumulation
        order float for float.
        """
        metrics = self.metrics
        metrics.attempted += 1
        rng = self._event_payment_rng(event)
        if event.sender == event.receiver:
            metrics.failed += 1
            metrics.failure_reasons["other"] += 1
            return
        s = state.node_index.get(event.sender)
        r = state.node_index.get(event.receiver)
        if s is None or r is None:
            metrics.failed += 1
            metrics.failure_reasons["unknown-endpoint"] += 1
            return
        amount = float(event.amount)
        path = state.route_event(s, r, amount, rng)
        if path is None:
            metrics.failed += 1
            metrics.failure_reasons["no-capacity-path"] += 1
            return
        hops = len(path) - 1
        hop_amounts = self.router._hop_amounts(hops, amount)
        entries = [
            state.pair_entry[(path[i], path[i + 1])] for i in range(hops)
        ]
        for entry, hop_amount in zip(entries, hop_amounts):
            if state.balances[entry] < hop_amount:
                metrics.failed += 1
                metrics.failure_reasons["split-balance"] += 1
                return
        state.apply_balances(entries, hop_amounts)
        nodes = state.view.nodes
        names = [nodes[i] for i in path]
        metrics.succeeded += 1
        metrics.volume_delivered += amount
        metrics.sent[event.sender] += 1
        metrics.received[event.receiver] += 1
        metrics.fees_paid[event.sender] += hop_amounts[0] - amount
        fee_fn = self.router.fee if not self.router.fee_forwarding else None
        for i in range(1, hops):
            fee = hop_amounts[i - 1] - hop_amounts[i]
            if fee_fn is not None:
                fee += fee_fn(amount)
            metrics.revenue[names[i]] += fee
        for src, dst in zip(names, names[1:]):
            metrics.edge_traffic[(src, dst)] += 1
        policy = self._array_router.policy
        if policy.has_upfront:
            total = 0.0
            for i in range(hops):
                charge = policy.upfront(hop_amounts[i])
                metrics.upfront_revenue[names[i + 1]] += charge
                total += charge
            metrics.upfront_fees_paid[event.sender] += total

    def _book_upfront_attempt(
        self, payment: "_ArrayHtlcPayment", sender: Hashable
    ) -> None:
        """Book the unconditional per-attempt fees of one lock attempt."""
        if not payment.upfront_fees_per_node:
            return
        metrics = self.metrics
        metrics.upfront_fees_paid[sender] += payment.upfront_total
        for node, fee in payment.upfront_fees_per_node.items():
            metrics.upfront_revenue[node] += fee

    def _publish_obs(self, state: "_ArrayState") -> None:
        """Fold :class:`FastpathStats` and the per-edge conflict counts
        into the obs session (no-op when disabled).

        Counters publish the *delta* since the last publish, so repeated
        ``run()`` calls — and multiple engines sharing one session, like
        an attack's baseline/attacked pair — accumulate instead of
        overwriting each other. The ``stats`` attribute itself stays the
        compat surface it always was.
        """
        obs = self._obs
        if not obs.enabled:
            return
        registry = obs.registry
        current = asdict(self.stats)
        for name, value in current.items():
            delta = value - self._obs_published.get(name, 0)
            if delta:
                registry.counter(f"fastpath.{name}").inc(delta)
        self._obs_published = current
        if state.conflict_counts is not None:
            hot = np.nonzero(state.conflict_counts)[0]
            if hot.size:
                nodes = state.view.nodes
                rows = state.entry_rows
                cols = state.view.indices
                obs.add_edge_conflicts(
                    (
                        (nodes[int(rows[entry])], nodes[int(cols[entry])]),
                        int(state.conflict_counts[entry]),
                    )
                    for entry in hot
                )
                state.conflict_counts[hot] = 0

    # -- helpers --------------------------------------------------------------

    def _columnise(
        self, trace: Union[TraceArrays, Sequence[Transaction]], view: GraphView
    ) -> TraceArrays:
        if not isinstance(trace, TraceArrays):
            return TraceArrays.from_transactions(list(trace), view.nodes)
        if trace.nodes == view.nodes:
            return trace
        # Node orders diverge (e.g. a trace generated against another
        # graph instance): re-columnise through the row form.
        return TraceArrays.from_transactions(
            trace.to_transactions(), view.nodes
        )

    def _payment_rng(self, index: int):
        if self.route_rng != "payment":
            return self.router._rng
        return PaymentRouteRng(self._route_base, index)


#: "No invalidating flip yet" sentinel for :attr:`_PartialTree.valid_depth`.
_DEPTH_INTACT = 1 << 62


class _PartialTree:
    """A target-early-stopped, resumable masked BFS.

    ``dist``/``sigma`` are exact for every node at depth <= ``level``
    (the last *completed* BFS level); ``frontier`` holds the
    yet-unexpanded nodes of that level, so a later payment needing a
    deeper target just continues the BFS instead of starting over.
    ``complete`` marks an exhausted search (unreached nodes are then
    genuinely unreachable).

    ``valid_depth`` is the invalidation watermark: mask flips since the
    build that interact with the shortest-path DAG shrink it to the flip
    edge's source depth, leaving all shallower levels provably exact —
    a payment whose target sits at depth <= ``valid_depth`` still walks
    this tree bit-for-bit identically to a fresh build.
    """

    __slots__ = (
        "dist", "sigma", "frontier", "level", "complete", "valid_depth",
    )

    def __init__(self, n: int, source: int) -> None:
        self.dist = np.full(n, -1, dtype=np.int64)
        self.sigma = np.zeros(n, dtype=np.float64)
        self.dist[source] = 0
        self.sigma[source] = 1.0
        self.frontier = np.array([source], dtype=np.int64)
        self.level = 0
        self.complete = False
        self.valid_depth = _DEPTH_INTACT

    def expand(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        keep: np.ndarray,
        target: int,
    ) -> None:
        """Run BFS levels until ``target`` is reached (or exhaustion).

        Mirrors :func:`~repro.network.views.bfs_shortest_path_tree` on
        the materialised reduced view — the ``keep`` filter sees edges
        in the same order the reduced CSR would, so the per-level
        bincounts accumulate ``sigma`` identically.
        """
        if self.complete or self.dist[target] >= 0:
            return
        dist = self.dist
        sigma = self.sigma
        n = dist.shape[0]
        frontier = self.frontier
        level = self.level
        seen = np.zeros(n, dtype=bool)
        while frontier.size:
            srcs, entries, targets = expand_frontier(indptr, indices, frontier)
            if targets.size:
                kept = keep[entries]
                srcs = srcs[kept]
                targets = targets[kept]
            if targets.size == 0:
                break
            fresh = targets[dist[targets] < 0]
            if fresh.size:
                dist[fresh] = level + 1
            tree = dist[targets] == level + 1
            if not tree.any():
                break
            sigma += np.bincount(
                targets[tree], weights=sigma[srcs[tree]], minlength=n
            )
            if fresh.size:
                seen[:] = False
                seen[fresh] = True
                frontier = np.nonzero(seen)[0]
            else:
                frontier = fresh
            level += 1
            if dist[target] == level:
                self.frontier = frontier
                self.level = level
                return
        self.frontier = np.zeros(0, dtype=np.int64)
        self.level = level
        self.complete = True


class _ArrayState:
    """Frozen-view array state: balances, slots, caches, accumulators.

    One instance backs one ``run_trace`` call in ``"instant"`` mode, or
    the whole engine lifetime in event mode (frozen at the first
    ``run()`` call). The routing caches and the balance array are shared
    by both paths; HTLC slot counters and the escrow discipline live in
    :class:`_ArrayHtlcRouter` on top of this state.
    """

    def __init__(
        self, engine: BatchedSimulationEngine, view: GraphView
    ) -> None:
        self.engine = engine
        self.view = view
        self.n = view.num_nodes
        self.m = view.num_entries
        self.small = self.n < SMALL_GRAPH_NODES
        # Mutable balance state, updated with the same float ops (and in
        # the same order) as the event engine's Channel.send calls.
        self.balances = view.balances.copy()
        self.entry_rows = view.entry_rows()
        self.rev_entry = self._reverse_entries(view)
        if self.small:
            self.full_adj = view.adjacency_lists()
        else:
            rev_indptr, rev_indices, rev_order = view.reverse_adjacency()
            self.rev_indptr = rev_indptr
            self.rev_indices = rev_indices
            self.rev_order = rev_order
        # Event-mode lookups: node name -> index, directed (src, dst)
        # index pair -> CSR entry.
        self.node_index: Dict[Hashable, int] = {
            node: i for i, node in enumerate(view.nodes)
        }
        rows = self.entry_rows
        indices = view.indices
        self.pair_entry: Dict[Tuple[int, int], int] = {
            (int(rows[e]), int(indices[e])): e for e in range(self.m)
        }
        # Name-keyed twin of pair_entry for the HTLC lock hot path: one
        # dict probe per hop instead of two node lookups plus a pair probe
        # (jamming attacks hammer lock() tens of thousands of times).
        nodes = view.nodes
        self.name_pair_entry: Dict[Tuple[Hashable, Hashable], int] = {
            (nodes[i], nodes[j]): e
            for (i, j), e in self.pair_entry.items()
        }
        # Per-direction in-flight HTLC slot accounting, mirroring
        # Channel._htlc_slots / max_accepted_htlcs entry for entry. Plain
        # lists, not arrays: every access is element-wise on the lock hot
        # path, where unboxed ints beat numpy scalars.
        self.slots_used: List[int] = [0] * self.m
        no_cap = 2**63 - 1
        slot_cap: List[int] = []
        for entry in range(self.m):
            channel_id = view.pair_channels[int(view.edge_ids[entry])][0]
            cap = engine.graph.channel(channel_id).max_accepted_htlcs
            slot_cap.append(no_cap if cap is None else cap)
        self.slot_cap = slot_cap
        # Per-node metric accumulators; *_touched tracks which nodes the
        # event engine would have created dict entries for (it records
        # zero-fee entries too).
        self.revenue = np.zeros(self.n, dtype=np.float64)
        self.revenue_touched = np.zeros(self.n, dtype=bool)
        self.fees_paid = np.zeros(self.n, dtype=np.float64)
        self.fees_touched = np.zeros(self.n, dtype=bool)
        self.upfront_revenue = np.zeros(self.n, dtype=np.float64)
        self.upfront_revenue_touched = np.zeros(self.n, dtype=bool)
        self.upfront_paid = np.zeros(self.n, dtype=np.float64)
        self.upfront_paid_touched = np.zeros(self.n, dtype=bool)
        self.sent = np.zeros(self.n, dtype=np.int64)
        self.received = np.zeros(self.n, dtype=np.int64)
        self.edge_traffic = np.zeros(self.m, dtype=np.int64)
        # Epoch state: the balance-update log and the masked snapshots
        # validated against it.
        self.log = np.empty(4096, dtype=np.int64)
        self.log_len = 0
        self.masks: Dict[float, _MaskedState] = {}
        self.epoch_payments = 0
        # Instrumentation (both None/off by default): per-entry counts
        # of cache-invalidating flips under --profile, trace events for
        # mask builds / tree hits / conflicts when a tracer is attached.
        obs = engine._obs
        self.tracer = obs.tracer
        self.conflict_counts: Optional[np.ndarray] = (
            np.zeros(self.m, dtype=np.int64) if obs.profile else None
        )

    @staticmethod
    def _reverse_entries(view: GraphView) -> np.ndarray:
        """Entry index of every entry's opposite direction.

        An unreduced directed view always carries both orientations of a
        pair, so the lookup is total.
        """
        n = view.num_nodes
        keys = view.entry_rows() * n + view.indices
        rev_keys = view.indices * n + view.entry_rows()
        return np.searchsorted(keys, rev_keys).astype(np.int64)

    # -- epoch / cache machinery ----------------------------------------------

    def _flush_epoch(self) -> None:
        self.masks.clear()
        self.log_len = 0
        self.epoch_payments = 0
        self.engine.stats.epochs += 1
        if self.tracer is not None:
            self.tracer.event(
                "fastpath.epoch_flush", epochs=self.engine.stats.epochs
            )

    def _log_update(self, entry: int) -> None:
        if self.log_len == self.log.shape[0]:
            self.log = np.concatenate(
                [self.log, np.empty(self.log.shape[0], dtype=np.int64)]
            )
        self.log[self.log_len] = entry
        self.log_len += 1

    def _masked_state(self, amount: float) -> _MaskedState:
        """The current reduced mask for ``amount`` (built or replayed).

        Replaying the update log keeps ``keep`` equal to
        ``balances >= amount`` and records every flip, so cached trees
        know exactly which mask changes happened since they were built.
        """
        state = self.masks.get(amount)
        if state is None:
            if len(self.masks) >= MAX_MASKED_STATES:
                # Evict only the least-recently-used amount's snapshot
                # (hot senders' trees for other amounts stay cached);
                # the shared log is bounded by the normal epoch flush.
                self.masks.pop(next(iter(self.masks)))
            state = _MaskedState(amount, self.balances >= amount)
            state.log_pos = self.log_len
            self.masks[amount] = state
            self.engine.stats.mask_builds += 1
            if self.tracer is not None:
                self.tracer.event("fastpath.mask_build", amount=amount)
            return state
        # Re-insert on access: dict order doubles as the LRU order.
        self.masks.pop(amount)
        self.masks[amount] = state
        if state.log_pos < self.log_len:
            entries = self.log[state.log_pos:self.log_len]
            feasible = self.balances[entries] >= amount
            flipped = feasible != state.keep[entries]
            if flipped.any():
                flip_entries = entries[flipped]
                state.keep[flip_entries] = feasible[flipped]
                state.record_flips(flip_entries, feasible[flipped])
            state.log_pos = self.log_len
        return state

    def _structure(self, state: _MaskedState, source: int, target: int):
        """A BFS structure from ``source`` over ``state``'s mask, exact
        for the *current* balances and deep enough to place ``target``.

        A cached structure is reused while the walk's region is provably
        identical to a fresh build: mask flips that interact with the
        shortest-path DAG shrink the tree's ``valid_depth`` watermark to
        the flip's source depth (shallower levels cannot be affected —
        any path through the flipped edge is longer); a payment whose
        target sits within the watermark walks the cached tree, deeper
        or unreached targets trigger a resume (partial trees whose
        frontier is intact) or an exact rebuild.
        """
        stats = self.engine.stats
        tracer = self.tracer
        cached = state.trees.get(source)
        flips = state.flips_len
        if cached is not None:
            structure, built_at = cached
            if self.small:
                if built_at == flips or self._small_tree_valid(
                    structure, state, built_at
                ):
                    state.trees[source] = (structure, flips)
                    stats.tree_hits += 1
                    if tracer is not None:
                        tracer.event("fastpath.tree_hit", source=source)
                    return structure
            else:
                if built_at < flips:
                    self._shrink_valid_depth(structure, state, built_at)
                    state.trees[source] = (structure, flips)
                depth = int(structure.dist[target])
                if 0 <= depth <= structure.valid_depth:
                    stats.tree_hits += 1
                    if tracer is not None:
                        tracer.event("fastpath.tree_hit", source=source)
                    return structure
                if depth < 0 and structure.complete \
                        and structure.valid_depth == _DEPTH_INTACT:
                    # Unreachability is a whole-graph verdict: it only
                    # survives if no flip touched the DAG at all.
                    stats.tree_hits += 1
                    if tracer is not None:
                        tracer.event("fastpath.tree_hit", source=source)
                    return structure
                if (
                    not structure.complete
                    and depth < 0
                    and structure.valid_depth >= structure.level
                ):
                    # The explored region and its frontier are intact:
                    # resuming with the current mask yields exactly a
                    # fresh build, and incorporates every deep flip.
                    structure.expand(
                        self.view.indptr, self.view.indices, state.keep,
                        target,
                    )
                    structure.valid_depth = _DEPTH_INTACT
                    state.trees[source] = (structure, flips)
                    stats.tree_hits += 1
                    if tracer is not None:
                        tracer.event(
                            "fastpath.tree_hit", source=source, resumed=True
                        )
                    return structure
            stats.conflicts += 1
            if tracer is not None:
                tracer.event(
                    "fastpath.tree_conflict", source=source, target=target
                )
        if self.small:
            adj = [
                [pair for pair in row if state.keep[pair[1]]]
                for row in self.full_adj
            ]
            structure = small_bfs_structure(adj, self.n, source)
        else:
            structure = _PartialTree(self.n, source)
            structure.expand(
                self.view.indptr, self.view.indices, state.keep, target
            )
        state.trees[source] = (structure, flips)
        stats.tree_builds += 1
        if tracer is not None:
            tracer.event("fastpath.tree_build", source=source)
        return structure

    def _small_tree_valid(
        self, structure, state: _MaskedState, built_at: int
    ) -> bool:
        """Do the flips since ``built_at`` leave the full structure exact?

        The python-branch twin of :meth:`_shrink_valid_depth`, boolean
        because small-graph rebuilds are cheap: an added edge ``u -> v``
        invalidates iff it creates or shortens a shortest path
        (``dist[v] < 0`` or ``dist[v] >= dist[u] + 1``); a removed one
        iff it was a DAG edge (``dist[v] == dist[u] + 1``). Edges out of
        an unreachable ``u`` cannot matter until an invalidating flip
        connects ``u`` first.
        """
        entries = state.flip_entries[built_at:state.flips_len]
        feasible = state.flip_feasible[built_at:state.flips_len]
        dist, _sigma, _preds = structure
        rows = self.entry_rows
        indices = self.view.indices
        conflict_counts = self.conflict_counts
        for entry, now_feasible in zip(entries, feasible):
            du = dist[int(rows[entry])]
            dv = dist[int(indices[entry])]
            if du < 0:
                continue
            if now_feasible:
                if dv < 0 or dv >= du + 1:
                    if conflict_counts is not None:
                        conflict_counts[entry] += 1
                    return False
            elif dv == du + 1:
                if conflict_counts is not None:
                    conflict_counts[entry] += 1
                return False
        return True

    def _shrink_valid_depth(
        self, structure: "_PartialTree", state: _MaskedState, built_at: int
    ) -> None:
        """Fold the flips since ``built_at`` into ``valid_depth``.

        A flip on edge ``u -> v`` can only alter shortest paths of
        length >= ``dist[u] + 1`` (every path through the edge enters
        ``u`` first), so levels <= ``dist[u]`` stay exact — the
        watermark drops to the minimum such ``dist[u]`` over the
        DAG-interacting flips: additions that reach a new node or
        satisfy ``dist[v] >= dist[u] + 1``, and removals of DAG edges
        (``dist[v] == dist[u] + 1``). For partial trees, additions out
        of the unexpanded frontier level are excluded — resumption
        expands with the current mask anyway.
        """
        entries = state.flip_entries[built_at:state.flips_len]
        feasible = state.flip_feasible[built_at:state.flips_len]
        dist = structure.dist
        du = dist[self.entry_rows[entries]]
        dv = dist[self.view.indices[entries]]
        explored = du >= 0
        if structure.complete:
            inner = explored
        else:
            inner = du < structure.level
        invalid_add = feasible & explored & (
            ((dv >= 0) & (dv >= du + 1)) | ((dv < 0) & inner)
        )
        invalid_remove = ~feasible & explored & (dv == du + 1)
        invalid = invalid_add | invalid_remove
        if invalid.any():
            structure.valid_depth = min(
                structure.valid_depth, int(du[invalid].min())
            )
            if self.conflict_counts is not None:
                # Profiling: attribute the invalidation to the flipped
                # edges (scatter-add; the same entry may flip repeatedly
                # within one log window).
                np.add.at(self.conflict_counts, entries[invalid], 1)

    # -- payment processing ---------------------------------------------------

    def execute(self, trace: TraceArrays) -> None:
        engine = self.engine
        metrics = engine.metrics
        if len(trace):
            engine.stats.epochs += 1
        senders = trace.senders
        receivers = trace.receivers
        amounts = trace.amounts
        indices = trace.indices
        for pos in range(len(trace)):
            if self.epoch_payments >= engine.epoch_size:
                self._flush_epoch()
            self.epoch_payments += 1
            engine.stats.payments += 1
            metrics.attempted += 1
            s = int(senders[pos])
            r = int(receivers[pos])
            if s == SELF_PAIR or s == r:
                # Event order: the sender==receiver check precedes the
                # endpoint check, and classifies as "other".
                metrics.failed += 1
                metrics.failure_reasons["other"] += 1
                continue
            if s == UNKNOWN_ENDPOINT or r == UNKNOWN_ENDPOINT:
                metrics.failed += 1
                metrics.failure_reasons["unknown-endpoint"] += 1
                continue
            self._process(s, r, float(amounts[pos]), int(indices[pos]))

    def _process(self, s: int, r: int, amount: float, index: int) -> None:
        engine = self.engine
        metrics = engine.metrics
        state = self._masked_state(amount)
        structure = self._structure(state, s, r)
        rng = engine._payment_rng(index)
        selection = engine.router.path_selection
        if self.small:
            dist, sigma, preds = structure
            path = walk_small(dist, sigma, preds, s, r, selection, rng)
        else:
            path = self._walk_masked(state, structure, s, r, selection, rng)
        if path is None:
            metrics.failed += 1
            metrics.failure_reasons["no-capacity-path"] += 1
            return
        hops = len(path) - 1
        hop_amounts = engine.router._hop_amounts(hops, amount)
        entries = [
            self.view.entry_between(path[i], path[i + 1])
            for i in range(hops)
        ]
        for entry, hop_amount in zip(entries, hop_amounts):
            if self.balances[entry] < hop_amount:
                # The aggregate route was feasible at `amount` but a hop
                # cannot carry amount+fees — the event engine's
                # "no single channel" execute failure.
                metrics.failed += 1
                metrics.failure_reasons["split-balance"] += 1
                return
        self._apply(s, r, amount, path, entries, hop_amounts)

    def route_event(
        self, s: int, r: int, amount: float, rng
    ) -> Optional[List[int]]:
        """Route one event-mode payment through the epoch caches.

        The event-mode twin of the routing half of :meth:`_process`:
        same masks, same trees, same walk (so the RNG draw order matches
        the event engine's ``find_route``); the caller applies the
        outcome (instant transfer or HTLC lock) itself. Epoch boundaries
        stay a pure optimisation — flushing mid-stream never changes a
        route.
        """
        engine = self.engine
        if self.epoch_payments >= engine.epoch_size:
            self._flush_epoch()
        self.epoch_payments += 1
        engine.stats.payments += 1
        state = self._masked_state(amount)
        structure = self._structure(state, s, r)
        selection = engine.router.path_selection
        if self.small:
            dist, sigma, preds = structure
            return walk_small(dist, sigma, preds, s, r, selection, rng)
        return self._walk_masked(state, structure, s, r, selection, rng)

    def apply_balances(
        self, entries: List[int], hop_amounts: List[float]
    ) -> None:
        """Move every hop amount across its entry (instant settlement).

        Same float operations, same order as :meth:`_apply`, but metric
        booking is left to the caller (event mode books dicts directly).
        """
        balances = self.balances
        for entry, hop_amount in zip(entries, hop_amounts):
            rev = int(self.rev_entry[entry])
            balances[entry] -= hop_amount
            balances[rev] += hop_amount
            self._log_update(entry)
            self._log_update(rev)

    def _walk_masked(
        self, state: _MaskedState, tree: "_PartialTree", source: int,
        target: int, selection: str, rng,
    ) -> Optional[List[int]]:
        """Backward predecessor walk using the full-view reverse
        adjacency filtered by the mask.

        The full reverse rows are sorted by source index, so filtering by
        ``keep`` yields the predecessors in exactly the order a reduced
        view's reverse adjacency would — identical ``rng.choice`` inputs.
        """
        dist = tree.dist
        if dist[target] < 0:
            return None
        keep = state.keep
        sigma_all = tree.sigma
        path = [target]
        current = target
        while current != source:
            lo = self.rev_indptr[current]
            hi = self.rev_indptr[current + 1]
            preds = self.rev_indices[lo:hi]
            kept = keep[self.rev_order[lo:hi]]
            preds = preds[kept & (dist[preds] == dist[current] - 1)]
            if selection == "random" and preds.size > 1:
                sigma = sigma_all[preds]
                chosen = int(rng.choice(preds, p=sigma / sigma.sum()))
            else:
                chosen = int(preds[0])
            path.append(chosen)
            current = chosen
        return path[::-1]

    def _apply(
        self,
        s: int,
        r: int,
        amount: float,
        path: List[int],
        entries: List[int],
        hop_amounts: List[float],
    ) -> None:
        engine = self.engine
        metrics = engine.metrics
        balances = self.balances
        for entry, hop_amount in zip(entries, hop_amounts):
            rev = int(self.rev_entry[entry])
            balances[entry] -= hop_amount
            balances[rev] += hop_amount
            self.edge_traffic[entry] += 1
            self._log_update(entry)
            self._log_update(rev)
        metrics.succeeded += 1
        metrics.volume_delivered += amount
        self.sent[s] += 1
        self.received[r] += 1
        self.fees_paid[s] += hop_amounts[0] - amount
        self.fees_touched[s] = True
        fee_fn = engine.router.fee if not engine.router.fee_forwarding else None
        for i in range(1, len(path) - 1):
            node = path[i]
            fee = hop_amounts[i - 1] - hop_amounts[i]
            if fee_fn is not None:
                fee += fee_fn(amount)
            self.revenue[node] += fee
            self.revenue_touched[node] = True
        policy = engine._array_router.policy
        if policy.has_upfront:
            # Instant mode has no lock phase, so the per-attempt side is
            # charged on the payments that actually execute — mirroring
            # the event engine's instant handler hop for hop.
            total = 0.0
            for i in range(len(path) - 1):
                node = path[i + 1]
                charge = policy.upfront(hop_amounts[i])
                self.upfront_revenue[node] += charge
                self.upfront_revenue_touched[node] = True
                total += charge
            self.upfront_paid[s] += total
            self.upfront_paid_touched[s] = True

    # -- finalisation ---------------------------------------------------------

    def finalize(self) -> None:
        """Fold the array accumulators into the metrics dicts and write
        the final balances back to the channels."""
        metrics = self.engine.metrics
        nodes = self.view.nodes
        for i in np.nonzero(self.revenue_touched)[0]:
            metrics.revenue[nodes[i]] += float(self.revenue[i])
        for i in np.nonzero(self.fees_touched)[0]:
            metrics.fees_paid[nodes[i]] += float(self.fees_paid[i])
        for i in np.nonzero(self.upfront_revenue_touched)[0]:
            metrics.upfront_revenue[nodes[i]] += float(self.upfront_revenue[i])
        for i in np.nonzero(self.upfront_paid_touched)[0]:
            metrics.upfront_fees_paid[nodes[i]] += float(self.upfront_paid[i])
        for i in np.nonzero(self.sent)[0]:
            metrics.sent[nodes[i]] += int(self.sent[i])
        for i in np.nonzero(self.received)[0]:
            metrics.received[nodes[i]] += int(self.received[i])
        for entry in np.nonzero(self.edge_traffic)[0]:
            src = nodes[int(self.entry_rows[entry])]
            dst = nodes[int(self.view.indices[entry])]
            metrics.edge_traffic[(src, dst)] += int(self.edge_traffic[entry])
        self.write_back()

    def write_back(self) -> None:
        """Push the array balances into the channel objects.

        The arrays applied the exact float operations the event engine's
        ``Channel.send`` calls would have, in the same order, so the
        written state is bit-identical to an event-backend run. Pending
        HTLC escrow stays excluded from both sides (exactly like the
        event engine's ``withdraw``-first discipline), so the channel
        capacity is temporarily reduced by in-flight amounts.
        """
        view = self.view
        graph = self.engine.graph
        rows = self.entry_rows
        for entry in range(self.m):
            u = int(rows[entry])
            v = int(view.indices[entry])
            if u >= v:
                continue
            rev = int(self.rev_entry[entry])
            channel_id = view.pair_channels[int(view.edge_ids[entry])][0]
            channel = graph.channel(channel_id)
            balance_u = float(self.balances[entry])
            balance_v = float(self.balances[rev])
            if channel.u == view.nodes[u]:
                channel.set_balances(balance_u, balance_v)
            else:
                channel.set_balances(balance_v, balance_u)


class _ArrayHtlcPayment:
    """One in-flight multi-hop payment over array state.

    The array twin of :class:`~repro.network.htlc.HtlcPayment`, exposing
    the same read surface (``state`` / ``failure_reason`` /
    ``fees_per_node`` / ``upfront_fees_per_node`` / ``total_locked`` /
    endpoints) so attack strategies and the
    :class:`~repro.attacks.context.AttackContext` handle payments from
    either backend identically. Hops are CSR entries plus amounts rather
    than :class:`~repro.network.htlc.Htlc` objects.
    """

    __slots__ = (
        "payment_id", "path", "amount", "state", "failure_reason",
        "fees_per_node", "upfront_fees_per_node", "_entries", "_amounts",
    )

    def __init__(
        self, payment_id: int, path: Tuple[Hashable, ...], amount: float
    ) -> None:
        self.payment_id = payment_id
        self.path = path
        self.amount = amount
        self.state = HtlcState.PENDING
        self.failure_reason = ""
        self.fees_per_node: Dict[Hashable, float] = {}
        self.upfront_fees_per_node: Dict[Hashable, float] = {}
        self._entries: List[int] = []
        self._amounts: List[float] = []

    @property
    def sender(self) -> Hashable:
        return self.path[0]

    @property
    def receiver(self) -> Hashable:
        return self.path[-1]

    @property
    def total_locked(self) -> float:
        # Kept after settle (like HtlcPayment.hops), cleared on unwind.
        return sum(self._amounts)

    @property
    def upfront_total(self) -> float:
        """All upfront fees the sender owes for this attempt."""
        return sum(self.upfront_fees_per_node.values())


class _ArrayHtlcRouter:
    """Lock / settle-or-fail over :class:`_ArrayState` balances.

    The array twin of :class:`~repro.network.htlc.HtlcRouter`: same
    escrow discipline (the hop amount leaves the upstream balance at
    lock; settlement decides which side it lands on), same per-direction
    slot accounting, same failure reasons (``"no-balance"`` /
    ``"no-slots"``) with the same precedence, and the same fee and
    upfront-fee arithmetic — so a lock/settle/fail sequence produces
    bit-identical balances and fees on either backend. Constructed with
    the engine (fees price routes immediately) but bound to array state
    lazily at the first ``run()`` call.
    """

    def __init__(self, fee: Optional[FeeFunction]) -> None:
        self.fee = fee if fee is not None else ConstantFee(0.0)
        self.policy = FeePolicy.of(self.fee)
        self._in_flight: Dict[int, _ArrayHtlcPayment] = {}
        # Running locked-capital sum, updated with exactly the same float
        # operations (and in the same event order) as the event router's
        # — see HtlcRouter._drop_in_flight — so the O(1) locked_capital()
        # stays bit-identical across backends.
        self._locked_totals: Dict[int, float] = {}
        self._locked_total = 0.0
        self._hop_amounts_cache: Dict[Tuple[int, float], Tuple[float, ...]] = {}
        self._ids = itertools.count()
        self._state: Optional[_ArrayState] = None

    def bind(self, state: _ArrayState) -> None:
        self._state = state

    def hop_amounts(self, hops: int, amount: float) -> List[float]:
        """Per-hop amounts (sender side first) for delivering ``amount``.

        Identical arithmetic to :meth:`HtlcRouter.hop_amounts
        <repro.network.htlc.HtlcRouter.hop_amounts>`, so attack
        strategies price capital commitments the same on both backends.
        """
        return list(self._hop_amounts(hops, amount))

    def _hop_amounts(self, hops: int, amount: float) -> Tuple[float, ...]:
        # Memoised like HtlcRouter._hop_amounts (same bound, same
        # arithmetic): jamming re-prices one (hops, amount) shape per
        # attempt.
        cached = self._hop_amounts_cache.get((hops, amount))
        if cached is not None:
            return cached
        amounts = [amount]
        for _ in range(hops - 1):
            amounts.insert(0, amounts[0] + self.fee(amounts[0]))
        if len(self._hop_amounts_cache) >= 4096:
            self._hop_amounts_cache.clear()
        result = tuple(amounts)
        self._hop_amounts_cache[(hops, amount)] = result
        return result

    def lock(
        self, path: Sequence[Hashable], amount: float
    ) -> _ArrayHtlcPayment:
        """Phase 1: reserve funds along ``path`` for ``amount``."""
        if len(path) < 2:
            raise RoutingError("path needs at least one hop")
        if amount <= 0:
            raise HtlcError(f"amount must be > 0, got {amount}")
        state = self._state
        if state is None:
            raise HtlcError(
                "the batched engine's HTLC router binds to array state at "
                "the first run() call; lock() is only available inside a run"
            )
        hops = len(path) - 1
        hop_amounts = self._hop_amounts(hops, amount)
        payment = _ArrayHtlcPayment(next(self._ids), tuple(path), amount)
        # Hot path under jamming: hoist every per-hop attribute chase and
        # defer the update log to the lock's outcome — within one lock()
        # call no mask is read, so logging placed hops at the end (or,
        # on failure, only the reverted hops whose restored balance is
        # not bit-identical) keeps the masks exactly as fresh.
        pair_entry_get = state.name_pair_entry.get
        balances = state.balances
        slots_used = state.slots_used
        slot_cap = state.slot_cap
        has_upfront = self.policy.has_upfront
        entries = payment._entries
        amounts = payment._amounts
        old_balances: List[float] = []
        src = path[0]
        for dst, hop_amount in zip(path[1:], hop_amounts):
            entry = pair_entry_get((src, dst))
            if entry is None or (before := balances[entry]) < hop_amount:
                reason = "no-balance"
            elif slots_used[entry] >= slot_cap[entry]:
                reason = "no-slots"
            else:
                reason = ""
            if reason:
                # Inline unwind (same float ops and order as _unwind):
                # restore balances and slots, then log only the entries
                # whose revert drifted — a bit-exact round trip needs no
                # mask replay.
                for prev, entry, hop_amount in zip(
                    reversed(old_balances),
                    reversed(entries),
                    reversed(amounts),
                ):
                    balances[entry] += hop_amount
                    slots_used[entry] -= 1
                    if balances[entry] != prev:
                        state._log_update(entry)
                entries.clear()
                amounts.clear()
                payment.state = HtlcState.FAILED
                payment.failure_reason = reason
                return payment
            # reserve: the hop amount leaves the upstream spendable
            # balance into escrow and occupies one direction slot, just
            # like Channel.withdraw + open_htlc.
            balances[entry] = before - hop_amount
            slots_used[entry] += 1
            if has_upfront:
                payment.upfront_fees_per_node[dst] = (
                    payment.upfront_fees_per_node.get(dst, 0.0)
                    + self.policy.upfront(hop_amount)
                )
            old_balances.append(before)
            entries.append(entry)
            amounts.append(hop_amount)
            src = dst
        log_update = state._log_update
        for entry in entries:
            log_update(entry)
        self._in_flight[payment.payment_id] = payment
        locked = payment.total_locked
        self._locked_totals[payment.payment_id] = locked
        self._locked_total += locked
        return payment

    def settle(self, payment: _ArrayHtlcPayment) -> None:
        """Phase 2a: funds finalise downstream; fee differences stick."""
        self._require_pending(payment)
        state = self._state
        balances = state.balances
        for entry, hop_amount in zip(payment._entries, payment._amounts):
            rev = int(state.rev_entry[entry])
            balances[rev] += hop_amount
            state._log_update(rev)
            state.slots_used[entry] -= 1
        amounts = payment._amounts
        for node, inbound, outbound in zip(
            payment.path[1:-1], amounts, amounts[1:]
        ):
            payment.fees_per_node[node] = (
                payment.fees_per_node.get(node, 0.0) + inbound - outbound
            )
        payment.state = HtlcState.SETTLED
        self._drop_in_flight(payment)

    def fail(self, payment: _ArrayHtlcPayment) -> None:
        """Phase 2b: unwind every reservation; balances fully restored."""
        self._require_pending(payment)
        self._unwind(payment)
        payment.state = HtlcState.FAILED
        self._drop_in_flight(payment)

    def _unwind(self, payment: _ArrayHtlcPayment) -> None:
        state = self._state
        balances = state.balances
        for entry, hop_amount in zip(
            reversed(payment._entries), reversed(payment._amounts)
        ):
            balances[entry] += hop_amount
            state._log_update(entry)
            state.slots_used[entry] -= 1
        payment._entries.clear()
        payment._amounts.clear()

    def _require_pending(self, payment: _ArrayHtlcPayment) -> None:
        if payment.state is not HtlcState.PENDING:
            raise HtlcError(
                f"payment {payment.payment_id} is {payment.state.value}, "
                "not pending"
            )

    def _drop_in_flight(self, payment: _ArrayHtlcPayment) -> None:
        if self._in_flight.pop(payment.payment_id, None) is None:
            return
        self._locked_total -= self._locked_totals.pop(payment.payment_id, 0.0)
        if not self._in_flight:
            # Re-anchor: with nothing in flight the total is exactly zero;
            # shed any rounding the incremental +/- accumulated.
            self._locked_total = 0.0

    @property
    def in_flight(self) -> Tuple[_ArrayHtlcPayment, ...]:
        return tuple(self._in_flight.values())

    def locked_capital(self) -> float:
        """Total coins currently reserved by pending payments."""
        return self._locked_total
