"""Sharded trace execution: component-partitioned parallel simulation.

A payment can only move balances inside its sender's connected
component, so a trace over a multi-component graph factors into
independent sub-traces — :class:`ShardedTraceRunner` partitions the
payments by component, executes each shard in its own engine (serially
or on worker processes via the scenario grid executor), and merges the
:class:`~repro.simulation.metrics.SimulationMetrics` exactly:

* per-node and per-edge accounting is reproduced bit for bit — a
  shard replays precisely the payments (in precisely the order) that
  touch its components, so every float accumulates through the same
  operations as in the unsharded run;
* counters add exactly; only order-sensitive *global* float sums
  (``volume_delivered``) can differ by summation rounding.

Exactness across shard counts additionally requires payment-local
routing randomness: with ``path_selection="random"`` the sequential
``route_rng="stream"`` entangles every payment with its predecessors'
draws, so sharding it would change results — the runner refuses that
combination (use ``route_rng="payment"``, or ``path_selection="first"``).

Workers rebuild the graph from a lean channel payload (endpoints,
balances, ids, fee policy, slot caps — the fields
:meth:`ChannelGraph.copy` preserves), so any in-memory graph can be
sharded, including one an optimisation algorithm just mutated.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import SimulationError
from ..network.graph import ChannelGraph
from ..transactions.workload import TraceArrays, Transaction
from .engine import SimulationEngine
from .fastpath import BatchedSimulationEngine
from .metrics import SimulationMetrics

__all__ = ["ShardedTraceRunner", "connected_component_ids"]


def connected_component_ids(graph: ChannelGraph) -> Dict[Hashable, int]:
    """Node -> component id (ids ordered by first node appearance)."""
    view = graph.view(directed=True)
    n = view.num_nodes
    comp = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for start in range(n):
        if comp[start] >= 0:
            continue
        comp[start] = next_id
        stack = [start]
        while stack:
            node = stack.pop()
            for target in view.successors(node):
                if comp[target] < 0:
                    comp[target] = next_id
                    stack.append(int(target))
        next_id += 1
    return {node: int(comp[i]) for i, node in enumerate(view.nodes)}


def _graph_payload(graph: ChannelGraph) -> Dict[str, Any]:
    """A picklable reconstruction recipe (see :meth:`ChannelGraph.copy`)."""
    return {
        "nodes": list(graph.nodes),
        "channels": [
            (
                channel.u,
                channel.v,
                channel.balance(channel.u),
                channel.balance(channel.v),
                channel.channel_id,
                channel.fee_base,
                channel.fee_rate,
                channel.upfront_base,
                channel.upfront_rate,
                channel.max_accepted_htlcs,
            )
            for channel in graph.channels
        ],
    }


def _graph_from_payload(payload: Dict[str, Any]) -> ChannelGraph:
    graph = ChannelGraph()
    for node in payload["nodes"]:
        graph.add_node(node)
    for (u, v, balance_u, balance_v, channel_id, fee_base, fee_rate,
         upfront_base, upfront_rate, max_accepted_htlcs) in payload["channels"]:
        graph.add_channel(
            u, v, balance_u, balance_v, channel_id=channel_id,
            fee_base=fee_base, fee_rate=fee_rate,
            upfront_base=upfront_base, upfront_rate=upfront_rate,
            max_accepted_htlcs=max_accepted_htlcs,
        )
    return graph


def _run_shard(
    common: Dict[str, Any],
    shards: List[TraceArrays],
    index: int,
    point: Dict[str, Any],
) -> Dict[str, Any]:
    """Top-level (hence picklable) shard evaluator for the grid executor."""
    del point  # the grid point is just the shard index
    graph = _graph_from_payload(common["graph"])
    kwargs = dict(common["engine_kwargs"])
    trace = shards[index]
    if common["backend"] == "batched":
        engine = BatchedSimulationEngine(graph, **kwargs)
        metrics = engine.run_trace(trace)
    else:
        engine = SimulationEngine(graph, **kwargs)
        engine.schedule_transactions(
            trace.to_transactions(),
            indices=(int(i) for i in trace.indices),
        )
        metrics = engine.run()
    return {"metrics": metrics}


class ShardedTraceRunner:
    """Executes one payment trace as component-disjoint parallel shards.

    Args:
        shards: requested shard count; the effective count is capped by
            the number of graph components that actually receive
            payments (a connected graph degrades gracefully to one
            shard).
        executor: ``"serial"`` or ``"process"`` — the scenario grid
            executors (:func:`~repro.scenarios.grid.evaluate_grid`).
        max_workers: process-pool size (``"process"`` only).
        backend: engine per shard, ``"batched"`` (default) or
            ``"event"``.
    """

    def __init__(
        self,
        shards: int = 2,
        executor: str = "serial",
        max_workers: Optional[int] = None,
        backend: str = "batched",
    ) -> None:
        if shards < 1:
            raise SimulationError(f"shards must be >= 1, got {shards}")
        if backend not in ("event", "batched"):
            raise SimulationError(
                f"backend must be 'event' or 'batched', got {backend!r}"
            )
        self.shards = shards
        self.executor = executor
        self.max_workers = max_workers
        self.backend = backend

    def run(
        self,
        graph: ChannelGraph,
        trace: Union[TraceArrays, Sequence[Transaction]],
        fee=None,
        fee_forwarding: bool = True,
        path_selection: str = "random",
        seed: Optional[int] = 0,
        route_rng: str = "payment",
    ) -> SimulationMetrics:
        """Run ``trace`` against ``graph`` and merge the shard metrics.

        Engine keyword arguments mirror the simulation engines;
        ``route_rng`` defaults to ``"payment"`` because that is the mode
        whose results are invariant under sharding.
        """
        view = graph.view(directed=True)
        if not isinstance(trace, TraceArrays):
            trace = TraceArrays.from_transactions(list(trace), view.nodes)
        elif trace.nodes != view.nodes:
            trace = TraceArrays.from_transactions(
                trace.to_transactions(), view.nodes
            )
        groups = self._partition(graph, view.nodes, trace)
        if len(groups) > 1 and path_selection == "random":
            # Local import (matches the evaluate_grid import below): the
            # scenarios package sits above the simulation modules.
            from ..scenarios.capabilities import backend_capabilities

            capabilities = backend_capabilities(self.backend)
            if route_rng != "payment" and not capabilities.stream_rng_shard_safe:
                raise SimulationError(
                    "sharded execution with path_selection='random' needs "
                    "route_rng='payment': the sequential stream RNG "
                    "entangles payments across shards (no backend declares "
                    "stream_rng_shard_safe), so splitting it would change "
                    "results"
                )
        engine_kwargs = {
            "fee": fee,
            "fee_forwarding": fee_forwarding,
            "path_selection": path_selection,
            "seed": seed,
            "route_rng": route_rng,
        }
        common = {
            "graph": _graph_payload(graph),
            "engine_kwargs": engine_kwargs,
            "backend": self.backend,
        }
        shard_traces = [trace.select(positions) for positions in groups]
        # Ride the scenario grid executor: one grid point per shard, a
        # picklable top-level evaluator, deterministic result order.
        from functools import partial

        from ..scenarios.grid import evaluate_grid

        rows = evaluate_grid(
            {"shard": list(range(len(shard_traces)))},
            partial(_run_shard, common, shard_traces),
            executor=self.executor,
            max_workers=self.max_workers,
        )
        return SimulationMetrics.merged(row["metrics"] for row in rows)

    def _partition(
        self,
        graph: ChannelGraph,
        nodes: Tuple[Hashable, ...],
        trace: TraceArrays,
    ) -> List[np.ndarray]:
        """Payment positions per shard (component groups, load-balanced).

        Payments are keyed by their sender's component; marker payments
        (unknown endpoint / self-pair) touch no balances and join the
        least-loaded shard. Components are assigned greedily by
        descending payment count, so shard loads stay even and the
        grouping is deterministic.
        """
        comp_of_node = connected_component_ids(graph)
        comp_arr = np.array(
            [comp_of_node[node] for node in nodes], dtype=np.int64
        )
        senders = trace.senders
        payment_comp = np.where(senders >= 0, comp_arr[senders], -1)
        comp_ids, counts = np.unique(payment_comp, return_counts=True)
        order = sorted(
            range(len(comp_ids)), key=lambda i: (-counts[i], comp_ids[i])
        )
        shard_count = min(self.shards, max(1, len(comp_ids)))
        loads = [0] * shard_count
        shard_of_comp: Dict[int, int] = {}
        for i in order:
            shard = loads.index(min(loads))
            shard_of_comp[int(comp_ids[i])] = shard
            loads[shard] += int(counts[i])
        groups: List[List[int]] = [[] for _ in range(shard_count)]
        for pos in range(len(trace)):
            groups[shard_of_comp[int(payment_comp[pos])]].append(pos)
        return [
            np.asarray(group, dtype=np.int64)
            for group in groups if group
        ]
