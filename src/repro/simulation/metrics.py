"""Per-node and per-edge accounting collected during simulation."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

__all__ = ["SimulationMetrics"]

Edge = Tuple[Hashable, Hashable]

#: Version stamp of the ``to_dict`` document layout.
#: v2 added the upfront-fee tallies (``upfront_revenue`` /
#: ``upfront_fees_paid``).
METRICS_SCHEMA_VERSION = 2


@dataclass
class SimulationMetrics:
    """Counters accumulated over one simulation run.

    Attributes:
        attempted / succeeded / failed: payment counts.
        volume_delivered: sum of successfully delivered amounts.
        revenue: routing fees earned per node (as intermediary).
        fees_paid: routing fees paid per node (as sender).
        upfront_revenue: per-attempt upfront fees earned per node under
            a two-sided :class:`~repro.network.fees.FeePolicy` (empty
            under success-only fees).
        upfront_fees_paid: upfront fees paid per node (as sender),
            charged per attempted hop whether or not the payment
            settled.
        sent / received: successful payment counts per node.
        edge_traffic: number of successful traversals per directed edge.
        failure_reasons: failure-description -> count.
        horizon: simulated time span covered (set by the engine).
        seed: the resolved RNG seed of the run that produced these
            metrics (set by the engines at construction) — with
            ``seed=None`` runs the engine draws an entropy seed and
            records it here, so *every* run is replayable. ``None``
            only for hand-built or heterogeneously merged metrics.
    """

    attempted: int = 0
    succeeded: int = 0
    failed: int = 0
    volume_delivered: float = 0.0
    revenue: Dict[Hashable, float] = field(
        default_factory=lambda: defaultdict(float)
    )
    fees_paid: Dict[Hashable, float] = field(
        default_factory=lambda: defaultdict(float)
    )
    upfront_revenue: Dict[Hashable, float] = field(
        default_factory=lambda: defaultdict(float)
    )
    upfront_fees_paid: Dict[Hashable, float] = field(
        default_factory=lambda: defaultdict(float)
    )
    sent: Dict[Hashable, int] = field(default_factory=lambda: defaultdict(int))
    received: Dict[Hashable, int] = field(default_factory=lambda: defaultdict(int))
    edge_traffic: Dict[Edge, int] = field(default_factory=lambda: defaultdict(int))
    failure_reasons: Dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    horizon: float = 0.0
    htlc_locked_peak: float = 0.0
    seed: Optional[int] = None

    @property
    def success_rate(self) -> float:
        return self.succeeded / self.attempted if self.attempted else 0.0

    @property
    def pending(self) -> int:
        """Payments locked but not yet resolved (HTLC mode, run(until=...))."""
        return self.attempted - self.succeeded - self.failed

    def revenue_rate(self, node: Hashable) -> float:
        """Observed revenue per unit time — the empirical counterpart of
        ``E_rev`` (Eq. 3); compared against the analytic value in E11."""
        if self.horizon <= 0:
            return 0.0
        return self.revenue.get(node, 0.0) / self.horizon

    def edge_rate(self, src: Hashable, dst: Hashable) -> float:
        """Observed traversals per unit time — the empirical ``λ_e``."""
        if self.horizon <= 0:
            return 0.0
        return self.edge_traffic.get((src, dst), 0) / self.horizon

    @classmethod
    def merged(cls, parts: Iterable["SimulationMetrics"]) -> "SimulationMetrics":
        """Combine metrics of independent runs into one.

        Counters and per-node/per-edge tallies add; ``horizon`` and
        ``htlc_locked_peak`` take the maximum. When the runs partition
        one trace into channel-disjoint shards (see
        :class:`~repro.simulation.sharding.ShardedTraceRunner`), every
        per-node value comes from exactly one shard, so the merge
        reproduces the unsharded run's per-node accounting bit for bit;
        only order-sensitive global float sums (``volume_delivered``)
        can differ by rounding.
        """
        out = cls()
        seeds = set()
        for metrics in parts:
            seeds.add(metrics.seed)
            out.attempted += metrics.attempted
            out.succeeded += metrics.succeeded
            out.failed += metrics.failed
            out.volume_delivered += metrics.volume_delivered
            for node, value in metrics.revenue.items():
                out.revenue[node] += value
            for node, value in metrics.fees_paid.items():
                out.fees_paid[node] += value
            for node, value in metrics.upfront_revenue.items():
                out.upfront_revenue[node] += value
            for node, value in metrics.upfront_fees_paid.items():
                out.upfront_fees_paid[node] += value
            for node, count in metrics.sent.items():
                out.sent[node] += count
            for node, count in metrics.received.items():
                out.received[node] += count
            for edge, count in metrics.edge_traffic.items():
                out.edge_traffic[edge] += count
            for reason, count in metrics.failure_reasons.items():
                out.failure_reasons[reason] += count
            out.horizon = max(out.horizon, metrics.horizon)
            out.htlc_locked_peak = max(
                out.htlc_locked_peak, metrics.htlc_locked_peak
            )
        # Shards of one run share a seed; keep it so the merged metrics
        # stay replay-addressable. Heterogeneous merges get None.
        if len(seeds) == 1:
            out.seed = seeds.pop()
        return out

    def to_dict(self) -> Dict[str, Any]:
        """A plain-JSON document (see :meth:`from_dict` for the inverse).

        Per-node tallies serialise as ``[node, value]`` pair lists and
        per-edge tallies as ``[src, dst, count]`` triples — JSON objects
        only take string keys, and node ids may be ints. Node ids that
        are themselves JSON scalars round-trip losslessly.
        """
        return {
            "schema_version": METRICS_SCHEMA_VERSION,
            "attempted": self.attempted,
            "succeeded": self.succeeded,
            "failed": self.failed,
            "volume_delivered": self.volume_delivered,
            "revenue": _pairs(self.revenue),
            "fees_paid": _pairs(self.fees_paid),
            "upfront_revenue": _pairs(self.upfront_revenue),
            "upfront_fees_paid": _pairs(self.upfront_fees_paid),
            "sent": _pairs(self.sent),
            "received": _pairs(self.received),
            "edge_traffic": [
                [src, dst, count]
                for (src, dst), count in sorted(
                    self.edge_traffic.items(), key=lambda kv: str(kv[0])
                )
            ],
            "failure_reasons": {
                str(reason): count
                for reason, count in sorted(self.failure_reasons.items())
            },
            "horizon": self.horizon,
            "htlc_locked_peak": self.htlc_locked_peak,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "SimulationMetrics":
        """Rebuild metrics from a :meth:`to_dict` document."""
        version = document.get("schema_version", METRICS_SCHEMA_VERSION)
        if version != METRICS_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported SimulationMetrics schema_version {version!r}"
            )
        metrics = cls(
            attempted=document.get("attempted", 0),
            succeeded=document.get("succeeded", 0),
            failed=document.get("failed", 0),
            volume_delivered=document.get("volume_delivered", 0.0),
            horizon=document.get("horizon", 0.0),
            htlc_locked_peak=document.get("htlc_locked_peak", 0.0),
            seed=document.get("seed"),
        )
        for name in (
            "revenue", "fees_paid", "upfront_revenue", "upfront_fees_paid",
            "sent", "received",
        ):
            table = getattr(metrics, name)
            for node, value in document.get(name, []):
                table[node] = value
        for src, dst, count in document.get("edge_traffic", []):
            metrics.edge_traffic[(src, dst)] = count
        for reason, count in document.get("failure_reasons", {}).items():
            metrics.failure_reasons[reason] = count
        return metrics

    def summary(self) -> str:
        return (
            f"payments: {self.succeeded}/{self.attempted} ok "
            f"({self.success_rate:.1%}), volume={self.volume_delivered:.4g}, "
            f"total revenue={sum(self.revenue.values()):.4g} "
            f"over t={self.horizon:.4g}"
        )


def _pairs(table: Mapping[Hashable, Any]) -> List[List[Any]]:
    """Sorted ``[node, value]`` pairs (stable across dict orderings)."""
    return [
        [node, value]
        for node, value in sorted(table.items(), key=lambda kv: str(kv[0]))
    ]
