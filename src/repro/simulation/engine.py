"""The discrete-event payment simulator.

Drives a :class:`~repro.network.graph.ChannelGraph` with a Poisson payment
workload: each arrival routes along a capacity-feasible shortest path,
updates channel balances, and credits intermediaries their fees. This is
the "simulation-only evaluation" substrate: it produces the empirical
counterparts of the model's analytic quantities (``E_rev``, ``λ_e``,
feasibility), which bench E11 compares against Eq. 2/Eq. 3 predictions.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Type

import numpy as np

from ..determinism import resolve_seed
from ..errors import RoutingError, SimulationError
from ..network.fees import FeeFunction
from ..network.graph import ChannelGraph
from ..network.htlc import HtlcRouter, HtlcState
from ..network.routing import PaymentRouteRng, Router
from ..obs import ObsSession, default_session
from ..transactions.workload import PoissonWorkload, Transaction
from .events import (
    ChannelCloseEvent,
    ChannelOpenEvent,
    Event,
    EventQueue,
    HtlcResolveEvent,
    PaymentEvent,
)
from .metrics import SimulationMetrics

__all__ = ["SimulationEngine"]


class SimulationEngine:
    """Runs payment workloads against a channel graph.

    Args:
        graph: the network (mutated in place as balances move).
        fee: global fee function for intermediaries.
        fee_forwarding: see :class:`~repro.network.routing.Router`.
        path_selection: shortest-path tie-breaking; defaults to
            ``"random"`` so that long-run edge traffic realises the
            equal-split shares of Eq. 2.
        seed: RNG seed for path tie-breaking and hold-time sampling.
            ``None`` draws one entropy seed via
            :func:`~repro.determinism.resolve_seed` (logged at WARNING)
            and surfaces it as ``metrics.seed``, so even "unseeded" runs
            can be replayed exactly.
        payment_mode: ``"instant"`` applies each payment atomically on
            arrival; ``"htlc"`` locks funds on arrival and settles after
            an exponential hold time (mean ``htlc_hold_mean``), so
            concurrent payments contend for in-flight capital — the
            opportunity-cost effect of Section II-C made concrete.
        htlc_hold_mean: mean lock duration in ``"htlc"`` mode.
        route_rng: ``"stream"`` draws path tie-breaks from one sequential
            RNG (historical behaviour); ``"payment"`` derives an
            independent RNG per payment from ``(seed, payment index)``,
            making each routing decision invariant under trace sharding.
    """

    def __init__(
        self,
        graph: ChannelGraph,
        fee: Optional[FeeFunction] = None,
        fee_forwarding: bool = True,
        path_selection: str = "random",
        seed: Optional[int] = 0,
        payment_mode: str = "instant",
        htlc_hold_mean: float = 0.1,
        route_rng: str = "stream",
        obs: Optional[ObsSession] = None,
    ) -> None:
        if payment_mode not in ("instant", "htlc"):
            raise SimulationError(
                f"payment_mode must be 'instant' or 'htlc', got {payment_mode!r}"
            )
        if htlc_hold_mean <= 0:
            raise SimulationError("htlc_hold_mean must be > 0")
        if route_rng not in ("stream", "payment"):
            raise SimulationError(
                f"route_rng must be 'stream' or 'payment', got {route_rng!r}"
            )
        self.graph = graph
        # Resolve the seed once: with seed=None an entropy seed is drawn
        # *here* (loudly — see repro.determinism) and every downstream
        # consumer (router tie-breaks, per-payment RNG bases, hold-time
        # sampling) derives from the same value, so the run is replayable
        # from SimulationMetrics.seed alone.
        self.seed = resolve_seed(seed)
        self.router = Router(
            graph, fee=fee, fee_forwarding=fee_forwarding,
            path_selection=path_selection, seed=self.seed,
        )
        self.payment_mode = payment_mode
        self.htlc_hold_mean = htlc_hold_mean
        self.route_rng = route_rng
        self._route_base = self.seed % (2 ** 63)
        self._htlc_router = HtlcRouter(graph, fee=fee)
        self._pending_htlcs = {}
        self._hold_rng = np.random.default_rng(self.seed + 1)
        self.metrics = SimulationMetrics(seed=self.seed)
        self._queue = EventQueue()
        self._now = 0.0
        self._payment_seq = 0
        self._handlers: Dict[Type[Event], Callable[[Event], None]] = {}
        # Instrumentation handle (the shared no-op session by default);
        # counters and trace events only — never the RNG, never the
        # metrics, so obs-on and obs-off runs stay bit-identical.
        self._obs = obs if obs is not None else default_session()

    @property
    def now(self) -> float:
        return self._now

    @property
    def htlc_router(self) -> HtlcRouter:
        """The engine's HTLC router — shared with adversarial extensions so
        attacker locks and honest locks contend for the same slots and
        balances."""
        return self._htlc_router

    @classmethod
    def capabilities(cls):
        """This backend's :class:`EngineCapabilities` declaration."""
        # Local import: the scenarios package pulls in the factory (and
        # through it this module), so the leaf is resolved lazily.
        from ..scenarios.capabilities import EVENT_CAPABILITIES

        return EVENT_CAPABILITIES

    # -- scheduling -----------------------------------------------------------

    def schedule(self, event: Event) -> None:
        self._queue.push(event)

    def register_handler(
        self, event_type: Type[Event], handler: Callable[[Event], None]
    ) -> None:
        """Register a dispatcher for a custom :class:`Event` subclass.

        Extensions (e.g. :mod:`repro.attacks`) inject their own event types
        into the shared queue; ``run`` dispatches them to ``handler`` in
        time order, interleaved with the honest workload. Builtin event
        types cannot be overridden.
        """
        builtin = (
            PaymentEvent, HtlcResolveEvent, ChannelOpenEvent, ChannelCloseEvent,
        )
        if issubclass(event_type, builtin):
            # _dispatch routes by isinstance first, so a handler for a
            # builtin subclass would silently never fire.
            raise SimulationError(
                f"cannot override builtin event type {event_type.__name__}"
            )
        self._handlers[event_type] = handler

    def schedule_workload(
        self, workload: PoissonWorkload, horizon: float
    ) -> int:
        """Schedule all arrivals of ``workload`` within ``[0, horizon)``.

        Returns the number of payment events scheduled.
        """
        return self.schedule_transactions(workload.generate(horizon))

    def schedule_transactions(
        self,
        transactions: Iterable[Transaction],
        indices: Optional[Iterable[int]] = None,
    ) -> int:
        """Schedule an explicit (pre-generated) transaction trace.

        Payments are stamped with consecutive trace indices (the
        ``route_rng="payment"`` key); ``indices`` overrides them — trace
        shards pass the payments' positions in the *full* trace so a
        shard routes exactly like the unsharded run.
        """
        count = 0
        index_iter = iter(indices) if indices is not None else None
        for tx in transactions:
            if index_iter is not None:
                index = next(index_iter)
                # Keep later default-stamped payments from reusing an
                # explicitly-taken index (duplicate per-payment RNGs).
                self._payment_seq = max(self._payment_seq, index + 1)
            else:
                index = self._payment_seq
                self._payment_seq += 1
            self.schedule(
                PaymentEvent(
                    time=tx.time,
                    sender=tx.sender,
                    receiver=tx.receiver,
                    amount=tx.amount,
                    index=index,
                )
            )
            count += 1
        return count

    # -- execution ----------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> SimulationMetrics:
        """Process events in time order until the queue drains (or ``until``).

        Returns the accumulated metrics; ``metrics.horizon`` is set to the
        simulated span so rate comparisons are well-defined.
        """
        while self._queue:
            next_time = self._queue.peek_time()
            if until is not None and next_time is not None and next_time > until:
                break
            event = self._queue.pop()
            self._now = event.time
            self._dispatch(event)
        self.metrics.horizon = until if until is not None else self._now
        return self.metrics

    def _dispatch(self, event: Event) -> None:
        if isinstance(event, PaymentEvent):
            if self.payment_mode == "htlc":
                self._handle_payment_htlc(event)
            else:
                self._handle_payment(event)
        elif isinstance(event, HtlcResolveEvent):
            self._handle_htlc_resolve(event)
        elif isinstance(event, ChannelOpenEvent):
            self.graph.add_channel(
                event.u, event.v, event.balance_u, event.balance_v
            )
        elif isinstance(event, ChannelCloseEvent):
            self.graph.remove_channel(event.channel_id)
        else:
            handler = self._handlers.get(type(event))
            if handler is None:
                raise SimulationError(
                    f"unknown event type {type(event).__name__}"
                )
            handler(event)

    def _payment_rng(self, event: PaymentEvent) -> Optional[PaymentRouteRng]:
        """The event's route RNG: ``None`` = the router's shared stream.

        Ad-hoc events (``index == -1``) draw the next engine-local index,
        so directly-scheduled payments stay deterministic too.
        """
        if self.route_rng != "payment":
            return None
        index = event.index
        if index < 0:
            index = self._payment_seq
            self._payment_seq += 1
        return PaymentRouteRng(self._route_base, index)

    def _handle_payment(self, event: PaymentEvent) -> None:
        metrics = self.metrics
        metrics.attempted += 1
        outcome = self.router.execute(
            event.sender, event.receiver, event.amount, timestamp=event.time,
            rng=self._payment_rng(event),
        )
        if not outcome.success:
            metrics.failed += 1
            reason = _classify_failure(outcome.failure_reason)
            metrics.failure_reasons[reason] += 1
            obs = self._obs
            if obs.enabled:
                obs.registry.counter(f"payments.failed.{reason}").inc()
            return
        metrics.succeeded += 1
        metrics.volume_delivered += event.amount
        metrics.sent[event.sender] += 1
        metrics.received[event.receiver] += 1
        route = outcome.route
        metrics.fees_paid[event.sender] += route.fee
        for node, fee in outcome.fees_per_node.items():
            metrics.revenue[node] += fee
        for src, dst in zip(route.nodes, route.nodes[1:]):
            metrics.edge_traffic[(src, dst)] += 1
        policy = self._htlc_router.policy
        if policy.has_upfront:
            # Instant mode has no lock phase, so the per-attempt side of
            # the two-sided policy is charged on the payments that
            # actually execute — one charge per hop, credited to the
            # hop's receiving node.
            hop_amounts = self.router._hop_amounts(
                len(route.nodes) - 1, event.amount
            )
            total = 0.0
            for i, node in enumerate(route.nodes[1:]):
                charge = policy.upfront(hop_amounts[i])
                metrics.upfront_revenue[node] += charge
                total += charge
            metrics.upfront_fees_paid[event.sender] += total


    def _handle_payment_htlc(self, event: PaymentEvent) -> None:
        """Lock now, settle after an exponential hold (HTLC semantics)."""
        metrics = self.metrics
        metrics.attempted += 1
        try:
            route = self.router.find_route(
                event.sender, event.receiver, event.amount,
                rng=self._payment_rng(event),
            )
        except RoutingError as exc:
            metrics.failed += 1
            metrics.failure_reasons[_classify_failure(str(exc))] += 1
            return
        payment = self._htlc_router.lock(route.nodes, event.amount)
        self._book_upfront_attempt(payment, event.sender)
        obs = self._obs
        if payment.state is not HtlcState.PENDING:
            metrics.failed += 1
            reason = (
                "no-htlc-slots" if payment.failure_reason == "no-slots"
                else "lock-contention"
            )
            metrics.failure_reasons[reason] += 1
            if obs.enabled:
                obs.registry.counter(f"htlc.lock_failed.{reason}").inc()
                if reason == "no-htlc-slots":
                    obs.registry.counter("htlc.slot_exhaustion").inc()
                obs.event(
                    "htlc.fail", t=event.time, reason=reason,
                    hops=len(route.nodes) - 1,
                )
            return
        metrics.htlc_locked_peak = max(
            metrics.htlc_locked_peak, self._htlc_router.locked_capital()
        )
        if obs.enabled:
            obs.registry.counter("htlc.locks").inc()
            obs.event(
                "htlc.lock", t=event.time,
                payment_id=payment.payment_id, hops=len(route.nodes) - 1,
            )
        self._pending_htlcs[payment.payment_id] = (payment, event)
        hold = float(self._hold_rng.exponential(self.htlc_hold_mean))
        self.schedule(
            HtlcResolveEvent(time=event.time + hold, payment_id=payment.payment_id)
        )

    def _handle_htlc_resolve(self, event: HtlcResolveEvent) -> None:
        entry = self._pending_htlcs.pop(event.payment_id, None)
        if entry is None:
            raise SimulationError(
                f"resolve for unknown HTLC payment {event.payment_id}"
            )
        payment, origin = entry
        self._htlc_router.settle(payment)
        obs = self._obs
        if obs.enabled:
            obs.registry.counter("htlc.settles").inc()
            obs.event(
                "htlc.settle", t=event.time, payment_id=event.payment_id
            )
        metrics = self.metrics
        metrics.succeeded += 1
        metrics.volume_delivered += origin.amount
        metrics.sent[origin.sender] += 1
        metrics.received[origin.receiver] += 1
        metrics.fees_paid[origin.sender] += sum(
            payment.fees_per_node.values()
        )
        for node, fee in payment.fees_per_node.items():
            metrics.revenue[node] += fee
        for src, dst in zip(payment.path, payment.path[1:]):
            metrics.edge_traffic[(src, dst)] += 1

    def _book_upfront_attempt(self, payment, sender) -> None:
        """Book the unconditional per-attempt fees of one lock attempt.

        The hops actually offered pay their receiving nodes whether or
        not the payment later settles (and even when a later hop failed
        the lock) — the jamming countermeasure: a failed or jamming
        attempt is no longer free.
        """
        if not payment.upfront_fees_per_node:
            return
        metrics = self.metrics
        metrics.upfront_fees_paid[sender] += payment.upfront_total
        for node, fee in payment.upfront_fees_per_node.items():
            metrics.upfront_revenue[node] += fee


def _classify_failure(reason: str) -> str:
    """Collapse verbose failure strings into stable categories."""
    if "no path" in reason:
        return "no-capacity-path"
    if "no single channel" in reason:
        return "split-balance"
    if "unknown endpoint" in reason:
        return "unknown-endpoint"
    return "other"
