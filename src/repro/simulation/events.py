"""Event types for the discrete-event PCN simulator.

Payments execute instantaneously in the model, so the core loop is a
time-ordered queue of arrival events; channel lifecycle events (open /
close) are included so experiments can perturb topology mid-run (e.g.
model a party unilaterally closing, Section II-C's cost discussion).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Hashable, List, Optional, Tuple

from ..errors import SimulationError

__all__ = [
    "Event",
    "PaymentEvent",
    "ChannelOpenEvent",
    "ChannelCloseEvent",
    "HtlcResolveEvent",
    "EventQueue",
]


@dataclass(frozen=True)
class Event:
    """Base event: something that happens at a point in simulated time."""

    time: float


@dataclass(frozen=True)
class PaymentEvent(Event):
    """A payment intent entering the network.

    ``index`` is the payment's position in the scheduled trace (stamped
    by ``schedule_workload`` / ``schedule_transactions``); ``-1`` marks
    an ad-hoc event scheduled outside a trace. Under
    ``route_rng="payment"`` the engine derives the payment's
    path-sampling RNG from it, so routing decisions are independent of
    which other payments share the run (the property trace sharding
    relies on).
    """

    sender: Hashable = None
    receiver: Hashable = None
    amount: float = 0.0
    index: int = -1


@dataclass(frozen=True)
class ChannelOpenEvent(Event):
    """Open a channel between two nodes mid-simulation."""

    u: Hashable = None
    v: Hashable = None
    balance_u: float = 0.0
    balance_v: float = 0.0


@dataclass(frozen=True)
class ChannelCloseEvent(Event):
    """Close (remove) a channel by id mid-simulation."""

    channel_id: str = ""


@dataclass(frozen=True)
class HtlcResolveEvent(Event):
    """Settle a pending HTLC payment that finished its hold time."""

    payment_id: int = -1


class EventQueue:
    """A stable min-heap of events ordered by time then insertion order."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Event]] = []
        self._tiebreak = itertools.count()
        self._last_popped_time = -float("inf")

    def push(self, event: Event) -> None:
        if event.time < self._last_popped_time:
            raise SimulationError(
                f"event at t={event.time} scheduled in the past "
                f"(now t={self._last_popped_time})"
            )
        heapq.heappush(self._heap, (event.time, next(self._tiebreak), event))

    def pop(self) -> Event:
        if not self._heap:
            raise SimulationError("pop from empty event queue")
        time, _count, event = heapq.heappop(self._heap)
        self._last_popped_time = time
        return event

    def peek_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
