"""Payment simulation over channel graphs: event-driven and batched.

Two interchangeable backends produce identical metrics for identical
seeds: :class:`SimulationEngine` (the discrete-event queue — supports
HTLC holds, mid-run topology changes, and adversarial event injection)
and :class:`BatchedSimulationEngine` (the vectorised fast path for
instant-mode payment traces). :class:`ShardedTraceRunner` splits a trace
into component-disjoint shards and runs them on worker processes,
merging metrics exactly.
"""

from .engine import SimulationEngine
from .events import (
    ChannelCloseEvent,
    ChannelOpenEvent,
    Event,
    EventQueue,
    PaymentEvent,
)
from .fastpath import BatchedSimulationEngine, FastpathStats
from .metrics import SimulationMetrics
from .sharding import ShardedTraceRunner

__all__ = [
    "BatchedSimulationEngine",
    "ChannelCloseEvent",
    "ChannelOpenEvent",
    "Event",
    "EventQueue",
    "FastpathStats",
    "PaymentEvent",
    "ShardedTraceRunner",
    "SimulationEngine",
    "SimulationMetrics",
]
