"""Discrete-event payment simulation over channel graphs."""

from .engine import SimulationEngine
from .events import (
    ChannelCloseEvent,
    ChannelOpenEvent,
    Event,
    EventQueue,
    PaymentEvent,
)
from .metrics import SimulationMetrics

__all__ = [
    "ChannelCloseEvent",
    "ChannelOpenEvent",
    "Event",
    "EventQueue",
    "PaymentEvent",
    "SimulationEngine",
    "SimulationMetrics",
]
