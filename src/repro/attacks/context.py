"""Shared state between an attack strategy and the simulation engine.

The :class:`AttackContext` is the strategy's only handle on the world: it
schedules attacker events on the engine's shared queue, opens
budget-accounted attacker channels, places and resolves HTLC locks through
the engine's own :class:`~repro.network.htlc.HtlcRouter` (so attacker
locks and honest locks contend for the same balances and slots), and
accumulates the damage counters the :class:`~repro.attacks.report.AttackReport`
is built from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..errors import ScenarioError
from ..network.channel import Channel
from ..network.graph import ChannelGraph
from ..network.htlc import HtlcPayment, HtlcState
from ..obs import NULL_SESSION, ObsSession

if TYPE_CHECKING:  # pragma: no cover - hints only
    from ..simulation.engine import SimulationEngine
    from ..simulation.fastpath import BatchedSimulationEngine
from ..simulation.events import Event

__all__ = ["AttackContext", "AttackTickEvent", "AttackResolveEvent"]


@dataclass(frozen=True)
class AttackTickEvent(Event):
    """The strategy wakes up to (possibly) launch more adversarial HTLCs."""


@dataclass(frozen=True)
class AttackResolveEvent(Event):
    """A held adversarial HTLC reaches its resolution time."""

    payment_id: int = -1


class AttackContext:
    """Budget-accounted attacker access to a running simulation.

    Args:
        graph: the attacked network (attacker channels are added to it).
        engine: the engine driving the honest workload — any backend
            declaring ``event_injection`` in its capabilities (see
            :mod:`repro.scenarios.capabilities`); the attacker shares
            its event queue and HTLC router.
        victim: the node whose revenue the attack targets.
        horizon: simulated end time — no attacker event is scheduled past it.
        budget: attacker capital endowment; every channel funding, pushed
            balance, and paid fee is drawn from it.
        seed: attacker RNG stream (independent of the honest streams, so
            the honest trace is bit-identical with and without the attack).
        obs: instrumentation session for attack counters and circuit
            trace events (defaults to the shared disabled session).
    """

    def __init__(
        self,
        graph: ChannelGraph,
        engine: Union["SimulationEngine", "BatchedSimulationEngine"],
        victim: Hashable,
        horizon: float,
        budget: float,
        seed: int = 0,
        obs: Optional[ObsSession] = None,
    ) -> None:
        if budget < 0:
            raise ScenarioError(f"attack budget must be >= 0, got {budget}")
        self.graph = graph
        self.engine = engine
        self.victim = victim
        self.horizon = float(horizon)
        self.budget = float(budget)
        self.budget_spent = 0.0
        self.fees_paid = 0.0
        # Unconditional per-attempt fees under a two-sided FeePolicy —
        # the jamming countermeasure's bite: charged on every lock
        # attempt (even rejected ones), never refunded.
        self.upfront_paid = 0.0
        self.attacks_launched = 0
        self.attacks_held = 0
        self.attacks_rejected = 0
        self.locked_liquidity_integral = 0.0
        self.rng = np.random.default_rng([seed & 0x7FFFFFFF, 0xA77AC])
        self._obs = obs if obs is not None else NULL_SESSION
        # payment_id -> (payment, lock time); resolved or finalized later.
        self._active: Dict[int, Tuple[HtlcPayment, float]] = {}

    # -- time & scheduling --------------------------------------------------

    @property
    def now(self) -> float:
        return self.engine.now

    @property
    def active_locks(self) -> int:
        return len(self._active)

    def schedule(self, event: Event) -> bool:
        """Queue ``event`` unless it falls past the horizon."""
        if event.time > self.horizon:
            return False
        self.engine.schedule(event)
        return True

    # -- budget-accounted capital -------------------------------------------

    @property
    def budget_remaining(self) -> float:
        return max(0.0, self.budget - self.budget_spent)

    def open_channel(
        self, owner: Hashable, peer: Hashable, funding: float, push: float = 0.0
    ) -> Optional[Channel]:
        """Open an attacker channel, drawing ``funding + push`` from budget.

        ``push`` models Lightning's ``push_msat``: coins the attacker hands
        to ``peer``'s side at open, buying the inbound liquidity adversarial
        circuits need on their exit hop. Returns ``None`` (and opens
        nothing) when the budget can't cover it.
        """
        cost = funding + push
        if funding < 0 or push < 0:
            raise ScenarioError("channel funding and push must be >= 0")
        if cost > self.budget_remaining + 1e-12:
            return None
        self.budget_spent += cost
        obs = self._obs
        if obs.enabled:
            obs.registry.counter("attack.channels_opened").inc()
            obs.event(
                "attack.open_channel",
                t=self.now, owner=str(owner), peer=str(peer),
                funding=funding, push=push,
            )
        return self.graph.add_channel(owner, peer, funding, push)

    def hop_amounts(self, hops: int, amount: float) -> List[float]:
        """Per-hop amounts (sender side first) under the engine's fee."""
        return self.engine.htlc_router.hop_amounts(hops, amount)

    # -- adversarial HTLCs ---------------------------------------------------

    def lock(self, path: Sequence[Hashable], amount: float) -> Optional[HtlcPayment]:
        """Place an adversarial HTLC chain along ``path``.

        Returns the pending payment, or ``None`` when some hop rejected the
        lock (no balance / no free slot) — the rejection is counted.
        """
        self.attacks_launched += 1
        payment = self.engine.htlc_router.lock(path, amount)
        # The upfront side charges per hop actually offered, settle or
        # not — partially placed (then unwound) locks still pay. Dict
        # check first: success-only policies charge nothing, and jamming
        # hammers this path tens of thousands of times.
        if payment.upfront_fees_per_node:
            self.upfront_paid += payment.upfront_total
        obs = self._obs
        if payment.state is not HtlcState.PENDING:
            self.attacks_rejected += 1
            if obs.enabled:
                obs.registry.counter("attack.locks_rejected").inc()
                obs.event(
                    "attack.lock_rejected",
                    t=self.now, hops=len(path) - 1, amount=amount,
                )
            return None
        self.attacks_held += 1
        if obs.enabled:
            obs.registry.counter("attack.locks_held").inc()
            obs.event(
                "attack.lock",
                t=self.now, payment_id=payment.payment_id,
                hops=len(path) - 1, amount=amount,
            )
        self._active[payment.payment_id] = (payment, self.now)
        return payment

    def resolve(self, payment_id: int, settle: bool) -> Optional[HtlcPayment]:
        """Settle or fail a held adversarial HTLC, booking its damage.

        The locked-liquidity integral accumulates ``total_locked *
        held_time``. On settle, the routing fees the attacker paid are
        tracked in ``fees_paid`` — they are *not* added to ``budget_spent``
        (they were already part of the committed entry funding; counting
        them again would double-book). Unknown ids (already resolved)
        return ``None``.
        """
        entry = self._active.pop(payment_id, None)
        if entry is None:
            return None
        payment, locked_at = entry
        self.locked_liquidity_integral += payment.total_locked * (
            self.now - locked_at
        )
        if settle:
            self.engine.htlc_router.settle(payment)
            self.fees_paid += sum(payment.fees_per_node.values())
        else:
            self.engine.htlc_router.fail(payment)
        obs = self._obs
        if obs.enabled:
            obs.registry.counter(
                "attack.settled" if settle else "attack.failed"
            ).inc()
            obs.event(
                "attack.resolve",
                t=self.now, payment_id=payment_id, settle=settle,
                held=self.now - locked_at,
            )
        return payment

    def finalize(self) -> None:
        """Book still-held locks up to the horizon (end of simulation)."""
        for payment, locked_at in self._active.values():
            self.locked_liquidity_integral += payment.total_locked * max(
                0.0, self.horizon - locked_at
            )
        self._active.clear()
