"""Adversarial traffic engine: jamming, depletion, griefing.

The paper's creation game assumes honest HTLC routing (footnote 1); this
subsystem asks what happens when routing is *not* honest. An
:class:`AttackStrategy` injects adversarial HTLCs into the discrete-event
simulator's shared queue — contending with the honest workload for channel
balances and ``max_accepted_htlcs`` slots — and the
:class:`AttackRunner` quantifies the damage against an honest baseline
that saw the identical payment trace::

    from repro.scenarios import (
        AttackSpec, FeeSpec, Scenario, ScenarioRunner, SimulationSpec,
        TopologySpec,
    )

    scenario = Scenario(
        topology=TopologySpec("star", {"leaves": 8, "balance": 10.0}),
        fee=FeeSpec("linear", {"base": 0.01, "rate": 0.001}),
        simulation=SimulationSpec(horizon=40.0, payment_mode="htlc"),
        attack=AttackSpec("slow-jamming", {"budget": 1000.0}),
        seed=7,
    )
    result = ScenarioRunner().run(scenario)
    print(result.attack.summary())

Builtin strategies (registered under the ``attack`` plugin registry):
``"slow-jamming"``, ``"liquidity-depletion"``, ``"fee-griefing"`` — see
:mod:`repro.attacks.strategies`. New strategies plug in via
:func:`repro.scenarios.registry.register_attack`.

:mod:`repro.analysis.resilience` builds on this to compare how much
revenue an identical attacker budget destroys on each of the paper's
Section IV equilibrium topologies (star / path / circle).
"""

from .context import AttackContext, AttackResolveEvent, AttackTickEvent
from .report import AttackReport
from .runner import AttackOutcome, AttackRunner, select_victim
from .strategies import (
    AttackStrategy,
    CircuitAttack,
    FeeGriefing,
    LiquidityDepletion,
    SlowJamming,
)

__all__ = [
    "AttackContext",
    "AttackOutcome",
    "AttackReport",
    "AttackResolveEvent",
    "AttackRunner",
    "AttackStrategy",
    "AttackTickEvent",
    "CircuitAttack",
    "FeeGriefing",
    "LiquidityDepletion",
    "SlowJamming",
    "select_victim",
]
