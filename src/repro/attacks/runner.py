"""The adversarial traffic engine: baseline vs. attacked simulation pairs.

:class:`AttackRunner` executes a scenario's ``attack`` stage:

1. build the topology and pre-generate the honest transaction trace (so
   the attacker's presence cannot perturb the honest RNG streams — both
   runs replay the *identical* payment intents);
2. run the **baseline**: the honest trace on an untouched graph;
3. run the **attacked** simulation: a fresh copy of the same graph, the
   same trace, plus the attack strategy's events interleaved on the
   engine's shared queue (attacker HTLCs contend with honest ones for the
   same balances and ``max_accepted_htlcs`` slots);
4. diff the two runs into an :class:`~repro.attacks.report.AttackReport`.

The optional ``slot_cap`` strategy parameter applies a uniform
``max_accepted_htlcs`` to every *pre-attack* channel in both runs, so slot
scarcity is studied without unfairly handicapping the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional

from ..errors import ScenarioError
from ..network.betweenness import pair_weighted_betweenness
from ..network.graph import ChannelGraph
from ..obs import ObsSession, default_session
from ..scenarios.capabilities import backend_capabilities
from ..scenarios.factory import (
    build_simulation_engine,
    build_topology,
    build_workload,
)
from ..scenarios.registry import ATTACKS
from ..scenarios.specs import Scenario
from ..simulation.metrics import SimulationMetrics
from ..transactions.workload import Transaction
from .context import AttackContext, AttackResolveEvent, AttackTickEvent
from .report import AttackReport
from .strategies import AttackStrategy

__all__ = ["AttackOutcome", "AttackRunner", "select_victim"]


def select_victim(graph: ChannelGraph, victim: Optional[str] = None) -> Hashable:
    """Resolve the attack target.

    An explicit ``victim`` must exist in the graph. Otherwise the node
    with the highest pair-weighted betweenness — the one earning the most
    routing revenue under uniform traffic, hence the one whose revenue an
    attacker can destroy the most of — is chosen (ties break toward the
    smallest node id, so selection is deterministic).
    """
    if victim is not None:
        if victim not in graph:
            raise ScenarioError(
                f"attack victim {victim!r} is not a node of the topology"
            )
        return victim
    scores = pair_weighted_betweenness(graph.view(directed=True)).node
    return max(sorted(scores, key=str), key=lambda n: scores[n])


@dataclass
class AttackOutcome:
    """Everything one attack execution produced (live objects + report)."""

    report: AttackReport
    baseline_metrics: SimulationMetrics
    attacked_metrics: SimulationMetrics
    #: The attacked graph (attacker channels included, balances as left
    #: by the attacked run).
    graph: ChannelGraph


class AttackRunner:
    """Runs the attack stage of a scenario (see the module docstring).

    ``obs`` instruments both runs of the pair: phase timers around the
    baseline and attacked simulations, attack-circuit trace events from
    the shared :class:`AttackContext`. Both engines publish into the one
    session, so counters accumulate across the pair.
    """

    def __init__(self, obs: Optional[ObsSession] = None) -> None:
        self._obs = obs if obs is not None else default_session()

    def run(self, scenario: Scenario) -> AttackOutcome:
        spec = scenario.attack
        if spec is None or scenario.simulation is None:
            raise ScenarioError(
                "AttackRunner needs a scenario with attack and simulation stages"
            )
        if not backend_capabilities(scenario.simulation.backend).event_injection:
            # Scenario validation already rejects this combination; the
            # guard keeps the invariant explicit for callers that build
            # scenario-shaped objects by other means.
            raise ScenarioError(
                "attack strategies schedule events on the engine's shared "
                f"queue; backend {scenario.simulation.backend!r} does not "
                "declare event injection in its capabilities"
            )
        strategy = self._build_strategy(spec)
        horizon = scenario.simulation.horizon
        obs = self._obs

        # One honest trace, generated before the attacker exists, replayed
        # in both runs: the baseline/attacked diff is pure attack effect.
        with obs.phase("attack.setup"):
            baseline_graph = build_topology(
                scenario.topology, seed=scenario.seed
            )
            if strategy.slot_cap is not None:
                baseline_graph.set_htlc_slot_cap(strategy.slot_cap)
            workload = build_workload(scenario, baseline_graph)
            trace: List[Transaction] = list(workload.generate(horizon))

        # run() drains resolve events scheduled past the horizon — same
        # contract as the plain simulation stage, so attack and non-attack
        # rows of one sweep report comparable success rates. Attacker
        # events are never scheduled past the horizon (ctx.schedule), so
        # the attacked queue drains too.
        baseline = build_simulation_engine(scenario, baseline_graph, obs=obs)
        baseline.schedule_transactions(trace)
        with obs.phase("attack.baseline"):
            baseline_metrics = baseline.run()
        baseline_metrics.horizon = horizon

        attacked_graph = build_topology(scenario.topology, seed=scenario.seed)
        if strategy.slot_cap is not None:
            attacked_graph.set_htlc_slot_cap(strategy.slot_cap)
        victim = select_victim(attacked_graph, strategy.victim)
        engine = build_simulation_engine(scenario, attacked_graph, obs=obs)
        engine.schedule_transactions(trace)
        ctx = AttackContext(
            graph=attacked_graph,
            engine=engine,
            victim=victim,
            horizon=horizon,
            budget=strategy.budget,
            seed=scenario.seed,
            obs=obs,
        )
        engine.register_handler(
            AttackTickEvent, lambda event: strategy.on_tick(ctx, event)
        )
        engine.register_handler(
            AttackResolveEvent, lambda event: strategy.on_resolve(ctx, event)
        )
        strategy.start(ctx)
        with obs.phase("attack.attacked"):
            attacked_metrics = engine.run()
        attacked_metrics.horizon = horizon
        ctx.finalize()

        report = self._report(
            strategy, ctx, victim, horizon, baseline_metrics, attacked_metrics
        )
        return AttackOutcome(
            report=report,
            baseline_metrics=baseline_metrics,
            attacked_metrics=attacked_metrics,
            graph=attacked_graph,
        )

    def _build_strategy(self, spec) -> AttackStrategy:
        builder = ATTACKS.get(spec.kind)
        try:
            strategy = builder(**spec.params)
        except TypeError as exc:
            raise ScenarioError(
                f"attack {spec.kind!r} rejected params {spec.params!r}: {exc}"
            ) from exc
        if not isinstance(strategy, AttackStrategy):
            raise ScenarioError(
                f"attack {spec.kind!r} built {type(strategy).__name__}, "
                "which does not satisfy the AttackStrategy protocol"
            )
        return strategy

    @staticmethod
    def _report(
        strategy: AttackStrategy,
        ctx: AttackContext,
        victim: Hashable,
        horizon: float,
        baseline: SimulationMetrics,
        attacked: SimulationMetrics,
    ) -> AttackReport:
        baseline_victim = baseline.revenue.get(victim, 0.0)
        attacked_victim = attacked.revenue.get(victim, 0.0)
        return AttackReport(
            strategy=strategy.name,
            victim=str(victim),
            horizon=horizon,
            budget=strategy.budget,
            budget_spent=ctx.budget_spent,
            attacker_fees_paid=ctx.fees_paid,
            attacker_upfront_paid=ctx.upfront_paid,
            attacks_launched=ctx.attacks_launched,
            attacks_held=ctx.attacks_held,
            attacks_rejected=ctx.attacks_rejected,
            locked_liquidity_integral=ctx.locked_liquidity_integral,
            baseline_attempted=baseline.attempted,
            baseline_succeeded=baseline.succeeded,
            baseline_success_rate=baseline.success_rate,
            attacked_succeeded=attacked.succeeded,
            attacked_success_rate=attacked.success_rate,
            success_rate_degradation=(
                baseline.success_rate - attacked.success_rate
            ),
            baseline_victim_revenue=baseline_victim,
            attacked_victim_revenue=attacked_victim,
            victim_revenue_delta=baseline_victim - attacked_victim,
            baseline_total_revenue=sum(baseline.revenue.values()),
            attacked_total_revenue=sum(attacked.revenue.values()),
            baseline_victim_upfront_revenue=baseline.upfront_revenue.get(
                victim, 0.0
            ),
            attacked_victim_upfront_revenue=attacked.upfront_revenue.get(
                victim, 0.0
            ),
        )
