"""Damage accounting for adversarial traffic runs.

An :class:`AttackReport` compares two simulations that saw the *identical*
honest transaction trace — one undisturbed baseline and one with attacker
events interleaved — and quantifies what the attack destroyed:

* **victim revenue delta** — honest routing fees the victim earned in the
  baseline but not under attack (attacker-paid fees are excluded: they go
  through the HTLC router directly and never enter the honest metrics);
* **success-rate degradation** — honest payments that failed because
  attacker locks occupied the balances / HTLC slots they needed;
* **locked-liquidity time-integral** — ``sum(locked_amount * held_time)``
  over every attacker HTLC, the in-flight-capital damage that Section II-C
  of the paper prices as opportunity cost;
* **budget spent** — attacker capital committed (channel funding + pushed
  balances). The routing fees irrecoverably burned out of that capital are
  reported separately as ``attacker_fees_paid``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping, Optional

__all__ = ["AttackReport"]

#: Version stamp of the ``to_dict`` document layout.
#: v2 added the two-sided fee-policy columns (``attacker_upfront_paid``,
#: ``baseline_victim_upfront_revenue``, ``attacked_victim_upfront_revenue``).
REPORT_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class AttackReport:
    """Headline numbers of one baseline-vs-attacked simulation pair.

    All fields are plain JSON types, so reports survive process boundaries
    (``run_sweep(executor="process")``) and concatenate into sweep tables.
    """

    strategy: str
    victim: str
    horizon: float
    #: Attacker capital endowment the strategy was allowed to commit.
    budget: float
    #: Capital actually committed (channel funding + pushed balances).
    budget_spent: float
    #: Routing fees the attacker paid on settled adversarial payments.
    attacker_fees_paid: float
    #: Unconditional per-attempt fees the attacker paid under a two-sided
    #: :class:`~repro.network.fees.FeePolicy` (0 under success-only fees)
    #: — charged per hop offered on *every* lock attempt, never refunded.
    attacker_upfront_paid: float
    #: Lock attempts / successful locks / locks rejected (no balance or
    #: no free HTLC slot on some hop).
    attacks_launched: int
    attacks_held: int
    attacks_rejected: int
    #: ``sum(locked_amount * held_time)`` over attacker HTLCs.
    locked_liquidity_integral: float
    baseline_attempted: int
    baseline_succeeded: int
    baseline_success_rate: float
    attacked_succeeded: int
    attacked_success_rate: float
    #: ``baseline_success_rate - attacked_success_rate``.
    success_rate_degradation: float
    baseline_victim_revenue: float
    attacked_victim_revenue: float
    #: ``baseline_victim_revenue - attacked_victim_revenue`` — honest
    #: revenue the attack destroyed. Positive = the victim lost income.
    victim_revenue_delta: float
    baseline_total_revenue: float
    attacked_total_revenue: float
    #: Upfront fees the victim earned from *honest* traffic (attacker
    #: upfront fees go to ``attacker_upfront_paid``, not here).
    baseline_victim_upfront_revenue: float
    attacked_victim_upfront_revenue: float

    @property
    def victim_revenue_loss_fraction(self) -> float:
        """Destroyed victim revenue as a fraction of the baseline."""
        if self.baseline_victim_revenue <= 0:
            return 0.0
        return self.victim_revenue_delta / self.baseline_victim_revenue

    @property
    def attacker_cost(self) -> float:
        """Everything the attack consumed: committed capital plus the
        fees burned on settled locks plus the unconditional upfront
        fees of every attempt."""
        return (
            self.budget_spent + self.attacker_fees_paid
            + self.attacker_upfront_paid
        )

    @property
    def attacker_roi(self) -> float:
        """Victim revenue destroyed per unit of attacker cost.

        The countermeasure lever: upfront fees grow the denominator on
        every attempt while (being ledger-only) leaving the damage
        numerator unchanged, so ROI falls strictly as the upfront rate
        rises. 0 when the attack consumed nothing.
        """
        cost = self.attacker_cost
        if cost <= 0:
            return 0.0
        return self.victim_revenue_delta / cost

    def to_dict(self) -> Dict[str, Any]:
        """Lossless plain-JSON document (every field, schema-versioned)."""
        doc: Dict[str, Any] = {"schema_version": REPORT_SCHEMA_VERSION}
        for spec_field in fields(self):
            doc[spec_field.name] = getattr(self, spec_field.name)
        return doc

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "AttackReport":
        """Rebuild a report from a :meth:`to_dict` document."""
        if not isinstance(document, Mapping):
            raise ValueError(
                f"AttackReport document must be a mapping, "
                f"got {type(document).__name__}"
            )
        version = document.get("schema_version", REPORT_SCHEMA_VERSION)
        if version != REPORT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported AttackReport schema_version {version!r}"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(document) - known - {"schema_version"}
        if unknown:
            raise ValueError(
                f"unknown AttackReport fields: {sorted(unknown)}"
            )
        missing = known - set(document)
        if missing:
            raise ValueError(
                f"AttackReport document missing fields: {sorted(missing)}"
            )
        return cls(**{name: document[name] for name in known})

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "AttackReport":
        return cls.from_dict(json.loads(text))

    def to_row(self) -> Dict[str, Any]:
        """Flat sweep-table columns (prefixed to avoid clashing with the
        simulation columns of :class:`~repro.scenarios.runner.ScenarioResult`)."""
        return {
            "attack_strategy": self.strategy,
            "victim": self.victim,
            "attack_budget": self.budget,
            "budget_spent": self.budget_spent,
            "attacker_fees_paid": self.attacker_fees_paid,
            "attacker_upfront_paid": self.attacker_upfront_paid,
            "attacker_roi": self.attacker_roi,
            "attacks_launched": self.attacks_launched,
            "attacks_held": self.attacks_held,
            "attacks_rejected": self.attacks_rejected,
            "locked_liquidity_integral": self.locked_liquidity_integral,
            "baseline_success_rate": self.baseline_success_rate,
            "attacked_success_rate": self.attacked_success_rate,
            "success_rate_degradation": self.success_rate_degradation,
            "baseline_victim_revenue": self.baseline_victim_revenue,
            "attacked_victim_revenue": self.attacked_victim_revenue,
            "victim_revenue_delta": self.victim_revenue_delta,
            "victim_revenue_loss_pct": 100.0 * self.victim_revenue_loss_fraction,
            "baseline_victim_upfront_revenue":
                self.baseline_victim_upfront_revenue,
            "attacked_victim_upfront_revenue":
                self.attacked_victim_upfront_revenue,
        }

    def summary(self) -> str:
        """One-line human-readable damage summary."""
        return (
            f"[{self.strategy} vs {self.victim}] "
            f"victim revenue {self.baseline_victim_revenue:.4g} -> "
            f"{self.attacked_victim_revenue:.4g} "
            f"(lost {self.victim_revenue_delta:.4g}, "
            f"{100 * self.victim_revenue_loss_fraction:.1f}%), "
            f"honest success {self.baseline_success_rate:.1%} -> "
            f"{self.attacked_success_rate:.1%}, "
            f"locked-integral {self.locked_liquidity_integral:.4g}, "
            f"spent {self.budget_spent:.4g}/{self.budget:.4g}"
        )
