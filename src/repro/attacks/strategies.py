"""Adversarial traffic strategies: jamming, depletion, griefing.

Every builtin strategy runs the same *circuit* shape the Lightning attack
literature uses: the attacker controls both endpoints of a route through
the victim —

    attacker:src  ->  victim  ->  exit-neighbor  ->  attacker:dst

— so it alone decides when the in-flight HTLCs resolve. The entry channel
is attacker-funded; each exit channel is opened with a *pushed* balance
(Lightning's ``push_msat``) that buys the inbound liquidity the circuit's
last hop consumes. Both come out of the attacker's budget. What differs
between strategies is the resolution policy:

* :class:`SlowJamming` — hold every HTLC for ``hold_time``, then **fail**
  it. Balances and slots return, and the next tick re-jams. The victim's
  outbound directions stay locked almost continuously while the attacker
  pays nothing but committed (recoverable) capital.
* :class:`LiquidityDepletion` — **settle** circular self-payments, each
  permanently moving ``amount`` of the victim's outbound balance toward the
  chosen exit. The victim ends up unable to forward honest traffic even
  though no HTLC is held for long; the attack's cost is the routing fees.
* :class:`FeeGriefing` — fast probe payments that reach the attacker's own
  receiver and are **failed immediately** (the classic fail-at-the-last-hop
  probe), churning short-lived locks through every hop at high rate.

Strategies are registered in the ``attack`` plugin registry
(:data:`~repro.scenarios.registry.ATTACKS`), so scenarios name them by
string: ``AttackSpec("slow-jamming", {"budget": 1000.0})``.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Protocol, runtime_checkable

from ..errors import ScenarioError
from .context import AttackContext, AttackResolveEvent, AttackTickEvent
from ..scenarios.registry import register_attack

__all__ = [
    "AttackStrategy",
    "CircuitAttack",
    "FeeGriefing",
    "LiquidityDepletion",
    "SlowJamming",
]

#: Node ids attacker endpoints are created under.
ATTACKER_SRC = "attacker:src"
ATTACKER_DST = "attacker:dst"


@runtime_checkable
class AttackStrategy(Protocol):
    """What the :class:`~repro.attacks.runner.AttackRunner` drives.

    A strategy declares its resource envelope (``budget``), optional
    targeting overrides (``victim``, ``slot_cap``), and reacts to the two
    adversarial event types on the engine's shared queue.
    """

    name: str
    budget: float
    victim: Optional[str]
    slot_cap: Optional[int]

    def start(self, ctx: AttackContext) -> None:
        """Open attacker channels and schedule the first events."""
        ...

    def on_tick(self, ctx: AttackContext, event: AttackTickEvent) -> None:
        """Launch adversarial HTLCs and schedule the next tick."""
        ...

    def on_resolve(self, ctx: AttackContext, event: AttackResolveEvent) -> None:
        """Resolve one held adversarial HTLC."""
        ...


class CircuitAttack:
    """Shared machinery of the attacker-controlled-circuit strategies.

    Args:
        budget: attacker capital endowment (channel funding + pushes + fees
            all come out of this).
        victim: node id to target; ``None`` selects the highest
            pair-weighted-betweenness node (the revenue hub).
        slot_cap: when set, the runner applies this ``max_accepted_htlcs``
            to every pre-attack channel (baseline *and* attacked run, so
            the comparison stays fair). Attacker-opened channels keep the
            Lightning default — the attacker gives itself ample slots.
        amount: size of each adversarial HTLC.
        rate: strategy wake-ups per unit time.
        hold_time: how long each HTLC is held before resolution.
        max_exits: at most this many victim neighbors get exit channels
            (``None`` = all of them).
        max_concurrent: cap on simultaneously held HTLCs (``None`` = sized
            automatically from the victim's outbound balances).
        headroom: over-provisioning factor on the per-exit HTLC quota —
            honest settlements *replenish* the victim's outbound balances
            mid-run, so pinning only the initial balance leaves refilled
            capacity un-jammed.
        start_time: simulated time the attack begins.
    """

    name = "circuit"
    #: Resolution policy: settle (move funds) or fail (restore funds).
    settle_on_resolve = False
    #: Launch a replacement immediately when an HTLC resolves.
    relaunch_on_resolve = False

    def __init__(
        self,
        budget: float = 500.0,
        victim: Optional[str] = None,
        slot_cap: Optional[int] = None,
        amount: float = 1.0,
        rate: float = 10.0,
        hold_time: float = 4.0,
        max_exits: Optional[int] = None,
        max_concurrent: Optional[int] = None,
        headroom: float = 1.5,
        start_time: float = 0.0,
    ) -> None:
        if budget < 0:
            raise ScenarioError(f"budget must be >= 0, got {budget}")
        if amount <= 0:
            raise ScenarioError(f"amount must be > 0, got {amount}")
        if rate <= 0:
            raise ScenarioError(f"rate must be > 0, got {rate}")
        if hold_time < 0:
            raise ScenarioError(f"hold_time must be >= 0, got {hold_time}")
        if max_exits is not None and max_exits < 1:
            raise ScenarioError(f"max_exits must be >= 1, got {max_exits}")
        if max_concurrent is not None and max_concurrent < 1:
            raise ScenarioError(
                f"max_concurrent must be >= 1, got {max_concurrent}"
            )
        if headroom < 1.0:
            raise ScenarioError(f"headroom must be >= 1, got {headroom}")
        if start_time < 0:
            raise ScenarioError(f"start_time must be >= 0, got {start_time}")
        self.budget = float(budget)
        self.victim = victim
        self.slot_cap = slot_cap
        self.amount = float(amount)
        self.rate = float(rate)
        self.hold_time = float(hold_time)
        self.max_exits = max_exits
        self.max_concurrent = max_concurrent
        self.headroom = float(headroom)
        self.start_time = float(start_time)
        self._concurrent = 0
        self._round_robin: List[Hashable] = []
        self._cursor = 0

    # -- targeting ----------------------------------------------------------

    def _victim_outbound(self, ctx: AttackContext) -> Dict[Hashable, float]:
        """Victim's spendable balance toward each neighbor, pre-attack."""
        out: Dict[Hashable, float] = {}
        for channel in ctx.graph.channels_of(ctx.victim):
            other = channel.other(ctx.victim)
            out[other] = out.get(other, 0.0) + channel.balance(ctx.victim)
        return out

    def _pick_exits(self, ctx: AttackContext) -> List[Hashable]:
        """Exit neighbors, richest victim-outbound first (stable ties)."""
        outbound = self._victim_outbound(ctx)
        exits = sorted(outbound, key=lambda n: (-outbound[n], str(n)))
        if self.max_exits is not None:
            exits = exits[: self.max_exits]
        return exits

    # -- capital layout (jam/grief: recoverable in-flight capital) ----------

    def _prepare(self, ctx: AttackContext) -> None:
        """Open the circuit channels and size the concurrent-HTLC budget."""
        outbound = self._victim_outbound(ctx)
        exits = self._pick_exits(ctx)
        if not exits:
            return
        entry_amount = ctx.hop_amounts(3, self.amount)[0]
        # Per exit: enough simultaneous HTLCs to pin the victim's whole
        # outbound balance in that direction (or its slot cap, if smaller).
        quotas: Dict[Hashable, int] = {}
        for n in exits:
            slots = sum(
                c.max_accepted_htlcs if c.max_accepted_htlcs is not None
                else 1 << 30
                for c in ctx.graph.channels_between(ctx.victim, n)
            )
            quota = math.ceil(outbound[n] * self.headroom / self.amount)
            quotas[n] = max(1, min(quota, slots))
        desired = sum(quotas.values())
        if self.max_concurrent is not None:
            desired = min(desired, self.max_concurrent)
        # One concurrent HTLC costs entry capital + pushed exit capital;
        # the 1.25 margin absorbs fee drift and imperfect recycling.
        per_htlc = (entry_amount + self.amount) * 1.25
        affordable = int(ctx.budget_remaining // per_htlc) if per_htlc else 0
        concurrent = min(desired, affordable)
        if concurrent < 1:
            return
        scale = concurrent / sum(quotas.values())
        scaled = {n: int(quotas[n] * scale) for n in exits}
        # floor() lost some slots; hand them back richest-exit first.
        shortfall = concurrent - sum(scaled.values())
        for n in exits:
            if shortfall <= 0:
                break
            scaled[n] += 1
            shortfall -= 1
        entry = ctx.open_channel(
            ATTACKER_SRC, ctx.victim, funding=concurrent * entry_amount
        )
        if entry is None:
            return
        for n in exits:
            if scaled[n] < 1:
                continue
            if ctx.open_channel(
                ATTACKER_DST, n, funding=0.0, push=scaled[n] * self.amount
            ) is None:
                scaled[n] = 0
        self._concurrent = sum(scaled.values())
        # Interleave exits so concurrent HTLCs spread evenly from the start.
        for layer in range(max(scaled.values(), default=0)):
            for n in exits:
                if scaled[n] > layer:
                    self._round_robin.append(n)

    def next_target(self, ctx: AttackContext) -> Optional[Hashable]:
        """Exit neighbor for the next HTLC (round-robin by default)."""
        if not self._round_robin:
            return None
        target = self._round_robin[self._cursor % len(self._round_robin)]
        self._cursor += 1
        return target

    def on_lock_rejected(self, ctx: AttackContext, target: Hashable) -> None:
        """Hook: a lock toward ``target`` was rejected (no balance/slot)."""

    # -- the event loop ------------------------------------------------------

    def start(self, ctx: AttackContext) -> None:
        self._prepare(ctx)
        if self._concurrent >= 1:
            ctx.schedule(AttackTickEvent(time=max(self.start_time, ctx.now)))

    def _launch(self, ctx: AttackContext) -> bool:
        target = self.next_target(ctx)
        if target is None:
            return False
        payment = ctx.lock(
            (ATTACKER_SRC, ctx.victim, target, ATTACKER_DST), self.amount
        )
        if payment is None:
            self.on_lock_rejected(ctx, target)
            return False
        # Jitter (from the attacker's own deterministic RNG stream)
        # staggers resolutions: a fleet that releases all at once hands the
        # honest workload a periodic window of fully restored balances.
        hold = self.hold_time * (0.75 + 0.5 * float(ctx.rng.random()))
        ctx.schedule(
            AttackResolveEvent(
                time=ctx.now + hold, payment_id=payment.payment_id
            )
        )
        return True

    def on_tick(self, ctx: AttackContext, event: AttackTickEvent) -> None:
        for _ in range(max(0, self._concurrent - ctx.active_locks)):
            self._launch(ctx)
        ctx.schedule(AttackTickEvent(time=ctx.now + 1.0 / self.rate))

    def on_resolve(self, ctx: AttackContext, event: AttackResolveEvent) -> None:
        resolved = ctx.resolve(event.payment_id, settle=self.settle_on_resolve)
        if resolved is not None and self.relaunch_on_resolve:
            self._launch(ctx)


@register_attack("slow-jamming", "jamming")
class SlowJamming(CircuitAttack):
    """Max-duration HTLCs that occupy slots and liquidity, then fail.

    The cheapest of the three: held capital is recovered on every fail, so
    ``budget_spent`` is only the committed channel capital — while the
    victim's outbound directions are pinned for ``hold_time`` out of every
    ``hold_time + 1/rate`` units of time.
    """

    name = "slow-jamming"
    settle_on_resolve = False


@register_attack("liquidity-depletion", "depletion")
class LiquidityDepletion(CircuitAttack):
    """Circular self-payments that drain the victim's outbound balances.

    Each settled circuit moves ``amount`` of the victim's balance toward
    the exit neighbor; the attacker's money comes back to its own receiving
    node minus routing fees. The pushed exit capital and the entry funding
    must cover the whole drained volume, so depletion wants a bigger budget
    than jamming — but leaves damage that persists with *no* HTLC held.
    """

    name = "liquidity-depletion"
    settle_on_resolve = True

    def __init__(self, **params) -> None:
        params.setdefault("hold_time", 0.1)
        params.setdefault("max_concurrent", 4)
        super().__init__(**params)
        self._remaining: Dict[Hashable, float] = {}

    def _prepare(self, ctx: AttackContext) -> None:
        outbound = self._victim_outbound(ctx)
        exits = self._pick_exits(ctx)
        if not exits:
            return
        entry_amount = ctx.hop_amounts(3, self.amount)[0]
        # Entry capital is *consumed* by settles (it ends up on the
        # victim's side), so draining D coins toward an exit costs
        # D * entry_amount/amount in entry funding plus D in pushed capital.
        # Honest forwarding keeps replenishing the victim's outbound
        # balances, so provision a multiple of the initial balance — as
        # much of the budget as a 6x re-drain factor can use.
        ratio = entry_amount / self.amount
        base_need = sum(outbound[n] for n in exits) * (1.0 + ratio)
        spendable = max(0.0, ctx.budget_remaining - entry_amount)
        factor = min(6.0, spendable / base_need) if base_need > 0 else 0.0
        entry_funding = entry_amount  # one in-flight HTLC of slack
        selected: Dict[Hashable, float] = {}
        for n in exits:
            drain = outbound[n] * factor
            cost = drain * (1.0 + ratio)
            remaining = ctx.budget_remaining - entry_funding - sum(
                d * (1.0 + ratio) for d in selected.values()
            )
            if remaining <= 0:
                break
            if cost > remaining:
                drain = remaining / (1.0 + ratio)
            if drain < self.amount:
                continue
            selected[n] = drain
        if not selected:
            return
        entry_funding += sum(selected.values()) * ratio
        entry = ctx.open_channel(ATTACKER_SRC, ctx.victim, funding=entry_funding)
        if entry is None:
            return
        for n, drain in selected.items():
            if ctx.open_channel(ATTACKER_DST, n, funding=0.0, push=drain) is None:
                continue
            self._remaining[n] = drain
        if self._remaining:
            # None = auto: one in-flight circuit per provisioned exit.
            cap = (
                self.max_concurrent if self.max_concurrent is not None
                else len(self._remaining)
            )
            self._concurrent = max(1, min(cap, len(self._remaining)))

    def next_target(self, ctx: AttackContext) -> Optional[Hashable]:
        """Drain the direction with the most victim balance left."""
        live = {n: r for n, r in self._remaining.items() if r >= self.amount}
        if not live:
            return None
        return min(live, key=lambda n: (-live[n], str(n)))

    def on_lock_rejected(self, ctx: AttackContext, target: Hashable) -> None:
        # The victim-side (or pushed exit-side) balance toward this
        # neighbor is momentarily gone. Honest traffic may replenish it,
        # so back off gradually instead of abandoning the direction.
        if target in self._remaining:
            self._remaining[target] = max(
                0.0, self._remaining[target] - self.amount
            )

    def on_resolve(self, ctx: AttackContext, event: AttackResolveEvent) -> None:
        resolved = ctx.resolve(event.payment_id, settle=True)
        if resolved is not None:
            # path is (src, victim, exit, dst) — book the drained amount.
            target = resolved.path[2]
            if target in self._remaining:
                self._remaining[target] = max(
                    0.0, self._remaining[target] - self.amount
                )


@register_attack("fee-griefing", "griefing")
class FeeGriefing(CircuitAttack):
    """Probe payments that fail at the last hop, wasting lock time.

    High-rate, short-hold probes: every hop on the route locks funds and a
    slot for ``hold_time``, then the attacker's receiver rejects the
    payment. No fee is ever paid (failed payments are free), making this
    the zero-cost harassment end of the spectrum.
    """

    name = "fee-griefing"
    settle_on_resolve = False
    relaunch_on_resolve = True

    def __init__(self, **params) -> None:
        params.setdefault("hold_time", 0.05)
        params.setdefault("rate", 20.0)
        super().__init__(**params)
