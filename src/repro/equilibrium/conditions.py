"""Closed-form Nash-equilibrium conditions of Theorems 7, 8 and 9.

These are the exact inequalities stated by the paper for the star graph,
implemented symbolically (generalised harmonic numbers) so that benches
can sweep the (n, s, a, b, l) parameter space and compare the closed-form
region against the simulated best-response region (bench E8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..errors import InvalidParameter

__all__ = [
    "harmonic",
    "StarNEConditions",
    "star_ne_conditions",
    "star_ne_closed_form",
    "star_ne_sufficient_thm9",
    "star_ne_large_s_thm7",
    "hub_diameter_bound",
]


def _harmonic_prefix(n: int, s: float) -> np.ndarray:
    """``H^s_1 .. H^s_n`` as one cumulative-sum array pass."""
    return np.cumsum(np.arange(1, n + 1, dtype=np.float64) ** -s)


def harmonic(n: int, s: float) -> float:
    """Generalised harmonic number ``H^s_n = Σ_{k=1}^n k^{-s}``."""
    if n < 0:
        raise InvalidParameter(f"n must be >= 0, got {n}")
    if n == 0:
        return 0.0
    return float(_harmonic_prefix(n, s)[-1])


@dataclass
class StarNEConditions:
    """Evaluation of Thm 8's three condition families for one point.

    ``margins`` hold ``rhs - lhs`` per inequality (non-negative = holds);
    the star is a closed-form NE when every margin is non-negative.
    """

    n: int
    s: float
    a: float
    b: float
    l: float
    condition1_margin: float = 0.0
    condition2_margins: List[Tuple[int, float]] = field(default_factory=list)
    condition3_margins: List[Tuple[int, float]] = field(default_factory=list)

    @property
    def holds(self) -> bool:
        margins = [self.condition1_margin]
        margins += [m for _, m in self.condition2_margins]
        margins += [m for _, m in self.condition3_margins]
        return all(m >= -1e-12 for m in margins)

    @property
    def binding_condition(self) -> str:
        """Which inequality has the smallest margin (diagnostics)."""
        entries = [("1", self.condition1_margin)]
        entries += [(f"2(i={i})", m) for i, m in self.condition2_margins]
        entries += [(f"3(i={i})", m) for i, m in self.condition3_margins]
        return min(entries, key=lambda e: e[1])[0]


def star_ne_conditions(
    n: int, s: float, a: float, b: float, l: float
) -> StarNEConditions:
    """Evaluate Thm 8's conditions for a star with ``n`` leaves.

    Conditions (paper numbering):

    1. ``a / H^s_n <= 2^s * l``
    2. ``b * i/2 * (H^s_{i+1} - 1 - 2^{-s}) / H^s_n
       + a * (H^s_{i+1} - 1) / H^s_n <= l * i``           for 2 <= i <= n-1
    3. ``b * i/2 * (H^s_n - 1 - 2^{-s}) / H^s_n
       + a * (H^s_{i+1} - 2) / H^s_n <= l * (i - 1)``     for 2 <= i <= n-1
    """
    if n < 2:
        raise InvalidParameter("Thm 8 requires at least 2 leaves")
    prefix = _harmonic_prefix(n, s)
    hn = float(prefix[-1])
    two_pow = 2.0**s
    result = StarNEConditions(n=n, s=s, a=a, b=b, l=l)
    result.condition1_margin = two_pow * l - a / hn
    if n > 2:
        # Both condition families for all i = 2..n-1 in one array pass;
        # prefix[i] = H^s_{i+1} (0-based cumulative sums).
        i = np.arange(2, n, dtype=np.float64)
        hi1 = prefix[2:n]
        lhs2 = b * (i / 2.0) * (hi1 - 1.0 - 1.0 / two_pow) / hn + a * (hi1 - 1.0) / hn
        lhs3 = b * (i / 2.0) * (hn - 1.0 - 1.0 / two_pow) / hn + a * (hi1 - 2.0) / hn
        margins2 = l * i - lhs2
        margins3 = l * (i - 1.0) - lhs3
        result.condition2_margins.extend(
            (int(k), float(m)) for k, m in zip(i, margins2)
        )
        result.condition3_margins.extend(
            (int(k), float(m)) for k, m in zip(i, margins3)
        )
    return result


def star_ne_closed_form(n: int, s: float, a: float, b: float, l: float) -> bool:
    """True when Thm 8 certifies the star with ``n`` leaves as a NE."""
    return star_ne_conditions(n, s, a, b, l).holds


def star_ne_sufficient_thm9(
    n: int, s: float, a: float, b: float, l: float
) -> bool:
    """Thm 9's simpler sufficient condition: ``s >= 2`` and
    ``a/H^s_n <= l`` and ``b/H^s_n <= l`` (equal edge costs assumed)."""
    if n < 2:
        return False
    if s < 2:
        return False
    hn = harmonic(n, s)
    return a / hn <= l + 1e-12 and b / hn <= l + 1e-12


def star_ne_large_s_thm7(
    n: int, s: float, negligible: float = 1e-9
) -> bool:
    """Thm 7's asymptotic regime: ``>= 4`` leaves and ``2^{-s}`` negligible."""
    return n >= 4 and 2.0 ** (-s) <= negligible


def hub_diameter_bound(
    onchain_cost: float,
    epsilon: float,
    lambda_e: float,
    fee: float,
    p_min: float,
    total_tx_rate: float,
) -> float:
    """Thm 6's bound: ``d <= 2 * ((C+ε)/2 - λ_e f) / (p_min N f) + 1``.

    Raises:
        InvalidParameter: when ``p_min * N * f`` is not positive (the bound
            is vacuous without traffic crossing the middle of the path).
    """
    denominator = p_min * total_tx_rate * fee
    if denominator <= 0:
        raise InvalidParameter(
            "p_min * N * f must be > 0 for Thm 6's bound to be meaningful"
        )
    numerator = (onchain_cost + epsilon) / 2.0 - lambda_e * fee
    return 2.0 * numerator / denominator + 1.0
