"""Nash-equilibrium checking and best-response dynamics (Section IV).

A network is *stable* (a Nash equilibrium) when no node can strictly
increase its utility by any unilateral deviation. The checker evaluates a
deviation family per node (structured by default, exhaustive on request)
and reports the best improving move found for each node.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from ..errors import InvalidParameter
from ..network.graph import ChannelGraph
from .deviations import (
    Deviation,
    apply_deviation,
    exhaustive_deviations,
    sampled_deviations,
    structured_deviations,
)
from .node_utility import NetworkGameModel

__all__ = [
    "DynamicsMove",
    "DynamicsOutcome",
    "DynamicsReport",
    "NodeBestResponse",
    "NashReport",
    "best_response",
    "check_nash",
    "best_response_dynamics",
]


@dataclass
class NodeBestResponse:
    """Best deviation found for one node."""

    node: Hashable
    base_utility: float
    best_utility: float
    best_deviation: Optional[Deviation]

    @property
    def gain(self) -> float:
        if math.isinf(self.base_utility) and self.base_utility < 0:
            return math.inf if self.best_utility > -math.inf else 0.0
        return self.best_utility - self.base_utility

    @property
    def can_improve(self) -> bool:
        return self.best_deviation is not None


@dataclass(frozen=True)
class NashReport:
    """Stability verdict for a whole network."""

    responses: Dict[Hashable, NodeBestResponse] = field(default_factory=dict)

    @property
    def is_nash(self) -> bool:
        return not any(r.can_improve for r in self.responses.values())

    @property
    def deviating_nodes(self) -> List[Hashable]:
        return [n for n, r in self.responses.items() if r.can_improve]

    def max_gain(self) -> float:
        gains = [r.gain for r in self.responses.values() if r.can_improve]
        return max(gains, default=0.0)


def _deviation_family(
    graph: ChannelGraph,
    node: Hashable,
    mode: str,
    seed: Optional[int],
) -> Sequence[Deviation]:
    if mode == "structured":
        return structured_deviations(graph, node, seed=seed)
    if mode == "exhaustive":
        return exhaustive_deviations(graph, node)
    if mode == "sampled":
        return sampled_deviations(graph, node, seed=seed)
    raise InvalidParameter(
        f"mode must be structured/exhaustive/sampled, got {mode!r}"
    )


def best_response(
    graph: ChannelGraph,
    node: Hashable,
    model: NetworkGameModel,
    mode: str = "structured",
    tolerance: float = 1e-9,
    balance: float = 1.0,
    seed: Optional[int] = None,
    deviations: Optional[Sequence[Deviation]] = None,
) -> NodeBestResponse:
    """Best deviation for ``node`` within the chosen family.

    ``tolerance`` guards against declaring instability on floating-point
    noise: a deviation must improve by more than ``tolerance``.
    ``model`` may be any object with a ``node_utility(graph, node)``
    method — the analytic :class:`NetworkGameModel` or an empirical
    provider from :mod:`repro.evolution.utility`. An explicit
    ``deviations`` sequence overrides the ``mode`` family (used by the
    evolution engine to enforce per-node move budgets).
    """
    base = model.node_utility(graph, node)
    best_utility = base
    best_deviation: Optional[Deviation] = None
    if deviations is None:
        deviations = _deviation_family(graph, node, mode, seed)
    for deviation in deviations:
        deviated = apply_deviation(graph, node, deviation, balance=balance)
        utility = model.node_utility(deviated, node)
        if utility > best_utility + tolerance:
            best_utility = utility
            best_deviation = deviation
    return NodeBestResponse(
        node=node,
        base_utility=base,
        best_utility=best_utility,
        best_deviation=best_deviation,
    )


def check_nash(
    graph: ChannelGraph,
    model: NetworkGameModel,
    mode: str = "structured",
    tolerance: float = 1e-9,
    balance: float = 1.0,
    seed: Optional[int] = None,
    nodes: Optional[Sequence[Hashable]] = None,
) -> NashReport:
    """Check stability of ``graph`` against the deviation family.

    ``nodes`` restricts the check (e.g. one leaf + the center exploits the
    star's symmetry); default checks every node.
    """
    responses = {
        node: best_response(
            graph, node, model, mode=mode, tolerance=tolerance,
            balance=balance, seed=seed,
        )
        for node in (nodes if nodes is not None else graph.nodes)
    }
    return NashReport(responses)


@dataclass(frozen=True)
class DynamicsMove:
    """One applied improving move of a best-response dynamics round."""

    node: Hashable
    deviation: Deviation
    gain: float


@dataclass(frozen=True, eq=False)
class DynamicsOutcome:
    """Outcome of one :func:`best_response_dynamics` run.

    A process-local result *handle*, not a serialisable artifact — it
    carries the live final :class:`ChannelGraph` (hence the name stays
    off the ``*Report`` artifact namespace RPR003 polices).

    Iterable as the historical ``(final_graph, rounds, converged)``
    triple, so ``final, rounds, ok = best_response_dynamics(...)`` keeps
    working; ``moves`` additionally records every applied improving move
    per round (the final, quiet round of a converged run is an empty
    tuple).
    """

    graph: ChannelGraph
    rounds: int
    converged: bool
    moves: Tuple[Tuple[DynamicsMove, ...], ...] = ()

    @property
    def total_moves(self) -> int:
        return sum(len(round_moves) for round_moves in self.moves)

    def __iter__(self) -> Iterator:
        return iter((self.graph, self.rounds, self.converged))


#: Backwards-compatible alias for the pre-rename class name.
DynamicsReport = DynamicsOutcome


def best_response_dynamics(
    graph: ChannelGraph,
    model: NetworkGameModel,
    max_rounds: int = 20,
    mode: str = "structured",
    tolerance: float = 1e-9,
    balance: float = 1.0,
    seed: Optional[int] = None,
) -> DynamicsOutcome:
    """Iterate best responses until no node improves (or ``max_rounds``).

    Returns a :class:`DynamicsOutcome` (iterable as the historical
    ``(final_graph, rounds_used, converged)`` triple). Each round sweeps
    nodes in canonical order and applies the first strictly improving best
    response found; NP-hardness of exact dynamics (Thm 2 of [19]) means
    this is a heuristic exploration tool, not a decision procedure.
    """
    current = graph.copy()
    rounds: List[Tuple[DynamicsMove, ...]] = []
    for round_index in range(max_rounds):
        round_moves: List[DynamicsMove] = []
        for node in sorted(current.nodes, key=str):
            response = best_response(
                current, node, model, mode=mode, tolerance=tolerance,
                balance=balance, seed=seed,
            )
            if response.can_improve:
                current = apply_deviation(
                    current, node, response.best_deviation, balance=balance
                )
                round_moves.append(DynamicsMove(
                    node=node,
                    deviation=response.best_deviation,
                    gain=response.gain,
                ))
        rounds.append(tuple(round_moves))
        if not round_moves:
            return DynamicsOutcome(
                graph=current, rounds=round_index + 1, converged=True,
                moves=tuple(rounds),
            )
    return DynamicsOutcome(
        graph=current, rounds=max_rounds, converged=False,
        moves=tuple(rounds),
    )
