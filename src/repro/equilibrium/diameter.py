"""Theorem 6 — longest shortest path through a hub in a stable network.

The theorem argues: if a stable network contained a long shortest path
``P = (v_0 ... v_d)``, the two nodes flanking its midpoint could profitably
open a chord ``e``, shortening every sub-path of ``P`` that crosses the
middle. Stability therefore bounds ``d``:

    d <= 2 * ((C + ε)/2 - λ_e·f) / (p_min·N·f) + 1

with ``λ_e`` the minimum directed rate the chord would carry and ``p_min``
the minimum probability of the crossing sub-paths. This module measures
both sides on concrete graphs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, List, Tuple

import numpy as np

from ..errors import InvalidParameter, NodeNotFound
from ..network.graph import ChannelGraph
from ..network.views import bfs_distances, shortest_path_indices
from ..params import ModelParameters
from ..transactions.rates import edge_rates
from ..transactions.zipf import ModifiedZipf
from .conditions import hub_diameter_bound

__all__ = ["HubPathAnalysis", "longest_shortest_path_through", "analyse_hub_path"]


@dataclass
class HubPathAnalysis:
    """Measured path length vs the Thm 6 bound for one hub."""

    hub: Hashable
    path: Tuple[Hashable, ...]
    measured_d: int
    lambda_e: float
    p_min: float
    bound: float

    @property
    def within_bound(self) -> bool:
        return self.measured_d <= self.bound + 1e-9


def longest_shortest_path_through(
    graph: ChannelGraph, hub: Hashable
) -> List[Hashable]:
    """A longest shortest path that has ``hub`` as an internal-or-end node.

    All-pairs BFS over the undirected CSR view (one vectorised pass per
    source); among pairs whose shortest-path distance equals
    ``d(s, hub) + d(hub, t)`` (hub lies on *some* shortest path), returns
    one concrete path realised through the hub.
    """
    if hub not in graph:
        raise NodeNotFound(hub)
    view = graph.view(directed=False)
    n = view.num_nodes
    hub_idx = view.index_of(hub)
    dist = np.stack([bfs_distances(view, s) for s in range(n)])
    hub_dist = dist[hub_idx]
    reachable = hub_dist >= 0
    through_hub = (
        reachable[:, None]
        & reachable[None, :]
        & (dist >= 0)
        & (dist == hub_dist[:, None] + hub_dist[None, :])
    )
    np.fill_diagonal(through_hub, False)
    candidates = np.where(through_hub, dist, -1)
    best_len = int(candidates.max()) if n else -1
    if best_len < 1:
        return [hub]
    s_idx, t_idx = np.unravel_index(int(candidates.argmax()), candidates.shape)
    first = shortest_path_indices(view, int(s_idx), hub_idx)
    second = shortest_path_indices(view, hub_idx, int(t_idx))
    assert first is not None and second is not None
    return [view.nodes[i] for i in first + second[1:]]


def analyse_hub_path(
    graph: ChannelGraph,
    hub: Hashable,
    params: ModelParameters,
    balance: float = 1.0,
) -> HubPathAnalysis:
    """Measure Thm 6's quantities for ``hub`` on ``graph``.

    Adds the midpoint chord ``e`` to a copy of the graph, estimates its
    directed rates under the modified-Zipf distribution (Eq. 2), extracts
    ``λ_e`` (min of the two directions) and ``p_min`` (minimum crossing
    sub-path probability), and evaluates the bound with ``f = f_avg``.

    For short paths (d < 3) no chord exists and the bound is reported as
    ``inf`` (trivially satisfied).
    """
    path = longest_shortest_path_through(graph, hub)
    d = len(path) - 1
    if d < 3:
        return HubPathAnalysis(
            hub=hub, path=tuple(path), measured_d=d,
            lambda_e=0.0, p_min=0.0, bound=math.inf,
        )
    mid = d // 2
    left, right = path[mid - 1], path[mid + 1]
    with_chord = graph.copy()
    if not with_chord.has_channel(left, right):
        with_chord.add_channel(left, right, balance, balance)
    distribution = ModifiedZipf(with_chord, s=params.zipf_s)
    rates = edge_rates(
        with_chord, distribution, total_tx_rate=params.total_tx_rate
    )
    lambda_e = min(rates.get((left, right), 0.0), rates.get((right, left), 0.0))

    # p_min over sub-paths of P with one endpoint on each side of the middle.
    base_distribution = ModifiedZipf(graph, s=params.zipf_s)
    left_part = path[: mid]
    right_part = path[mid + 1 :]
    p_min = math.inf
    for s_node in left_part:
        for t_node in right_part:
            for src, dst in ((s_node, t_node), (t_node, s_node)):
                p = base_distribution.probability(src, dst)
                if p > 0:
                    p_min = min(p_min, p)
    if math.isinf(p_min):
        raise InvalidParameter(
            "no crossing pair has positive transaction probability"
        )
    bound = hub_diameter_bound(
        onchain_cost=params.onchain_cost,
        epsilon=params.epsilon,
        lambda_e=lambda_e,
        fee=params.fee_avg,
        p_min=p_min,
        total_tx_rate=params.total_tx_rate,
    )
    return HubPathAnalysis(
        hub=hub,
        path=tuple(path),
        measured_d=d,
        lambda_e=lambda_e,
        p_min=p_min,
        bound=bound,
    )
