"""Section IV: network-game utilities, deviations, and stability analysis."""

from .conditions import (
    StarNEConditions,
    harmonic,
    hub_diameter_bound,
    star_ne_closed_form,
    star_ne_conditions,
    star_ne_large_s_thm7,
    star_ne_sufficient_thm9,
)
from .deviations import (
    Deviation,
    apply_deviation,
    exhaustive_deviations,
    sampled_deviations,
    structured_deviations,
)
from .diameter import (
    HubPathAnalysis,
    analyse_hub_path,
    longest_shortest_path_through,
)
from .nash import (
    DynamicsMove,
    DynamicsOutcome,
    DynamicsReport,
    NashReport,
    NodeBestResponse,
    best_response,
    best_response_dynamics,
    check_nash,
)
from .node_utility import NetworkGameModel, NodeUtilityBreakdown
from .welfare import (
    TopologyWelfare,
    evaluate_topologies,
    price_of_anarchy,
    social_welfare,
)
from .topologies import CENTER, circle, complete, node_labels, path, star

__all__ = [
    "CENTER",
    "Deviation",
    "DynamicsMove",
    "DynamicsOutcome",
    "DynamicsReport",
    "HubPathAnalysis",
    "NashReport",
    "NetworkGameModel",
    "NodeBestResponse",
    "NodeUtilityBreakdown",
    "StarNEConditions",
    "TopologyWelfare",
    "analyse_hub_path",
    "evaluate_topologies",
    "price_of_anarchy",
    "social_welfare",
    "apply_deviation",
    "best_response",
    "best_response_dynamics",
    "check_nash",
    "circle",
    "complete",
    "exhaustive_deviations",
    "harmonic",
    "hub_diameter_bound",
    "longest_shortest_path_through",
    "node_labels",
    "path",
    "sampled_deviations",
    "star",
    "star_ne_closed_form",
    "star_ne_conditions",
    "star_ne_large_s_thm7",
    "star_ne_sufficient_thm9",
    "structured_deviations",
]
