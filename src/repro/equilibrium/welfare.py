"""Social welfare and price-of-anarchy analysis over simple topologies.

The paper establishes *which* topologies are stable; a natural companion
question (standard in the creation-games literature it builds on, e.g.
Fabrikant et al. and Demaine et al.) is how much utility stability costs.
This module computes total welfare of a topology under the Section IV
utility and the price of anarchy restricted to a candidate family —
supporting the ablation benches and the topology examples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import InvalidParameter
from ..network.graph import ChannelGraph
from .nash import check_nash
from .node_utility import NetworkGameModel

__all__ = [
    "social_welfare",
    "TopologyWelfare",
    "evaluate_topologies",
    "price_of_anarchy",
]


def social_welfare(graph: ChannelGraph, model: NetworkGameModel) -> float:
    """Sum of node utilities; ``-inf`` if any node is disconnected."""
    total = 0.0
    for node in graph.nodes:
        utility = model.node_utility(graph, node)
        if math.isinf(utility):
            return -math.inf
        total += utility
    return total


@dataclass
class TopologyWelfare:
    """Welfare and stability verdict for one candidate topology."""

    name: str
    welfare: float
    is_nash: bool


def evaluate_topologies(
    candidates: Sequence[Tuple[str, ChannelGraph]],
    model: NetworkGameModel,
    mode: str = "structured",
    seed: Optional[int] = 0,
) -> List[TopologyWelfare]:
    """Welfare + NE verdict for each named candidate graph."""
    out = []
    for name, graph in candidates:
        out.append(
            TopologyWelfare(
                name=name,
                welfare=social_welfare(graph, model),
                is_nash=check_nash(graph, model, mode=mode, seed=seed).is_nash,
            )
        )
    return out


def price_of_anarchy(
    candidates: Sequence[Tuple[str, ChannelGraph]],
    model: NetworkGameModel,
    mode: str = "structured",
    seed: Optional[int] = 0,
) -> Tuple[float, List[TopologyWelfare]]:
    """PoA restricted to ``candidates``: OPT welfare / worst stable welfare.

    Follows the creation-games convention for utility (not cost) games.
    Raises when no candidate is stable (PoA undefined on the family).
    Welfare signs are handled by shifting: ratios of possibly-negative
    welfare are meaningless, so we report
    ``(best - worst_stable) / |best|`` as a *welfare gap* when the worst
    stable welfare is non-positive, and the classic ratio otherwise.
    """
    results = evaluate_topologies(candidates, model, mode=mode, seed=seed)
    stable = [r for r in results if r.is_nash and not math.isinf(r.welfare)]
    if not stable:
        raise InvalidParameter("no stable candidate; PoA undefined")
    best = max(
        (r.welfare for r in results if not math.isinf(r.welfare)),
        default=-math.inf,
    )
    worst_stable = min(r.welfare for r in stable)
    if worst_stable > 0:
        poa = best / worst_stable
    else:
        scale = abs(best) if best != 0 else 1.0
        poa = (best - worst_stable) / scale
    return poa, results
