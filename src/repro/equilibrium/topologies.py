"""Builders for the simple graph topologies analysed in Section IV."""

from __future__ import annotations

from typing import List

from ..errors import InvalidParameter
from ..network.graph import ChannelGraph
from ..scenarios.registry import register_topology

__all__ = ["star", "path", "circle", "complete", "CENTER"]

#: Node id used for the star's central node.
CENTER = "center"


def _leaf(i: int) -> str:
    # zero-padded labels keep canonical (sorted) node order intuitive
    return f"v{i:03d}"


@register_topology("star")
def star(leaves: int, balance: float = 1.0) -> ChannelGraph:
    """A star with ``leaves`` leaf nodes around :data:`CENTER`.

    The paper counts the star's size by its number of leaves (Thm 7-9).
    """
    if leaves < 1:
        raise InvalidParameter("star needs at least one leaf")
    return ChannelGraph.from_edges(
        [(CENTER, _leaf(i)) for i in range(leaves)], balance=balance
    )


@register_topology("path")
def path(n: int, balance: float = 1.0) -> ChannelGraph:
    """A path graph on ``n`` nodes (Thm 10)."""
    if n < 2:
        raise InvalidParameter("path needs at least two nodes")
    return ChannelGraph.from_edges(
        [(_leaf(i), _leaf(i + 1)) for i in range(n - 1)], balance=balance
    )


@register_topology("circle")
def circle(n: int, balance: float = 1.0) -> ChannelGraph:
    """A cycle graph on ``n`` nodes (Thm 11)."""
    if n < 3:
        raise InvalidParameter("circle needs at least three nodes")
    edges = [(_leaf(i), _leaf((i + 1) % n)) for i in range(n)]
    return ChannelGraph.from_edges(edges, balance=balance)


@register_topology("complete")
def complete(n: int, balance: float = 1.0) -> ChannelGraph:
    """A complete graph on ``n`` nodes (everyone channels with everyone)."""
    if n < 2:
        raise InvalidParameter("complete graph needs at least two nodes")
    edges = [
        (_leaf(i), _leaf(j)) for i in range(n) for j in range(i + 1, n)
    ]
    return ChannelGraph.from_edges(edges, balance=balance)


def node_labels(n: int) -> List[str]:
    """The labels :func:`path`/:func:`circle`/:func:`complete` use."""
    return [_leaf(i) for i in range(n)]
