"""Utility of an *existing* node under the Section IV conventions.

Section IV restates the model for whole-network analysis with:

* ``b := N_{v1} * f_avg`` — constant revenue weight per routed pair;
* ``a := N_u * f^T_avg`` — constant fee weight for a node's own traffic;
* every channel costs each endpoint the same amount ``l`` (assumption 4);
* fees are charged per *intermediary* (distance minus one — the convention
  used throughout the Thm 8 proof);
* rank factors are **recomputed** on every deviated graph (the proof
  re-derives ``rf`` after each strategy change), unlike the frozen
  distribution of the joining-user model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable

from ..errors import InvalidParameter, NodeNotFound
from ..network.betweenness import pair_weighted_betweenness
from ..network.graph import ChannelGraph
from ..transactions.zipf import ModifiedZipf
from .. import params as _params

__all__ = ["NetworkGameModel", "NodeUtilityBreakdown"]


@dataclass(frozen=True)
class NodeUtilityBreakdown:
    """Components of one node's utility in the network game."""

    revenue: float
    fees: float
    cost: float

    @property
    def utility(self) -> float:
        if math.isinf(self.fees):
            return -math.inf
        return self.revenue - self.fees - self.cost


class NetworkGameModel:
    """Evaluate node utilities in the PCN creation game of Section IV.

    Args:
        a: fee weight ``N_u * f^T_avg`` of a node's own transactions.
        b: revenue weight ``N_{v1} * f_avg`` per forwarded pair.
        edge_cost: per-channel cost ``l`` borne by *each* endpoint.
        zipf_s: Zipf parameter ``s`` of the transaction distribution.
    """

    def __init__(
        self,
        a: float = 1.0,
        b: float = 1.0,
        edge_cost: float = 1.0,
        zipf_s: float = 1.0,
    ) -> None:
        if a < 0 or b < 0 or edge_cost < 0:
            raise InvalidParameter("a, b and edge_cost must be >= 0")
        if zipf_s < 0:
            raise InvalidParameter("zipf_s must be >= 0")
        self.a = a
        self.b = b
        self.edge_cost = edge_cost
        self.zipf_s = zipf_s

    @classmethod
    def from_parameters(
        cls, parameters: "_params.ModelParameters", edge_cost: float
    ) -> "NetworkGameModel":
        """Derive (a, b) from a :class:`ModelParameters` instance.

        ``b`` uses the per-node share of the total rate, matching the
        paper's "N_{v1} constant for all v1" assumption.
        """
        return cls(
            a=parameters.user_tx_rate * parameters.fee_out_avg,
            b=parameters.total_tx_rate * parameters.fee_avg,
            edge_cost=edge_cost,
            zipf_s=parameters.zipf_s,
        )

    # -- components -----------------------------------------------------------

    def revenue(self, graph: ChannelGraph, node: Hashable) -> float:
        """``E_rev``: b-weighted intermediary betweenness of ``node``.

        Rank factors are computed fresh on ``graph``.
        """
        if node not in graph:
            raise NodeNotFound(node)
        distribution = ModifiedZipf(graph, s=self.zipf_s)
        digraph = graph.view(directed=True)
        rows: Dict[Hashable, Dict[Hashable, float]] = {}

        def weight(s: Hashable, r: Hashable) -> float:
            if s == node or r == node:
                return 0.0
            if s not in rows:
                rows[s] = distribution.receivers(s)
            return self.b * rows[s].get(r, 0.0)

        sources = [v for v in graph.nodes if v != node]
        result = pair_weighted_betweenness(digraph, weight, sources=sources)
        return result.node_value(node)

    def fees(self, graph: ChannelGraph, node: Hashable) -> float:
        """``E_fees``: a-weighted intermediary-count distance to receivers.

        Returns ``inf`` when any positive-probability receiver is
        unreachable (the paper's disconnected = infinitely costly).
        """
        if node not in graph:
            raise NodeNotFound(node)
        if graph.degree(node) == 0:
            return math.inf
        distribution = ModifiedZipf(graph, s=self.zipf_s)
        receivers = distribution.receivers(node)
        from ..core.fees_paid import expected_fees

        return expected_fees(
            graph.view(directed=True),
            node,
            receivers,
            user_tx_rate=1.0,
            fee_out_avg=self.a,
            hop_convention="intermediaries",
        )

    def cost(self, graph: ChannelGraph, node: Hashable) -> float:
        """``l * deg(node)`` — channel costs borne by ``node``."""
        return self.edge_cost * graph.degree(node)

    # -- aggregate --------------------------------------------------------------

    def breakdown(self, graph: ChannelGraph, node: Hashable) -> NodeUtilityBreakdown:
        return NodeUtilityBreakdown(
            revenue=self.revenue(graph, node),
            fees=self.fees(graph, node),
            cost=self.cost(graph, node),
        )

    def node_utility(self, graph: ChannelGraph, node: Hashable) -> float:
        """``U = E_rev - E_fees - l*deg``; ``-inf`` when disconnected."""
        return self.breakdown(graph, node).utility

    def all_utilities(self, graph: ChannelGraph) -> Dict[Hashable, float]:
        """Utility of every node (one distribution recomputation per node)."""
        return {node: self.node_utility(graph, node) for node in graph.nodes}
