"""Deviation moves available to a node in the network creation game.

A node's strategy is the set of channels it maintains. A unilateral
deviation removes any subset of its incident channels and/or adds channels
to any set of non-neighbors (each added channel costs the deviator ``l``,
mirroring the Thm 8 proof where a leaf adding ``i`` channels pays ``l*i``).

Enumerating all ``2^(deg) * 2^(non-neighbors)`` deviations is exponential
(computing exact best responses is NP-hard, Thm 2 of [19]); the structured
family below covers the strategy classes used in the paper's proofs —
which are exact for the symmetric topologies of Section IV — plus optional
exhaustive enumeration for tiny graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain, combinations
from typing import FrozenSet, Hashable, Iterator, List, Optional

import numpy as np

from ..errors import InvalidParameter, NodeNotFound
from ..network.graph import ChannelGraph

__all__ = [
    "Deviation",
    "apply_deviation",
    "structured_deviations",
    "exhaustive_deviations",
    "sampled_deviations",
]


@dataclass(frozen=True)
class Deviation:
    """Remove channels to ``remove`` and open channels to ``add``."""

    remove: FrozenSet[Hashable]
    add: FrozenSet[Hashable]

    @property
    def is_null(self) -> bool:
        return not self.remove and not self.add

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rem = sorted(map(str, self.remove))
        add = sorted(map(str, self.add))
        return f"Deviation(remove={rem}, add={add})"


def apply_deviation(
    graph: ChannelGraph,
    node: Hashable,
    deviation: Deviation,
    balance: float = 1.0,
) -> ChannelGraph:
    """A fresh graph with ``deviation`` applied on behalf of ``node``.

    Removing drops *all* parallel channels to the removed neighbor; adding
    opens one channel funded ``balance``/``balance``.
    """
    if node not in graph:
        raise NodeNotFound(node)
    out = graph.copy()
    for neighbor in deviation.remove:
        channels = out.channels_between(node, neighbor)
        if not channels:
            raise InvalidParameter(
                f"cannot remove non-existent channel {node!r}-{neighbor!r}"
            )
        for channel in channels:
            out.remove_channel(channel.channel_id)
    for peer in deviation.add:
        if peer == node:
            raise InvalidParameter("cannot open a channel to oneself")
        if graph.has_channel(node, peer):
            raise InvalidParameter(
                f"cannot add duplicate channel {node!r}-{peer!r}"
            )
        out.add_channel(node, peer, balance, balance)
    return out


def _subsets(items: List[Hashable], max_size: int) -> Iterator[FrozenSet[Hashable]]:
    for size in range(min(max_size, len(items)) + 1):
        for combo in combinations(items, size):
            yield frozenset(combo)


def structured_deviations(
    graph: ChannelGraph,
    node: Hashable,
    max_add_enumerated: int = 2,
    max_remove_enumerated: int = 2,
    samples_per_size: int = 2,
    seed: Optional[int] = None,
) -> List[Deviation]:
    """The deviation family used by the Section IV proofs.

    Includes:

    * all removal subsets up to ``max_remove_enumerated`` plus "remove all";
    * all addition subsets up to ``max_add_enumerated`` plus "add all"
      (the leaf-connects-to-all-leaves class) and, for each larger size,
      ``samples_per_size`` random subsets plus one canonical (sorted-order)
      subset — exact for vertex-transitive positions like star leaves;
    * the cross products "remove X and add Y" for the enumerated cores,
      covering the rewire classes (e.g. drop the hub, connect to leaves).
    """
    if node not in graph:
        raise NodeNotFound(node)
    rng = np.random.default_rng(seed)
    neighbors = sorted(graph.neighbors(node), key=str)
    non_neighbors = sorted(
        (v for v in graph.nodes if v != node and not graph.has_channel(node, v)),
        key=str,
    )

    removal_sets = list(_subsets(neighbors, max_remove_enumerated))
    full_removal = frozenset(neighbors)
    if full_removal not in removal_sets:
        removal_sets.append(full_removal)

    addition_sets = list(_subsets(non_neighbors, max_add_enumerated))
    for size in range(max_add_enumerated + 1, len(non_neighbors) + 1):
        addition_sets.append(frozenset(non_neighbors[:size]))  # canonical
        for _ in range(samples_per_size):
            picked = rng.choice(len(non_neighbors), size=size, replace=False)
            addition_sets.append(frozenset(non_neighbors[i] for i in picked))

    seen = set()
    deviations: List[Deviation] = []
    for remove in removal_sets:
        for add in addition_sets:
            deviation = Deviation(remove=remove, add=add)
            key = (remove, add)
            if deviation.is_null or key in seen:
                continue
            seen.add(key)
            deviations.append(deviation)
    return deviations


def sampled_deviations(
    graph: ChannelGraph,
    node: Hashable,
    moves: int = 8,
    seed: Optional[int] = None,
) -> List[Deviation]:
    """A bounded random family of single-channel moves for large graphs.

    :func:`structured_deviations` enumerates all small addition subsets,
    which is quadratic in the number of non-neighbors — unusable when an
    evolution run sweeps nodes of a 500-node network every epoch. This
    family instead draws at most ``moves`` deviations from the three
    one-channel move classes (add one, remove one, swap one for one),
    split as evenly as the candidate pools allow. Deterministic for a
    given ``seed``; deduplicated; may return fewer than ``moves`` when
    the pools are small.
    """
    if node not in graph:
        raise NodeNotFound(node)
    if moves < 1:
        raise InvalidParameter(f"moves must be >= 1, got {moves}")
    rng = np.random.default_rng(seed)
    neighbors = sorted(graph.neighbors(node), key=str)
    non_neighbors = sorted(
        (v for v in graph.nodes if v != node and not graph.has_channel(node, v)),
        key=str,
    )

    def pick(pool: List[Hashable], count: int) -> List[Hashable]:
        count = min(count, len(pool))
        if count <= 0:
            return []
        chosen = rng.choice(len(pool), size=count, replace=False)
        return [pool[i] for i in sorted(chosen)]

    per_class = max(1, moves // 3)
    seen = set()
    out: List[Deviation] = []
    candidates = chain(
        (Deviation(remove=frozenset(), add=frozenset([peer]))
         for peer in pick(non_neighbors, per_class)),
        (Deviation(remove=frozenset([peer]), add=frozenset())
         for peer in pick(neighbors, per_class)),
        (Deviation(remove=frozenset([old]), add=frozenset([new]))
         for old, new in zip(
             pick(neighbors, moves), pick(non_neighbors, moves))),
    )
    for deviation in candidates:
        key = (deviation.remove, deviation.add)
        if key in seen:
            continue
        seen.add(key)
        out.append(deviation)
        if len(out) >= moves:
            break
    return out


def exhaustive_deviations(
    graph: ChannelGraph, node: Hashable
) -> List[Deviation]:
    """Every deviation (all removal subsets × all addition subsets).

    ``2^(deg + non-neighbors)`` moves — only for tiny graphs; used by tests
    to certify that :func:`structured_deviations` found the true best
    response on the paper's topologies.
    """
    if node not in graph:
        raise NodeNotFound(node)
    neighbors = sorted(graph.neighbors(node), key=str)
    non_neighbors = sorted(
        (v for v in graph.nodes if v != node and not graph.has_channel(node, v)),
        key=str,
    )
    out = []
    for remove in _subsets(neighbors, len(neighbors)):
        for add in _subsets(non_neighbors, len(non_neighbors)):
            deviation = Deviation(remove=remove, add=add)
            if not deviation.is_null:
                out.append(deviation)
    return out
