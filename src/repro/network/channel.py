"""Bidirectional payment channels with per-direction balances.

A payment channel between two users ``u`` and ``v`` is a joint account
funded on-chain. Following Section II-A of the paper, we model it as two
directed edges, one per direction, whose *balances* bound the amount that
can be sent in that direction. A successful payment of size ``x`` from
``u`` to ``v`` moves ``x`` coins from ``u``'s balance to ``v``'s balance
(Figure 1 of the paper).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Hashable, Iterator, List, Optional, Tuple

from ..errors import HtlcError, InsufficientBalance, InvalidParameter

__all__ = ["Channel", "PaymentRecord", "DEFAULT_MAX_ACCEPTED_HTLCS"]

#: Lightning's BOLT-2 default for ``max_accepted_htlcs``: at most 483
#: concurrent in-flight HTLCs per channel direction. This is the finite
#: resource that slot-jamming attacks exhaust.
DEFAULT_MAX_ACCEPTED_HTLCS = 483

_channel_counter = itertools.count()


def _next_channel_id() -> str:
    return f"chan-{next(_channel_counter)}"


@dataclass(frozen=True)
class PaymentRecord:
    """One balance update applied to a channel.

    Attributes:
        sender: endpoint that paid.
        receiver: endpoint that was paid.
        amount: coins moved.
        timestamp: simulation time of the update (0.0 outside simulation).
    """

    sender: Hashable
    receiver: Hashable
    amount: float
    timestamp: float = 0.0


class Channel:
    """A bidirectional payment channel with one balance per endpoint.

    The channel's *capacity* (``balance(u) + balance(v)``) is invariant
    under payments; only its split between the two sides moves.

    Args:
        u: first endpoint.
        v: second endpoint.
        balance_u: coins initially owned by ``u`` in the channel.
        balance_v: coins initially owned by ``v`` in the channel.
        channel_id: optional stable identifier; auto-generated when omitted.
        record_history: keep a list of :class:`PaymentRecord` for auditing.
        max_accepted_htlcs: per-direction cap on concurrent in-flight HTLCs
            (:data:`DEFAULT_MAX_ACCEPTED_HTLCS`, Lightning's 483). ``None``
            disables the cap.
    """

    __slots__ = (
        "u", "v", "_balances", "channel_id", "_history",
        "fee_base", "fee_rate", "upfront_base", "upfront_rate", "_on_mutate",
        "max_accepted_htlcs", "_htlc_slots",
    )

    def __init__(
        self,
        u: Hashable,
        v: Hashable,
        balance_u: float,
        balance_v: float = 0.0,
        channel_id: Optional[str] = None,
        record_history: bool = False,
        fee_base: float = 0.0,
        fee_rate: float = 0.0,
        upfront_base: float = 0.0,
        upfront_rate: float = 0.0,
        max_accepted_htlcs: Optional[int] = DEFAULT_MAX_ACCEPTED_HTLCS,
    ) -> None:
        if u == v:
            raise InvalidParameter("a channel needs two distinct endpoints")
        if balance_u < 0 or balance_v < 0:
            raise InvalidParameter("channel balances must be non-negative")
        if fee_base < 0 or fee_rate < 0:
            raise InvalidParameter("channel fee params must be non-negative")
        if upfront_base < 0 or upfront_rate < 0:
            raise InvalidParameter(
                "channel upfront fee params must be non-negative"
            )
        if max_accepted_htlcs is not None and max_accepted_htlcs < 1:
            raise InvalidParameter(
                f"max_accepted_htlcs must be >= 1 or None, "
                f"got {max_accepted_htlcs}"
            )
        self.u = u
        self.v = v
        self._balances = {u: float(balance_u), v: float(balance_v)}
        self.max_accepted_htlcs = max_accepted_htlcs
        # In-flight HTLC count per direction, keyed by the sending endpoint.
        self._htlc_slots = {u: 0, v: 0}
        self.channel_id = channel_id if channel_id is not None else _next_channel_id()
        self._history: Optional[List[PaymentRecord]] = [] if record_history else None
        #: Per-channel fee policy (Lightning base/proportional form);
        #: surfaced in GraphView's fee arrays. Zero = policy-free channel.
        self.fee_base = float(fee_base)
        self.fee_rate = float(fee_rate)
        #: Per-channel upfront (per-attempt) fee side of the two-sided
        #: policy; surfaced in GraphView's upfront arrays alongside the
        #: success-side fee columns.
        self.upfront_base = float(upfront_base)
        self.upfront_rate = float(upfront_rate)
        # Balance-mutation callback installed by the owning ChannelGraph so
        # cached views are invalidated when payments move funds.
        self._on_mutate = None

    # -- introspection ----------------------------------------------------

    @property
    def endpoints(self) -> Tuple[Hashable, Hashable]:
        """The two channel parties, in creation order."""
        return (self.u, self.v)

    @property
    def capacity(self) -> float:
        """Total coins locked in the channel (payment-invariant)."""
        return self._balances[self.u] + self._balances[self.v]

    @property
    def history(self) -> Tuple[PaymentRecord, ...]:
        """Recorded payments (empty when history recording is off)."""
        return tuple(self._history or ())

    def balance(self, node: Hashable) -> float:
        """Coins currently owned by ``node`` in this channel."""
        self._check_endpoint(node)
        return self._balances[node]

    def other(self, node: Hashable) -> Hashable:
        """The counterparty of ``node`` in this channel."""
        self._check_endpoint(node)
        return self.v if node == self.u else self.u

    def can_send(self, sender: Hashable, amount: float) -> bool:
        """Whether ``sender`` can currently push ``amount`` to the other side."""
        self._check_endpoint(sender)
        if amount < 0:
            raise InvalidParameter(f"payment amount must be >= 0, got {amount}")
        return self._balances[sender] >= amount

    # -- HTLC slot accounting ---------------------------------------------

    def htlc_slots_used(self, sender: Hashable) -> int:
        """In-flight HTLCs currently occupying the ``sender`` -> other
        direction of this channel."""
        self._check_endpoint(sender)
        return self._htlc_slots[sender]

    def has_free_htlc_slot(self, sender: Hashable) -> bool:
        """Whether another HTLC can be added in the ``sender`` direction."""
        self._check_endpoint(sender)
        if self.max_accepted_htlcs is None:
            return True
        return self._htlc_slots[sender] < self.max_accepted_htlcs

    def open_htlc(self, sender: Hashable) -> None:
        """Occupy one HTLC slot in the ``sender`` direction.

        Raises:
            HtlcError: when every slot in that direction is already taken
                (the channel direction is *jammed*).
        """
        if not self.has_free_htlc_slot(sender):
            raise HtlcError(
                f"channel {self.channel_id!r} has no free HTLC slot in "
                f"direction {sender!r} -> {self.other(sender)!r} "
                f"(cap {self.max_accepted_htlcs})"
            )
        self._htlc_slots[sender] += 1

    def close_htlc(self, sender: Hashable) -> None:
        """Release one HTLC slot (on settle, fail, or expiry)."""
        self._check_endpoint(sender)
        if self._htlc_slots[sender] <= 0:
            raise HtlcError(
                f"channel {self.channel_id!r} has no open HTLC in "
                f"direction {sender!r} -> {self.other(sender)!r} to close"
            )
        self._htlc_slots[sender] -= 1

    # -- mutation ----------------------------------------------------------

    def send(self, sender: Hashable, amount: float, timestamp: float = 0.0) -> None:
        """Move ``amount`` from ``sender`` to the counterparty.

        Raises:
            InsufficientBalance: if ``sender``'s balance is below ``amount``.
        """
        if not self.can_send(sender, amount):
            raise InsufficientBalance(self._balances[sender], amount)
        receiver = self.other(sender)
        self._balances[sender] -= amount
        self._balances[receiver] += amount
        if self._history is not None:
            self._history.append(PaymentRecord(sender, receiver, amount, timestamp))
        self._notify()

    def set_balances(self, balance_u: float, balance_v: float) -> None:
        """Overwrite both sides' balances in one step.

        The batched simulation backend runs on array state and writes the
        final split back here; unlike :meth:`send` this may change the
        capacity, so callers are responsible for conservation.
        """
        if balance_u < 0 or balance_v < 0:
            raise InvalidParameter("channel balances must be non-negative")
        self._balances[self.u] = float(balance_u)
        self._balances[self.v] = float(balance_v)
        self._notify()

    def deposit(self, node: Hashable, amount: float) -> None:
        """Add ``amount`` fresh coins to ``node``'s side (a splice-in)."""
        self._check_endpoint(node)
        if amount < 0:
            raise InvalidParameter(f"deposit must be >= 0, got {amount}")
        self._balances[node] += amount
        self._notify()

    def withdraw(self, node: Hashable, amount: float) -> None:
        """Remove ``amount`` from ``node``'s side (splice-out / escrow).

        Used by the HTLC layer to reserve in-flight funds: the coins leave
        the spendable balance until the payment settles or fails.

        Raises:
            InsufficientBalance: if ``node``'s balance is below ``amount``.
        """
        self._check_endpoint(node)
        if amount < 0:
            raise InvalidParameter(f"withdrawal must be >= 0, got {amount}")
        if self._balances[node] < amount:
            raise InsufficientBalance(self._balances[node], amount)
        self._balances[node] -= amount
        self._notify()

    # -- helpers -----------------------------------------------------------

    def _notify(self) -> None:
        """Tell the owning graph a balance moved (view-cache invalidation)."""
        callback = self._on_mutate
        if callback is not None:
            callback()

    def directed_views(self) -> Iterator[Tuple[Hashable, Hashable, float]]:
        """Yield the channel as two directed edges ``(src, dst, balance)``."""
        yield (self.u, self.v, self._balances[self.u])
        yield (self.v, self.u, self._balances[self.v])

    def _check_endpoint(self, node: Hashable) -> None:
        if node not in self._balances:
            raise InvalidParameter(f"{node!r} is not an endpoint of {self!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Channel({self.u!r} <-> {self.v!r}, "
            f"balances=({self._balances[self.u]}, {self._balances[self.v]}), "
            f"id={self.channel_id!r})"
        )
