"""The payment channel network graph.

:class:`ChannelGraph` is the central substrate data structure: a multigraph
of :class:`~repro.network.channel.Channel` objects. It supports the views
the rest of the library needs:

* an *undirected* unit-weight view for hop distances ``d(u, v)``;
* a *directed* view with per-direction balances for capacity-aware routing
  and for the reduced subgraph ``G'`` of Section II-B;
* in-degree counts used by the modified-Zipf ranking of Section II-B (each
  bidirectional channel contributes one in-edge to each endpoint).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

import networkx as nx

from ..errors import ChannelNotFound, DuplicateChannel, InvalidParameter, NodeNotFound
from .channel import Channel

__all__ = ["ChannelGraph"]


class ChannelGraph:
    """A multigraph of payment channels.

    Nodes are arbitrary hashables; channels are :class:`Channel` objects.
    Parallel channels between the same endpoints are allowed (the paper's
    action set Ω may contain the same endpoint with different funds).
    """

    def __init__(self) -> None:
        self._channels: Dict[str, Channel] = {}
        self._adjacency: Dict[Hashable, Set[str]] = {}
        self._version = 0  # bumped on every mutation; used for view caching
        self._cached_undirected: Optional[Tuple[int, nx.Graph]] = None
        self._cached_directed: Optional[Tuple[int, nx.DiGraph]] = None

    # -- construction -------------------------------------------------------

    def add_node(self, node: Hashable) -> None:
        """Register ``node`` (no-op when it already exists)."""
        self._adjacency.setdefault(node, set())
        self._version += 1

    def add_channel(
        self,
        u: Hashable,
        v: Hashable,
        balance_u: float,
        balance_v: float = 0.0,
        channel_id: Optional[str] = None,
        record_history: bool = False,
    ) -> Channel:
        """Open a channel between ``u`` and ``v`` and return it.

        Endpoints are created implicitly. ``balance_u``/``balance_v`` are the
        coins each side locks at creation.
        """
        channel = Channel(
            u, v, balance_u, balance_v, channel_id=channel_id,
            record_history=record_history,
        )
        if channel.channel_id in self._channels:
            if channel_id is not None:
                raise DuplicateChannel(
                    f"channel id {channel.channel_id!r} already present"
                )
            # Auto-generated id collided with an explicit id (e.g. a graph
            # loaded from a snapshot written by another process, whose ids
            # restarted the per-process counter). Draw until free.
            while channel.channel_id in self._channels:
                channel = Channel(
                    u, v, balance_u, balance_v,
                    record_history=record_history,
                )
        self.add_node(u)
        self.add_node(v)
        self._channels[channel.channel_id] = channel
        self._adjacency[u].add(channel.channel_id)
        self._adjacency[v].add(channel.channel_id)
        self._version += 1
        return channel

    def remove_channel(self, channel_id: str) -> Channel:
        """Close and remove a channel, returning it."""
        try:
            channel = self._channels.pop(channel_id)
        except KeyError:
            raise ChannelNotFound(None, None, channel_id) from None
        self._adjacency[channel.u].discard(channel_id)
        self._adjacency[channel.v].discard(channel_id)
        self._version += 1
        return channel

    def remove_node(self, node: Hashable) -> None:
        """Remove ``node`` and every channel incident to it."""
        if node not in self._adjacency:
            raise NodeNotFound(node)
        for channel_id in list(self._adjacency[node]):
            self.remove_channel(channel_id)
        del self._adjacency[node]
        self._version += 1

    def copy(self) -> "ChannelGraph":
        """Deep copy (channel balances are copied, history is dropped)."""
        clone = ChannelGraph()
        for node in self._adjacency:
            clone.add_node(node)
        for channel in self._channels.values():
            clone.add_channel(
                channel.u,
                channel.v,
                channel.balance(channel.u),
                channel.balance(channel.v),
                channel_id=channel.channel_id,
            )
        return clone

    # -- queries --------------------------------------------------------------

    @property
    def nodes(self) -> Tuple[Hashable, ...]:
        return tuple(self._adjacency)

    @property
    def channels(self) -> Tuple[Channel, ...]:
        return tuple(self._channels.values())

    def __len__(self) -> int:
        return len(self._adjacency)

    def __contains__(self, node: Hashable) -> bool:
        return node in self._adjacency

    def num_channels(self) -> int:
        return len(self._channels)

    def has_node(self, node: Hashable) -> bool:
        return node in self._adjacency

    def channel(self, channel_id: str) -> Channel:
        try:
            return self._channels[channel_id]
        except KeyError:
            raise ChannelNotFound(None, None, channel_id) from None

    def channels_of(self, node: Hashable) -> List[Channel]:
        """All channels incident to ``node``."""
        if node not in self._adjacency:
            raise NodeNotFound(node)
        return [self._channels[cid] for cid in sorted(self._adjacency[node])]

    def channels_between(self, u: Hashable, v: Hashable) -> List[Channel]:
        """All (parallel) channels whose endpoints are exactly ``{u, v}``."""
        if u not in self._adjacency:
            raise NodeNotFound(u)
        if v not in self._adjacency:
            raise NodeNotFound(v)
        ids = self._adjacency[u] & self._adjacency[v]
        return [self._channels[cid] for cid in sorted(ids)]

    def has_channel(self, u: Hashable, v: Hashable) -> bool:
        if u not in self._adjacency or v not in self._adjacency:
            return False
        return bool(self._adjacency[u] & self._adjacency[v])

    def neighbors(self, node: Hashable) -> List[Hashable]:
        """Distinct counterparties of ``node``."""
        seen: Set[Hashable] = set()
        out: List[Hashable] = []
        for channel in self.channels_of(node):
            other = channel.other(node)
            if other not in seen:
                seen.add(other)
                out.append(other)
        return out

    def degree(self, node: Hashable) -> int:
        """Number of channels incident to ``node`` (parallel channels count)."""
        if node not in self._adjacency:
            raise NodeNotFound(node)
        return len(self._adjacency[node])

    def in_degree(self, node: Hashable) -> int:
        """In-degree in the two-directed-edges-per-channel view.

        Every bidirectional channel contributes exactly one incoming edge to
        each endpoint, so this equals :meth:`degree`. Kept as a separate
        method because the paper's ranking (Section II-B) is phrased in
        terms of in-degree.
        """
        return self.degree(node)

    def total_capacity(self) -> float:
        return sum(c.capacity for c in self._channels.values())

    def balance_of(self, node: Hashable) -> float:
        """Total coins ``node`` owns across all of its channels."""
        return sum(c.balance(node) for c in self.channels_of(node))

    def directed_edges(self) -> Iterator[Tuple[Hashable, Hashable, float]]:
        """Yield every directed edge ``(src, dst, balance)`` once per channel."""
        for channel in self._channels.values():
            yield from channel.directed_views()

    # -- networkx views ---------------------------------------------------------

    def to_undirected(self) -> nx.Graph:
        """Simple undirected unit-weight view (parallel channels collapsed).

        The view is cached and invalidated on any structural mutation; the
        cache makes repeated distance queries cheap during optimisation.
        """
        if self._cached_undirected is not None:
            version, graph = self._cached_undirected
            if version == self._version:
                return graph
        graph = nx.Graph()
        graph.add_nodes_from(self._adjacency)
        for channel in self._channels.values():
            if graph.has_edge(channel.u, channel.v):
                graph[channel.u][channel.v]["capacity"] += channel.capacity
            else:
                graph.add_edge(channel.u, channel.v, capacity=channel.capacity)
        self._cached_undirected = (self._version, graph)
        return graph

    def to_directed(self, min_balance: float = 0.0) -> nx.DiGraph:
        """Directed view with aggregated per-direction balances.

        Edges whose balance is strictly below ``min_balance`` are omitted;
        with ``min_balance = x`` this is the reduced subgraph ``G'`` of
        Section II-B for transactions of size ``x``.

        Note: balances change under simulation, so the directed view is only
        cached for ``min_balance == 0``.
        """
        if min_balance == 0.0 and self._cached_directed is not None:
            version, graph = self._cached_directed
            if version == self._version:
                return graph
        graph = nx.DiGraph()
        graph.add_nodes_from(self._adjacency)
        for src, dst, balance in self.directed_edges():
            if graph.has_edge(src, dst):
                graph[src][dst]["balance"] += balance
            else:
                graph.add_edge(src, dst, balance=balance)
        if min_balance > 0.0:
            to_drop = [
                (s, d)
                for s, d, data in graph.edges(data=True)
                if data["balance"] < min_balance
            ]
            graph.remove_edges_from(to_drop)
        elif min_balance < 0.0:
            raise InvalidParameter("min_balance must be >= 0")
        else:
            self._cached_directed = (self._version, graph)
        return graph

    # -- convenience constructors -------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[Hashable, Hashable]],
        balance: float = 1.0,
    ) -> "ChannelGraph":
        """Build a graph from undirected edge pairs, each side locking
        ``balance`` coins. Convenient for tests and topology studies where
        only the structure matters."""
        graph = cls()
        for u, v in edges:
            graph.add_channel(u, v, balance, balance)
        return graph

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ChannelGraph(nodes={len(self._adjacency)}, "
            f"channels={len(self._channels)})"
        )
