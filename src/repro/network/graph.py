"""The payment channel network graph.

:class:`ChannelGraph` is the central substrate data structure: a multigraph
of :class:`~repro.network.channel.Channel` objects. It supports the views
the rest of the library needs:

* an *undirected* unit-weight view for hop distances ``d(u, v)``;
* a *directed* view with per-direction balances for capacity-aware routing
  and for the reduced subgraph ``G'`` of Section II-B;
* in-degree counts used by the modified-Zipf ranking of Section II-B (each
  bidirectional channel contributes one in-edge to each endpoint).

Views are immutable CSR snapshots (:class:`~repro.network.views.GraphView`)
produced by :meth:`ChannelGraph.view` and cached keyed on the graph's
mutation version — every structural change *and* every balance movement
bumps the version, so algorithms can never observe a stale snapshot. For
a networkx materialisation call ``view(...).to_networkx()``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from ..errors import ChannelNotFound, DuplicateChannel, InvalidParameter, NodeNotFound
from .channel import DEFAULT_MAX_ACCEPTED_HTLCS, Channel
from .views import GraphView, build_view

__all__ = ["ChannelGraph"]

#: Cached views kept per graph before stale entries are pruned.
_VIEW_CACHE_LIMIT = 32


class ChannelGraph:
    """A multigraph of payment channels.

    Nodes are arbitrary hashables; channels are :class:`Channel` objects.
    Parallel channels between the same endpoints are allowed (the paper's
    action set Ω may contain the same endpoint with different funds).
    """

    def __init__(self) -> None:
        self._channels: Dict[str, Channel] = {}
        self._adjacency: Dict[Hashable, Set[str]] = {}
        # Bumped on every mutation — structural (add/remove) and balance
        # (send/deposit/withdraw, via the channel callback) — so cached
        # views are keyed on the complete observable state.
        self._version = 0
        self._views: Dict[Tuple[bool, float], Tuple[int, GraphView]] = {}

    @property
    def version(self) -> int:
        """Monotone mutation counter (structure and balances)."""
        return self._version

    def _bump_version(self) -> None:
        self._version += 1

    # -- construction -------------------------------------------------------

    def add_node(self, node: Hashable) -> None:
        """Register ``node`` (no-op when it already exists)."""
        self._adjacency.setdefault(node, set())
        self._version += 1

    def add_channel(
        self,
        u: Hashable,
        v: Hashable,
        balance_u: float,
        balance_v: float = 0.0,
        channel_id: Optional[str] = None,
        record_history: bool = False,
        fee_base: float = 0.0,
        fee_rate: float = 0.0,
        upfront_base: float = 0.0,
        upfront_rate: float = 0.0,
        max_accepted_htlcs: Optional[int] = DEFAULT_MAX_ACCEPTED_HTLCS,
    ) -> Channel:
        """Open a channel between ``u`` and ``v`` and return it.

        Endpoints are created implicitly. ``balance_u``/``balance_v`` are the
        coins each side locks at creation.
        """
        channel = Channel(
            u, v, balance_u, balance_v, channel_id=channel_id,
            record_history=record_history,
            fee_base=fee_base, fee_rate=fee_rate,
            upfront_base=upfront_base, upfront_rate=upfront_rate,
            max_accepted_htlcs=max_accepted_htlcs,
        )
        if channel.channel_id in self._channels:
            if channel_id is not None:
                raise DuplicateChannel(
                    f"channel id {channel.channel_id!r} already present"
                )
            # Auto-generated id collided with an explicit id (e.g. a graph
            # loaded from a snapshot written by another process, whose ids
            # restarted the per-process counter). Draw until free.
            while channel.channel_id in self._channels:
                channel = Channel(
                    u, v, balance_u, balance_v,
                    record_history=record_history,
                    fee_base=fee_base, fee_rate=fee_rate,
                    upfront_base=upfront_base, upfront_rate=upfront_rate,
                    max_accepted_htlcs=max_accepted_htlcs,
                )
        self.add_node(u)
        self.add_node(v)
        self._channels[channel.channel_id] = channel
        self._adjacency[u].add(channel.channel_id)
        self._adjacency[v].add(channel.channel_id)
        channel._on_mutate = self._bump_version
        self._version += 1
        return channel

    def remove_channel(self, channel_id: str) -> Channel:
        """Close and remove a channel, returning it."""
        try:
            channel = self._channels.pop(channel_id)
        except KeyError:
            raise ChannelNotFound(None, None, channel_id) from None
        self._adjacency[channel.u].discard(channel_id)
        self._adjacency[channel.v].discard(channel_id)
        channel._on_mutate = None
        self._version += 1
        return channel

    def remove_node(self, node: Hashable) -> None:
        """Remove ``node`` and every channel incident to it."""
        if node not in self._adjacency:
            raise NodeNotFound(node)
        for channel_id in list(self._adjacency[node]):
            self.remove_channel(channel_id)
        del self._adjacency[node]
        self._version += 1

    def copy(self) -> "ChannelGraph":
        """Deep copy: balances and per-channel settings are copied, past
        payment records are dropped (cloned channels start a fresh history
        when recording was on)."""
        clone = ChannelGraph()
        for node in self._adjacency:
            clone.add_node(node)
        for channel in self._channels.values():
            clone.add_channel(
                channel.u,
                channel.v,
                channel.balance(channel.u),
                channel.balance(channel.v),
                channel_id=channel.channel_id,
                record_history=channel._history is not None,
                fee_base=channel.fee_base,
                fee_rate=channel.fee_rate,
                upfront_base=channel.upfront_base,
                upfront_rate=channel.upfront_rate,
                max_accepted_htlcs=channel.max_accepted_htlcs,
            )
        return clone

    # -- queries --------------------------------------------------------------

    @property
    def nodes(self) -> Tuple[Hashable, ...]:
        return tuple(self._adjacency)

    @property
    def channels(self) -> Tuple[Channel, ...]:
        return tuple(self._channels.values())

    def __len__(self) -> int:
        return len(self._adjacency)

    def __contains__(self, node: Hashable) -> bool:
        return node in self._adjacency

    def num_channels(self) -> int:
        return len(self._channels)

    def has_node(self, node: Hashable) -> bool:
        return node in self._adjacency

    def channel(self, channel_id: str) -> Channel:
        try:
            return self._channels[channel_id]
        except KeyError:
            raise ChannelNotFound(None, None, channel_id) from None

    def channels_of(self, node: Hashable) -> List[Channel]:
        """All channels incident to ``node``."""
        if node not in self._adjacency:
            raise NodeNotFound(node)
        return [self._channels[cid] for cid in sorted(self._adjacency[node])]

    def channels_between(self, u: Hashable, v: Hashable) -> List[Channel]:
        """All (parallel) channels whose endpoints are exactly ``{u, v}``."""
        if u not in self._adjacency:
            raise NodeNotFound(u)
        if v not in self._adjacency:
            raise NodeNotFound(v)
        ids = self._adjacency[u] & self._adjacency[v]
        return [self._channels[cid] for cid in sorted(ids)]

    def has_channel(self, u: Hashable, v: Hashable) -> bool:
        if u not in self._adjacency or v not in self._adjacency:
            return False
        return bool(self._adjacency[u] & self._adjacency[v])

    def neighbors(self, node: Hashable) -> List[Hashable]:
        """Distinct counterparties of ``node``."""
        seen: Set[Hashable] = set()
        out: List[Hashable] = []
        for channel in self.channels_of(node):
            other = channel.other(node)
            if other not in seen:
                seen.add(other)
                out.append(other)
        return out

    def degree(self, node: Hashable) -> int:
        """Number of channels incident to ``node`` (parallel channels count)."""
        if node not in self._adjacency:
            raise NodeNotFound(node)
        return len(self._adjacency[node])

    def in_degree(self, node: Hashable) -> int:
        """In-degree in the two-directed-edges-per-channel view.

        Every bidirectional channel contributes exactly one incoming edge to
        each endpoint, so this equals :meth:`degree`. Kept as a separate
        method because the paper's ranking (Section II-B) is phrased in
        terms of in-degree.
        """
        return self.degree(node)

    def set_htlc_slot_cap(self, cap: Optional[int]) -> None:
        """Set ``max_accepted_htlcs`` on every existing channel.

        Used by attack scenarios to study slot exhaustion at realistic (or
        deliberately scarce) slot budgets; new channels keep their own cap.

        Raises:
            InvalidParameter: when ``cap`` is below 1 (``None`` = no cap).
        """
        if cap is not None and cap < 1:
            raise InvalidParameter(
                f"HTLC slot cap must be >= 1 or None, got {cap}"
            )
        for channel in self._channels.values():
            channel.max_accepted_htlcs = cap

    def total_capacity(self) -> float:
        return sum(c.capacity for c in self._channels.values())

    def balance_of(self, node: Hashable) -> float:
        """Total coins ``node`` owns across all of its channels."""
        return sum(c.balance(node) for c in self.channels_of(node))

    def directed_edges(self) -> Iterator[Tuple[Hashable, Hashable, float]]:
        """Yield every directed edge ``(src, dst, balance)`` once per channel."""
        for channel in self._channels.values():
            yield from channel.directed_views()

    # -- views --------------------------------------------------------------

    def view(self, directed: bool = True, reduced: float = 0.0) -> GraphView:
        """An immutable CSR snapshot of the current graph state.

        Args:
            directed: per-direction balances (True) or the symmetric
                collapsed adjacency (False).
            reduced: drop directed entries whose aggregated balance is
                strictly below this amount — the reduced subgraph ``G'``
                of Section II-B for transactions of size ``reduced``.

        Views are cached keyed on ``(directed, reduced)`` and the graph's
        mutation version; balance movements bump the version, so a cached
        view can never serve stale capacities to the router.
        """
        if reduced < 0:
            raise InvalidParameter("reduced must be >= 0")
        key = (directed, float(reduced))
        hit = self._views.get(key)
        if hit is not None and hit[0] == self._version:
            return hit[1]
        if len(self._views) >= _VIEW_CACHE_LIMIT:
            self._views = {
                k: v for k, v in self._views.items() if v[0] == self._version
            }
            # Same-version entries (distinct `reduced` amounts) can also
            # pile up, e.g. under a liquidity sweep on a static graph —
            # evict oldest-inserted until below the cap.
            while len(self._views) >= _VIEW_CACHE_LIMIT:
                self._views.pop(next(iter(self._views)))
        snapshot = build_view(self, directed, reduced)
        self._views[key] = (self._version, snapshot)
        return snapshot

    # -- convenience constructors -------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[Hashable, Hashable]],
        balance: float = 1.0,
    ) -> "ChannelGraph":
        """Build a graph from undirected edge pairs, each side locking
        ``balance`` coins. Convenient for tests and topology studies where
        only the structure matters."""
        graph = cls()
        for u, v in edges:
            graph.add_channel(u, v, balance, balance)
        return graph

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ChannelGraph(nodes={len(self._adjacency)}, "
            f"channels={len(self._channels)})"
        )
