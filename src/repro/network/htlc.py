"""Hash time-locked contracts: atomic multi-hop payments (footnote 1).

The paper routes multi-hop payments assuming "techniques, namely HTLCs, to
ensure that the transactions on a path will be executed atomically, either
all or none". This module implements that substrate: a payment first
*locks* funds hop by hop from the sender toward the receiver (each hop
reserving the forwarded amount from the upstream party's balance), then
either *settles* (receiver reveals the preimage; funds move, fees stick)
or *fails* (a hop cannot lock; every reservation unwinds). Between lock
and resolution the reserved funds are unavailable to other payments —
which is exactly the in-flight-capital effect that makes the opportunity
cost of Section II-C real.

Timeouts decrement per hop (like Lightning's CLTV deltas); an expired
in-flight HTLC can be cancelled by anyone, restoring upstream balances.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..errors import HtlcError, RoutingError
from .channel import Channel
from .fees import ConstantFee, FeeFunction, FeePolicy
from .graph import ChannelGraph

__all__ = ["HtlcError", "HtlcState", "Htlc", "HtlcPayment", "HtlcRouter"]

_payment_ids = itertools.count()


class HtlcState(Enum):
    """Lifecycle of one in-flight payment."""

    PENDING = "pending"      # locks placed, awaiting settle/fail
    SETTLED = "settled"      # preimage revealed, funds finalised
    FAILED = "failed"        # unwound, balances restored


@dataclass
class Htlc:
    """One hop's conditional payment: ``amount`` reserved from ``sender``."""

    channel: Channel
    sender: Hashable
    amount: float
    expiry: int


@dataclass
class HtlcPayment:
    """A chain of per-hop HTLCs for one multi-hop payment.

    ``failure_reason`` is set when a :meth:`HtlcRouter.lock` fails:
    ``"no-balance"`` (no channel on some hop could fund the amount) or
    ``"no-slots"`` (a channel had the balance but every HTLC slot in the
    needed direction was occupied — the jammed case).

    ``upfront_fees_per_node`` records the per-attempt side of a
    two-sided :class:`~repro.network.fees.FeePolicy`: each hop actually
    offered credits its receiving node, settle or not, and the unwind
    never refunds it. Empty under a success-only fee.
    """

    payment_id: int
    path: Tuple[Hashable, ...]
    amount: float
    state: HtlcState = HtlcState.PENDING
    hops: List[Htlc] = field(default_factory=list)
    fees_per_node: Dict[Hashable, float] = field(default_factory=dict)
    failure_reason: str = ""
    upfront_fees_per_node: Dict[Hashable, float] = field(default_factory=dict)

    @property
    def sender(self) -> Hashable:
        return self.path[0]

    @property
    def receiver(self) -> Hashable:
        return self.path[-1]

    @property
    def total_locked(self) -> float:
        return sum(h.amount for h in self.hops)

    @property
    def upfront_total(self) -> float:
        """All upfront fees the sender owes for this attempt."""
        return sum(self.upfront_fees_per_node.values())


class HtlcRouter:
    """Two-phase (lock / settle-or-fail) multi-hop payment execution.

    Unlike :class:`~repro.network.routing.Router` (which applies balance
    updates instantaneously), the HTLC router separates locking from
    settlement so concurrent payments contend for capacity realistically.

    Args:
        graph: the channel graph (balances are mutated by lock/settle).
        fee: per-hop fee function.
        base_expiry: timeout (abstract blocks) granted to the final hop;
            each earlier hop adds ``expiry_delta``.
        expiry_delta: per-hop timeout increment.
    """

    def __init__(
        self,
        graph: ChannelGraph,
        fee: Optional[FeeFunction] = None,
        base_expiry: int = 10,
        expiry_delta: int = 40,
    ) -> None:
        if base_expiry <= 0 or expiry_delta < 0:
            raise HtlcError("expiry parameters must be positive")
        self.graph = graph
        self.fee = fee if fee is not None else ConstantFee(0.0)
        # The two-sided view of the fee: ``policy.upfront`` prices the
        # per-attempt side (zero for plain FeeFunctions, so success-only
        # fees behave exactly as before).
        self.policy = FeePolicy.of(self.fee)
        self.base_expiry = base_expiry
        self.expiry_delta = expiry_delta
        self._in_flight: Dict[int, HtlcPayment] = {}
        # (hops, amount) -> hop amounts. Attack strategies re-price the
        # same route shape with the same amount on every attempt, so the
        # fee recursion memoises; bounded so a continuous honest-amount
        # distribution cannot grow it without limit.
        self._hop_amounts_cache: Dict[Tuple[int, float], Tuple[float, ...]] = {}
        # Running sum of in-flight locked amounts, maintained incrementally
        # so locked_capital() is O(1) under jamming-scale in-flight sets.
        # The batched engine's router mirrors these updates operation for
        # operation, keeping the two backends' metrics bit-identical.
        self._locked_totals: Dict[int, float] = {}
        self._locked_total = 0.0

    # -- helpers -------------------------------------------------------------

    def hop_amounts(self, hops: int, amount: float) -> List[float]:
        """Per-hop amounts (sender side first) for delivering ``amount``.

        Public so extensions (e.g. attack strategies sizing their capital
        commitments) can price a route the same way ``lock`` will.
        """
        return list(self._hop_amounts(hops, amount))

    def _hop_amounts(self, hops: int, amount: float) -> Tuple[float, ...]:
        cached = self._hop_amounts_cache.get((hops, amount))
        if cached is not None:
            return cached
        amounts = [amount]
        for _ in range(hops - 1):
            amounts.insert(0, amounts[0] + self.fee(amounts[0]))
        if len(self._hop_amounts_cache) >= 4096:
            self._hop_amounts_cache.clear()
        result = tuple(amounts)
        self._hop_amounts_cache[(hops, amount)] = result
        return result

    def _pick_channel(
        self, src: Hashable, dst: Hashable, amount: float
    ) -> Tuple[Optional[Channel], str]:
        """Best funded channel with a free slot, plus the failure reason.

        Returns ``(channel, "")`` on success; ``(None, "no-balance")`` when
        no channel can fund the hop; ``(None, "no-slots")`` when at least
        one channel could fund it but its HTLC slots are exhausted.
        """
        best: Optional[Channel] = None
        funded = False
        for channel in self.graph.channels_between(src, dst):
            if channel.balance(src) < amount:
                continue
            funded = True
            if not channel.has_free_htlc_slot(src):
                continue
            if best is None or channel.balance(src) > best.balance(src):
                best = channel
        if best is not None:
            return best, ""
        return None, "no-slots" if funded else "no-balance"

    # -- the protocol -----------------------------------------------------------

    def lock(self, path: Sequence[Hashable], amount: float) -> HtlcPayment:
        """Phase 1: reserve funds along ``path`` for ``amount``.

        Walks sender -> receiver placing one HTLC per hop. If any hop
        lacks balance, all earlier reservations are unwound and the
        payment is returned in the FAILED state.
        """
        if len(path) < 2:
            raise RoutingError("path needs at least one hop")
        if amount <= 0:
            raise HtlcError(f"amount must be > 0, got {amount}")
        hops = len(path) - 1
        hop_amounts = self._hop_amounts(hops, amount)
        payment = HtlcPayment(
            payment_id=next(_payment_ids),
            path=tuple(path),
            amount=amount,
        )
        expiry = self.base_expiry + self.expiry_delta * (hops - 1)
        for (src, dst), hop_amount in zip(zip(path, path[1:]), hop_amounts):
            channel, reason = self._pick_channel(src, dst, hop_amount)
            if channel is None:
                self._unwind(payment)
                payment.state = HtlcState.FAILED
                payment.failure_reason = reason
                return payment
            # reserve: the hop amount leaves the sender's spendable balance
            # into escrow; settlement decides whether it lands on the other
            # side (settle) or returns (fail/expire). The HTLC also occupies
            # one of the direction's slots until resolution.
            channel.withdraw(src, hop_amount)
            channel.open_htlc(src)
            if self.policy.has_upfront:
                # The upfront side is unconditional: a hop that was
                # actually offered pays its receiver even if a later hop
                # fails, and the unwind never refunds it. The charge is
                # ledger-only (no channel balance moves), so liquidity
                # and slot dynamics are independent of the upfront rate.
                payment.upfront_fees_per_node[dst] = (
                    payment.upfront_fees_per_node.get(dst, 0.0)
                    + self.policy.upfront(hop_amount)
                )
            payment.hops.append(
                Htlc(channel=channel, sender=src, amount=hop_amount,
                     expiry=expiry)
            )
            expiry -= self.expiry_delta
        self._in_flight[payment.payment_id] = payment
        locked = payment.total_locked
        self._locked_totals[payment.payment_id] = locked
        self._locked_total += locked
        return payment

    def settle(self, payment: HtlcPayment) -> None:
        """Phase 2a: the receiver reveals the preimage; funds finalise.

        Each hop's reserved amount moves to the downstream party; the
        difference between a hop's inbound and outbound amounts stays with
        the intermediary as its fee.
        """
        self._require_pending(payment)
        for htlc in payment.hops:
            receiver = htlc.channel.other(htlc.sender)
            htlc.channel.deposit(receiver, htlc.amount)
            htlc.channel.close_htlc(htlc.sender)
        amounts = [h.amount for h in payment.hops]
        for node, inbound, outbound in zip(
            payment.path[1:-1], amounts, amounts[1:]
        ):
            payment.fees_per_node[node] = (
                payment.fees_per_node.get(node, 0.0) + inbound - outbound
            )
        payment.state = HtlcState.SETTLED
        self._drop_in_flight(payment)

    def fail(self, payment: HtlcPayment) -> None:
        """Phase 2b: unwind every reservation; balances fully restored."""
        self._require_pending(payment)
        self._unwind(payment)
        payment.state = HtlcState.FAILED
        self._drop_in_flight(payment)

    def expire(self, payment: HtlcPayment, height: int) -> bool:
        """Cancel a pending payment whose first hop has timed out.

        Returns True when the payment was expired (height past the first
        hop's expiry), False when it is still live.
        """
        self._require_pending(payment)
        if not payment.hops or height < payment.hops[0].expiry:
            return False
        self.fail(payment)
        return True

    def pay(self, path: Sequence[Hashable], amount: float) -> HtlcPayment:
        """Lock and immediately settle (the happy path) or fail."""
        payment = self.lock(path, amount)
        if payment.state is HtlcState.PENDING:
            self.settle(payment)
        return payment

    # -- internals ---------------------------------------------------------------

    def _unwind(self, payment: HtlcPayment) -> None:
        for htlc in reversed(payment.hops):
            htlc.channel.deposit(htlc.sender, htlc.amount)
            htlc.channel.close_htlc(htlc.sender)
        payment.hops.clear()

    def _require_pending(self, payment: HtlcPayment) -> None:
        if payment.state is not HtlcState.PENDING:
            raise HtlcError(
                f"payment {payment.payment_id} is {payment.state.value}, "
                "not pending"
            )

    def _drop_in_flight(self, payment: HtlcPayment) -> None:
        if self._in_flight.pop(payment.payment_id, None) is None:
            return
        self._locked_total -= self._locked_totals.pop(payment.payment_id, 0.0)
        if not self._in_flight:
            # Re-anchor: with nothing in flight the total is exactly zero;
            # shed any rounding the incremental +/- accumulated.
            self._locked_total = 0.0

    @property
    def in_flight(self) -> Tuple[HtlcPayment, ...]:
        return tuple(self._in_flight.values())

    def locked_capital(self) -> float:
        """Total coins currently reserved by pending payments."""
        return self._locked_total
