"""The reduced subgraph ``G'`` of Section II-B.

For a transaction of size ``x``, only directed edges whose balance is at
least ``x`` can forward it. All routing and rate estimation for size-``x``
transactions therefore operates on the *reduced subgraph*: the directed
view of the channel graph with under-capacitated edges removed.
"""

from __future__ import annotations

from typing import Hashable, List, Tuple

import networkx as nx

from .graph import ChannelGraph

__all__ = ["reduced_digraph", "feasible_pairs", "infeasible_edges"]


def reduced_digraph(graph: ChannelGraph, amount: float) -> nx.DiGraph:
    """Directed view keeping only edges that can forward ``amount``.

    Identical to ``graph.to_directed(min_balance=amount)``; named entry
    point so call sites read like the paper.
    """
    return graph.to_directed(min_balance=amount)


def infeasible_edges(
    graph: ChannelGraph, amount: float
) -> List[Tuple[Hashable, Hashable, float]]:
    """Directed edges (aggregated per direction) that cannot carry ``amount``.

    Returns triples ``(src, dst, balance)`` sorted for deterministic output.
    """
    full = graph.to_directed()
    out = [
        (src, dst, data["balance"])
        for src, dst, data in full.edges(data=True)
        if data["balance"] < amount
    ]
    return sorted(out, key=lambda t: (str(t[0]), str(t[1])))


def feasible_pairs(graph: ChannelGraph, amount: float) -> int:
    """Number of ordered node pairs that can route ``amount``.

    A coarse liquidity metric: counts ``(s, r)`` with ``s != r`` such that a
    directed path of edges with balance >= ``amount`` exists from ``s`` to
    ``r`` in the reduced subgraph.
    """
    reduced = reduced_digraph(graph, amount)
    count = 0
    for source in reduced.nodes:
        reachable = nx.descendants(reduced, source)
        count += len(reachable)
    return count
