"""The reduced subgraph ``G'`` of Section II-B.

For a transaction of size ``x``, only directed edges whose balance is at
least ``x`` can forward it. All routing and rate estimation for size-``x``
transactions therefore operates on the *reduced subgraph*: the directed
view of the channel graph with under-capacitated edges removed.

The canonical form of ``G'`` is now the immutable CSR snapshot
:func:`reduced_view`; :func:`reduced_digraph` keeps returning the
equivalent networkx graph for callers that still want dict-of-dict form.
"""

from __future__ import annotations

from typing import Hashable, List, Tuple

import networkx as nx
import numpy as np

from .graph import ChannelGraph
from .views import GraphView, bfs_distances

__all__ = [
    "reduced_view",
    "reduced_digraph",
    "feasible_pairs",
    "infeasible_edges",
]


def reduced_view(graph: ChannelGraph, amount: float) -> GraphView:
    """CSR snapshot keeping only directed entries able to forward ``amount``.

    Identical to ``graph.view(directed=True, reduced=amount)``; named entry
    point so call sites read like the paper.
    """
    return graph.view(directed=True, reduced=amount)


def reduced_digraph(graph: ChannelGraph, amount: float) -> nx.DiGraph:
    """``G'`` materialised as a networkx digraph (legacy dict form)."""
    materialised = reduced_view(graph, amount).to_networkx()
    if amount > 0.0:
        # Historically a fresh graph per call that callers could mutate
        # freely; don't hand out the view's shared cache.
        return materialised.copy()
    return materialised


def infeasible_edges(
    graph: ChannelGraph, amount: float
) -> List[Tuple[Hashable, Hashable, float]]:
    """Directed edges (aggregated per direction) that cannot carry ``amount``.

    Returns triples ``(src, dst, balance)`` sorted for deterministic output.
    """
    full = graph.view(directed=True)
    rows = full.entry_rows()
    thin = np.nonzero(full.balances < amount)[0]
    out = [
        (full.nodes[rows[pos]], full.nodes[full.indices[pos]],
         float(full.balances[pos]))
        for pos in thin
    ]
    return sorted(out, key=lambda t: (str(t[0]), str(t[1])))


def feasible_pairs(graph: ChannelGraph, amount: float) -> int:
    """Number of ordered node pairs that can route ``amount``.

    A coarse liquidity metric: counts ``(s, r)`` with ``s != r`` such that a
    directed path of edges with balance >= ``amount`` exists from ``s`` to
    ``r`` in the reduced subgraph. One vectorised BFS per source.
    """
    reduced = reduced_view(graph, amount)
    count = 0
    for source in range(reduced.num_nodes):
        dist = bfs_distances(reduced, source)
        count += int(np.count_nonzero(dist > 0))
    return count
