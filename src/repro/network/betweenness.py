"""Pair-weighted betweenness: the workhorse behind Eq. 2 and Eq. 3.

The paper estimates the rate at which a directed edge ``e`` carries
transactions as

    p_e = sum over ordered pairs (s, r), s != r, m(s,r) > 0 of
          m_e(s, r) / m(s, r) * p_trans(s, r)                     (Eq. 2)

where ``m_e(s, r)`` counts shortest ``s -> r`` paths through ``e`` and
``m(s, r)`` counts all shortest ``s -> r`` paths. The expected routing
revenue of a node ``u`` (Eq. 3 / Section IV assumption 1) has the same
shape with node-through-traffic ``m_u(s, r)``, restricted to ``u`` being an
*intermediary* (``u != s, r``).

Plain ``networkx`` betweenness weights every pair equally, so we implement:

* :func:`pair_weighted_betweenness` — a generalisation of Brandes'
  accumulation in which the dependency seeded at each target ``r`` is an
  arbitrary weight ``w(s, r)`` rather than 1. One BFS per source, i.e.
  ``O(n * m)`` for unweighted graphs — the paper's "efficient O(n^2)
  estimation" for sparse graphs.
* :func:`pair_weighted_betweenness_exact` — literal enumeration of all
  shortest paths per pair. Exponentially slower; used as the ground-truth
  cross-check in tests and bench E11.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Hashable, Iterable, Optional, Tuple

import networkx as nx

__all__ = [
    "BetweennessResult",
    "pair_weighted_betweenness",
    "pair_weighted_betweenness_exact",
    "uniform_pair_weight",
]

PairWeight = Callable[[Hashable, Hashable], float]
Edge = Tuple[Hashable, Hashable]


def uniform_pair_weight(_s: Hashable, _r: Hashable) -> float:
    """Weight function that reduces everything to classic betweenness."""
    return 1.0


class BetweennessResult:
    """Node and edge pair-weighted betweenness of one graph.

    Attributes:
        node: ``node -> sum over pairs (s, r) with s, r != node of
        m_node(s,r)/m(s,r) * w(s, r)`` (intermediary traffic through node).
        edge: ``(src, dst) -> p_e`` as in Eq. 2 (endpoint hops included).
    """

    __slots__ = ("node", "edge")

    def __init__(self, node: Dict[Hashable, float], edge: Dict[Edge, float]) -> None:
        self.node = node
        self.edge = edge

    def edge_value(self, src: Hashable, dst: Hashable) -> float:
        return self.edge.get((src, dst), 0.0)

    def node_value(self, node: Hashable) -> float:
        return self.node.get(node, 0.0)


def _bfs_shortest_paths(
    graph: nx.DiGraph, source: Hashable
) -> Tuple[list, Dict[Hashable, list], Dict[Hashable, float], Dict[Hashable, int]]:
    """Single-source BFS returning Brandes' bookkeeping.

    Returns ``(order, predecessors, sigma, dist)`` where ``order`` lists
    nodes in non-decreasing distance, ``sigma`` counts shortest paths.
    """
    sigma: Dict[Hashable, float] = {source: 1.0}
    dist: Dict[Hashable, int] = {source: 0}
    preds: Dict[Hashable, list] = {source: []}
    order = [source]
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for w in graph.successors(v):
            if w not in dist:
                dist[w] = dist[v] + 1
                sigma[w] = 0.0
                preds[w] = []
                order.append(w)
                queue.append(w)
            if dist[w] == dist[v] + 1:
                sigma[w] += sigma[v]
                preds[w].append(v)
    return order, preds, sigma, dist


def pair_weighted_betweenness(
    graph: nx.DiGraph,
    pair_weight: PairWeight = uniform_pair_weight,
    sources: Optional[Iterable[Hashable]] = None,
) -> BetweennessResult:
    """Brandes' algorithm with per-pair dependency weights.

    Args:
        graph: directed graph; shortest paths are hop counts.
        pair_weight: ``w(s, r)`` — the weight each ordered pair contributes
            (e.g. ``N_s * p_trans(s, r)`` for transaction rates).
        sources: restrict the outer loop to these sources (defaults to all
            nodes). Restricting is how callers compute "traffic sent by a
            single node" cheaply.

    Returns:
        :class:`BetweennessResult` with node (intermediary-only) and edge
        accumulations.
    """
    node_acc: Dict[Hashable, float] = {v: 0.0 for v in graph.nodes}
    edge_acc: Dict[Edge, float] = {}
    if sources is None:
        sources = list(graph.nodes)
    for s in sources:
        if s not in graph:
            continue
        order, preds, sigma, _dist = _bfs_shortest_paths(graph, s)
        # Brandes' accumulation, with the classic "+1" per reached target
        # replaced by "+w(s, target)".
        delta: Dict[Hashable, float] = {v: 0.0 for v in order}
        for w in reversed(order):
            if w == s:
                continue
            coeff = (pair_weight(s, w) + delta[w]) / sigma[w]
            for v in preds[w]:
                contribution = sigma[v] * coeff
                if contribution != 0.0:
                    edge_acc[(v, w)] = edge_acc.get((v, w), 0.0) + contribution
                    delta[v] += contribution
        for v in order:
            if v != s:
                node_acc[v] += delta[v]
    return BetweennessResult(node_acc, edge_acc)


def pair_weighted_betweenness_exact(
    graph: nx.DiGraph,
    pair_weight: PairWeight = uniform_pair_weight,
) -> BetweennessResult:
    """Ground-truth Eq. 2 by explicit shortest-path enumeration.

    Enumerates every shortest path of every ordered pair and accumulates
    fractional traffic. Exponential in the worst case; only for small
    graphs (tests, cross-validation benches).
    """
    node_acc: Dict[Hashable, float] = {v: 0.0 for v in graph.nodes}
    edge_acc: Dict[Edge, float] = {}
    for s in graph.nodes:
        for r in graph.nodes:
            if s == r:
                continue
            try:
                paths = list(nx.all_shortest_paths(graph, s, r))
            except nx.NetworkXNoPath:
                continue
            weight = pair_weight(s, r)
            if weight == 0.0 or not paths:
                continue
            share = weight / len(paths)
            for path in paths:
                for v in path[1:-1]:
                    node_acc[v] += share
                for src, dst in zip(path, path[1:]):
                    edge_acc[(src, dst)] = edge_acc.get((src, dst), 0.0) + share
    return BetweennessResult(node_acc, edge_acc)
