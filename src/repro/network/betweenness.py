"""Pair-weighted betweenness: the workhorse behind Eq. 2 and Eq. 3.

The paper estimates the rate at which a directed edge ``e`` carries
transactions as

    p_e = sum over ordered pairs (s, r), s != r, m(s,r) > 0 of
          m_e(s, r) / m(s, r) * p_trans(s, r)                     (Eq. 2)

where ``m_e(s, r)`` counts shortest ``s -> r`` paths through ``e`` and
``m(s, r)`` counts all shortest ``s -> r`` paths. The expected routing
revenue of a node ``u`` (Eq. 3 / Section IV assumption 1) has the same
shape with node-through-traffic ``m_u(s, r)``, restricted to ``u`` being an
*intermediary* (``u != s, r``).

Plain ``networkx`` betweenness weights every pair equally, so we implement:

* :func:`pair_weighted_betweenness` — a generalisation of Brandes'
  accumulation in which the dependency seeded at each target ``r`` is an
  arbitrary weight ``w(s, r)`` rather than 1. One BFS per source, i.e.
  ``O(n * m)`` for unweighted graphs — the paper's "efficient O(n^2)
  estimation" for sparse graphs.
* :func:`pair_weighted_betweenness_exact` — literal enumeration of all
  shortest paths per pair. Exponentially slower; used as the ground-truth
  cross-check in tests and bench E11.

``pair_weighted_betweenness`` accepts either a legacy ``nx.DiGraph`` (the
original dict-of-dict Brandes pass) or a :class:`~repro.network.views.GraphView`
CSR snapshot, in which case the whole accumulation — BFS, sigma counting,
and the backward dependency sweep — runs as vectorised numpy passes over
the view's arrays (:func:`betweenness_arrays`). The CSR path is the
hot-loop backend behind Eq. 2/Eq. 3 everywhere in the library.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Tuple

import networkx as nx
import numpy as np

from .views import SMALL_GRAPH_NODES, GraphView, bfs_shortest_path_tree

__all__ = [
    "BetweennessArrays",
    "BetweennessResult",
    "betweenness_arrays",
    "pair_weighted_betweenness",
    "pair_weighted_betweenness_exact",
    "uniform_pair_weight",
]

PairWeight = Callable[[Hashable, Hashable], float]
Edge = Tuple[Hashable, Hashable]


def uniform_pair_weight(_s: Hashable, _r: Hashable) -> float:
    """Weight function that reduces everything to classic betweenness."""
    return 1.0


class BetweennessResult:
    """Node and edge pair-weighted betweenness of one graph.

    Attributes:
        node: ``node -> sum over pairs (s, r) with s, r != node of
        m_node(s,r)/m(s,r) * w(s, r)`` (intermediary traffic through node).
        edge: ``(src, dst) -> p_e`` as in Eq. 2 (endpoint hops included).
    """

    __slots__ = ("node", "edge")

    def __init__(self, node: Dict[Hashable, float], edge: Dict[Edge, float]) -> None:
        self.node = node
        self.edge = edge

    def edge_value(self, src: Hashable, dst: Hashable) -> float:
        return self.edge.get((src, dst), 0.0)

    def node_value(self, node: Hashable) -> float:
        return self.node.get(node, 0.0)


class BetweennessArrays:
    """Array-form pair-weighted betweenness of one :class:`GraphView`.

    Attributes:
        view: the CSR snapshot the accumulation ran on.
        node_values: ``float64[n]`` intermediary traffic per node index.
        edge_values: ``float64[m]`` Eq. 2 accumulation per CSR entry.
    """

    __slots__ = ("view", "node_values", "edge_values")

    def __init__(
        self, view: GraphView, node_values: np.ndarray, edge_values: np.ndarray
    ) -> None:
        self.view = view
        self.node_values = node_values
        self.edge_values = edge_values

    def to_result(self) -> "BetweennessResult":
        """Translate the arrays into the dict-keyed legacy result shape."""
        nodes = self.view.nodes
        node = {label: float(v) for label, v in zip(nodes, self.node_values)}
        rows = self.view.entry_rows()
        edge: Dict[Edge, float] = {}
        nonzero = np.nonzero(self.edge_values)[0]
        for pos in nonzero:
            edge[(nodes[rows[pos]], nodes[self.view.indices[pos]])] = float(
                self.edge_values[pos]
            )
        return BetweennessResult(node, edge)


def _betweenness_arrays_small(
    view: GraphView,
    pair_weight: PairWeight,
    source_indices,
    uniform: bool,
) -> BetweennessArrays:
    """Classic per-node Brandes over cached adjacency lists (small graphs)."""
    n = view.num_nodes
    adj = view.adjacency_lists()
    nodes = view.nodes
    node_buf = [0.0] * n
    edge_buf = [0.0] * view.num_entries
    for s in source_indices:
        dist = [-1] * n
        sigma = [0.0] * n
        preds: List[list] = [[] for _ in range(n)]
        order = [s]
        dist[s] = 0
        sigma[s] = 1.0
        queue = deque([s])
        while queue:
            v = queue.popleft()
            next_dist = dist[v] + 1
            sigma_v = sigma[v]
            for w, entry in adj[v]:
                if dist[w] < 0:
                    dist[w] = next_dist
                    order.append(w)
                    queue.append(w)
                if dist[w] == next_dist:
                    sigma[w] += sigma_v
                    preds[w].append((v, entry))
        delta = [0.0] * n
        s_label = nodes[s]
        for w in reversed(order):
            if w == s:
                continue
            weight = 1.0 if uniform else pair_weight(s_label, nodes[w])
            coeff = (weight + delta[w]) / sigma[w]
            for v, entry in preds[w]:
                contribution = sigma[v] * coeff
                if contribution != 0.0:
                    edge_buf[entry] += contribution
                    delta[v] += contribution
        for v in order:
            if v != s:
                node_buf[v] += delta[v]
    return BetweennessArrays(
        view,
        np.asarray(node_buf, dtype=np.float64),
        np.asarray(edge_buf, dtype=np.float64),
    )


def betweenness_arrays(
    view: GraphView,
    pair_weight: PairWeight = uniform_pair_weight,
    sources: Optional[Iterable[Hashable]] = None,
) -> BetweennessArrays:
    """Brandes' accumulation with per-pair weights over CSR arrays.

    The per-source pass is Brandes' backward sweep as numpy level-at-a-time
    dependency vectors: for each BFS level (deepest first), the coefficient
    ``(w(s, t) + delta[t]) / sigma[t]`` is computed for every tree edge at
    once and scattered into the per-entry and per-node accumulators. Small
    graphs take an equivalent per-node python pass instead, where the
    vectorisation overhead would dominate.
    """
    n = view.num_nodes
    if sources is None:
        source_indices = range(n)
    else:
        source_indices = [
            view.node_index[s] for s in sources if s in view.node_index
        ]
    uniform = pair_weight is uniform_pair_weight
    if n < SMALL_GRAPH_NODES:
        return _betweenness_arrays_small(
            view, pair_weight, source_indices, uniform
        )
    node_acc = np.zeros(n, dtype=np.float64)
    edge_acc = np.zeros(view.num_entries, dtype=np.float64)
    delta = np.zeros(n, dtype=np.float64)
    weights = np.ones(n, dtype=np.float64) if uniform else np.zeros(n)
    for s in source_indices:
        tree = bfs_shortest_path_tree(view, s)
        if not tree.levels:
            continue
        if not uniform:
            s_label = view.nodes[s]
            # Weights are only consumed at reached targets; unreached
            # entries may stay zero.
            weights[:] = 0.0
            for t in np.nonzero(tree.dist >= 0)[0]:
                if t != s:
                    weights[t] = pair_weight(s_label, view.nodes[t])
        delta[:] = 0.0
        sigma = tree.sigma
        for entries, srcs, targets in reversed(tree.levels):
            contrib = (
                sigma[srcs] * (weights[targets] + delta[targets]) / sigma[targets]
            )
            # A CSR entry is a tree edge of exactly one level and appears
            # once in it, so plain fancy-index += is a safe scatter here;
            # sources repeat, so delta needs a true scatter-add.
            edge_acc[entries] += contrib
            delta += np.bincount(srcs, weights=contrib, minlength=n)
        delta[s] = 0.0
        node_acc += delta
    return BetweennessArrays(view, node_acc, edge_acc)


def _bfs_shortest_paths(
    graph: nx.DiGraph, source: Hashable
) -> Tuple[list, Dict[Hashable, list], Dict[Hashable, float], Dict[Hashable, int]]:
    """Single-source BFS returning Brandes' bookkeeping.

    Returns ``(order, predecessors, sigma, dist)`` where ``order`` lists
    nodes in non-decreasing distance, ``sigma`` counts shortest paths.
    """
    sigma: Dict[Hashable, float] = {source: 1.0}
    dist: Dict[Hashable, int] = {source: 0}
    preds: Dict[Hashable, list] = {source: []}
    order = [source]
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for w in graph.successors(v):
            if w not in dist:
                dist[w] = dist[v] + 1
                sigma[w] = 0.0
                preds[w] = []
                order.append(w)
                queue.append(w)
            if dist[w] == dist[v] + 1:
                sigma[w] += sigma[v]
                preds[w].append(v)
    return order, preds, sigma, dist


def pair_weighted_betweenness(
    graph: nx.DiGraph,
    pair_weight: PairWeight = uniform_pair_weight,
    sources: Optional[Iterable[Hashable]] = None,
) -> BetweennessResult:
    """Brandes' algorithm with per-pair dependency weights.

    Args:
        graph: a :class:`~repro.network.views.GraphView` CSR snapshot (the
            fast vectorised path) or a legacy directed networkx graph;
            shortest paths are hop counts either way.
        pair_weight: ``w(s, r)`` — the weight each ordered pair contributes
            (e.g. ``N_s * p_trans(s, r)`` for transaction rates).
        sources: restrict the outer loop to these sources (defaults to all
            nodes). Restricting is how callers compute "traffic sent by a
            single node" cheaply.

    Returns:
        :class:`BetweennessResult` with node (intermediary-only) and edge
        accumulations.
    """
    if isinstance(graph, GraphView):
        return betweenness_arrays(graph, pair_weight, sources=sources).to_result()
    node_acc: Dict[Hashable, float] = {v: 0.0 for v in graph.nodes}
    edge_acc: Dict[Edge, float] = {}
    if sources is None:
        sources = list(graph.nodes)
    for s in sources:
        if s not in graph:
            continue
        order, preds, sigma, _dist = _bfs_shortest_paths(graph, s)
        # Brandes' accumulation, with the classic "+1" per reached target
        # replaced by "+w(s, target)".
        delta: Dict[Hashable, float] = {v: 0.0 for v in order}
        for w in reversed(order):
            if w == s:
                continue
            coeff = (pair_weight(s, w) + delta[w]) / sigma[w]
            for v in preds[w]:
                contribution = sigma[v] * coeff
                if contribution != 0.0:
                    edge_acc[(v, w)] = edge_acc.get((v, w), 0.0) + contribution
                    delta[v] += contribution
        for v in order:
            if v != s:
                node_acc[v] += delta[v]
    return BetweennessResult(node_acc, edge_acc)


def pair_weighted_betweenness_exact(
    graph: nx.DiGraph,
    pair_weight: PairWeight = uniform_pair_weight,
) -> BetweennessResult:
    """Ground-truth Eq. 2 by explicit shortest-path enumeration.

    Enumerates every shortest path of every ordered pair and accumulates
    fractional traffic. Exponential in the worst case; only for small
    graphs (tests, cross-validation benches).
    """
    if isinstance(graph, GraphView):
        graph = graph.to_networkx()
    node_acc: Dict[Hashable, float] = {v: 0.0 for v in graph.nodes}
    edge_acc: Dict[Edge, float] = {}
    for s in graph.nodes:
        for r in graph.nodes:
            if s == r:
                continue
            try:
                paths = list(nx.all_shortest_paths(graph, s, r))
            except nx.NetworkXNoPath:
                continue
            weight = pair_weight(s, r)
            if weight == 0.0 or not paths:
                continue
            share = weight / len(paths)
            for path in paths:
                for v in path[1:-1]:
                    node_acc[v] += share
                for src, dst in zip(path, path[1:]):
                    edge_acc[(src, dst)] = edge_acc.get((src, dst), 0.0) + share
    return BetweennessResult(node_acc, edge_acc)
