"""PCN substrate: channels, the channel graph, views, fees, routing,
betweenness."""

from .betweenness import (
    BetweennessArrays,
    BetweennessResult,
    betweenness_arrays,
    pair_weighted_betweenness,
    pair_weighted_betweenness_exact,
    uniform_pair_weight,
)
from .views import (
    GraphView,
    bfs_distances,
    bfs_shortest_path_tree,
    shortest_path_indices,
)
from .channel import Channel, PaymentRecord
from .htlc import Htlc, HtlcError, HtlcPayment, HtlcRouter, HtlcState
from .lifecycle import (
    ChannelLifecycle,
    CloseMode,
    LifecycleCosts,
    sample_close_mode,
)
from .mpp import MppResult, MppRouter
from .rebalancing import (
    ChannelImbalance,
    auto_rebalance,
    channel_imbalances,
    execute_rebalance,
    find_rebalancing_cycle,
)
from .fees import (
    ConstantFee,
    FeeFunction,
    LinearFee,
    PiecewiseLinearFee,
    average_fee,
)
from .graph import ChannelGraph
from .reduced import feasible_pairs, infeasible_edges, reduced_digraph, reduced_view
from .routing import PaymentOutcome, Route, Router

__all__ = [
    "BetweennessArrays",
    "BetweennessResult",
    "GraphView",
    "betweenness_arrays",
    "bfs_distances",
    "bfs_shortest_path_tree",
    "shortest_path_indices",
    "reduced_view",
    "Channel",
    "ChannelGraph",
    "ChannelImbalance",
    "ChannelLifecycle",
    "CloseMode",
    "ConstantFee",
    "LifecycleCosts",
    "sample_close_mode",
    "FeeFunction",
    "Htlc",
    "HtlcError",
    "HtlcPayment",
    "HtlcRouter",
    "HtlcState",
    "LinearFee",
    "MppResult",
    "MppRouter",
    "PaymentOutcome",
    "PaymentRecord",
    "PiecewiseLinearFee",
    "Route",
    "Router",
    "auto_rebalance",
    "average_fee",
    "channel_imbalances",
    "execute_rebalance",
    "find_rebalancing_cycle",
    "feasible_pairs",
    "infeasible_edges",
    "pair_weighted_betweenness",
    "pair_weighted_betweenness_exact",
    "reduced_digraph",
    "uniform_pair_weight",
]
