"""Off-chain rebalancing: replenishing depleted channels via cycles.

The paper motivates stability analysis partly by its implications for
"finding off-chain rebalancing cycles for existing users to replenish
depleted channels" (Section IV, citing Hide & Seek [30]). This module
implements the primitive: a node whose channel toward some neighbor is
depleted routes a *circular self-payment* — out through a channel where it
holds surplus, around the network, and back in through the depleted
channel — shifting its own liquidity without touching anyone's net worth.

Executed atomically over the HTLC layer, so a failed cycle leaves every
balance untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional

from ..errors import NodeNotFound, RoutingError
from .graph import ChannelGraph
from .htlc import HtlcRouter, HtlcState
from .views import shortest_path_indices

__all__ = [
    "ChannelImbalance",
    "channel_imbalances",
    "find_rebalancing_cycle",
    "execute_rebalance",
    "auto_rebalance",
]


@dataclass(frozen=True)
class ChannelImbalance:
    """How far a channel's split deviates from balanced, from one side."""

    channel_id: str
    node: Hashable
    counterparty: Hashable
    local_balance: float
    capacity: float

    @property
    def local_ratio(self) -> float:
        return self.local_balance / self.capacity if self.capacity else 0.0

    @property
    def skew(self) -> float:
        """Signed deviation from 0.5 (negative = depleted on our side)."""
        return self.local_ratio - 0.5


def channel_imbalances(
    graph: ChannelGraph, node: Hashable
) -> List[ChannelImbalance]:
    """Imbalances of every channel of ``node``, most depleted first."""
    if node not in graph:
        raise NodeNotFound(node)
    out = [
        ChannelImbalance(
            channel_id=channel.channel_id,
            node=node,
            counterparty=channel.other(node),
            local_balance=channel.balance(node),
            capacity=channel.capacity,
        )
        for channel in graph.channels_of(node)
    ]
    out.sort(key=lambda imbalance: imbalance.skew)
    return out


def find_rebalancing_cycle(
    graph: ChannelGraph,
    node: Hashable,
    amount: float,
    in_neighbor: Optional[Hashable] = None,
    out_neighbor: Optional[Hashable] = None,
) -> List[Hashable]:
    """A cycle ``node -> out -> ... -> in -> node`` able to carry ``amount``.

    ``in_neighbor`` is the counterparty of the *depleted* channel (funds
    will flow back to ``node`` through it); ``out_neighbor`` the channel
    with surplus. When omitted, the most skewed channels are used.

    Raises:
        RoutingError: when no feasible cycle exists.
    """
    if amount <= 0:
        raise RoutingError("rebalance amount must be > 0")
    imbalances = channel_imbalances(graph, node)
    if len(imbalances) < 2:
        raise RoutingError("rebalancing needs at least two channels")
    if in_neighbor is None:
        in_neighbor = imbalances[0].counterparty  # most depleted side
    if out_neighbor is None:
        candidates = [
            i for i in reversed(imbalances) if i.counterparty != in_neighbor
        ]
        if not candidates:
            raise RoutingError("no distinct surplus channel available")
        out_neighbor = candidates[0].counterparty
    if in_neighbor == out_neighbor:
        raise RoutingError("in and out neighbors must differ")

    reduced = graph.view(directed=True, reduced=amount)
    # middle path: out_neighbor -> in_neighbor, not through `node`
    middle_indices = None
    if out_neighbor in reduced and in_neighbor in reduced:
        middle_indices = shortest_path_indices(
            reduced,
            reduced.index_of(out_neighbor),
            reduced.index_of(in_neighbor),
            blocked=(reduced.index_of(node),) if node in reduced else (),
        )
    if middle_indices is None:
        raise RoutingError(
            f"no path {out_neighbor!r} -> {in_neighbor!r} carrying {amount}"
        )
    middle = [reduced.nodes[i] for i in middle_indices]
    cycle = [node] + middle + [node]
    # first hop feasibility (node -> out_neighbor) and last (in -> node)
    first_ok = any(
        c.balance(node) >= amount for c in graph.channels_between(node, out_neighbor)
    )
    last_ok = any(
        c.balance(in_neighbor) >= amount
        for c in graph.channels_between(in_neighbor, node)
    )
    if not first_ok or not last_ok:
        raise RoutingError("terminal hops lack balance for the cycle")
    return cycle


def execute_rebalance(
    graph: ChannelGraph,
    cycle: List[Hashable],
    amount: float,
    router: Optional[HtlcRouter] = None,
) -> bool:
    """Atomically push ``amount`` around ``cycle`` (HTLC semantics).

    Returns True on success; on failure all balances are unchanged.
    """
    if len(cycle) < 3 or cycle[0] != cycle[-1]:
        raise RoutingError("cycle must start and end at the same node")
    router = router if router is not None else HtlcRouter(graph)
    payment = router.pay(cycle, amount)
    return payment.state is HtlcState.SETTLED


def auto_rebalance(
    graph: ChannelGraph,
    node: Hashable,
    target_ratio: float = 0.35,
    max_cycles: int = 10,
) -> int:
    """Repeatedly rebalance ``node``'s most depleted channel.

    Moves half the deficit per cycle until every channel's local ratio is
    at least ``target_ratio`` or no feasible cycle remains.

    Returns the number of successful cycles.
    """
    if not 0 < target_ratio <= 0.5:
        raise RoutingError("target_ratio must be in (0, 0.5]")
    performed = 0
    for _ in range(max_cycles):
        imbalances = channel_imbalances(graph, node)
        worst = imbalances[0] if imbalances else None
        if worst is None or worst.local_ratio >= target_ratio:
            break
        deficit = (0.5 - worst.local_ratio) * worst.capacity
        amount = deficit / 2.0
        if amount <= 0:
            break
        try:
            cycle = find_rebalancing_cycle(
                graph, node, amount, in_neighbor=worst.counterparty
            )
        except RoutingError:
            break
        if not execute_rebalance(graph, cycle, amount):
            break
        performed += 1
    return performed
