"""Atomic multi-part payments (MPP) over the HTLC layer.

When no single path can carry a payment (the reduced subgraph ``G'`` of
Section II-B is disconnected at that amount), Lightning splits it into
parts routed over different paths and settles all parts against one
invoice — atomically. This module implements that: parts are *locked*
one by one over the currently-feasible shortest paths (each lock shrinks
residual capacity, so successive parts naturally diversify), and the
whole payment settles only if the full amount was locked; otherwise every
part unwinds.

This strengthens the paper's feasibility story: a channel's usefulness is
its contribution to *aggregate* sender-receiver capacity, not only to
single-path capacity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Tuple

import networkx as nx
import numpy as np

from ..errors import InvalidParameter, RoutingError
from .fees import FeeFunction
from .graph import ChannelGraph
from .htlc import HtlcPayment, HtlcRouter, HtlcState
from .views import bfs_shortest_path_tree

__all__ = ["MppResult", "MppRouter"]


@dataclass
class MppResult:
    """Outcome of one multi-part payment attempt."""

    success: bool
    amount: float
    parts: List[HtlcPayment] = field(default_factory=list)
    failure_reason: str = ""

    @property
    def num_parts(self) -> int:
        return len(self.parts)

    @property
    def delivered(self) -> float:
        if not self.success:
            return 0.0
        return self.amount

    def fees_per_node(self) -> dict:
        out: dict = {}
        for part in self.parts:
            for node, fee in part.fees_per_node.items():
                out[node] = out.get(node, 0.0) + fee
        return out


class MppRouter:
    """Split-and-settle payments over :class:`HtlcRouter`.

    Args:
        graph: the channel graph.
        fee: per-hop fee function shared by all parts.
        min_part: smallest part worth sending (avoids dust splits).
        max_parts: cap on the number of parts per payment.
    """

    def __init__(
        self,
        graph: ChannelGraph,
        fee: Optional[FeeFunction] = None,
        min_part: float = 1e-6,
        max_parts: int = 16,
    ) -> None:
        if min_part <= 0:
            raise InvalidParameter("min_part must be > 0")
        if max_parts < 1:
            raise InvalidParameter("max_parts must be >= 1")
        self.graph = graph
        self.htlc = HtlcRouter(graph, fee=fee)
        self.min_part = min_part
        self.max_parts = max_parts

    # -- capacity probing ------------------------------------------------------

    def _best_path(
        self, sender: Hashable, receiver: Hashable
    ) -> Optional[Tuple[List[Hashable], float]]:
        """Widest among the shortest currently-feasible paths.

        Hop distances first (the paper's routing model); among equal-length
        shortest paths the one with the largest bottleneck wins, so the
        splitter drains lanes evenly instead of nibbling a depleted one.
        A widest-path DP over the shortest-path DAG of the CSR view finds
        the exact optimum (the old implementation sampled at most 200
        enumerated paths).
        """
        view = self.graph.view(directed=True, reduced=self.min_part)
        if sender not in view or receiver not in view:
            return None
        s_idx = view.index_of(sender)
        r_idx = view.index_of(receiver)
        tree = bfs_shortest_path_tree(view, s_idx, target=r_idx)
        if tree.dist[r_idx] < 0:
            return None
        n = view.num_nodes
        bottleneck = np.full(n, -1.0)
        bottleneck[s_idx] = math.inf
        choice = np.full(n, -1, dtype=np.int64)
        for entries, srcs, targets in tree.levels:
            widths = np.minimum(bottleneck[srcs], view.balances[entries])
            for src, target, width in zip(srcs, targets, widths):
                if width > bottleneck[target]:
                    bottleneck[target] = width
                    choice[target] = src
        path_indices = [r_idx]
        while path_indices[-1] != s_idx:
            path_indices.append(int(choice[path_indices[-1]]))
        best_path = [view.nodes[i] for i in reversed(path_indices)]
        return best_path, float(bottleneck[r_idx])

    def _usable_amount(self, path: List[Hashable], bottleneck: float) -> float:
        """Largest part whose sender-side hop (part + fees) fits the
        bottleneck — a few fixed-point rounds on the fee recursion."""
        hops = len(path) - 1
        part = bottleneck
        for _ in range(6):
            fee_needed = self.htlc.hop_amounts(hops, part)[0] - part
            part = bottleneck - fee_needed
            if part <= 0:
                return 0.0
        return part

    def max_sendable_estimate(
        self, sender: Hashable, receiver: Hashable
    ) -> float:
        """Max-flow upper bound on what MPP could deliver (ignoring fees)."""
        digraph = self.graph.view(directed=True).to_networkx()
        if sender not in digraph or receiver not in digraph:
            return 0.0
        # networkx's preflow-push crashes on subnormal capacities (its
        # relabel step finds no admissible neighbor); such balances
        # cannot carry a payment anyway, so floor them to zero on a copy.
        tiny = [
            (u, v) for u, v, balance in digraph.edges(data="balance")
            if 0.0 < balance < 1e-12
        ]
        if tiny:
            digraph = digraph.copy()
            for u, v in tiny:
                digraph[u][v]["balance"] = 0.0
        value, _flows = nx.maximum_flow(
            digraph, sender, receiver, capacity="balance"
        )
        return float(value)

    # -- the payment --------------------------------------------------------------

    def pay(
        self, sender: Hashable, receiver: Hashable, amount: float
    ) -> MppResult:
        """Atomically deliver ``amount`` using up to ``max_parts`` parts.

        Greedy splitting: lock the largest feasible chunk of the remaining
        amount along the current shortest feasible path; repeat. If the
        remainder cannot be locked within the part budget, every locked
        part fails and nothing changes.
        """
        if sender == receiver:
            raise RoutingError("sender and receiver must differ")
        if amount <= 0:
            raise InvalidParameter(f"amount must be > 0, got {amount}")
        remaining = amount
        parts: List[HtlcPayment] = []
        failure = ""
        while remaining > 1e-12 and len(parts) < self.max_parts:
            probe = self._best_path(sender, receiver)
            if probe is None:
                failure = "no feasible path for the remainder"
                break
            path, bottleneck = probe
            usable = self._usable_amount(path, bottleneck)
            if usable < self.min_part:
                failure = "remaining feasible capacity is dust"
                break
            part_amount = min(remaining, usable)
            payment = self.htlc.lock(path, part_amount)
            shrink_attempts = 0
            while (
                payment.state is not HtlcState.PENDING
                and part_amount > self.min_part
                and shrink_attempts < 20
            ):
                part_amount *= 0.8  # fee headroom / stale-capacity backoff
                payment = self.htlc.lock(path, part_amount)
                shrink_attempts += 1
            if payment.state is not HtlcState.PENDING:
                failure = "could not lock a part on the chosen path"
                break
            parts.append(payment)
            remaining -= part_amount
        if remaining > 1e-9:
            for part in parts:
                self.htlc.fail(part)
            if not failure:
                failure = f"part budget exhausted with {remaining:g} undelivered"
            return MppResult(
                success=False, amount=amount, parts=[], failure_reason=failure
            )
        for part in parts:
            self.htlc.settle(part)
        return MppResult(success=True, amount=amount, parts=parts)
