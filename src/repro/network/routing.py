"""Capacity-aware shortest-path routing over a :class:`ChannelGraph`.

Implements the multi-hop payment flow of Section II-A: a payment of size
``x`` from ``s`` to ``r`` follows a shortest path in the reduced subgraph
(every directed edge on the path must hold balance >= forwarded amount),
intermediaries charge a per-hop fee, and on success every channel on the
path updates its balances atomically (the HTLC all-or-nothing guarantee —
footnote 1 of the paper).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import RoutingError
from .channel import Channel
from .fees import ConstantFee, FeeFunction
from .graph import ChannelGraph
from .views import SMALL_GRAPH_NODES, BfsTree, GraphView, bfs_shortest_path_tree

__all__ = [
    "PaymentOutcome",
    "PaymentRouteRng",
    "Route",
    "Router",
    "small_bfs_structure",
    "walk_csr",
    "walk_small",
]


class PaymentRouteRng:
    """A lazily-constructed RNG keyed on ``(base seed, payment index)``.

    Payments with a unique shortest path draw nothing, so the (relatively
    expensive) ``default_rng`` seeding only happens for payments that
    actually face a tie-break. Derivation from the pair rather than a
    shared stream makes each payment's draws independent of which other
    payments ran before it — the property that lets sharded and batched
    executions reproduce the event engine exactly.
    """

    __slots__ = ("_key", "_gen")

    def __init__(self, base: int, index: int) -> None:
        self._key = (base, index)
        self._gen: Optional[np.random.Generator] = None

    def _generator(self) -> np.random.Generator:
        if self._gen is None:
            self._gen = np.random.default_rng(self._key)
        return self._gen

    def random(self) -> float:
        return float(self._generator().random())

    def choice(self, candidates, p=None):
        return self._generator().choice(candidates, p=p)


def small_bfs_structure(
    adj: List[List[Tuple[int, int]]],
    n: int,
    source: int,
    target: Optional[int] = None,
) -> Tuple[List[int], List[float], List[List[int]]]:
    """Python BFS bookkeeping ``(dist, sigma, preds)`` for small graphs.

    With ``target`` given the walk stops once the target pops (its level
    is complete by then); with ``target=None`` the full structure is
    built, which is what per-source caching wants — both variants agree
    on every node at depth <= ``dist[target]``.
    """
    dist = [-1] * n
    sigma = [0.0] * n
    preds: List[List[int]] = [[] for _ in range(n)]
    dist[source] = 0
    sigma[source] = 1.0
    queue = deque([source])
    while queue:
        v = queue.popleft()
        if target is not None and v == target:
            break
        next_dist = dist[v] + 1
        for w, _entry in adj[v]:
            if dist[w] < 0:
                dist[w] = next_dist
                queue.append(w)
            if dist[w] == next_dist:
                sigma[w] += sigma[v]
                preds[w].append(v)
    return dist, sigma, preds


def walk_small(
    dist: List[int],
    sigma: List[float],
    preds: List[List[int]],
    source: int,
    target: int,
    path_selection: str,
    rng,
) -> Optional[List[int]]:
    """Backward predecessor walk over :func:`small_bfs_structure` output.

    Returns the path as node indices (source first), or ``None`` when the
    target is unreachable. ``"random"`` selection draws one uniform per
    multi-predecessor hop and walks the sigma prefix sums — uniform over
    all shortest paths (the Eq. 2 equal-split shares).
    """
    if dist[target] < 0:
        return None
    path = [target]
    current = target
    while current != source:
        options = preds[current]
        if path_selection == "random" and len(options) > 1:
            total = sum(sigma[v] for v in options)
            draw = float(rng.random()) * total
            chosen = options[-1]
            for v in options:
                draw -= sigma[v]
                if draw <= 0.0:
                    chosen = v
                    break
        else:
            chosen = options[0]
        path.append(chosen)
        current = chosen
    return path[::-1]


def walk_csr(
    view: GraphView,
    tree: BfsTree,
    source: int,
    target: int,
    path_selection: str,
    rng,
) -> Optional[List[int]]:
    """Backward predecessor walk over a CSR :class:`BfsTree`.

    The tree may be deeper than the target (a cached full-depth tree):
    ``dist``/``sigma`` at depths <= ``dist[target]`` are identical to an
    early-stopped tree, so the sampled path — and the RNG draws it
    consumes — match exactly.
    """
    if tree.dist[target] < 0:
        return None
    rev_indptr, rev_indices, _ = view.reverse_adjacency()
    path = [target]
    current = target
    while current != source:
        preds = rev_indices[rev_indptr[current]:rev_indptr[current + 1]]
        preds = preds[tree.dist[preds] == tree.dist[current] - 1]
        if path_selection == "random" and preds.size > 1:
            sigma = tree.sigma[preds]
            chosen = int(rng.choice(preds, p=sigma / sigma.sum()))
        else:
            chosen = int(preds[0])
        path.append(chosen)
        current = chosen
    return path[::-1]


@dataclass(frozen=True)
class Route:
    """A candidate payment path.

    Attributes:
        nodes: node sequence from sender to receiver inclusive.
        amount: payment size delivered to the receiver.
        fee: total routing fee paid by the sender to intermediaries.
    """

    nodes: Tuple[Hashable, ...]
    amount: float
    fee: float

    @property
    def hops(self) -> int:
        return len(self.nodes) - 1

    @property
    def intermediaries(self) -> Tuple[Hashable, ...]:
        return self.nodes[1:-1]


@dataclass
class PaymentOutcome:
    """Result of attempting one payment."""

    success: bool
    route: Optional[Route] = None
    failure_reason: str = ""
    fees_per_node: dict = field(default_factory=dict)


class Router:
    """Finds and executes payments on a channel graph.

    Args:
        graph: the network to route over.
        fee: global per-hop fee function ``F`` (defaults to zero fees,
            which matches the pure-topology studies of Section IV).
        fee_forwarding: if True (default), each intermediary must forward
            the downstream amount plus downstream fees, mirroring how
            Lightning onions accumulate fees toward the sender. If False,
            every hop forwards exactly ``amount`` (the paper's simplified
            accounting).
        path_selection: ``"first"`` always takes networkx's first shortest
            path; ``"random"`` samples uniformly among *all* shortest paths,
            which realises exactly the equal-split ``m_e(s,r)/m(s,r)``
            traffic shares of Eq. 2 (used by the simulator).
        seed: RNG seed for ``"random"`` selection.
    """

    def __init__(
        self,
        graph: ChannelGraph,
        fee: Optional[FeeFunction] = None,
        fee_forwarding: bool = True,
        path_selection: str = "first",
        seed: Optional[int] = None,
    ) -> None:
        if path_selection not in ("first", "random"):
            raise RoutingError(
                f"path_selection must be 'first' or 'random', got {path_selection!r}"
            )
        self.graph = graph
        self.fee = fee if fee is not None else ConstantFee(0.0)
        self.fee_forwarding = fee_forwarding
        self.path_selection = path_selection
        self._rng = np.random.default_rng(seed)

    # -- route discovery ------------------------------------------------------

    def find_route(
        self,
        sender: Hashable,
        receiver: Hashable,
        amount: float,
        view: Optional[GraphView] = None,
        rng=None,
    ) -> Route:
        """Shortest feasible route for ``amount`` in the reduced subgraph.

        Args:
            sender / receiver / amount: the payment intent.
            view: a pre-built reduced view for ``amount`` (the batched
                backend injects its masked snapshots here); defaults to
                ``graph.view(directed=True, reduced=amount)``.
            rng: tie-break RNG override (e.g. a per-payment
                :class:`PaymentRouteRng`); defaults to the router's
                sequential stream.

        Raises:
            RoutingError: when sender/receiver are absent or no directed
                path with sufficient balances exists.
        """
        if sender == receiver:
            raise RoutingError("sender and receiver must differ")
        reduced = (
            view if view is not None
            else self.graph.view(directed=True, reduced=amount)
        )
        if sender not in reduced or receiver not in reduced:
            raise RoutingError(f"unknown endpoint in route {sender!r}->{receiver!r}")
        nodes = self._select_path(reduced, sender, receiver, amount, rng=rng)
        hop_amounts = self._hop_amounts(len(nodes) - 1, amount)
        total_fee = hop_amounts[0] - amount
        return Route(tuple(nodes), amount, total_fee)

    def _select_path(
        self,
        reduced: GraphView,
        sender: Hashable,
        receiver: Hashable,
        amount: float,
        rng=None,
    ) -> List[Hashable]:
        """One shortest path in the reduced view, as node labels.

        ``"first"`` walks the predecessor DAG deterministically (smallest
        node index); ``"random"`` samples uniformly among *all* shortest
        paths by walking backward from the receiver and picking each
        predecessor with probability proportional to its shortest-path
        count — exactly the equal-split ``m_e(s,r)/m(s,r)`` shares of
        Eq. 2 without enumerating the (possibly exponential) path set.
        """
        if rng is None:
            rng = self._rng
        s_idx = reduced.index_of(sender)
        r_idx = reduced.index_of(receiver)
        if reduced.num_nodes < SMALL_GRAPH_NODES:
            # Per-payment python BFS beats numpy call overhead on small
            # graphs (the simulator routes thousands of payments).
            dist, sigma, preds = small_bfs_structure(
                reduced.adjacency_lists(), reduced.num_nodes, s_idx,
                target=r_idx,
            )
            path_indices = walk_small(
                dist, sigma, preds, s_idx, r_idx, self.path_selection, rng
            )
        else:
            tree = bfs_shortest_path_tree(reduced, s_idx, target=r_idx)
            path_indices = walk_csr(
                reduced, tree, s_idx, r_idx, self.path_selection, rng
            )
        if path_indices is None:
            raise RoutingError(
                f"no path with capacity {amount} from {sender!r} to {receiver!r}"
            )
        return [reduced.nodes[i] for i in path_indices]

    def _hop_amounts(self, hops: int, amount: float) -> List[float]:
        """Amount entering each hop, sender-side first.

        With fee forwarding, hop ``i`` carries the delivered amount plus
        all fees owed to intermediaries downstream of hop ``i``.
        """
        if not self.fee_forwarding:
            return [amount] * hops
        amounts = [amount]
        # walk backwards from the receiver; each earlier hop adds the fee
        # of the intermediary that forwards it.
        for _ in range(hops - 1):
            inbound = amounts[0] + self.fee(amounts[0])
            amounts.insert(0, inbound)
        return amounts

    # -- execution --------------------------------------------------------------

    def execute(
        self,
        sender: Hashable,
        receiver: Hashable,
        amount: float,
        timestamp: float = 0.0,
        rng=None,
    ) -> PaymentOutcome:
        """Find a route and apply it atomically.

        On success, channel balances along the path are updated and the fee
        earned by each intermediary is reported in ``fees_per_node``. On
        failure nothing changes.
        """
        try:
            route = self.find_route(sender, receiver, amount, rng=rng)
        except RoutingError as exc:
            return PaymentOutcome(success=False, failure_reason=str(exc))
        hop_amounts = self._hop_amounts(route.hops, amount)
        plan: List[Tuple[Channel, Hashable, float]] = []
        for (src, dst), hop_amount in zip(
            zip(route.nodes, route.nodes[1:]), hop_amounts
        ):
            channel = self._pick_channel(src, dst, hop_amount)
            if channel is None:
                return PaymentOutcome(
                    success=False,
                    failure_reason=(
                        f"no single channel {src!r}->{dst!r} can carry "
                        f"{hop_amount} (aggregate balance sufficed)"
                    ),
                )
            plan.append((channel, src, hop_amount))
        for channel, src, hop_amount in plan:
            channel.send(src, hop_amount, timestamp=timestamp)
        fees_per_node = {}
        for node, inbound, outbound in zip(
            route.intermediaries, hop_amounts, hop_amounts[1:]
        ):
            fees_per_node[node] = fees_per_node.get(node, 0.0) + (inbound - outbound)
        if not self.fee_forwarding:
            for node in route.intermediaries:
                fees_per_node[node] = fees_per_node.get(node, 0.0) + self.fee(amount)
        return PaymentOutcome(success=True, route=route, fees_per_node=fees_per_node)

    def _pick_channel(
        self, src: Hashable, dst: Hashable, amount: float
    ) -> Optional[Channel]:
        """Best single channel able to carry ``amount`` from src to dst.

        Prefers the channel with the largest sender-side balance, which
        keeps parallel channels evenly usable.
        """
        best: Optional[Channel] = None
        for channel in self.graph.channels_between(src, dst):
            balance = channel.balance(src)
            if balance >= amount and (best is None or balance > best.balance(src)):
                best = channel
        return best

    # -- fee quoting --------------------------------------------------------------

    def quote_fee(self, path: Sequence[Hashable], amount: float) -> float:
        """Total sender fee for pushing ``amount`` along ``path``."""
        hops = len(path) - 1
        if hops < 1:
            raise RoutingError("path needs at least one hop")
        return self._hop_amounts(hops, amount)[0] - amount
