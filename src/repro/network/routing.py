"""Capacity-aware shortest-path routing over a :class:`ChannelGraph`.

Implements the multi-hop payment flow of Section II-A: a payment of size
``x`` from ``s`` to ``r`` follows a shortest path in the reduced subgraph
(every directed edge on the path must hold balance >= forwarded amount),
intermediaries charge a per-hop fee, and on success every channel on the
path updates its balances atomically (the HTLC all-or-nothing guarantee —
footnote 1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Sequence, Tuple

import networkx as nx

from ..errors import RoutingError
from .channel import Channel
from .fees import ConstantFee, FeeFunction
from .graph import ChannelGraph

__all__ = ["Route", "PaymentOutcome", "Router"]


@dataclass(frozen=True)
class Route:
    """A candidate payment path.

    Attributes:
        nodes: node sequence from sender to receiver inclusive.
        amount: payment size delivered to the receiver.
        fee: total routing fee paid by the sender to intermediaries.
    """

    nodes: Tuple[Hashable, ...]
    amount: float
    fee: float

    @property
    def hops(self) -> int:
        return len(self.nodes) - 1

    @property
    def intermediaries(self) -> Tuple[Hashable, ...]:
        return self.nodes[1:-1]


@dataclass
class PaymentOutcome:
    """Result of attempting one payment."""

    success: bool
    route: Optional[Route] = None
    failure_reason: str = ""
    fees_per_node: dict = field(default_factory=dict)


class Router:
    """Finds and executes payments on a channel graph.

    Args:
        graph: the network to route over.
        fee: global per-hop fee function ``F`` (defaults to zero fees,
            which matches the pure-topology studies of Section IV).
        fee_forwarding: if True (default), each intermediary must forward
            the downstream amount plus downstream fees, mirroring how
            Lightning onions accumulate fees toward the sender. If False,
            every hop forwards exactly ``amount`` (the paper's simplified
            accounting).
        path_selection: ``"first"`` always takes networkx's first shortest
            path; ``"random"`` samples uniformly among *all* shortest paths,
            which realises exactly the equal-split ``m_e(s,r)/m(s,r)``
            traffic shares of Eq. 2 (used by the simulator).
        seed: RNG seed for ``"random"`` selection.
    """

    def __init__(
        self,
        graph: ChannelGraph,
        fee: Optional[FeeFunction] = None,
        fee_forwarding: bool = True,
        path_selection: str = "first",
        seed: Optional[int] = None,
    ) -> None:
        if path_selection not in ("first", "random"):
            raise RoutingError(
                f"path_selection must be 'first' or 'random', got {path_selection!r}"
            )
        self.graph = graph
        self.fee = fee if fee is not None else ConstantFee(0.0)
        self.fee_forwarding = fee_forwarding
        self.path_selection = path_selection
        import numpy as np

        self._rng = np.random.default_rng(seed)

    # -- route discovery ------------------------------------------------------

    def find_route(
        self, sender: Hashable, receiver: Hashable, amount: float
    ) -> Route:
        """Shortest feasible route for ``amount`` in the reduced subgraph.

        Raises:
            RoutingError: when sender/receiver are absent or no directed
                path with sufficient balances exists.
        """
        if sender == receiver:
            raise RoutingError("sender and receiver must differ")
        reduced = self.graph.to_directed(min_balance=amount)
        if sender not in reduced or receiver not in reduced:
            raise RoutingError(f"unknown endpoint in route {sender!r}->{receiver!r}")
        try:
            if self.path_selection == "random":
                candidates = list(nx.all_shortest_paths(reduced, sender, receiver))
                index = int(self._rng.integers(0, len(candidates)))
                nodes = candidates[index]
            else:
                nodes = nx.shortest_path(reduced, sender, receiver)
        except nx.NetworkXNoPath:
            raise RoutingError(
                f"no path with capacity {amount} from {sender!r} to {receiver!r}"
            ) from None
        hop_amounts = self._hop_amounts(len(nodes) - 1, amount)
        total_fee = hop_amounts[0] - amount
        return Route(tuple(nodes), amount, total_fee)

    def _hop_amounts(self, hops: int, amount: float) -> List[float]:
        """Amount entering each hop, sender-side first.

        With fee forwarding, hop ``i`` carries the delivered amount plus
        all fees owed to intermediaries downstream of hop ``i``.
        """
        if not self.fee_forwarding:
            return [amount] * hops
        amounts = [amount]
        # walk backwards from the receiver; each earlier hop adds the fee
        # of the intermediary that forwards it.
        for _ in range(hops - 1):
            inbound = amounts[0] + self.fee(amounts[0])
            amounts.insert(0, inbound)
        return amounts

    # -- execution --------------------------------------------------------------

    def execute(
        self,
        sender: Hashable,
        receiver: Hashable,
        amount: float,
        timestamp: float = 0.0,
    ) -> PaymentOutcome:
        """Find a route and apply it atomically.

        On success, channel balances along the path are updated and the fee
        earned by each intermediary is reported in ``fees_per_node``. On
        failure nothing changes.
        """
        try:
            route = self.find_route(sender, receiver, amount)
        except RoutingError as exc:
            return PaymentOutcome(success=False, failure_reason=str(exc))
        hop_amounts = self._hop_amounts(route.hops, amount)
        plan: List[Tuple[Channel, Hashable, float]] = []
        for (src, dst), hop_amount in zip(
            zip(route.nodes, route.nodes[1:]), hop_amounts
        ):
            channel = self._pick_channel(src, dst, hop_amount)
            if channel is None:
                return PaymentOutcome(
                    success=False,
                    failure_reason=(
                        f"no single channel {src!r}->{dst!r} can carry "
                        f"{hop_amount} (aggregate balance sufficed)"
                    ),
                )
            plan.append((channel, src, hop_amount))
        for channel, src, hop_amount in plan:
            channel.send(src, hop_amount, timestamp=timestamp)
        fees_per_node = {}
        for node, inbound, outbound in zip(
            route.intermediaries, hop_amounts, hop_amounts[1:]
        ):
            fees_per_node[node] = fees_per_node.get(node, 0.0) + (inbound - outbound)
        if not self.fee_forwarding:
            for node in route.intermediaries:
                fees_per_node[node] = fees_per_node.get(node, 0.0) + self.fee(amount)
        return PaymentOutcome(success=True, route=route, fees_per_node=fees_per_node)

    def _pick_channel(
        self, src: Hashable, dst: Hashable, amount: float
    ) -> Optional[Channel]:
        """Best single channel able to carry ``amount`` from src to dst.

        Prefers the channel with the largest sender-side balance, which
        keeps parallel channels evenly usable.
        """
        best: Optional[Channel] = None
        for channel in self.graph.channels_between(src, dst):
            balance = channel.balance(src)
            if balance >= amount and (best is None or balance > best.balance(src)):
                best = channel
        return best

    # -- fee quoting --------------------------------------------------------------

    def quote_fee(self, path: Sequence[Hashable], amount: float) -> float:
        """Total sender fee for pushing ``amount`` along ``path``."""
        hops = len(path) - 1
        if hops < 1:
            raise RoutingError("path needs at least one hop")
        return self._hop_amounts(hops, amount)[0] - amount
