"""Routing fee functions and the global average fee ``f_avg``.

The paper abstracts all intermediaries' fee policies into one global fee
function ``F : [0, T] -> R+`` and works with its average

    f_avg = integral_0^T  p(t) * F(t) dt,

where ``p`` is the probability density of transaction sizes (Section II-A).
This module provides the standard fee-function shapes (constant, the
Lightning ``base + proportional`` linear form, and piecewise-linear) and the
numeric integration that turns a fee function plus a size distribution into
``f_avg``.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Sequence, Tuple

import numpy as np

_trapz = getattr(np, "trapezoid", getattr(np, "trapz", None))

from ..errors import InvalidParameter
from ..scenarios.registry import register_fee

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from ..transactions.sizes import TransactionSizeDistribution

__all__ = [
    "FeeFunction",
    "ConstantFee",
    "LinearFee",
    "PiecewiseLinearFee",
    "average_fee",
]


class FeeFunction(abc.ABC):
    """A per-hop routing fee as a function of the transaction amount."""

    @abc.abstractmethod
    def __call__(self, amount: float) -> float:
        """Fee charged for forwarding ``amount`` coins through one hop."""

    def vectorised(self, amounts: np.ndarray) -> np.ndarray:
        """Evaluate on an array of amounts (default: python loop)."""
        return np.array([self(float(a)) for a in amounts], dtype=float)


@register_fee("constant")
class ConstantFee(FeeFunction):
    """A flat fee independent of the transaction amount."""

    def __init__(self, fee: float) -> None:
        if fee < 0:
            raise InvalidParameter(f"fee must be >= 0, got {fee}")
        self.fee = fee

    def __call__(self, amount: float) -> float:
        return self.fee

    def vectorised(self, amounts: np.ndarray) -> np.ndarray:
        return np.full_like(np.asarray(amounts, dtype=float), self.fee)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConstantFee({self.fee})"


@register_fee("linear")
class LinearFee(FeeFunction):
    """Lightning-style fee: ``base + rate * amount``.

    In the real Lightning Network ``base`` is ``base_fee_msat`` and ``rate``
    is ``fee_rate_ppm / 1e6``; here both are plain coin units.
    """

    def __init__(self, base: float, rate: float) -> None:
        if base < 0 or rate < 0:
            raise InvalidParameter("base and rate must be >= 0")
        self.base = base
        self.rate = rate

    def __call__(self, amount: float) -> float:
        if amount < 0:
            raise InvalidParameter(f"amount must be >= 0, got {amount}")
        return self.base + self.rate * amount

    def vectorised(self, amounts: np.ndarray) -> np.ndarray:
        return self.base + self.rate * np.asarray(amounts, dtype=float)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LinearFee(base={self.base}, rate={self.rate})"


@register_fee("piecewise")
class PiecewiseLinearFee(FeeFunction):
    """A fee defined by linear interpolation between ``(amount, fee)`` knots.

    Amounts outside the knot range are clamped to the boundary fees, which
    matches how node operators publish stepped fee schedules.
    """

    def __init__(self, knots: Sequence[Tuple[float, float]]) -> None:
        if len(knots) < 2:
            raise InvalidParameter("need at least two knots")
        xs = [k[0] for k in knots]
        ys = [k[1] for k in knots]
        if any(x1 >= x2 for x1, x2 in zip(xs, xs[1:])):
            raise InvalidParameter("knot amounts must be strictly increasing")
        if any(y < 0 for y in ys):
            raise InvalidParameter("fees must be >= 0")
        self._xs = np.asarray(xs, dtype=float)
        self._ys = np.asarray(ys, dtype=float)

    def __call__(self, amount: float) -> float:
        return float(np.interp(amount, self._xs, self._ys))

    def vectorised(self, amounts: np.ndarray) -> np.ndarray:
        return np.interp(np.asarray(amounts, dtype=float), self._xs, self._ys)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        knots = list(zip(self._xs.tolist(), self._ys.tolist()))
        return f"PiecewiseLinearFee({knots})"


def average_fee(
    fee: FeeFunction,
    sizes: "TransactionSizeDistribution",
    grid_points: int = 2001,
) -> float:
    """Compute ``f_avg = E[F(t)]`` for transaction sizes ``t ~ sizes``.

    Uses trapezoidal integration of ``pdf(t) * F(t)`` over the size support;
    ``grid_points`` controls accuracy (the default is ample for the smooth
    fee shapes above).
    """
    lo, hi = sizes.support()
    if not hi > lo:
        raise InvalidParameter("size distribution support must be non-degenerate")
    grid = np.linspace(lo, hi, grid_points)
    integrand = sizes.pdf(grid) * fee.vectorised(grid)
    return float(_trapz(integrand, grid))
