"""Routing fee functions, two-sided fee policies, and ``f_avg``.

The paper abstracts all intermediaries' fee policies into one global fee
function ``F : [0, T] -> R+`` and works with its average

    f_avg = integral_0^T  p(t) * F(t) dt,

where ``p`` is the probability density of transaction sizes (Section II-A).
This module provides the standard fee-function shapes (constant, the
Lightning ``base + proportional`` linear form, and piecewise-linear) and the
numeric integration that turns a fee function plus a size distribution into
``f_avg``.

:class:`FeePolicy` generalises a fee function into a *two-sided* policy
(the Unjamming countermeasure, Naumenko–Riard 2022): the **success** part
is a plain :class:`FeeFunction` charged on settle (today's behaviour), the
**upfront** part is a ``base + rate * amount`` charge collected per
*attempt* — paid for every hop an HTLC actually reserves, success or not,
and never refunded. Because jamming attacks are all attempts and no
settles, a non-zero upfront part taxes the attacker directly.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

import numpy as np

_trapz = getattr(np, "trapezoid", getattr(np, "trapz", None))

from ..errors import InvalidParameter
from ..scenarios.registry import register_fee

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from ..transactions.sizes import TransactionSizeDistribution

__all__ = [
    "FeeFunction",
    "FeePolicy",
    "ConstantFee",
    "LinearFee",
    "PiecewiseLinearFee",
    "average_fee",
]


class FeeFunction(abc.ABC):
    """A per-hop routing fee as a function of the transaction amount."""

    @abc.abstractmethod
    def __call__(self, amount: float) -> float:
        """Fee charged for forwarding ``amount`` coins through one hop."""

    def vectorised(self, amounts: np.ndarray) -> np.ndarray:
        """Evaluate on an array of amounts (default: python loop)."""
        return np.array([self(float(a)) for a in amounts], dtype=float)


@register_fee("constant")
class ConstantFee(FeeFunction):
    """A flat fee independent of the transaction amount."""

    def __init__(self, fee: float) -> None:
        if fee < 0:
            raise InvalidParameter(f"fee must be >= 0, got {fee}")
        self.fee = fee

    def __call__(self, amount: float) -> float:
        return self.fee

    def vectorised(self, amounts: np.ndarray) -> np.ndarray:
        return np.full_like(np.asarray(amounts, dtype=float), self.fee)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConstantFee({self.fee})"


@register_fee("linear")
class LinearFee(FeeFunction):
    """Lightning-style fee: ``base + rate * amount``.

    In the real Lightning Network ``base`` is ``base_fee_msat`` and ``rate``
    is ``fee_rate_ppm / 1e6``; here both are plain coin units.
    """

    def __init__(self, base: float, rate: float) -> None:
        if base < 0 or rate < 0:
            raise InvalidParameter("base and rate must be >= 0")
        self.base = base
        self.rate = rate

    def __call__(self, amount: float) -> float:
        if amount < 0:
            raise InvalidParameter(f"amount must be >= 0, got {amount}")
        return self.base + self.rate * amount

    def vectorised(self, amounts: np.ndarray) -> np.ndarray:
        return self.base + self.rate * np.asarray(amounts, dtype=float)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LinearFee(base={self.base}, rate={self.rate})"


@register_fee("piecewise")
class PiecewiseLinearFee(FeeFunction):
    """A fee defined by linear interpolation between ``(amount, fee)`` knots.

    Amounts outside the knot range are clamped to the boundary fees, which
    matches how node operators publish stepped fee schedules.
    """

    def __init__(self, knots: Sequence[Tuple[float, float]]) -> None:
        if len(knots) < 2:
            raise InvalidParameter("need at least two knots")
        xs = [k[0] for k in knots]
        ys = [k[1] for k in knots]
        if any(x1 >= x2 for x1, x2 in zip(xs, xs[1:])):
            raise InvalidParameter("knot amounts must be strictly increasing")
        if any(y < 0 for y in ys):
            raise InvalidParameter("fees must be >= 0")
        self._xs = np.asarray(xs, dtype=float)
        self._ys = np.asarray(ys, dtype=float)

    def __call__(self, amount: float) -> float:
        return float(np.interp(amount, self._xs, self._ys))

    def vectorised(self, amounts: np.ndarray) -> np.ndarray:
        return np.interp(np.asarray(amounts, dtype=float), self._xs, self._ys)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        knots = list(zip(self._xs.tolist(), self._ys.tolist()))
        return f"PiecewiseLinearFee({knots})"


class FeePolicy(FeeFunction):
    """A two-sided fee: a success part plus an unconditional upfront part.

    The policy *is* a :class:`FeeFunction` — calling it evaluates the
    success part (0 when ``success`` is None) — so every consumer typed
    against ``FeeFunction`` (routers, engines, ``average_fee``) accepts a
    policy unchanged. The upfront side is only consulted by HTLC
    accounting: each hop a lock attempt actually places charges the
    receiving node ``upfront(hop_amount)`` from the sender, settle or not.

    Args:
        success: fee charged on settle, per hop (None = no success fee).
        upfront_base: flat upfront charge per attempted hop.
        upfront_rate: proportional upfront charge per attempted hop.
    """

    def __init__(
        self,
        success: Optional[FeeFunction] = None,
        upfront_base: float = 0.0,
        upfront_rate: float = 0.0,
    ) -> None:
        if upfront_base < 0 or upfront_rate < 0:
            raise InvalidParameter(
                "upfront_base and upfront_rate must be >= 0"
            )
        if success is not None and not isinstance(success, FeeFunction):
            raise InvalidParameter(
                f"success part must be a FeeFunction, "
                f"got {type(success).__name__}"
            )
        self.success = success
        self.upfront_base = float(upfront_base)
        self.upfront_rate = float(upfront_rate)

    @classmethod
    def of(cls, fee: Optional[FeeFunction]) -> "FeePolicy":
        """Normalise any fee into a policy (identity on policies)."""
        if isinstance(fee, FeePolicy):
            return fee
        return cls(success=fee)

    @property
    def has_upfront(self) -> bool:
        """Whether the upfront side charges anything at all."""
        return self.upfront_base > 0.0 or self.upfront_rate > 0.0

    def upfront(self, amount: float) -> float:
        """Unconditional charge for *attempting* to forward ``amount``."""
        if amount < 0:
            raise InvalidParameter(f"amount must be >= 0, got {amount}")
        return self.upfront_base + self.upfront_rate * amount

    def __call__(self, amount: float) -> float:
        if self.success is None:
            return 0.0
        return self.success(amount)

    def vectorised(self, amounts: np.ndarray) -> np.ndarray:
        if self.success is None:
            return np.zeros_like(np.asarray(amounts, dtype=float))
        return self.success.vectorised(amounts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FeePolicy(success={self.success!r}, "
            f"upfront_base={self.upfront_base}, "
            f"upfront_rate={self.upfront_rate})"
        )


def average_fee(
    fee: FeeFunction,
    sizes: "TransactionSizeDistribution",
    grid_points: int = 2001,
) -> float:
    """Compute ``f_avg = E[F(t)]`` for transaction sizes ``t ~ sizes``.

    Uses trapezoidal integration of ``pdf(t) * F(t)`` over the size support;
    ``grid_points`` controls accuracy (the default is ample for the smooth
    fee shapes above).
    """
    lo, hi = sizes.support()
    if not hi > lo:
        raise InvalidParameter("size distribution support must be non-degenerate")
    grid = np.linspace(lo, hi, grid_points)
    integrand = sizes.pdf(grid) * fee.vectorised(grid)
    return float(_trapz(integrand, grid))
