"""Immutable CSR snapshots of a :class:`~repro.network.graph.ChannelGraph`.

Every analytic hot path — pair-weighted betweenness (Eq. 2/Eq. 3),
capacity-aware routing (Section II-A), the reduced subgraph ``G'``
(Section II-B), diameter and equilibrium checks — operates on *reads* of
the channel graph. :class:`GraphView` freezes one such read into compressed
sparse row (CSR) arrays:

* ``indptr`` / ``indices`` — the adjacency structure, one row per node,
  targets sorted by node index;
* ``edge_ids`` — per CSR entry, the id of the *channel pair slot* shared
  by both directions of the same ``{u, v}`` pair; ``pair_channels`` maps a
  slot back to the concrete channel ids, so algorithms can work purely on
  integers and translate to channels only at commit time;
* ``balances`` / ``capacities`` / ``fee_base`` / ``fee_rate`` — parallel
  float arrays with the aggregated per-direction balance, the pair
  capacity, and the cheapest per-channel fee policy of each entry.

Views are produced by :meth:`ChannelGraph.view` and cached keyed on the
graph's mutation version (structural *and* balance mutations bump it), so
repeated algorithm calls between mutations are zero-copy. A view never
changes: mutate the graph and ask for a new view instead.

The module also provides the vectorised BFS primitives shared by the
algorithm ports: frontier expansion, hop distances, and Brandes'
``(dist, sigma, tree-edges)`` bookkeeping, all as numpy array passes.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..errors import InvalidParameter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    import networkx as nx

    from .graph import ChannelGraph

#: Below this many nodes the per-node python passes beat the vectorised
#: numpy ones (per-level array-call overhead exceeds the actual work);
#: shared by the betweenness and routing fast-path dispatch.
SMALL_GRAPH_NODES = 150

__all__ = [
    "SMALL_GRAPH_NODES",
    "GraphView",
    "BfsTree",
    "build_view",
    "expand_frontier",
    "bfs_distances",
    "bfs_shortest_path_tree",
    "shortest_path_indices",
]


class GraphView:
    """One immutable, int-indexed CSR snapshot of a channel graph.

    Attributes:
        nodes: node labels, index -> label (graph insertion order; stable
            across ``reduced`` values at the same graph version).
        node_index: label -> index (inverse of ``nodes``).
        indptr: ``int64[n + 1]`` CSR row pointers.
        indices: ``int64[m]`` CSR target node indices (sorted per row).
        edge_ids: ``int64[m]`` channel-pair slot per entry; both directions
            of the same ``{u, v}`` pair share one slot.
        pair_channels: slot -> tuple of channel ids between that pair.
        balances: ``float64[m]`` aggregated source->target balance.
        capacities: ``float64[m]`` aggregated pair capacity.
        fee_base / fee_rate: ``float64[m]`` the entry's cheapest
            per-channel fee policy, judged at unit amount (zero unless
            channels carry explicit fee params).
        upfront_base / upfront_rate: ``float64[m]`` the per-attempt
            (upfront) side of the same winning channel's two-sided fee
            policy — carried alongside the success-side columns, never
            mixed across channels of one pair.
        directed: whether entries are per-direction (True) or the
            symmetric undirected adjacency (False).
        min_balance: the reduced-subgraph threshold the view was built
            with (``0.0`` = unreduced).
        version: the graph mutation version the view snapshot belongs to.
    """

    __slots__ = (
        "nodes",
        "node_index",
        "indptr",
        "indices",
        "edge_ids",
        "pair_channels",
        "balances",
        "capacities",
        "fee_base",
        "fee_rate",
        "upfront_base",
        "upfront_rate",
        "directed",
        "min_balance",
        "version",
        "_reverse",
        "_nx_cache",
        "_entry_rows",
        "_adj_lists",
    )

    def __init__(
        self,
        nodes: Tuple[Hashable, ...],
        indptr: np.ndarray,
        indices: np.ndarray,
        edge_ids: np.ndarray,
        pair_channels: Tuple[Tuple[str, ...], ...],
        balances: np.ndarray,
        capacities: np.ndarray,
        fee_base: np.ndarray,
        fee_rate: np.ndarray,
        upfront_base: np.ndarray,
        upfront_rate: np.ndarray,
        directed: bool,
        min_balance: float,
        version: int,
        node_index: Optional[Dict[Hashable, int]] = None,
    ) -> None:
        self.nodes = nodes
        self.node_index = (
            node_index
            if node_index is not None
            else {node: i for i, node in enumerate(nodes)}
        )
        for array in (indptr, indices, edge_ids, balances, capacities,
                      fee_base, fee_rate, upfront_base, upfront_rate):
            array.setflags(write=False)
        self.indptr = indptr
        self.indices = indices
        self.edge_ids = edge_ids
        self.pair_channels = pair_channels
        self.balances = balances
        self.capacities = capacities
        self.fee_base = fee_base
        self.fee_rate = fee_rate
        self.upfront_base = upfront_base
        self.upfront_rate = upfront_rate
        self.directed = directed
        self.min_balance = min_balance
        self.version = version
        self._reverse: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._nx_cache: Optional["nx.Graph"] = None
        self._entry_rows: Optional[np.ndarray] = None
        self._adj_lists: Optional[List[List[Tuple[int, int]]]] = None

    # -- shape ----------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_entries(self) -> int:
        """Number of CSR adjacency entries (directed: aggregated directed
        edges; undirected: twice the number of collapsed pairs)."""
        return int(self.indices.shape[0])

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node: Hashable) -> bool:
        return node in self.node_index

    def has_node(self, node: Hashable) -> bool:
        return node in self.node_index

    def index_of(self, node: Hashable) -> int:
        try:
            return self.node_index[node]
        except KeyError:
            raise InvalidParameter(f"{node!r} is not in this view") from None

    # -- adjacency ------------------------------------------------------------

    def successors(self, index: int) -> np.ndarray:
        """Target indices adjacent to node ``index`` (read-only slice)."""
        return self.indices[self.indptr[index]:self.indptr[index + 1]]

    def entries_of(self, index: int) -> np.ndarray:
        """CSR entry positions of node ``index``'s adjacency row."""
        return np.arange(self.indptr[index], self.indptr[index + 1])

    def entry_rows(self) -> np.ndarray:
        """``int64[m]`` source node index of every CSR entry (cached)."""
        if self._entry_rows is None:
            rows = np.repeat(
                np.arange(self.num_nodes, dtype=np.int64),
                np.diff(self.indptr),
            )
            rows.setflags(write=False)
            self._entry_rows = rows
        return self._entry_rows

    def adjacency_lists(self) -> List[List[Tuple[int, int]]]:
        """Per-node ``[(target, entry), ...]`` python lists (cached).

        The small-graph fast paths (where per-call numpy overhead exceeds
        the work) iterate these instead of the CSR arrays.
        """
        if self._adj_lists is None:
            indices = self.indices.tolist()
            indptr = self.indptr.tolist()
            self._adj_lists = [
                list(zip(indices[indptr[i]:indptr[i + 1]],
                         range(indptr[i], indptr[i + 1])))
                for i in range(self.num_nodes)
            ]
        return self._adj_lists

    def entry_between(self, src: int, dst: int) -> int:
        """CSR entry position of the ``src -> dst`` edge, or ``-1``."""
        lo, hi = int(self.indptr[src]), int(self.indptr[src + 1])
        pos = lo + int(np.searchsorted(self.indices[lo:hi], dst))
        if pos < hi and int(self.indices[pos]) == dst:
            return pos
        return -1

    def reverse_adjacency(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSC-style predecessors ``(rev_indptr, rev_indices, rev_entries)``.

        ``rev_entries[k]`` is the forward CSR entry of the edge whose
        *target* row is being enumerated, so per-entry arrays (balances,
        edge ids) can be gathered while walking predecessors. Built lazily
        once per view.
        """
        if self._reverse is None:
            order = np.argsort(self.indices, kind="stable")
            rev_indices = self.entry_rows()[order]
            rev_indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
            np.add.at(rev_indptr, self.indices + 1, 1)
            np.cumsum(rev_indptr, out=rev_indptr)
            for array in (rev_indptr, rev_indices, order):
                array.setflags(write=False)
            self._reverse = (rev_indptr, rev_indices, order)
        return self._reverse

    def channels_for_entry(self, entry: int) -> Tuple[str, ...]:
        """Channel ids that make up CSR entry ``entry``."""
        return self.pair_channels[int(self.edge_ids[entry])]

    # -- conversion -----------------------------------------------------------

    def to_networkx(self) -> "nx.Graph":
        """Materialise the view as the equivalent networkx graph.

        Matches the historical ``ChannelGraph.to_undirected()`` /
        ``to_directed()`` output: all nodes present, ``capacity`` edge
        attribute on undirected views, ``balance`` on directed views. The
        result is cached on the view (views are immutable); copy before
        mutating it.
        """
        if self._nx_cache is not None:
            return self._nx_cache
        import networkx as nx

        rows = self.entry_rows()
        graph: "nx.Graph"
        if self.directed:
            graph = nx.DiGraph()
            graph.add_nodes_from(self.nodes)
            for pos in range(self.num_entries):
                graph.add_edge(
                    self.nodes[rows[pos]],
                    self.nodes[self.indices[pos]],
                    balance=float(self.balances[pos]),
                )
        else:
            graph = nx.Graph()
            graph.add_nodes_from(self.nodes)
            for pos in range(self.num_entries):
                src, dst = int(rows[pos]), int(self.indices[pos])
                if src < dst:
                    graph.add_edge(
                        self.nodes[src],
                        self.nodes[dst],
                        capacity=float(self.capacities[pos]),
                    )
        self._nx_cache = graph
        return graph

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "directed" if self.directed else "undirected"
        return (
            f"GraphView({kind}, nodes={self.num_nodes}, "
            f"entries={self.num_entries}, min_balance={self.min_balance}, "
            f"version={self.version})"
        )


def build_view(
    graph: "ChannelGraph", directed: bool, min_balance: float
) -> GraphView:
    """Freeze ``graph`` into a :class:`GraphView`.

    Parallel channels are aggregated per direction (directed) or per pair
    (undirected), exactly like the historical networkx views; directed
    entries whose aggregated balance is strictly below ``min_balance`` are
    dropped (the reduced subgraph ``G'``).
    """
    if min_balance < 0:
        raise InvalidParameter("min_balance must be >= 0")
    if not directed and min_balance != 0.0:
        raise InvalidParameter("undirected views cannot be reduced")
    nodes = graph.nodes
    node_index = {node: i for i, node in enumerate(nodes)}

    # Aggregate channels into pair slots keyed by sorted index pairs.
    pair_slot: Dict[Tuple[int, int], int] = {}
    pair_ids: List[List[str]] = []
    pair_capacity: List[float] = []
    pair_balance: List[Tuple[float, float]] = []  # (lo -> hi, hi -> lo)
    pair_fees: List[Tuple[float, float]] = []
    pair_upfront: List[Tuple[float, float]] = []
    for channel in graph.channels:
        u, v = node_index[channel.u], node_index[channel.v]
        lo, hi = (u, v) if u < v else (v, u)
        slot = pair_slot.get((lo, hi))
        balance_lo = channel.balance(nodes[lo])
        balance_hi = channel.balance(nodes[hi])
        fee_base = getattr(channel, "fee_base", 0.0)
        fee_rate = getattr(channel, "fee_rate", 0.0)
        upfront_base = getattr(channel, "upfront_base", 0.0)
        upfront_rate = getattr(channel, "upfront_rate", 0.0)
        if slot is None:
            pair_slot[(lo, hi)] = len(pair_ids)
            pair_ids.append([channel.channel_id])
            pair_capacity.append(channel.capacity)
            pair_balance.append((balance_lo, balance_hi))
            pair_fees.append((fee_base, fee_rate))
            pair_upfront.append((upfront_base, upfront_rate))
        else:
            pair_ids[slot].append(channel.channel_id)
            pair_capacity[slot] += channel.capacity
            old_lo, old_hi = pair_balance[slot]
            pair_balance[slot] = (old_lo + balance_lo, old_hi + balance_hi)
            # Keep the whole policy of the channel that is cheapest for a
            # unit payment (a component-wise min would synthesize a policy
            # no channel actually offers). The upfront side travels with
            # the winning channel, never mixed across channels.
            old_base, old_rate = pair_fees[slot]
            if fee_base + fee_rate < old_base + old_rate:
                pair_fees[slot] = (fee_base, fee_rate)
                pair_upfront[slot] = (upfront_base, upfront_rate)

    # Expand slots into directed entries (both orientations), filtering
    # reduced-out directions, then sort into CSR order.
    srcs: List[int] = []
    dsts: List[int] = []
    slots: List[int] = []
    balances: List[float] = []
    for (lo, hi), slot in pair_slot.items():
        forward, backward = pair_balance[slot]
        if directed:
            if forward >= min_balance:
                srcs.append(lo); dsts.append(hi); slots.append(slot)
                balances.append(forward)
            if backward >= min_balance:
                srcs.append(hi); dsts.append(lo); slots.append(slot)
                balances.append(backward)
        else:
            srcs.append(lo); dsts.append(hi); slots.append(slot)
            balances.append(forward)
            srcs.append(hi); dsts.append(lo); slots.append(slot)
            balances.append(backward)

    n = len(nodes)
    src_arr = np.asarray(srcs, dtype=np.int64)
    dst_arr = np.asarray(dsts, dtype=np.int64)
    slot_arr = np.asarray(slots, dtype=np.int64)
    balance_arr = np.asarray(balances, dtype=np.float64)
    order = np.lexsort((dst_arr, src_arr))
    src_arr = src_arr[order]
    dst_arr = dst_arr[order]
    slot_arr = slot_arr[order]
    balance_arr = balance_arr[order]

    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, src_arr + 1, 1)
    np.cumsum(indptr, out=indptr)

    capacity_table = np.asarray(pair_capacity, dtype=np.float64)
    fee_table = np.asarray(pair_fees, dtype=np.float64).reshape(-1, 2)
    upfront_table = np.asarray(pair_upfront, dtype=np.float64).reshape(-1, 2)
    if slot_arr.size:
        capacities = capacity_table[slot_arr]
        fee_base = fee_table[slot_arr, 0]
        fee_rate = fee_table[slot_arr, 1]
        upfront_base = upfront_table[slot_arr, 0]
        upfront_rate = upfront_table[slot_arr, 1]
    else:
        capacities = np.zeros(0, dtype=np.float64)
        fee_base = np.zeros(0, dtype=np.float64)
        fee_rate = np.zeros(0, dtype=np.float64)
        upfront_base = np.zeros(0, dtype=np.float64)
        upfront_rate = np.zeros(0, dtype=np.float64)

    return GraphView(
        nodes=nodes,
        indptr=indptr,
        indices=dst_arr,
        edge_ids=slot_arr,
        pair_channels=tuple(tuple(ids) for ids in pair_ids),
        balances=balance_arr,
        capacities=capacities,
        fee_base=fee_base,
        fee_rate=fee_rate,
        upfront_base=upfront_base,
        upfront_rate=upfront_rate,
        directed=directed,
        min_balance=float(min_balance),
        version=graph.version,
        node_index=node_index,
    )


# -- vectorised BFS primitives -------------------------------------------------


def expand_frontier(
    indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All out-edges of ``frontier`` as ``(srcs, entries, targets)`` arrays."""
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, empty
    cum = np.cumsum(counts)
    entries = np.repeat(starts - (cum - counts), counts) + np.arange(
        total, dtype=np.int64
    )
    srcs = np.repeat(frontier, counts)
    return srcs, entries, indices[entries]


def bfs_distances(
    view: GraphView,
    source: int,
    blocked: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Hop distances from ``source`` (``-1`` = unreachable), vectorised.

    ``blocked`` node indices are never entered (used e.g. by the
    rebalancing cycle search, which must avoid the rebalancing node).
    """
    n = view.num_nodes
    dist = np.full(n, -1, dtype=np.int64)
    if blocked is not None:
        blocked_mask = np.zeros(n, dtype=bool)
        blocked_mask[np.asarray(list(blocked), dtype=np.int64)] = True
    else:
        blocked_mask = None
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        _, _, targets = expand_frontier(view.indptr, view.indices, frontier)
        fresh = targets[dist[targets] < 0]
        if blocked_mask is not None and fresh.size:
            fresh = fresh[~blocked_mask[fresh]]
        if fresh.size == 0:
            break
        frontier = np.unique(fresh)
        level += 1
        dist[frontier] = level
    return dist


def shortest_path_indices(
    view: GraphView,
    source: int,
    target: int,
    blocked: Optional[Sequence[int]] = None,
) -> Optional[List[int]]:
    """A deterministic shortest path ``source -> target`` as node indices.

    Walks the predecessor DAG backward from ``target``, always taking the
    smallest-index predecessor; ``blocked`` node indices are excluded from
    the path. Returns ``None`` when no path exists.
    """
    dist = bfs_distances(view, source, blocked=blocked)
    if dist[target] < 0:
        return None
    rev_indptr, rev_indices, _ = view.reverse_adjacency()
    path = [target]
    current = target
    while current != source:
        preds = rev_indices[rev_indptr[current]:rev_indptr[current + 1]]
        preds = preds[dist[preds] == dist[current] - 1]
        current = int(preds[0])
        path.append(current)
    return path[::-1]


class BfsTree:
    """Brandes' single-source bookkeeping over CSR arrays.

    Attributes:
        dist: hop distance per node (``-1`` unreachable).
        sigma: shortest-path counts per node.
        levels: per BFS level (deepest last), the shortest-path tree edges
            crossing into that level as ``(entries, srcs, targets)``.
    """

    __slots__ = ("dist", "sigma", "levels")

    def __init__(
        self,
        dist: np.ndarray,
        sigma: np.ndarray,
        levels: List[Tuple[np.ndarray, np.ndarray, np.ndarray]],
    ) -> None:
        self.dist = dist
        self.sigma = sigma
        self.levels = levels


def bfs_shortest_path_tree(
    view: GraphView, source: int, target: Optional[int] = None
) -> BfsTree:
    """Single-source BFS with shortest-path counts and tree edges.

    With ``target`` given, stops once the target's BFS level is complete
    (its ``sigma`` and every ancestor's bookkeeping are final by then);
    deeper levels stay unexplored, which is what per-payment routing
    wants.
    """
    n = view.num_nodes
    indptr, indices = view.indptr, view.indices
    dist = np.full(n, -1, dtype=np.int64)
    sigma = np.zeros(n, dtype=np.float64)
    dist[source] = 0
    sigma[source] = 1.0
    frontier = np.array([source], dtype=np.int64)
    levels: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    level = 0
    seen = np.zeros(n, dtype=bool)
    while frontier.size:
        srcs, entries, targets = expand_frontier(indptr, indices, frontier)
        if targets.size == 0:
            break
        fresh = targets[dist[targets] < 0]
        if fresh.size:
            dist[fresh] = level + 1
        tree = dist[targets] == level + 1
        if not tree.any():
            break
        tree_srcs = srcs[tree]
        tree_targets = targets[tree]
        # bincount is the fastest scatter-add for repeated targets.
        sigma += np.bincount(
            tree_targets, weights=sigma[tree_srcs], minlength=n
        )
        levels.append((entries[tree], tree_srcs, tree_targets))
        if target is not None and dist[target] == level + 1:
            break
        if fresh.size:
            seen[:] = False
            seen[fresh] = True
            frontier = np.nonzero(seen)[0]
        else:
            frontier = fresh
        level += 1
    return BfsTree(dist, sigma, levels)
