"""Channel lifecycle: opening and closing cost realisation (Section II-C).

The paper's per-party channel cost ``C`` is an *expectation*: ``C/2`` for
the shared opening transaction plus ``C/2`` expected for closing, because
a channel closes unilaterally-by-u, unilaterally-by-v, or cooperatively
with equal probability (and a unilateral closer pays the whole closing
fee, a cooperative close splits it). This module samples concrete
lifecycles so the expectation can be verified empirically and so the
simulator can realise closure costs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import InvalidParameter

__all__ = ["CloseMode", "ChannelLifecycle", "LifecycleCosts", "sample_close_mode"]


class CloseMode(enum.Enum):
    """How a channel ends (Section II-C's three equiprobable ways)."""

    UNILATERAL_U = "unilateral-u"
    UNILATERAL_V = "unilateral-v"
    COOPERATIVE = "cooperative"


def sample_close_mode(rng: np.random.Generator) -> CloseMode:
    """Draw one of the three close modes uniformly (the paper's model)."""
    return rng.choice(
        [CloseMode.UNILATERAL_U, CloseMode.UNILATERAL_V, CloseMode.COOPERATIVE]
    )


@dataclass(frozen=True)
class LifecycleCosts:
    """Realised on-chain costs of one channel lifetime, per party."""

    open_cost_u: float
    open_cost_v: float
    close_cost_u: float
    close_cost_v: float
    close_mode: CloseMode

    def total(self, party: str) -> float:
        if party == "u":
            return self.open_cost_u + self.close_cost_u
        if party == "v":
            return self.open_cost_v + self.close_cost_v
        raise InvalidParameter(f"party must be 'u' or 'v', got {party!r}")


class ChannelLifecycle:
    """Sample realised open/close costs for channels.

    Args:
        onchain_fee: the miner fee of one on-chain transaction (the
            paper's ``C`` is the fee of one transaction; a channel costs
            two transactions — open and close).
        seed: RNG seed.
    """

    def __init__(self, onchain_fee: float, seed: Optional[int] = None) -> None:
        if onchain_fee < 0:
            raise InvalidParameter("onchain_fee must be >= 0")
        self.onchain_fee = onchain_fee
        self._rng = np.random.default_rng(seed)

    def realise(self, close_mode: Optional[CloseMode] = None) -> LifecycleCosts:
        """One concrete lifecycle.

        Opening is always split equally (the paper assumes parties only
        agree to open on an equal split); the closing fee lands on the
        closer, or is split when cooperative.
        """
        mode = close_mode if close_mode is not None else sample_close_mode(self._rng)
        half = self.onchain_fee / 2.0
        if mode is CloseMode.UNILATERAL_U:
            close_u, close_v = self.onchain_fee, 0.0
        elif mode is CloseMode.UNILATERAL_V:
            close_u, close_v = 0.0, self.onchain_fee
        else:
            close_u, close_v = half, half
        return LifecycleCosts(
            open_cost_u=half,
            open_cost_v=half,
            close_cost_u=close_u,
            close_cost_v=close_v,
            close_mode=mode,
        )

    def expected_cost_per_party(self) -> float:
        """The paper's closed form: ``C/2 + C/2 = C`` per party."""
        return self.onchain_fee

    def empirical_mean_cost(self, samples: int = 10_000) -> Tuple[float, float]:
        """Monte-Carlo mean (u, v) lifecycle costs — converges to (C, C)."""
        if samples <= 0:
            raise InvalidParameter("samples must be > 0")
        total_u = total_v = 0.0
        for _ in range(samples):
            costs = self.realise()
            total_u += costs.total("u")
            total_v += costs.total("v")
        return total_u / samples, total_v / samples
