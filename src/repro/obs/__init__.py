"""repro.obs — deterministic instrumentation, tracing, and profiling.

The observability layer every engine, the attacks runner, the evolution
engine, the service queue, and the CLI hang their hooks on. Design
contract (enforced by the parity suite in ``tests/obs/``):

* **zero overhead when disabled** — the default :data:`NULL_SESSION`
  carries the shared :data:`~repro.obs.registry.NULL_REGISTRY`; hot
  loops pay one attribute lookup and a falsy check;
* **determinism** — wall-clock reads live only in
  :mod:`repro.obs.clock`; instrumentation never touches simulation RNG
  or results, so obs-on and obs-off runs are bit-identical.

One :class:`ObsSession` is the per-run handle: a metrics registry, an
optional :class:`~repro.obs.trace.TraceWriter`, a ``profile`` flag that
turns on the (slightly costlier) per-edge conflict attribution, and the
accumulators the :class:`~repro.obs.report.RunTelemetry` artifact is
built from.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, Optional, Tuple

from .clock import Clock, FakeClock, get_clock, monotonic, set_clock
from .registry import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Timer,
    obs_enabled_from_env,
    registry_for,
)
from .report import (
    TELEMETRY_SCHEMA_VERSION,
    RunTelemetry,
    attach_telemetry,
    hotspot_table,
    telemetry_of,
)
from .trace import TRACE_SCHEMA_VERSION, TraceWriter

__all__ = [
    "Clock",
    "Counter",
    "DEFAULT_BUCKETS",
    "FakeClock",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_SESSION",
    "NullRegistry",
    "ObsSession",
    "RunTelemetry",
    "TELEMETRY_SCHEMA_VERSION",
    "TRACE_SCHEMA_VERSION",
    "Timer",
    "TraceWriter",
    "attach_telemetry",
    "default_session",
    "get_clock",
    "hotspot_table",
    "monotonic",
    "obs_enabled_from_env",
    "registry_for",
    "set_clock",
    "telemetry_of",
]


class ObsSession:
    """One run's instrumentation handle.

    Args:
        enabled: force on/off; ``None`` resolves to "on if a tracer or
            ``profile`` was given, else the ``REPRO_OBS`` env flag".
        tracer: optional :class:`TraceWriter` receiving span/event
            records (implies enabled).
        profile: also collect per-edge conflict attribution in the
            batched backend (implies enabled; costs extra on
            conflict-heavy runs — see ``profile_ratio`` in bench_obs).
    """

    __slots__ = (
        "enabled", "registry", "tracer", "profile",
        "edge_conflicts", "phase_seconds",
    )

    def __init__(
        self,
        enabled: Optional[bool] = None,
        tracer: Optional[TraceWriter] = None,
        profile: bool = False,
    ) -> None:
        if enabled is None:
            enabled = profile or tracer is not None or obs_enabled_from_env()
        self.enabled = bool(enabled)
        self.registry: MetricsRegistry = (
            MetricsRegistry() if self.enabled else NULL_REGISTRY
        )
        self.tracer = tracer if self.enabled else None
        self.profile = bool(profile) and self.enabled
        #: directed edge (src, dst) -> cache-invalidating conflicts.
        self.edge_conflicts: Dict[Tuple[Any, Any], int] = {}
        #: phase name -> accumulated wall seconds.
        self.phase_seconds: Dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a named phase (no-op, clock untouched, when disabled)."""
        if not self.enabled:
            yield
            return
        started = monotonic()
        try:
            yield
        finally:
            elapsed = monotonic() - started
            self.phase_seconds[name] = (
                self.phase_seconds.get(name, 0.0) + elapsed
            )
            if self.tracer is not None:
                self.tracer.event("phase", phase=name, seconds=elapsed)

    def event(self, name: str, **fields: Any) -> None:
        """Forward a trace event iff a tracer is attached."""
        if self.tracer is not None:
            self.tracer.event(name, **fields)

    def add_edge_conflicts(
        self, pairs: Iterable[Tuple[Tuple[Any, Any], int]]
    ) -> None:
        """Fold per-edge conflict counts into the session accumulator."""
        table = self.edge_conflicts
        for edge, count in pairs:
            table[edge] = table.get(edge, 0) + int(count)

    def build_telemetry(self, top_edges: int = 20) -> RunTelemetry:
        """Freeze the session's measurements into a :class:`RunTelemetry`."""
        snapshot = self.registry.snapshot()
        counters = snapshot.get("counters", {})
        gauges = snapshot.get("gauges", {})
        cache: Dict[str, float] = {}
        payments = counters.get("fastpath.payments", 0.0)
        conflicts = counters.get("fastpath.conflicts", 0.0)
        tree_hits = counters.get("fastpath.tree_hits", 0.0)
        tree_builds = counters.get("fastpath.tree_builds", 0.0)
        if payments > 0:
            cache["conflict_rate"] = conflicts / payments
        if tree_hits + tree_builds > 0:
            cache["tree_hit_rate"] = tree_hits / (tree_hits + tree_builds)
        if "fastpath.mask_builds" in counters:
            cache["mask_builds"] = counters["fastpath.mask_builds"]
        ordered = sorted(
            self.edge_conflicts.items(),
            key=lambda kv: (-kv[1], str(kv[0])),
        )
        return RunTelemetry(
            counters=dict(counters),
            gauges=dict(gauges),
            phase_seconds=dict(self.phase_seconds),
            histograms=dict(snapshot.get("histograms", {})),
            top_conflicting_edges=tuple(
                (src, dst, count) for (src, dst), count in ordered[:top_edges]
            ),
            cache=cache,
        )


#: The shared disabled session — what everything sees by default.
NULL_SESSION = ObsSession(enabled=False)

_default: Optional[ObsSession] = None


def default_session() -> ObsSession:
    """The process-default session: enabled iff ``REPRO_OBS`` is set.

    Cached after the first call so every engine constructed in an
    opted-in process aggregates into one registry.
    """
    global _default
    if _default is None:
        _default = ObsSession()
    return _default
