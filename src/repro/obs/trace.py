"""Span/event trace export as JSON lines.

One :class:`TraceWriter` per run appends one JSON object per line:

* a ``meta`` header (``schema_version``, the clock origin),
* ``event`` records — point-in-time marks (``ts`` seconds since the
  writer opened, on the obs clock) plus caller fields such as the
  simulated time or a payment id,
* ``span`` records — ``ts`` start plus ``dur`` elapsed seconds.

Timestamps come from :mod:`repro.obs.clock` only, so tracing perturbs
neither simulation RNG nor results; a traced run's metrics are
bit-identical to an untraced one (the parity suite asserts it).
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import IO, Any, Iterator, Optional, Union

from .clock import monotonic

__all__ = ["TRACE_SCHEMA_VERSION", "TraceWriter"]

#: Version stamp written in the ``meta`` header line.
TRACE_SCHEMA_VERSION = 1


class TraceWriter:
    """Append-only JSON-lines trace sink (file path or open handle)."""

    def __init__(self, sink: Union[str, IO[str]]) -> None:
        if isinstance(sink, str):
            self._handle: IO[str] = open(sink, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = sink
            self._owns_handle = False
        self._origin = monotonic()
        self.records_written = 0
        self._write({"type": "meta", "schema_version": TRACE_SCHEMA_VERSION})

    def _write(self, record: dict) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self.records_written += 1

    def event(self, name: str, **fields: Any) -> None:
        """One point-in-time mark."""
        record = {
            "type": "event",
            "name": name,
            "ts": round(monotonic() - self._origin, 9),
        }
        record.update(fields)
        self._write(record)

    @contextmanager
    def span(self, name: str, **fields: Any) -> Iterator[None]:
        """Wrap a block; writes one record with ``ts`` + ``dur`` on exit."""
        started = monotonic()
        try:
            yield
        finally:
            ended = monotonic()
            record = {
                "type": "span",
                "name": name,
                "ts": round(started - self._origin, 9),
                "dur": round(ended - started, 9),
            }
            record.update(fields)
            self._write(record)

    def close(self) -> None:
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info: Any) -> Optional[bool]:
        self.close()
        return None
