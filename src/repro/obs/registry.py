"""Counter / Gauge / Histogram / Timer behind a process-local registry.

Zero overhead when disabled: :data:`NULL_REGISTRY` is a shared no-op
singleton whose instruments swallow every update, so an uninstrumented
hot loop pays one attribute lookup and a falsy check — never a dict
probe, never a clock read. Enabled registries are plain dict-backed
accumulators with a Prometheus text rendering for the service daemon's
``metrics`` verb.
"""

from __future__ import annotations

import bisect
import os
from typing import Any, Dict, Optional, Sequence, Tuple

from .clock import monotonic

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "Timer",
    "obs_enabled_from_env",
    "registry_for",
]

#: Default histogram bucket upper bounds, tuned for latencies in seconds.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)


def obs_enabled_from_env() -> bool:
    """``REPRO_OBS=1`` (or true/yes/on) opts the process into metrics."""
    value = os.environ.get("REPRO_OBS", "")
    return value.strip().lower() in {"1", "true", "yes", "on"}


class Counter:
    """Monotonically increasing tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bound bucketed distribution (plus an implicit +Inf bucket)."""

    __slots__ = ("name", "bounds", "counts", "count", "sum")

    def __init__(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bound")
        self.name = name
        self.bounds = tuple(sorted(float(bound) for bound in bounds))
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
        }


class Timer:
    """Context manager observing elapsed obs-clock seconds into a histogram."""

    __slots__ = ("histogram", "_started")

    def __init__(self, histogram: Histogram) -> None:
        self.histogram = histogram
        self._started = 0.0

    def __enter__(self) -> "Timer":
        self._started = monotonic()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.histogram.observe(monotonic() - self._started)


class MetricsRegistry:
    """Get-or-create home of every instrument in one run/process."""

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, bounds)
        return instrument

    def timer(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Timer:
        return Timer(self.histogram(name, bounds))

    def snapshot(self) -> Dict[str, Any]:
        """Plain-JSON dump of every instrument (names sorted)."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].to_dict()
                for name in sorted(self._histograms)
            },
        }

    def render_prometheus(self, prefix: str = "repro") -> str:
        """Prometheus text exposition of every instrument.

        Metric names are ``<prefix>_<name>`` with dots/dashes folded to
        underscores; histograms render cumulative ``_bucket`` series
        plus ``_sum`` / ``_count`` in the standard layout.
        """
        lines = []
        for name in sorted(self._counters):
            metric = _prom_name(prefix, name)
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_prom_value(self._counters[name].value)}")
        for name in sorted(self._gauges):
            metric = _prom_name(prefix, name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_prom_value(self._gauges[name].value)}")
        for name in sorted(self._histograms):
            histogram = self._histograms[name]
            metric = _prom_name(prefix, name)
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for bound, count in zip(histogram.bounds, histogram.counts):
                cumulative += count
                lines.append(
                    f'{metric}_bucket{{le="{_prom_value(bound)}"}} {cumulative}'
                )
            lines.append(f'{metric}_bucket{{le="+Inf"}} {histogram.count}')
            lines.append(f"{metric}_sum {_prom_value(histogram.sum)}")
            lines.append(f"{metric}_count {histogram.count}")
        return "\n".join(lines) + "\n"


def _prom_name(prefix: str, name: str) -> str:
    folded = name.replace(".", "_").replace("-", "_")
    return f"{prefix}_{folded}" if prefix else folded


def _prom_value(value: float) -> str:
    # Integral values print without a trailing ".0" (Prometheus style).
    return str(int(value)) if float(value).is_integer() else repr(float(value))


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class _NullTimer(Timer):
    """No clock reads, no recording — disabled timing costs nothing."""

    __slots__ = ()

    def __enter__(self) -> "Timer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """The disabled registry: every instrument is a shared no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null", DEFAULT_BUCKETS)
        self._null_timer = _NullTimer(self._null_histogram)

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        return self._null_gauge

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._null_histogram

    def timer(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Timer:
        return self._null_timer


#: Shared disabled registry — what every engine sees unless obs is on.
NULL_REGISTRY = NullRegistry()


def registry_for(enabled: Optional[bool] = None) -> MetricsRegistry:
    """A fresh enabled registry, or the shared null one.

    ``enabled=None`` resolves from the ``REPRO_OBS`` environment flag.
    """
    if enabled is None:
        enabled = obs_enabled_from_env()
    return MetricsRegistry() if enabled else NULL_REGISTRY
