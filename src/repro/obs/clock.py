"""The single sanctioned wall-clock source of the library.

Every timing read outside ``benchmarks/`` flows through
:func:`monotonic` (reprolint RPR009 enforces it): instrumentation code
never calls ``time.perf_counter`` directly, so (a) tests can install a
:class:`FakeClock` and make latency assertions deterministic, and
(b) wall-clock reads stay confined to the obs layer — they never touch
simulation RNG or results, which is what lets the parity suite prove
obs-on and obs-off runs bit-identical.
"""

from __future__ import annotations

import time
from typing import Optional

__all__ = ["Clock", "FakeClock", "get_clock", "monotonic", "set_clock"]


class Clock:
    """Monotonic wall clock; the process default."""

    def monotonic(self) -> float:
        return time.perf_counter()


class FakeClock(Clock):
    """Injectable test clock: time moves only when :meth:`advance` is called."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def monotonic(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new reading."""
        if seconds < 0:
            raise ValueError(f"cannot advance a monotonic clock by {seconds}")
        self._now += float(seconds)
        return self._now


_active: Clock = Clock()


def get_clock() -> Clock:
    """The currently installed process clock."""
    return _active


def set_clock(clock: Optional[Clock]) -> Clock:
    """Install ``clock`` process-wide (``None`` restores the real clock).

    Returns the previously installed clock so tests can put it back:
    ``previous = set_clock(FakeClock()) ... set_clock(previous)``.
    """
    global _active
    previous = _active
    _active = clock if clock is not None else Clock()
    return previous


def monotonic() -> float:
    """Seconds on the installed monotonic clock — the one sanctioned read."""
    return _active.monotonic()
