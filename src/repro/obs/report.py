"""The :class:`RunTelemetry` artifact and the hot-spot report built on it.

``RunTelemetry`` is the frozen, schema-versioned summary of one
instrumented run: counters, per-phase wall time, histograms, the top
conflicting edges of the batched backend, and derived cache rates. It
rides *alongside* the result artifacts — :func:`attach_telemetry` pins
it onto a ``SimulationMetrics`` / ``AttackReport`` / ``Trajectory``
without entering their ``to_dict`` documents, so result hashing, the
content-addressed store, and every existing round-trip contract are
untouched by instrumentation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "RunTelemetry",
    "TELEMETRY_SCHEMA_VERSION",
    "attach_telemetry",
    "hotspot_table",
    "telemetry_of",
]

#: Version stamp of the ``RunTelemetry.to_dict`` document layout.
TELEMETRY_SCHEMA_VERSION = 1

#: Side-channel attribute telemetry rides on (never serialised by the
#: host artifact's ``to_dict``).
_TELEMETRY_ATTR = "_repro_telemetry"


@dataclass(frozen=True)
class RunTelemetry:
    """Everything one instrumented run measured, in plain JSON types.

    Attributes:
        counters / gauges: flat name -> value instrument snapshots.
        phase_seconds: wall time per named phase (topology, workload,
            simulate, attack baseline/attacked, evolution phases, ...).
        histograms: name -> ``{"bounds", "counts", "count", "sum"}``.
        top_conflicting_edges: ``(src, dst, conflicts)`` triples, worst
            first — which directed edges invalidated the batched
            backend's cached routing trees.
        cache: derived rates (``conflict_rate``, ``tree_hit_rate``,
            ``mask_builds``, ...) for the hot-spot report.
    """

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    top_conflicting_edges: Tuple[Tuple[Any, Any, int], ...] = ()
    cache: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": TELEMETRY_SCHEMA_VERSION,
            "counters": {name: self.counters[name]
                         for name in sorted(self.counters)},
            "gauges": {name: self.gauges[name]
                       for name in sorted(self.gauges)},
            "phase_seconds": {name: self.phase_seconds[name]
                              for name in sorted(self.phase_seconds)},
            "histograms": {name: dict(self.histograms[name])
                           for name in sorted(self.histograms)},
            "top_conflicting_edges": [
                [src, dst, count]
                for src, dst, count in self.top_conflicting_edges
            ],
            "cache": {name: self.cache[name] for name in sorted(self.cache)},
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "RunTelemetry":
        """Rebuild telemetry from a :meth:`to_dict` document (strict)."""
        if not isinstance(document, Mapping):
            raise ValueError(
                f"RunTelemetry document must be a mapping, "
                f"got {type(document).__name__}"
            )
        version = document.get("schema_version", TELEMETRY_SCHEMA_VERSION)
        if version != TELEMETRY_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported RunTelemetry schema_version {version!r}"
            )
        known = {
            "schema_version", "counters", "gauges", "phase_seconds",
            "histograms", "top_conflicting_edges", "cache",
        }
        unknown = set(document) - known
        if unknown:
            raise ValueError(f"unknown RunTelemetry fields: {sorted(unknown)}")
        return cls(
            counters=dict(document.get("counters", {})),
            gauges=dict(document.get("gauges", {})),
            phase_seconds=dict(document.get("phase_seconds", {})),
            histograms={
                name: dict(histogram)
                for name, histogram in document.get("histograms", {}).items()
            },
            top_conflicting_edges=tuple(
                (src, dst, count)
                for src, dst, count in document.get(
                    "top_conflicting_edges", []
                )
            ),
            cache=dict(document.get("cache", {})),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunTelemetry":
        return cls.from_dict(json.loads(text))


def attach_telemetry(artifact: Any, telemetry: RunTelemetry) -> Any:
    """Pin ``telemetry`` onto ``artifact`` (frozen dataclasses included).

    The attribute is a side channel: it never appears in the artifact's
    ``to_dict`` document, so content hashes and store round-trips are
    byte-identical with and without it.
    """
    object.__setattr__(artifact, _TELEMETRY_ATTR, telemetry)
    return artifact


def telemetry_of(artifact: Any) -> Optional[RunTelemetry]:
    """The telemetry attached to ``artifact``, or ``None``."""
    return getattr(artifact, _TELEMETRY_ATTR, None)


def hotspot_table(telemetry: RunTelemetry, top: int = 10) -> str:
    """Human-readable hot-spot report: edges, phases, cache rates."""
    from ..analysis import format_table

    sections: List[str] = []
    edges = telemetry.top_conflicting_edges[:top]
    if edges:
        rows = [
            {"src": src, "dst": dst, "conflicts": count}
            for src, dst, count in edges
        ]
        sections.append(
            format_table(rows, title=f"top {len(rows)} conflicting edges")
        )
    if telemetry.phase_seconds:
        total = sum(telemetry.phase_seconds.values())
        rows = [
            {
                "phase": name,
                "seconds": seconds,
                "share": seconds / total if total > 0 else 0.0,
            }
            for name, seconds in sorted(
                telemetry.phase_seconds.items(), key=lambda kv: -kv[1]
            )
        ]
        sections.append(format_table(rows, title="per-phase wall time"))
    if telemetry.cache:
        rows = [
            {"rate": name, "value": value}
            for name, value in sorted(telemetry.cache.items())
        ]
        sections.append(format_table(rows, title="cache / conflict rates"))
    if not sections:
        return "no telemetry recorded (was the run instrumented?)"
    return "\n\n".join(sections)
