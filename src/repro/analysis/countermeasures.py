"""Jamming countermeasures: pricing attacks with two-sided fee policies.

Slow jamming is cheap because failed (or never-settled) payments are
free: the attacker occupies HTLC slots and liquidity for the whole hold
time yet pays routing fees only on the locks it settles. The proposed
countermeasure — studied for Lightning as *upfront fees* — charges an
unconditional per-attempt fee for every hop a lock actually places,
settle or not. A two-sided :class:`~repro.network.fees.FeePolicy`
models exactly that split, and :func:`countermeasure_table` prices its
effect: identical attacks (same topology, same honest workload, same
attacker budget and RNG) run under a success-only fee and under upfront
variants of increasing rate, tabulating attacker cost and return on
investment per policy.

The upfront charge is ledger-only (no channel balance moves), so
liquidity and slot dynamics — hence the *damage* an attack does — are
identical across policies; only what the attack **costs** changes.
Attacker ROI (victim revenue destroyed per unit of attacker cost) is
therefore strictly decreasing in the upfront rate wherever the attack
launches at least one lock.

The sweep rides :meth:`ScenarioRunner.run_sweep
<repro.scenarios.runner.ScenarioRunner.run_sweep>` and is cache-aware:
pass ``cache=`` a result store (or path) and repeated tables re-execute
only grid points whose resolved scenarios changed.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..service.store import ResultStore

from ..errors import ScenarioError
from ..scenarios.specs import FeeSpec, TopologySpec
from .resilience import default_attack_scenario, equilibrium_topology_docs

__all__ = [
    "countermeasure_table",
    "fee_policy_docs",
]

#: Columns the countermeasure table keeps, in display order.
TABLE_COLUMNS = (
    "topology",
    "fee_policy",
    "upfront_base",
    "upfront_rate",
    "victim",
    "budget_spent",
    "attacker_fees_paid",
    "attacker_upfront_paid",
    "attacker_roi",
    "victim_revenue_delta",
    "victim_revenue_loss_pct",
    "baseline_success_rate",
    "attacked_success_rate",
    "baseline_victim_upfront_revenue",
    "attacked_victim_upfront_revenue",
)


def fee_policy_docs(
    upfront_rates: Sequence[float],
    fee_base: float = 0.01,
    fee_rate: float = 0.001,
    upfront_base: float = 0.0,
) -> List[Dict[str, Any]]:
    """FeeSpec documents: one success-only policy plus upfront variants.

    Every document shares the same success side (a linear fee with
    ``fee_base`` / ``fee_rate``), so the rows differ *only* in their
    per-attempt pricing. Rates must be positive and strictly increasing
    — the table's ROI claim is stated over an ordered axis.
    """
    rates = [float(r) for r in upfront_rates]
    if any(r <= 0 for r in rates):
        raise ScenarioError(
            "upfront_rates must be > 0 (the success-only baseline row is "
            f"included automatically), got {rates}"
        )
    if any(b >= a for a, b in zip(rates[1:], rates)):
        raise ScenarioError(
            f"upfront_rates must be strictly increasing, got {rates}"
        )
    success_params = {"base": fee_base, "rate": fee_rate}
    docs = [FeeSpec("linear", dict(success_params)).to_dict()]
    for rate in rates:
        docs.append(
            FeeSpec(
                "linear",
                dict(success_params),
                upfront_base=upfront_base,
                upfront_rate=rate,
            ).to_dict()
        )
    return docs


def countermeasure_table(
    upfront_rates: Sequence[float],
    budget: float = 1000.0,
    strategy: str = "slow-jamming",
    size: int = 9,
    balance: float = 10.0,
    horizon: float = 40.0,
    seed: int = 7,
    zipf_s: float = 1.0,
    fee_base: float = 0.01,
    fee_rate: float = 0.001,
    upfront_base: float = 0.0,
    backend: str = "event",
    attack_params: Optional[Dict[str, Any]] = None,
    executor: str = "serial",
    max_workers: Optional[int] = None,
    cache: Optional[Union["ResultStore", str, Path]] = None,
) -> List[Dict[str, Any]]:
    """Sweep fee policies across the three NE topologies under attack.

    Args:
        upfront_rates: positive, strictly increasing per-attempt rates;
            a success-only baseline row (rate 0) is prepended per
            topology automatically.
        budget: attacker capital endowment (identical on every row, so
            ROI differences are pure policy effect).
        strategy: attack registry kind (``"slow-jamming"``, ...).
        size: number of nodes in every topology.
        balance: per-side channel balance of the built topologies.
        horizon: simulated time span per run.
        seed: scenario seed, pinned on every grid point so all
            topologies and policies see the same honest RNG stream.
        zipf_s: receiver-skew of the honest workload.
        fee_base / fee_rate: the shared success-side linear fee.
        upfront_base: flat per-attempt charge of the upfront variants.
        backend: simulation backend per run (``"event"`` or
            ``"batched"`` — reports are bit-identical; batched is the
            fast path for large sweeps).
        attack_params: extra ``AttackSpec`` params merged over the
            defaults (e.g. ``{"slot_cap": 30}``).
        executor: ``"serial"`` or ``"process"`` (forwarded to
            :meth:`ScenarioRunner.run_sweep`).
        max_workers: process-pool size (``"process"`` only).
        cache: result store (or store path) memoising each grid point by
            its scenario content hash.

    Returns:
        One row per (topology, fee policy) grid point, in grid order,
        reduced to :data:`TABLE_COLUMNS`.
    """
    # Deferred: repro.scenarios.runner imports the provider modules.
    from ..scenarios.runner import ScenarioRunner

    params: Dict[str, Any] = dict(attack_params or {})
    params.setdefault("budget", float(budget))
    base = default_attack_scenario(
        TopologySpec("star", {"leaves": size - 1, "balance": balance}),
        strategy,
        params,
        horizon=horizon,
        seed=seed,
        zipf_s=zipf_s,
        name=f"countermeasure-{strategy}",
    )
    base = base.with_overrides({"simulation.backend": backend})
    grid = {
        "topology": equilibrium_topology_docs(size, balance=balance),
        "fee": fee_policy_docs(
            upfront_rates,
            fee_base=fee_base,
            fee_rate=fee_rate,
            upfront_base=upfront_base,
        ),
        # a swept "seed" wins over run_sweep's per-point derivation:
        # every (topology, fee) point must see the same RNG stream
        "seed": [seed],
    }
    rows = ScenarioRunner().run_sweep(
        base, grid, executor=executor, max_workers=max_workers, cache=cache
    )
    table: List[Dict[str, Any]] = []
    for row in rows:
        fee_doc = row["fee"]
        has_upfront = (
            fee_doc.get("upfront_base", 0.0) > 0
            or fee_doc.get("upfront_rate", 0.0) > 0
        )
        entry: Dict[str, Any] = {
            "topology": row["topology"]["kind"],
            "fee_policy": "upfront" if has_upfront else "success-only",
            "upfront_base": fee_doc.get("upfront_base", 0.0),
            "upfront_rate": fee_doc.get("upfront_rate", 0.0),
        }
        for column in TABLE_COLUMNS[4:]:
            entry[column] = row[column]
        table.append(entry)
    return table
