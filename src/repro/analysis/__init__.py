"""Sweep, estimation, and reporting helpers for experiments."""

from .countermeasures import countermeasure_table, fee_policy_docs
from .emergence import classify_topology, emergence_table
from .resilience import equilibrium_topology_docs, resilience_table
from .estimation import (
    RateEstimate,
    ZipfEstimate,
    estimate_average_fee,
    estimate_sender_rates,
    estimate_total_rate,
    estimate_zipf_s,
)
from .sweeps import grid_points, run_sweep
from .tables import format_table, format_value

__all__ = [
    "RateEstimate",
    "ZipfEstimate",
    "classify_topology",
    "countermeasure_table",
    "emergence_table",
    "fee_policy_docs",
    "estimate_average_fee",
    "estimate_sender_rates",
    "equilibrium_topology_docs",
    "estimate_total_rate",
    "estimate_zipf_s",
    "format_table",
    "resilience_table",
    "format_value",
    "grid_points",
    "run_sweep",
]
