"""Attack resilience of the paper's Section IV equilibrium topologies.

The star, path, and circle are all Nash equilibria of the creation game
(Thms 8, 10, 11) under suitable parameters — but they are *not* equally
robust to adversarial traffic. A circle offers a disjoint second route
around any jammed node; a path has none; a star concentrates all transit
revenue in one jammable hub. :func:`resilience_table` makes that concrete:
it sweeps identical attacker budgets over size-matched star / path /
circle networks (same honest workload process, same fee function, same
seed) and tabulates how much victim revenue each equilibrium loses.

The sweep rides :meth:`ScenarioRunner.run_sweep
<repro.scenarios.runner.ScenarioRunner.run_sweep>`, so
``executor="process"`` parallelises the (topology x budget) grid across
worker processes with bit-identical rows.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..service.store import ResultStore

from ..scenarios.specs import (
    AttackSpec,
    FeeSpec,
    Scenario,
    SimulationSpec,
    TopologySpec,
    WorkloadSpec,
)

__all__ = [
    "default_attack_scenario",
    "equilibrium_topology_docs",
    "resilience_table",
]

#: Columns the resilience table keeps, in display order.
TABLE_COLUMNS = (
    "topology",
    "attack_budget",
    "victim",
    "budget_spent",
    "baseline_victim_revenue",
    "attacked_victim_revenue",
    "victim_revenue_delta",
    "victim_revenue_loss_pct",
    "baseline_success_rate",
    "attacked_success_rate",
    "locked_liquidity_integral",
)


def equilibrium_topology_docs(
    size: int, balance: float = 10.0
) -> List[Dict[str, Any]]:
    """Size-matched TopologySpec documents for star / path / circle.

    ``size`` counts *nodes* in every topology, so the star gets
    ``size - 1`` leaves — the sweeps compare networks of equal population,
    not equal parameter value.
    """
    if size < 4:
        raise ValueError(f"size must be >= 4 for all three topologies, got {size}")
    return [
        {"kind": "star", "params": {"leaves": size - 1, "balance": balance}},
        {"kind": "path", "params": {"n": size, "balance": balance}},
        {"kind": "circle", "params": {"n": size, "balance": balance}},
    ]


def default_attack_scenario(
    topology: TopologySpec,
    strategy: str,
    attack_params: Dict[str, Any],
    horizon: float = 40.0,
    seed: int = 7,
    zipf_s: float = 1.0,
    name: str = "attack",
) -> Scenario:
    """The canonical attack scenario: one honest workload for every driver.

    The CLI's ``attack`` subcommand, the resilience table, and the attack
    throughput benchmark all build their scenario here, so a
    single-topology report stays comparable to its row in a ``--compare``
    table (same Poisson/Zipf workload, same sub-coin sizes, same linear
    fee, same HTLC simulation settings).
    """
    return Scenario(
        topology=topology,
        workload=WorkloadSpec(
            "poisson",
            {
                "rate": 1.0,
                "zipf_s": zipf_s,
                "sizes": {
                    "kind": "truncated-exponential", "scale": 0.5, "high": 2.0,
                },
            },
        ),
        fee=FeeSpec("linear", {"base": 0.01, "rate": 0.001}),
        simulation=SimulationSpec(
            horizon=horizon, payment_mode="htlc", htlc_hold_mean=0.2,
        ),
        attack=AttackSpec(strategy, attack_params),
        name=name,
        seed=seed,
    )


def resilience_table(
    budgets: Sequence[float],
    strategy: str = "slow-jamming",
    size: int = 9,
    balance: float = 10.0,
    horizon: float = 40.0,
    seed: int = 7,
    zipf_s: float = 1.0,
    attack_params: Optional[Dict[str, Any]] = None,
    executor: str = "serial",
    max_workers: Optional[int] = None,
    cache: Optional[Union["ResultStore", str, Path]] = None,
) -> List[Dict[str, Any]]:
    """Sweep attacker budgets across the three NE topologies.

    Args:
        budgets: attacker capital endowments to sweep.
        strategy: attack registry kind (``"slow-jamming"``, ...).
        size: number of nodes in every topology.
        balance: per-side channel balance of the built topologies.
        horizon: simulated time span per run.
        seed: scenario seed. The grid pins it on every point (overriding
            ``run_sweep``'s per-point derivation), so all topologies and
            budgets see the same honest-workload RNG stream — the
            controlled comparison this table exists for.
        zipf_s: receiver-skew of the honest workload.
        attack_params: extra ``AttackSpec`` params merged over the defaults
            (e.g. ``{"slot_cap": 30}``).
        executor: ``"serial"`` or ``"process"`` (forwarded to
            :meth:`ScenarioRunner.run_sweep`).
        max_workers: process-pool size (``"process"`` only).
        cache: result store (or store path) memoising each grid point by
            its scenario content hash — repeating a table re-executes
            only points whose resolved scenarios changed.

    Returns:
        One row per (topology, budget) grid point, in grid order, reduced
        to :data:`TABLE_COLUMNS`.
    """
    # Deferred: repro.scenarios.runner imports the provider modules.
    from ..scenarios.runner import ScenarioRunner

    params: Dict[str, Any] = dict(attack_params or {})
    params.setdefault("budget", float(budgets[0]) if budgets else 0.0)
    base = default_attack_scenario(
        TopologySpec("star", {"leaves": size - 1, "balance": balance}),
        strategy,
        params,
        horizon=horizon,
        seed=seed,
        zipf_s=zipf_s,
        name=f"resilience-{strategy}",
    )
    grid = {
        "topology": equilibrium_topology_docs(size, balance=balance),
        "attack.params.budget": [float(b) for b in budgets],
        # a swept "seed" wins over run_sweep's per-point derivation:
        # every (topology, budget) point must see the same RNG stream
        "seed": [seed],
    }
    rows = ScenarioRunner().run_sweep(
        base, grid, executor=executor, max_workers=max_workers, cache=cache
    )
    table: List[Dict[str, Any]] = []
    for row in rows:
        entry = {"topology": row["topology"]["kind"]}
        for column in TABLE_COLUMNS[1:]:
            entry[column] = row[column]
        table.append(entry)
    return table
