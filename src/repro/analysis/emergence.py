"""Topology emergence under evolution: the dynamic Section IV question.

The paper proves the star, path, and circle are Nash equilibria under
suitable parameters — a *static* statement. :func:`emergence_table`
asks the dynamic one: start the evolution engine on each Section IV
topology with identical parameters (same arrival/churn processes, same
workload seed, same utility model) and tabulate where best-response
dynamics take it — does the star emerge from best responses, and does
it survive churn? ``survived`` marks runs whose final graph still
classifies as the topology they started from; ``nash_stable`` is the
full :func:`~repro.equilibrium.nash.check_nash` certificate on the
final graph.

The sweep rides :meth:`ScenarioRunner.run_sweep
<repro.scenarios.runner.ScenarioRunner.run_sweep>`, so
``executor="process"`` parallelises the topology grid with bit-identical
rows.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

from ..evolution.trajectory import classify_topology  # noqa: F401  (re-export)
from ..scenarios.specs import (
    ChurnSpec,
    EvolutionSpec,
    FeeSpec,
    GrowthSpec,
    Scenario,
    TopologySpec,
    WorkloadSpec,
)
from .resilience import equilibrium_topology_docs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..service.store import ResultStore

__all__ = [
    "EMERGENCE_COLUMNS",
    "classify_topology",
    "default_evolution_scenario",
    "emergence_table",
]

#: Columns the emergence table keeps, in display order.
EMERGENCE_COLUMNS = (
    "topology",
    "epochs_run",
    "converged",
    "final_nodes",
    "final_channels",
    "final_topology",
    "survived",
    "nash_stable",
    "final_max_gain",
    "final_welfare",
    "total_arrivals",
    "total_departures",
    "total_moves",
)


def default_evolution_scenario(
    topology: TopologySpec,
    epochs: int = 10,
    seed: int = 7,
    arrival_rate: float = 0.0,
    churn_rate: float = 0.0,
    utility: str = "analytic",
    traffic_horizon: float = 10.0,
    a: float = 0.1,
    b: float = 0.1,
    edge_cost: float = 1.0,
    zipf_s: float = 2.0,
    sample: Optional[int] = None,
    mode: str = "structured",
    balance: float = 1.0,
    name: str = "evolve",
) -> Scenario:
    """The canonical evolution scenario shared by CLI and tables.

    Defaults put the star inside its Thm 9 stability region (``a = b =
    0.1``, ``s = 2``, ``l = 1``), so a churn-free run certifies the
    static result and the interesting deltas come from arrivals/churn.
    ``balance`` funds best-response channels; pass the topology's
    per-side balance so empirical replays don't starve deviators of
    liquidity relative to incumbent channels.
    """
    growth = None
    if arrival_rate > 0:
        growth = GrowthSpec("poisson", {
            "rate": arrival_rate,
            "algorithm": "greedy",
            "params": {"budget": 4.0, "lock": 1.0},
        })
    churn = None
    if churn_rate > 0:
        churn = ChurnSpec("uniform", {"rate": churn_rate})
    return Scenario(
        topology=topology,
        workload=WorkloadSpec("poisson", {"zipf_s": zipf_s}),
        fee=FeeSpec("linear", {"base": 0.01, "rate": 0.001}),
        evolution=EvolutionSpec(
            epochs=epochs,
            growth=growth,
            churn=churn,
            utility=utility,
            traffic_horizon=traffic_horizon,
            sample=sample,
            mode=mode,
            balance=balance,
            a=a,
            b=b,
            edge_cost=edge_cost,
            zipf_s=zipf_s,
        ),
        name=name,
        seed=seed,
    )


def emergence_table(
    epochs: int = 10,
    size: int = 6,
    balance: float = 10.0,
    seed: int = 7,
    arrival_rate: float = 0.0,
    churn_rate: float = 0.0,
    utility: str = "analytic",
    traffic_horizon: float = 10.0,
    a: float = 0.1,
    b: float = 0.1,
    edge_cost: float = 1.0,
    zipf_s: float = 2.0,
    sample: Optional[int] = None,
    mode: str = "structured",
    executor: str = "serial",
    max_workers: Optional[int] = None,
    cache: Optional[Union["ResultStore", str, Path]] = None,
) -> List[Dict[str, Any]]:
    """Run the evolution engine over the three NE topologies and tabulate.

    Args:
        epochs / arrival_rate / churn_rate / utility / traffic_horizon /
            sample / mode: forwarded to the
            :class:`~repro.scenarios.specs.EvolutionSpec`.
        size: number of nodes in every starting topology.
        balance: per-side channel balance of the built topologies.
        seed: pinned on every grid point (like the resilience table), so
            all three topologies face the same arrival/churn/workload
            randomness — the controlled comparison.
        a / b / edge_cost / zipf_s: the Section IV utility parameters.
        executor / max_workers: forwarded to ``run_sweep``.
        cache: result store (or store path) memoising each grid point by
            its scenario content hash (forwarded to ``run_sweep``).

    Returns:
        One row per topology, in grid order, reduced to
        :data:`EMERGENCE_COLUMNS` plus ``survived``.
    """
    # Deferred: repro.scenarios.runner imports the provider modules.
    from ..scenarios.runner import ScenarioRunner

    base = default_evolution_scenario(
        TopologySpec("star", {"leaves": size - 1, "balance": balance}),
        epochs=epochs,
        seed=seed,
        arrival_rate=arrival_rate,
        churn_rate=churn_rate,
        utility=utility,
        traffic_horizon=traffic_horizon,
        a=a,
        b=b,
        edge_cost=edge_cost,
        zipf_s=zipf_s,
        sample=sample,
        mode=mode,
        balance=balance,
        name="emergence",
    )
    grid = {
        "topology": equilibrium_topology_docs(size, balance=balance),
        # a swept "seed" wins over run_sweep's per-point derivation:
        # every topology must face the same evolution randomness
        "seed": [seed],
    }
    rows = ScenarioRunner().run_sweep(
        base, grid, executor=executor, max_workers=max_workers, cache=cache
    )
    table: List[Dict[str, Any]] = []
    for row in rows:
        entry: Dict[str, Any] = {"topology": row["topology"]["kind"]}
        entry["survived"] = row["final_topology"] == entry["topology"]
        for column in EMERGENCE_COLUMNS:
            if column in ("topology", "survived"):
                continue
            entry[column] = row[column]
        table.append(entry)
    return table
